//! Static confidentiality-flow analysis (taint / information-flow) for CCL.
//!
//! CONFIDE's language story (§4) is that the *schema* declares what is
//! confidential and the runtime seals exactly those fields. What the paper
//! leaves to the developer is making sure the *contract code* never moves
//! sealed data somewhere public — into an event log that leaves the
//! enclave in plaintext, into a non-confidential state field an auditor
//! can read, or across a contract boundary. This module closes that gap
//! with an intraprocedural dataflow pass plus a call-graph summary layer,
//! run at `cclc --lint` time and again by the engine before a deployment
//! is accepted.
//!
//! ## Abstract domain
//!
//! Every CCL value is abstracted as a taint set and a key shape:
//!
//! * **Taint** — two independent bits. [`INPUT_TAINT`]: derived from
//!   `input()`, the T-Protocol envelope body (confidential in transit).
//!   [`STATE_TAINT`]: derived from a `storage_get`/`storage_has` whose key
//!   the CCLe schema maps to a `(confidential)` field (the D-Protocol
//!   sealed fraction of state).
//! * **Key shape** — an abstract byte-string prefix ([`KeyShape`]):
//!   literals are `Exact`, `concat(b"score:", x)` is `Prefix("score:")`,
//!   everything else `Unknown`. Shapes let the pass classify storage keys
//!   against [`ConfidentialKeys`] without executing the contract.
//!
//! Function bodies are interpreted abstractly (branch join, loop
//! fixpoint); non-primitive functions get a memoized **summary** —
//! which parameters flow to the return value, what constant taint the
//! body introduces, which sinks its parameters reach — so flows through
//! helpers are reported at the *call site* in the user's code. The
//! implicit-flow (pc-taint) of `if`/`while` conditions is tracked and
//! surfaces as warnings when a sink fires under secret-dependent control.
//!
//! ## Rules
//!
//! | rule | severity | fires when |
//! |---|---|---|
//! | `leak-log` | Error | input- or confidential-state-derived data reaches `log` |
//! | `leak-public-store` | Error (state) / Warning (input) | tainted data written to a key the schema maps to a **non**-confidential field |
//! | `leak-unknown-store` | Warning | tainted data written to a key whose shape the analysis cannot resolve (schema present) |
//! | `leak-key` | Error | confidential-state data used as storage-key material (keys are stored in plaintext) |
//! | `leak-call` | Warning | confidential-state data passed across a cross-contract `call` boundary |
//! | `implicit-flow` | Warning | a public sink executes under control flow conditioned on confidential state |
//!
//! Without a schema only `input()` is a source and only `log`/`call` are
//! sinks — under whole-state sealing (D-Protocol without CCLe) every
//! storage write lands encrypted, so storage is not a leak channel.
//! Severity `Error` is what the engine's deploy gate rejects;
//! warnings are advisory.

use std::collections::{HashMap, HashSet};

use crate::ast::{Expr, FnDef, Program, Stmt};
use crate::CompileError;
use confide_ccle::ConfidentialKeys;

/// Taint bit: value derived from `input()` (the sealed T-Protocol body).
pub const INPUT_TAINT: u8 = 1;
/// Taint bit: value derived from a confidential state field.
pub const STATE_TAINT: u8 = 2;

/// Diagnostic severity. `Error` blocks deployment; `Warning` is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; deploy proceeds.
    Warning,
    /// Confidentiality violation; deploy is rejected unless `allow_leaky`.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One linter finding, line-numbered in the *user's* source (the
/// prepended stdlib is transparent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity.
    pub severity: Severity,
    /// 1-based line in the user source (0 when inside the stdlib).
    pub line: usize,
    /// Stable rule identifier (e.g. `leak-log`).
    pub rule: &'static str,
    /// Human-readable description of the flow.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: line {}: [{}] {}",
            self.severity, self.line, self.rule, self.message
        )
    }
}

/// The result of linting one contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// All findings, in program order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Findings at `Error` severity.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Whether the contract is clean enough to deploy (no errors).
    pub fn deployable(&self) -> bool {
        self.errors().next().is_none()
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Number of lines the prepended stdlib occupies: user line `L` appears
/// as combined line `L + stdlib_line_offset()`.
pub fn stdlib_line_offset() -> usize {
    crate::stdlib::STDLIB
        .bytes()
        .filter(|&b| b == b'\n')
        .count()
        + 1
}

/// Lint CCL source (stdlib is prepended and type-checked exactly as
/// [`crate::frontend`] does). Pass the schema-derived
/// [`ConfidentialKeys`] to enable the storage-source/sink rules;
/// without it only `input()` is a source.
pub fn lint_source(
    source: &str,
    keys: Option<&ConfidentialKeys>,
) -> Result<LintReport, CompileError> {
    let program = crate::frontend(source)?;
    let offset = stdlib_line_offset();
    let mut diagnostics = lint_program(&program, keys);
    // Rebase onto user-source lines; drop stdlib-internal findings (the
    // stdlib is trusted — its storage wrappers are modeled, not analyzed).
    diagnostics.retain(|d| d.line > offset);
    for d in &mut diagnostics {
        d.line -= offset;
    }
    Ok(LintReport { diagnostics })
}

/// Lint an already-parsed program. Lines are those of the parsed source
/// (combined stdlib + user when the program came from [`crate::frontend`]).
pub fn lint_program(program: &Program, keys: Option<&ConfidentialKeys>) -> Vec<Diagnostic> {
    let mut ctx = Ctx {
        program,
        keys,
        summaries: HashMap::new(),
        in_progress: HashSet::new(),
        diags: Vec::new(),
    };
    // Summarize every function: constant-taint flows are reported while
    // summarizing, parameter-dependent flows at each call site.
    for f in &program.functions {
        if !is_modeled(&f.name) {
            ctx.summarize(&f.name);
        }
    }
    ctx.diags.sort_by_key(|d| (d.line, d.rule));
    ctx.diags.dedup();
    ctx.diags
}

// ---------------------------------------------------------------------------
// Abstract domain
// ---------------------------------------------------------------------------

/// Symbolic taint: constant bits plus a bitmask of parameters whose taint
/// flows in wholesale (positions in the function being summarized).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Sym {
    konst: u8,
    deps: u64,
}

impl Sym {
    const CLEAN: Sym = Sym { konst: 0, deps: 0 };

    fn konst(bits: u8) -> Sym {
        Sym {
            konst: bits,
            deps: 0,
        }
    }

    fn param(i: usize) -> Sym {
        Sym {
            konst: 0,
            deps: 1u64 << i.min(63),
        }
    }

    fn or(self, other: Sym) -> Sym {
        Sym {
            konst: self.konst | other.konst,
            deps: self.deps | other.deps,
        }
    }

    fn is_clean(self) -> bool {
        self.konst == 0 && self.deps == 0
    }

    /// Substitute caller argument taints for parameter dependencies.
    fn subst(self, args: &[Sym]) -> Sym {
        let mut out = Sym::konst(self.konst);
        for (i, a) in args.iter().enumerate() {
            if self.deps >> i & 1 == 1 {
                out = out.or(*a);
            }
        }
        // Dependencies beyond the supplied args (should not happen on a
        // type-checked program) stay conservative: keep them as konst-less
        // deps so nothing is silently dropped.
        let extra = self.deps >> args.len().min(63);
        if args.len() < 64 && extra != 0 {
            out.deps |= self.deps & !((1u64 << args.len()) - 1);
        }
        out
    }
}

/// Abstract byte-string used as a storage key.
#[derive(Debug, Clone, PartialEq, Eq)]
enum KeyShape {
    /// The exact literal bytes are known.
    Exact(Vec<u8>),
    /// A literal prefix is known (`concat(lit, dynamic)`).
    Prefix(Vec<u8>),
    /// Nothing is known.
    Unknown,
}

impl KeyShape {
    fn join(&self, other: &KeyShape) -> KeyShape {
        if self == other {
            self.clone()
        } else {
            KeyShape::Unknown
        }
    }
}

/// Abstract value: taint plus key shape.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AVal {
    t: Sym,
    shape: KeyShape,
}

impl AVal {
    fn clean() -> AVal {
        AVal {
            t: Sym::CLEAN,
            shape: KeyShape::Unknown,
        }
    }

    fn tainted(t: Sym) -> AVal {
        AVal {
            t,
            shape: KeyShape::Unknown,
        }
    }

    fn join(&self, other: &AVal) -> AVal {
        AVal {
            t: self.t.or(other.t),
            shape: self.shape.join(&other.shape),
        }
    }
}

type Env = HashMap<String, AVal>;

/// How confidential a storage key is, per the schema map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeyClass {
    /// Schema maps it to a `(confidential)` field.
    Confidential,
    /// Schema present; provably not confidential.
    Public,
    /// Schema present but the key shape is unresolvable.
    Unresolved,
    /// No schema — whole-state sealing; storage is not a leak channel.
    NoSchema,
}

/// Sink kinds; paired with taint to decide the rule and severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SinkKind {
    Log,
    PublicStore,
    UnknownStore,
    KeyMaterial,
    CallArg,
}

/// A parameter-dependent sink recorded in a function summary; fires at
/// call sites when the argument taints resolve to something concrete.
#[derive(Debug, Clone)]
struct SinkEffect {
    kind: SinkKind,
    data: Sym,
    pc: Sym,
    detail: String,
}

/// The reusable result of analyzing one function.
#[derive(Debug, Clone, Default)]
struct Summary {
    /// Taint of the return value.
    ret: Sym,
    /// Shape of the return value when constant.
    ret_shape: Option<KeyShape>,
    /// Parameter-dependent sinks inside (transitively).
    sinks: Vec<SinkEffect>,
    /// Extra taint the call applies to each (mutable buffer) argument.
    param_mut: Vec<Sym>,
}

/// Per-function analysis state while a body is being interpreted.
struct FnState {
    params: Vec<String>,
    ret: Sym,
    ret_shape: Option<KeyShape>,
    sinks: Vec<SinkEffect>,
    param_mut: Vec<Sym>,
}

struct Ctx<'a> {
    program: &'a Program,
    keys: Option<&'a ConfidentialKeys>,
    summaries: HashMap<String, Summary>,
    in_progress: HashSet<String>,
    diags: Vec<Diagnostic>,
}

/// Functions modeled directly instead of analyzed from their bodies: the
/// stdlib storage/call wrappers (their raw-builtin internals would lose
/// the key classification) and the byte-string constructors whose prefix
/// shape we track.
fn is_modeled(name: &str) -> bool {
    matches!(
        name,
        "storage_get" | "storage_has" | "call" | "concat" | "concat3"
    )
}

impl<'a> Ctx<'a> {
    fn summarize(&mut self, name: &str) -> Summary {
        if let Some(s) = self.summaries.get(name) {
            return s.clone();
        }
        // Recursion is rejected by the typechecker; if we are handed an
        // unchecked AST, stay conservative rather than looping.
        if !self.in_progress.insert(name.to_string()) {
            return Summary {
                ret: Sym::konst(INPUT_TAINT | STATE_TAINT),
                ..Summary::default()
            };
        }
        let summary = match self.program.get(name) {
            Some(f) => self.analyze_fn(f),
            None => Summary::default(),
        };
        self.in_progress.remove(name);
        self.summaries.insert(name.to_string(), summary.clone());
        summary
    }

    fn analyze_fn(&mut self, f: &FnDef) -> Summary {
        let mut env: Env = HashMap::new();
        let mut st = FnState {
            params: f.params.iter().map(|(n, _)| n.clone()).collect(),
            ret: Sym::CLEAN,
            ret_shape: None,
            sinks: Vec::new(),
            param_mut: vec![Sym::CLEAN; f.params.len()],
        };
        for (i, (pname, _)) in f.params.iter().enumerate() {
            env.insert(pname.clone(), AVal::tainted(Sym::param(i)));
        }
        self.exec_block(&f.body, &mut env, Sym::CLEAN, &mut st);
        Summary {
            ret: st.ret,
            ret_shape: st.ret_shape,
            sinks: st.sinks,
            param_mut: st.param_mut,
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt], env: &mut Env, pc: Sym, st: &mut FnState) {
        for stmt in stmts {
            match stmt {
                Stmt::Let(name, _, e, _) | Stmt::Assign(name, e, _) => {
                    let v = self.eval(e, env, pc, st);
                    env.insert(name.clone(), v);
                }
                Stmt::If(cond, then_b, else_b, _) => {
                    let c = self.eval(cond, env, pc, st);
                    let inner_pc = pc.or(c.t);
                    let mut then_env = env.clone();
                    let mut else_env = env.clone();
                    self.exec_block(then_b, &mut then_env, inner_pc, st);
                    self.exec_block(else_b, &mut else_env, inner_pc, st);
                    merge_env(env, &then_env, &else_env);
                }
                Stmt::While(cond, body, _) => {
                    // Loop to a fixpoint: the taint lattice is finite so
                    // this terminates quickly; cap defensively.
                    for _ in 0..16 {
                        let c = self.eval(cond, env, pc, st);
                        let inner_pc = pc.or(c.t);
                        let mut body_env = env.clone();
                        self.exec_block(body, &mut body_env, inner_pc, st);
                        let mut joined = env.clone();
                        merge_env(&mut joined, env, &body_env);
                        if joined == *env {
                            break;
                        }
                        *env = joined;
                    }
                }
                Stmt::Return(Some(e), _) => {
                    let v = self.eval(e, env, pc, st);
                    st.ret = st.ret.or(v.t).or(pc);
                    st.ret_shape = Some(match &st.ret_shape {
                        None => v.shape,
                        Some(prev) => prev.join(&v.shape),
                    });
                }
                Stmt::Return(None, _) => {}
                Stmt::Expr(e, _) => {
                    self.eval(e, env, pc, st);
                }
            }
        }
    }

    fn eval(&mut self, e: &Expr, env: &mut Env, pc: Sym, st: &mut FnState) -> AVal {
        match e {
            Expr::Int(_, _) => AVal::clean(),
            Expr::Str(bytes, _) => AVal {
                t: Sym::CLEAN,
                shape: KeyShape::Exact(bytes.clone()),
            },
            Expr::Var(name, _) => env.get(name).cloned().unwrap_or_else(AVal::clean),
            Expr::Bin(_, a, b, _) => {
                let va = self.eval(a, env, pc, st);
                let vb = self.eval(b, env, pc, st);
                AVal::tainted(va.t.or(vb.t))
            }
            Expr::Un(_, a, _) => AVal::tainted(self.eval(a, env, pc, st).t),
            Expr::Index(b, i, _) => {
                let vb = self.eval(b, env, pc, st);
                let vi = self.eval(i, env, pc, st);
                AVal::tainted(vb.t.or(vi.t))
            }
            Expr::Call(name, args, line) => self.eval_call(name, args, *line, env, pc, st),
        }
    }

    fn eval_call(
        &mut self,
        name: &str,
        args: &[Expr],
        line: usize,
        env: &mut Env,
        pc: Sym,
        st: &mut FnState,
    ) -> AVal {
        let vals: Vec<AVal> = args.iter().map(|a| self.eval(a, env, pc, st)).collect();
        match name {
            // ---- sources -------------------------------------------------
            "input" => AVal::tainted(Sym::konst(INPUT_TAINT)),
            "sender" => AVal::clean(),
            "storage_get" | "storage_has" | "__get_storage" => {
                let key = vals.first().cloned().unwrap_or_else(AVal::clean);
                let class = self.classify_key(&key);
                let mut t = key.t;
                if matches!(class, KeyClass::Confidential | KeyClass::Unresolved) {
                    t = t.or(Sym::konst(STATE_TAINT));
                }
                self.check_key_material(&key, line, pc, st);
                // __get_storage fills its second argument buffer.
                if name == "__get_storage" {
                    if let Some(Expr::Var(buf, _)) = args.get(1) {
                        self.taint_var(buf, t, env, st);
                    }
                }
                AVal::tainted(t)
            }
            // ---- sinks ---------------------------------------------------
            "log" => {
                let data = vals.first().map(|v| v.t).unwrap_or(Sym::CLEAN);
                self.fire(
                    SinkKind::Log,
                    data,
                    pc,
                    line,
                    "data reaches `log`, which leaves the enclave in plaintext".into(),
                    st,
                );
                AVal::clean()
            }
            "storage_set" => {
                let key = vals.first().cloned().unwrap_or_else(AVal::clean);
                let val = vals.get(1).map(|v| v.t).unwrap_or(Sym::CLEAN);
                self.check_key_material(&key, line, pc, st);
                match self.classify_key(&key) {
                    KeyClass::Confidential | KeyClass::NoSchema => {
                        // Sealed destination (field-level or whole-state).
                    }
                    KeyClass::Public => {
                        self.fire(
                            SinkKind::PublicStore,
                            val,
                            pc,
                            line,
                            format!(
                                "write to non-confidential key {} (plaintext, auditor-readable)",
                                preview(&key.shape)
                            ),
                            st,
                        );
                    }
                    KeyClass::Unresolved => {
                        self.fire(
                            SinkKind::UnknownStore,
                            val,
                            pc,
                            line,
                            "write to a storage key the analysis cannot resolve against the schema"
                                .into(),
                            st,
                        );
                    }
                }
                AVal::clean()
            }
            "call" | "__call" => {
                let data = vals.iter().fold(Sym::CLEAN, |acc, v| acc.or(v.t));
                self.fire(
                    SinkKind::CallArg,
                    data,
                    pc,
                    line,
                    "confidential state crosses a cross-contract `call` boundary".into(),
                    st,
                );
                AVal::tainted(data)
            }
            // ---- shape-tracked constructors ------------------------------
            "concat" | "concat3" => {
                let t = vals.iter().fold(Sym::CLEAN, |acc, v| acc.or(v.t));
                let mut shape = vals
                    .first()
                    .map(|v| v.shape.clone())
                    .unwrap_or(KeyShape::Unknown);
                for v in vals.iter().skip(1) {
                    shape = match (shape, &v.shape) {
                        (KeyShape::Exact(mut a), KeyShape::Exact(b)) => {
                            a.extend_from_slice(b);
                            KeyShape::Exact(a)
                        }
                        (KeyShape::Exact(a), _) | (KeyShape::Prefix(a), _) => KeyShape::Prefix(a),
                        (KeyShape::Unknown, _) => KeyShape::Unknown,
                    };
                }
                AVal { t, shape }
            }
            // ---- taint-transparent builtins ------------------------------
            "ret" | "alloc" => AVal::clean(),
            "len" | "byte_at" | "take" | "sha256" | "keccak256" => {
                AVal::tainted(vals.iter().fold(Sym::CLEAN, |acc, v| acc.or(v.t)))
            }
            "set_byte" => {
                let t = vals.iter().skip(1).fold(Sym::CLEAN, |acc, v| acc.or(v.t));
                if let Some(Expr::Var(buf, _)) = args.first() {
                    self.taint_var(buf, t, env, st);
                }
                AVal::clean()
            }
            "__copy" => {
                let t = vals.get(2).map(|v| v.t).unwrap_or(Sym::CLEAN);
                if let Some(Expr::Var(buf, _)) = args.first() {
                    self.taint_var(buf, t, env, st);
                }
                AVal::clean()
            }
            // ---- user functions via summary ------------------------------
            _ => {
                let summary = self.summarize(name);
                let arg_syms: Vec<Sym> = vals.iter().map(|v| v.t).collect();
                for se in summary.sinks.clone() {
                    let data = se.data.subst(&arg_syms);
                    let pcs = se.pc.subst(&arg_syms).or(pc);
                    self.fire(
                        se.kind,
                        data,
                        pcs,
                        line,
                        format!("{} (via call to `{name}`)", se.detail),
                        st,
                    );
                }
                for (i, m) in summary.param_mut.iter().enumerate() {
                    let extra = m.subst(&arg_syms);
                    if extra.is_clean() {
                        continue;
                    }
                    if let Some(Expr::Var(buf, _)) = args.get(i) {
                        self.taint_var(buf, extra, env, st);
                    }
                }
                AVal {
                    t: summary.ret.subst(&arg_syms),
                    shape: summary.ret_shape.clone().unwrap_or(KeyShape::Unknown),
                }
            }
        }
    }

    /// Add taint to a variable in place (buffer mutation through
    /// `set_byte`/`__copy`/`__get_storage` or a callee's `param_mut`).
    fn taint_var(&mut self, name: &str, t: Sym, env: &mut Env, st: &mut FnState) {
        if let Some(v) = env.get_mut(name) {
            v.t = v.t.or(t);
        } else {
            env.insert(name.to_string(), AVal::tainted(t));
        }
        if let Some(i) = st.params.iter().position(|p| p == name) {
            st.param_mut[i] = st.param_mut[i].or(t);
        }
    }

    fn classify_key(&self, key: &AVal) -> KeyClass {
        let Some(keys) = self.keys else {
            return KeyClass::NoSchema;
        };
        match &key.shape {
            KeyShape::Exact(k) => {
                if keys.key_is_confidential(k) {
                    KeyClass::Confidential
                } else {
                    KeyClass::Public
                }
            }
            KeyShape::Prefix(p) => {
                if keys.prefix_overlaps_confidential(p) {
                    KeyClass::Confidential
                } else {
                    KeyClass::Public
                }
            }
            KeyShape::Unknown => KeyClass::Unresolved,
        }
    }

    /// Storage keys are stored in plaintext; confidential-state bytes must
    /// not become key material. (Input-derived keys — account ids from the
    /// request — are the normal idiom and stay silent.)
    fn check_key_material(&mut self, key: &AVal, line: usize, pc: Sym, st: &mut FnState) {
        if self.keys.is_none() {
            return;
        }
        self.fire(
            SinkKind::KeyMaterial,
            key.t,
            pc,
            line,
            "confidential state used as storage-key material (keys are plaintext)".into(),
            st,
        );
    }

    /// Decide whether a sink fires now (constant taint), becomes an
    /// implicit-flow warning (clean data under tainted pc), or is recorded
    /// in the summary for call-site resolution (parameter-dependent).
    fn fire(
        &mut self,
        kind: SinkKind,
        data: Sym,
        pc: Sym,
        line: usize,
        detail: String,
        st: &mut FnState,
    ) {
        let finding = match kind {
            SinkKind::Log => {
                if data.konst & STATE_TAINT != 0 {
                    Some((Severity::Error, "leak-log", "confidential state"))
                } else if data.konst & INPUT_TAINT != 0 {
                    Some((Severity::Error, "leak-log", "sealed transaction input"))
                } else {
                    None
                }
            }
            SinkKind::PublicStore => {
                if data.konst & STATE_TAINT != 0 {
                    Some((Severity::Error, "leak-public-store", "confidential state"))
                } else if data.konst & INPUT_TAINT != 0 {
                    Some((
                        Severity::Warning,
                        "leak-public-store",
                        "sealed transaction input",
                    ))
                } else {
                    None
                }
            }
            SinkKind::UnknownStore => {
                if data.konst & (STATE_TAINT | INPUT_TAINT) != 0 {
                    Some((Severity::Warning, "leak-unknown-store", "tainted data"))
                } else {
                    None
                }
            }
            SinkKind::KeyMaterial => {
                if data.konst & STATE_TAINT != 0 {
                    Some((Severity::Error, "leak-key", "confidential state"))
                } else {
                    None
                }
            }
            SinkKind::CallArg => {
                if data.konst & STATE_TAINT != 0 {
                    Some((Severity::Warning, "leak-call", "confidential state"))
                } else {
                    None
                }
            }
        };
        if let Some((severity, rule, what)) = finding {
            self.diags.push(Diagnostic {
                severity,
                line,
                rule,
                message: format!("{what}: {detail}"),
            });
            return;
        }
        // Implicit flow: clean data, but the sink runs only on paths
        // conditioned on confidential state.
        if data.is_clean() && pc.konst & STATE_TAINT != 0 {
            if matches!(kind, SinkKind::Log | SinkKind::PublicStore) {
                self.diags.push(Diagnostic {
                    severity: Severity::Warning,
                    line,
                    rule: "implicit-flow",
                    message: format!(
                        "public side effect under control flow conditioned on confidential state: {detail}"
                    ),
                });
            }
            return;
        }
        // Parameter-dependent: resolve at call sites.
        if data.deps != 0 || pc.deps != 0 {
            st.sinks.push(SinkEffect {
                kind,
                data,
                pc,
                detail,
            });
        }
    }
}

fn merge_env(out: &mut Env, a: &Env, b: &Env) {
    let mut names: HashSet<&String> = a.keys().collect();
    names.extend(b.keys());
    for name in names {
        let joined = match (a.get(name), b.get(name)) {
            (Some(x), Some(y)) => x.join(y),
            (Some(x), None) | (None, Some(x)) => x.clone(),
            (None, None) => continue,
        };
        out.insert(name.clone(), joined);
    }
}

fn preview(shape: &KeyShape) -> String {
    match shape {
        KeyShape::Exact(k) => format!("`{}`", String::from_utf8_lossy(k)),
        KeyShape::Prefix(p) => format!("`{}…`", String::from_utf8_lossy(p)),
        KeyShape::Unknown => "<unknown>".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confide_ccle::parse_schema;

    fn keys() -> ConfidentialKeys {
        parse_schema(
            r#"
            attribute "confidential";
            attribute "map";
            table Position { account: string; balance: ulong; }
            table Root {
                pool_ceiling: ulong;
                secret: string(confidential);
                score: [Position](map, confidential);
                note: string;
            }
            root_type Root;
            "#,
        )
        .unwrap()
        .confidential_keys()
    }

    fn lint(src: &str) -> LintReport {
        lint_source(src, Some(&keys())).unwrap()
    }

    fn lint_ns(src: &str) -> LintReport {
        lint_source(src, None).unwrap()
    }

    #[test]
    fn confidential_read_to_log_is_an_error() {
        let r = lint(
            "export fn leak() {\n    let s: bytes = storage_get(b\"secret\");\n    log(s);\n}\n",
        );
        assert_eq!(r.diagnostics.len(), 1, "{r}");
        let d = &r.diagnostics[0];
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.rule, "leak-log");
        assert_eq!(d.line, 3, "line must be user-relative: {d}");
    }

    #[test]
    fn input_to_log_is_an_error_even_without_schema() {
        let r = lint_ns("export fn f() { log(input()); }");
        assert_eq!(r.diagnostics.len(), 1, "{r}");
        assert_eq!(r.diagnostics[0].rule, "leak-log");
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
    }

    #[test]
    fn confidential_to_public_store_is_an_error_but_sealed_store_is_fine() {
        let r = lint(
            "export fn f() {\n    let s: bytes = storage_get(b\"secret\");\n    storage_set(b\"note\", s);\n}\n",
        );
        assert!(
            r.diagnostics.iter().any(|d| d.rule == "leak-public-store"
                && d.severity == Severity::Error
                && d.line == 3),
            "{r}"
        );
        // Writing the same data to a confidential destination is the point.
        let ok = lint(
            "export fn f() {\n    let s: bytes = storage_get(b\"secret\");\n    storage_set(concat(b\"score:\", b\"a\"), s);\n}\n",
        );
        assert!(ok.deployable(), "{ok}");
    }

    #[test]
    fn map_prefix_keys_classify_via_concat_shape() {
        // score:* is confidential — reading it taints; writing elsewhere errs.
        let r = lint(
            "export fn f() {\n    let id: bytes = input();\n    let v: bytes = storage_get(concat(b\"score:\", id));\n    storage_set(b\"pool_ceiling\", v);\n}\n",
        );
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.rule == "leak-public-store" && d.severity == Severity::Error),
            "{r}"
        );
    }

    #[test]
    fn input_to_public_store_is_only_a_warning() {
        let r = lint(
            "export fn f() {\n    let v: bytes = input();\n    storage_set(b\"note\", v);\n}\n",
        );
        assert_eq!(r.diagnostics.len(), 1, "{r}");
        assert_eq!(r.diagnostics[0].severity, Severity::Warning);
        assert!(r.deployable());
    }

    #[test]
    fn unknown_key_with_tainted_value_warns() {
        let r = lint(
            "export fn f() {\n    let k: bytes = take(input(), 4);\n    storage_set(k, input());\n}\n",
        );
        assert!(
            r.diagnostics.iter().any(|d| d.rule == "leak-unknown-store"),
            "{r}"
        );
    }

    #[test]
    fn confidential_state_as_key_material_is_an_error() {
        let r = lint(
            "export fn f() {\n    let s: bytes = storage_get(b\"secret\");\n    storage_set(concat(b\"idx:\", s), b\"1\");\n}\n",
        );
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.rule == "leak-key" && d.severity == Severity::Error),
            "{r}"
        );
    }

    #[test]
    fn leak_through_helper_reports_at_call_site() {
        let src = "fn audit(x: bytes) {\n    log(x);\n}\nexport fn f() {\n    let s: bytes = storage_get(b\"secret\");\n    audit(s);\n}\n";
        let r = lint(src);
        assert_eq!(r.diagnostics.len(), 1, "{r}");
        let d = &r.diagnostics[0];
        assert_eq!(d.rule, "leak-log");
        assert_eq!(d.line, 6, "call-site line: {d}");
        assert!(d.message.contains("via call to `audit`"), "{d}");
    }

    #[test]
    fn taint_flows_through_stdlib_summaries() {
        // itoa/atoi round-trip keeps the taint; slice copies byte-by-byte.
        let r = lint(
            "export fn f() {\n    let s: bytes = storage_get(b\"secret\");\n    let n: int = atoi(s);\n    log(itoa(n + 1));\n}\n",
        );
        assert!(r.diagnostics.iter().any(|d| d.rule == "leak-log"), "{r}");
        let r2 = lint(
            "export fn f() {\n    let s: bytes = storage_get(b\"secret\");\n    log(slice(s, 0, 4));\n}\n",
        );
        assert!(r2.diagnostics.iter().any(|d| d.rule == "leak-log"), "{r2}");
    }

    #[test]
    fn implicit_flow_warns() {
        let r = lint(
            "export fn f() {\n    let s: int = atoi(storage_get(b\"secret\"));\n    if (s > 100) {\n        log(b\"big\");\n    }\n}\n",
        );
        assert_eq!(r.diagnostics.len(), 1, "{r}");
        assert_eq!(r.diagnostics[0].rule, "implicit-flow");
        assert_eq!(r.diagnostics[0].severity, Severity::Warning);
        assert!(r.deployable());
    }

    #[test]
    fn cross_contract_call_with_confidential_state_warns() {
        let r = lint(
            "export fn f() {\n    let s: bytes = storage_get(b\"secret\");\n    let out: bytes = call(b\"0101\", s);\n    ret(out);\n}\n",
        );
        assert!(r.diagnostics.iter().any(|d| d.rule == "leak-call"), "{r}");
        assert!(r.deployable());
    }

    #[test]
    fn buffer_mutation_taints_through_get_storage() {
        // The raw builtin fills the caller's buffer.
        let r = lint(
            "export fn f() {\n    let buf: bytes = alloc(64);\n    let n: int = __get_storage(b\"secret\", buf);\n    log(buf);\n}\n",
        );
        assert!(r.diagnostics.iter().any(|d| d.rule == "leak-log"), "{r}");
    }

    // Shipped ABS/SCF/synthetic contracts are linted clean in
    // `tests/lint_shipped.rs` (they live downstream of this crate).

    #[test]
    fn clean_contract_is_clean_with_schema() {
        let r = lint(
            "export fn f() {\n    let s: bytes = storage_get(b\"secret\");\n    storage_set(b\"secret\", concat(s, input()));\n    ret(b\"ok\");\n}\n",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn stdlib_offset_matches_frontend_layout() {
        // A diagnostic on user line 1 proves the rebasing constant.
        let r = lint_ns("export fn f() { log(input()); }");
        assert_eq!(r.diagnostics[0].line, 1);
    }
}
