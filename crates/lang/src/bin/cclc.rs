//! The CCL contract compiler CLI — the developer-toolchain piece of the
//! paper's Fig. 5 workflow ("blockchain explorer and smart contract IDE
//! are available … for developers", §5).
//!
//! ```text
//! cclc <contract.ccl> [--target vm|evm] [--out file]
//! cclc <contract.ccl> --lint [--lint-schema <schema.ccle>]
//! ```
//!
//! Compiles a CCL source file to CONFIDE-VM module bytes (default) or EVM
//! bytecode and prints a summary (exports, code size, instruction counts).
//!
//! With `--lint` the confidentiality-flow analysis runs instead of (and
//! before) code generation: diagnostics print to stderr and the exit code
//! is non-zero when any `error`-severity finding would make the engine
//! refuse deployment. `--lint-schema` points at a CCLe schema whose
//! `confidential`-attributed fields define which storage keys hold
//! sealed data (field-level sealing); without it the contract is linted
//! under whole-state sealing, where only `input()` is a source.

#![forbid(unsafe_code)]
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut source_path = None;
    let mut target = "vm".to_string();
    let mut out_path = None;
    let mut lint = false;
    let mut lint_schema = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--target" => match it.next() {
                Some(t) => target = t.clone(),
                None => {
                    eprintln!("cclc: --target needs a value (vm|evm)");
                    return ExitCode::from(2);
                }
            },
            "--out" => out_path = it.next().cloned(),
            "--lint" => lint = true,
            "--lint-schema" => match it.next() {
                Some(p) => lint_schema = Some(p.clone()),
                None => {
                    eprintln!("cclc: --lint-schema needs a file path");
                    return ExitCode::from(2);
                }
            },
            other if source_path.is_none() => source_path = Some(other.to_string()),
            other => {
                eprintln!("cclc: unexpected argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let Some(source_path) = source_path else {
        eprintln!(
            "usage: cclc <contract.ccl> [--target vm|evm] [--out file] \
             [--lint [--lint-schema <schema.ccle>]]"
        );
        return ExitCode::from(2);
    };
    let source = match std::fs::read_to_string(&source_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cclc: cannot read {source_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if lint || lint_schema.is_some() {
        return run_lint(&source_path, &source, lint_schema.as_deref());
    }
    let program = match confide_lang::frontend(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cclc: {source_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let exports: Vec<String> = program.exports().iter().map(|s| s.to_string()).collect();
    let code = match target.as_str() {
        "vm" => match confide_lang::compile_vm(&program) {
            Ok(module) => {
                let encoded = module.encode();
                eprintln!(
                    "cclc: CONFIDE-VM module — {} functions, {} bytes, exports: {}",
                    module.functions.len(),
                    encoded.len(),
                    exports.join(", ")
                );
                encoded
            }
            Err(e) => {
                eprintln!("cclc: {e}");
                return ExitCode::FAILURE;
            }
        },
        "evm" => match confide_lang::compile_evm(&program) {
            Ok(code) => {
                eprintln!(
                    "cclc: EVM bytecode — {} bytes, selectors: {}",
                    code.len(),
                    exports
                        .iter()
                        .map(|e| format!(
                            "{}=0x{}",
                            e,
                            &confide_crypto::hex(&confide_crypto::keccak256(e.as_bytes()))[..8]
                        ))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                code
            }
            Err(e) => {
                eprintln!("cclc: {e}");
                return ExitCode::FAILURE;
            }
        },
        other => {
            eprintln!("cclc: unknown target `{other}` (vm|evm)");
            return ExitCode::from(2);
        }
    };
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &code) {
                eprintln!("cclc: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("cclc: wrote {} bytes to {path}", code.len());
        }
        None => {
            // Hex dump to stdout for piping.
            println!("{}", confide_crypto::hex(&code));
        }
    }
    ExitCode::SUCCESS
}

/// `--lint` mode: run the confidentiality-flow analysis and report.
fn run_lint(source_path: &str, source: &str, schema_path: Option<&str>) -> ExitCode {
    let keys = match schema_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cclc: cannot read schema {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match confide_ccle::parse_schema(&text) {
                Ok(schema) => {
                    let keys = schema.confidential_keys();
                    if keys.is_empty() {
                        eprintln!(
                            "cclc: note: schema {path} marks no fields `confidential`; \
                             linting under whole-state sealing"
                        );
                    }
                    Some(keys)
                }
                Err(e) => {
                    eprintln!("cclc: schema {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let report = match confide_lang::lint_source(source, keys.as_ref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cclc: {source_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for d in &report.diagnostics {
        eprintln!("{source_path}: {d}");
    }
    let errors = report.errors().count();
    let warnings = report.diagnostics.len() - errors;
    if errors > 0 {
        eprintln!("cclc: {source_path}: NOT deployable — {errors} error(s), {warnings} warning(s)");
        ExitCode::FAILURE
    } else {
        eprintln!("cclc: {source_path}: deployable — 0 errors, {warnings} warning(s)");
        ExitCode::SUCCESS
    }
}
