//! CCL lexer.

use crate::CompileError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword candidate.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Byte-string literal `b"..."` or `"..."`.
    Str(Vec<u8>),
    /// Keywords.
    Fn,
    /// `export`
    Export,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `int`
    TyInt,
    /// `bytes`
    TyBytes,
    // punctuation / operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: usize,
}

/// Tokenize CCL source. `//` comments run to end of line.
pub fn lex(src: &str) -> Result<Vec<Spanned>, CompileError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                // hex?
                if c == b'0' && bytes.get(i + 1) == Some(&b'x') {
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text = &src[start + 2..i];
                    let v = i64::from_str_radix(text, 16)
                        .map_err(|_| CompileError::new("bad hex literal", line))?;
                    out.push(Spanned {
                        tok: Tok::Int(v),
                        line,
                    });
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let v: i64 = src[start..i]
                        .parse()
                        .map_err(|_| CompileError::new("bad integer literal", line))?;
                    out.push(Spanned {
                        tok: Tok::Int(v),
                        line,
                    });
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                // b"..." byte string?
                if c == b'b' && bytes.get(i + 1) == Some(&b'"') {
                    let (s, consumed) = lex_string(&bytes[i + 1..], line)?;
                    out.push(Spanned {
                        tok: Tok::Str(s),
                        line,
                    });
                    i += 1 + consumed;
                    continue;
                }
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "fn" => Tok::Fn,
                    "export" => Tok::Export,
                    "let" => Tok::Let,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "return" => Tok::Return,
                    "int" => Tok::TyInt,
                    "bytes" => Tok::TyBytes,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Spanned { tok, line });
            }
            b'"' => {
                let (s, consumed) = lex_string(&bytes[i..], line)?;
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line,
                });
                i += consumed;
            }
            _ => {
                let two = |a: u8, b: u8| c == a && bytes.get(i + 1) == Some(&b);
                let (tok, n) = if two(b'-', b'>') {
                    (Tok::Arrow, 2)
                } else if two(b'<', b'=') {
                    (Tok::Le, 2)
                } else if two(b'>', b'=') {
                    (Tok::Ge, 2)
                } else if two(b'=', b'=') {
                    (Tok::EqEq, 2)
                } else if two(b'!', b'=') {
                    (Tok::NotEq, 2)
                } else if two(b'&', b'&') {
                    (Tok::AndAnd, 2)
                } else if two(b'|', b'|') {
                    (Tok::OrOr, 2)
                } else if two(b'<', b'<') {
                    (Tok::Shl, 2)
                } else if two(b'>', b'>') {
                    (Tok::Shr, 2)
                } else {
                    let t = match c {
                        b'(' => Tok::LParen,
                        b')' => Tok::RParen,
                        b'{' => Tok::LBrace,
                        b'}' => Tok::RBrace,
                        b'[' => Tok::LBracket,
                        b']' => Tok::RBracket,
                        b',' => Tok::Comma,
                        b';' => Tok::Semi,
                        b':' => Tok::Colon,
                        b'=' => Tok::Assign,
                        b'+' => Tok::Plus,
                        b'-' => Tok::Minus,
                        b'*' => Tok::Star,
                        b'/' => Tok::Slash,
                        b'%' => Tok::Percent,
                        b'<' => Tok::Lt,
                        b'>' => Tok::Gt,
                        b'!' => Tok::Not,
                        b'&' => Tok::Amp,
                        b'|' => Tok::Pipe,
                        b'^' => Tok::Caret,
                        other => {
                            return Err(CompileError::new(
                                format!("unexpected character `{}`", other as char),
                                line,
                            ))
                        }
                    };
                    (t, 1)
                };
                out.push(Spanned { tok, line });
                i += n;
            }
        }
    }
    Ok(out)
}

/// Lex a quoted string starting at `bytes[0] == b'"'`; returns (content,
/// bytes consumed including both quotes). Escapes: `\"`, `\\`, `\n`, `\t`,
/// `\0`, `\xNN`.
fn lex_string(bytes: &[u8], line: usize) -> Result<(Vec<u8>, usize), CompileError> {
    debug_assert_eq!(bytes[0], b'"');
    let mut out = Vec::new();
    let mut i = 1usize;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((out, i + 1)),
            b'\\' => {
                let esc = bytes
                    .get(i + 1)
                    .ok_or_else(|| CompileError::new("unterminated escape", line))?;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'0' => out.push(0),
                    b'x' => {
                        let hi = bytes
                            .get(i + 2)
                            .ok_or_else(|| CompileError::new("truncated \\x escape", line))?;
                        let lo = bytes
                            .get(i + 3)
                            .ok_or_else(|| CompileError::new("truncated \\x escape", line))?;
                        let nib = |c: u8| -> Result<u8, CompileError> {
                            match c {
                                b'0'..=b'9' => Ok(c - b'0'),
                                b'a'..=b'f' => Ok(c - b'a' + 10),
                                b'A'..=b'F' => Ok(c - b'A' + 10),
                                _ => Err(CompileError::new("bad hex escape", line)),
                            }
                        };
                        out.push((nib(*hi)? << 4) | nib(*lo)?);
                        i += 4;
                        continue;
                    }
                    _ => return Err(CompileError::new("unknown escape", line)),
                }
                i += 2;
            }
            b'\n' => return Err(CompileError::new("unterminated string", line)),
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    Err(CompileError::new("unterminated string", line))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("fn foo export let iffy"),
            vec![
                Tok::Fn,
                Tok::Ident("foo".into()),
                Tok::Export,
                Tok::Let,
                Tok::Ident("iffy".into())
            ]
        );
    }

    #[test]
    fn numbers_decimal_and_hex() {
        assert_eq!(
            toks("42 0xff 0"),
            vec![Tok::Int(42), Tok::Int(255), Tok::Int(0)]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#" "a\nb" b"key\x00z" "#),
            vec![Tok::Str(b"a\nb".to_vec()), Tok::Str(b"key\x00z".to_vec()),]
        );
    }

    #[test]
    fn operators_two_char_priority() {
        assert_eq!(
            toks("<= >= == != && || << >> -> < >"),
            vec![
                Tok::Le,
                Tok::Ge,
                Tok::EqEq,
                Tok::NotEq,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Shl,
                Tok::Shr,
                Tok::Arrow,
                Tok::Lt,
                Tok::Gt
            ]
        );
    }

    #[test]
    fn comments_skipped_lines_counted() {
        let spanned = lex("a // comment\nb").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
    }

    #[test]
    fn bad_char_is_error() {
        assert!(lex("let $x").is_err());
    }
}
