//! Recursive-descent parser for CCL.

use crate::ast::*;
use crate::lexer::{Spanned, Tok};
use crate::CompileError;

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

/// Parse a token stream into a [`Program`].
pub fn parse(toks: Vec<Spanned>) -> Result<Program, CompileError> {
    let mut p = Parser { toks, pos: 0 };
    let mut functions = Vec::new();
    while !p.at_end() {
        functions.push(p.fn_def()?);
    }
    Ok(Program { functions })
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Result<Tok, CompileError> {
        let t = self
            .toks
            .get(self.pos)
            .ok_or_else(|| CompileError::new("unexpected end of input", self.line()))?;
        self.pos += 1;
        Ok(t.tok.clone())
    }

    fn expect(&mut self, want: Tok) -> Result<(), CompileError> {
        let line = self.line();
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(CompileError::new(
                format!("expected {want:?}, found {got:?}"),
                line,
            ))
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        let line = self.line();
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(CompileError::new(
                format!("expected identifier, found {other:?}"),
                line,
            )),
        }
    }

    fn ty(&mut self) -> Result<Type, CompileError> {
        let line = self.line();
        match self.next()? {
            Tok::TyInt => Ok(Type::Int),
            Tok::TyBytes => Ok(Type::Bytes),
            other => Err(CompileError::new(
                format!("expected type, found {other:?}"),
                line,
            )),
        }
    }

    fn fn_def(&mut self) -> Result<FnDef, CompileError> {
        let line = self.line();
        let exported = self.eat(&Tok::Export);
        self.expect(Tok::Fn)?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        while self.peek() != Some(&Tok::RParen) {
            if !params.is_empty() {
                self.expect(Tok::Comma)?;
            }
            let pname = self.ident()?;
            self.expect(Tok::Colon)?;
            let pty = self.ty()?;
            params.push((pname, pty));
        }
        self.expect(Tok::RParen)?;
        let ret = if self.eat(&Tok::Arrow) {
            self.ty()?
        } else {
            Type::Unit
        };
        let body = self.block()?;
        Ok(FnDef {
            name,
            exported,
            params,
            ret,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::Let) => {
                self.pos += 1;
                let name = self.ident()?;
                self.expect(Tok::Colon)?;
                let ty = self.ty()?;
                self.expect(Tok::Assign)?;
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Let(name, ty, e, line))
            }
            Some(Tok::If) => {
                self.pos += 1;
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then = self.block()?;
                let els = if self.eat(&Tok::Else) {
                    if self.peek() == Some(&Tok::If) {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, els, line))
            }
            Some(Tok::While) => {
                self.pos += 1;
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body, line))
            }
            Some(Tok::Return) => {
                self.pos += 1;
                if self.eat(&Tok::Semi) {
                    Ok(Stmt::Return(None, line))
                } else {
                    let e = self.expr()?;
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Return(Some(e), line))
                }
            }
            Some(Tok::Ident(_))
                if self.toks.get(self.pos + 1).map(|t| &t.tok) == Some(&Tok::Assign) =>
            {
                let name = self.ident()?;
                self.expect(Tok::Assign)?;
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Assign(name, e, line))
            }
            _ => {
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Expr(e, line))
            }
        }
    }

    // Pratt-style precedence climbing.
    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Some(Tok::OrOr) => (BinOp::OrOr, 1),
                Some(Tok::AndAnd) => (BinOp::AndAnd, 2),
                Some(Tok::Pipe) => (BinOp::BitOr, 3),
                Some(Tok::Caret) => (BinOp::BitXor, 4),
                Some(Tok::Amp) => (BinOp::BitAnd, 5),
                Some(Tok::EqEq) => (BinOp::Eq, 6),
                Some(Tok::NotEq) => (BinOp::Ne, 6),
                Some(Tok::Lt) => (BinOp::Lt, 7),
                Some(Tok::Gt) => (BinOp::Gt, 7),
                Some(Tok::Le) => (BinOp::Le, 7),
                Some(Tok::Ge) => (BinOp::Ge, 7),
                Some(Tok::Shl) => (BinOp::Shl, 8),
                Some(Tok::Shr) => (BinOp::Shr, 8),
                Some(Tok::Plus) => (BinOp::Add, 9),
                Some(Tok::Minus) => (BinOp::Sub, 9),
                Some(Tok::Star) => (BinOp::Mul, 10),
                Some(Tok::Slash) => (BinOp::Div, 10),
                Some(Tok::Percent) => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.pos += 1;
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        if self.eat(&Tok::Minus) {
            let e = self.unary()?;
            return Ok(Expr::Un(UnOp::Neg, Box::new(e), line));
        }
        if self.eat(&Tok::Not) {
            let e = self.unary()?;
            return Ok(Expr::Un(UnOp::Not, Box::new(e), line));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            if self.eat(&Tok::LBracket) {
                let idx = self.expr()?;
                self.expect(Tok::RBracket)?;
                e = Expr::Index(Box::new(e), Box::new(idx), line);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.next()? {
            Tok::Int(v) => Ok(Expr::Int(v, line)),
            Tok::Str(s) => Ok(Expr::Str(s, line)),
            Tok::Ident(name) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    while self.peek() != Some(&Tok::RParen) {
                        if !args.is_empty() {
                            self.expect(Tok::Comma)?;
                        }
                        args.push(self.expr()?);
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Call(name, args, line))
                } else {
                    Ok(Expr::Var(name, line))
                }
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(CompileError::new(
                format!("unexpected token {other:?} in expression"),
                line,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn simple_function() {
        let p = parse_src("export fn main() -> int { return 1 + 2 * 3; }");
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert!(f.exported);
        assert_eq!(f.ret, Type::Int);
        // Precedence: 1 + (2*3)
        if let Stmt::Return(Some(Expr::Bin(BinOp::Add, _, rhs, _)), _) = &f.body[0] {
            assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _, _)));
        } else {
            panic!("bad AST: {:?}", f.body);
        }
    }

    #[test]
    fn params_and_locals() {
        let p = parse_src("fn add(a: int, b: int) -> int { let c: int = a + b; return c; }");
        let f = &p.functions[0];
        assert_eq!(f.params.len(), 2);
        assert!(!f.exported);
    }

    #[test]
    fn control_flow_nesting() {
        let p = parse_src(
            "fn f(x: int) -> int {
                if (x > 0) { return 1; } else if (x < 0) { return 0 - 1; } else { return 0; }
            }",
        );
        if let Stmt::If(_, _, els, _) = &p.functions[0].body[0] {
            assert!(matches!(els[0], Stmt::If(..)), "else-if chains");
        } else {
            panic!();
        }
    }

    #[test]
    fn while_and_assignment() {
        let p = parse_src("fn f() { let i: int = 0; while (i < 10) { i = i + 1; } }");
        assert!(matches!(p.functions[0].body[1], Stmt::While(..)));
    }

    #[test]
    fn index_sugar() {
        let p = parse_src("fn f(b: bytes) -> int { return b[3]; }");
        if let Stmt::Return(Some(Expr::Index(..)), _) = &p.functions[0].body[0] {
        } else {
            panic!();
        }
    }

    #[test]
    fn call_with_string_args() {
        let p = parse_src(r#"fn f() { storage_set(b"key", b"value"); }"#);
        if let Stmt::Expr(Expr::Call(name, args, _), _) = &p.functions[0].body[0] {
            assert_eq!(name, "storage_set");
            assert_eq!(args.len(), 2);
        } else {
            panic!();
        }
    }

    #[test]
    fn logic_precedence_or_lowest() {
        let p = parse_src("fn f(a: int, b: int) -> int { return a == 1 || b == 2 && a < b; }");
        if let Stmt::Return(Some(Expr::Bin(BinOp::OrOr, _, rhs, _)), _) = &p.functions[0].body[0] {
            assert!(matches!(**rhs, Expr::Bin(BinOp::AndAnd, _, _, _)));
        } else {
            panic!();
        }
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse(lex("fn f( {").unwrap()).is_err());
        assert!(parse(lex("fn f() { return 1 }").unwrap()).is_err()); // missing ;
    }
}
