//! CCL abstract syntax.

/// Value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// Byte string (pointer+length handle at runtime).
    Bytes,
    /// No value (void functions).
    Unit,
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Int => f.write_str("int"),
            Type::Bytes => f.write_str("bytes"),
            Type::Unit => f.write_str("()"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (signed)
    Div,
    /// `%` (signed)
    Rem,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit)
    AndAnd,
    /// `||` (short-circuit)
    OrOr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (int → 0/1).
    Not,
}

/// Expressions, annotated with their line for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, usize),
    /// Byte-string literal.
    Str(Vec<u8>, usize),
    /// Variable reference.
    Var(String, usize),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>, usize),
    /// Unary operation.
    Un(UnOp, Box<Expr>, usize),
    /// Function or builtin call.
    Call(String, Vec<Expr>, usize),
    /// Byte indexing sugar `b[i]` (= `byte_at(b, i)`).
    Index(Box<Expr>, Box<Expr>, usize),
}

impl Expr {
    /// Source line.
    pub fn line(&self) -> usize {
        match self {
            Expr::Int(_, l)
            | Expr::Str(_, l)
            | Expr::Var(_, l)
            | Expr::Bin(_, _, _, l)
            | Expr::Un(_, _, l)
            | Expr::Call(_, _, l)
            | Expr::Index(_, _, l) => *l,
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `let name: ty = expr;`
    Let(String, Type, Expr, usize),
    /// `name = expr;`
    Assign(String, Expr, usize),
    /// `if (cond) { .. } else { .. }`
    If(Expr, Vec<Stmt>, Vec<Stmt>, usize),
    /// `while (cond) { .. }`
    While(Expr, Vec<Stmt>, usize),
    /// `return;` / `return expr;`
    Return(Option<Expr>, usize),
    /// Bare expression (value discarded).
    Expr(Expr, usize),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Name.
    pub name: String,
    /// `export fn` = contract entry point.
    pub exported: bool,
    /// Parameters (name, type).
    pub params: Vec<(String, Type)>,
    /// Return type.
    pub ret: Type,
    /// Body.
    pub body: Vec<Stmt>,
    /// Definition line.
    pub line: usize,
}

/// A whole (stdlib + user) program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// All functions in definition order.
    pub functions: Vec<FnDef>,
}

impl Program {
    /// Find a function by name.
    pub fn get(&self, name: &str) -> Option<&FnDef> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Names of exported functions, in definition order.
    pub fn exports(&self) -> Vec<&str> {
        self.functions
            .iter()
            .filter(|f| f.exported)
            .map(|f| f.name.as_str())
            .collect()
    }
}

/// Builtin (intrinsic) signatures shared by the typechecker and backends.
/// Returns `(param_types, return_type)` or `None` for non-builtins.
pub fn builtin_signature(name: &str) -> Option<(Vec<Type>, Type)> {
    use Type::*;
    Some(match name {
        "input" => (vec![], Bytes),
        "ret" => (vec![Bytes], Unit),
        "alloc" => (vec![Int], Bytes),
        "len" => (vec![Bytes], Int),
        "byte_at" => (vec![Bytes, Int], Int),
        "set_byte" => (vec![Bytes, Int, Int], Unit),
        "take" => (vec![Bytes, Int], Bytes),
        "sha256" => (vec![Bytes], Bytes),
        "keccak256" => (vec![Bytes], Bytes),
        "sender" => (vec![], Bytes),
        "log" => (vec![Bytes], Unit),
        "storage_set" => (vec![Bytes, Bytes], Unit),
        // Raw storage read into caller-provided buffer; returns full value
        // length or -1. (The friendly wrapper lives in the stdlib.)
        "__get_storage" => (vec![Bytes, Bytes], Int),
        // Raw cross-contract call into caller buffer; returns output length.
        "__call" => (vec![Bytes, Bytes, Bytes], Int),
        // Bulk copy: (dst, dst_off, src).
        "__copy" => (vec![Bytes, Int, Bytes], Unit),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_signatures_exist() {
        assert!(builtin_signature("input").is_some());
        assert!(builtin_signature("__copy").is_some());
        assert!(builtin_signature("no_such_builtin").is_none());
    }

    #[test]
    fn exports_filter() {
        let p = Program {
            functions: vec![
                FnDef {
                    name: "a".into(),
                    exported: true,
                    params: vec![],
                    ret: Type::Unit,
                    body: vec![],
                    line: 1,
                },
                FnDef {
                    name: "b".into(),
                    exported: false,
                    params: vec![],
                    ret: Type::Unit,
                    body: vec![],
                    line: 2,
                },
            ],
        };
        assert_eq!(p.exports(), vec!["a"]);
        assert!(p.get("b").is_some());
    }
}
