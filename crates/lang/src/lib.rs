//! # confide-lang
//!
//! CCL (CONFIDE Contract Language): a small C-like smart-contract language
//! with **two compiler backends** — CONFIDE-VM bytecode and EVM bytecode.
//!
//! The paper's contracts are written in C/C++/Go/Solidity and compiled to
//! Wasm or EVM by off-the-shelf toolchains we cannot ship; CCL is the
//! substitution (DESIGN.md §2): one source, two targets, so Figure 10's
//! EVM-vs-CONFIDE-VM comparison runs the *same logical program* on both
//! machines and the performance gap emerges from the architectures
//! (256-bit words and word-granular memory vs. i64 and byte memory), not
//! from hand-tuned kernels.
//!
//! ## The language
//!
//! ```text
//! fn transfer(/* input read via input() */) -> int {
//!     let body: bytes = input();
//!     let bal: int = atoi(storage_get(concat(b"bal:", sender_hex())));
//!     if (bal < 10) { return 0; }
//!     storage_set(b"last", body);
//!     ret(itoa(bal));
//!     return 1;
//! }
//! ```
//!
//! * Types: `int` (i64) and `bytes` (pointer+length into linear memory).
//! * `fn` definitions; `export fn` are contract entry points.
//! * Statements: `let`, assignment, `if`/`else`, `while`, `return`,
//!   expression statements, blocks.
//! * Built-ins: `input`, `ret`, `storage_get`/`storage_set`, `alloc`,
//!   `len`, `byte_at`/`set_byte`, `take`, `sha256`, `keccak256`, `call`,
//!   `sender`, `log`, plus a CCL-level [`stdlib`] (`concat`, `itoa`,
//!   `atoi`, `eq_bytes`, `json_get`, `slice`, `find`, `i2b`, `b2i`).
//!
//! ## Contract ABI
//!
//! Exported functions take no declared parameters; arguments travel in the
//! call input (`input()`), results in the return data (`ret(...)`). On
//! CONFIDE-VM exports are called by name; on the EVM a dispatcher compares
//! the first 32 bytes of calldata against `keccak256(name)` and the rest of
//! the calldata is `input()`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod codegen_evm;
pub mod codegen_vm;
pub mod lexer;
pub mod parser;
pub mod stdlib;
pub mod typeck;

pub use analysis::{lint_program, lint_source, Diagnostic, LintReport, Severity};
pub use ast::{Program, Type};
pub use codegen_evm::compile_evm;
pub use codegen_vm::compile_vm;

/// A compilation error with a human-readable message and source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line, when known.
    pub line: usize,
}

impl CompileError {
    /// Construct.
    pub fn new(message: impl Into<String>, line: usize) -> Self {
        CompileError {
            message: message.into(),
            line,
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Parse + typecheck `source` (with the stdlib prepended) into a checked
/// program ready for either backend.
pub fn frontend(source: &str) -> Result<Program, CompileError> {
    let full = format!("{}\n{}", stdlib::STDLIB, source);
    let tokens = lexer::lex(&full)?;
    let program = parser::parse(tokens)?;
    typeck::check(&program)?;
    Ok(program)
}

/// Convenience: compile straight to encoded CONFIDE-VM module bytes.
pub fn build_vm(source: &str) -> Result<Vec<u8>, CompileError> {
    let program = frontend(source)?;
    Ok(compile_vm(&program)?.encode())
}

/// Convenience: compile straight to EVM bytecode.
pub fn build_evm(source: &str) -> Result<Vec<u8>, CompileError> {
    let program = frontend(source)?;
    compile_evm(&program)
}

/// The EVM calldata for invoking exported `method` with `input`.
pub fn evm_calldata(method: &str, input: &[u8]) -> Vec<u8> {
    let mut data = Vec::with_capacity(32 + input.len());
    data.extend_from_slice(&confide_crypto::keccak256(method.as_bytes()));
    data.extend_from_slice(input);
    data
}

/// CCL source for a cross-engine forwarder stub: a contract whose `main`
/// relays its whole input to the contract at `callee` via the `call`
/// builtin and returns the callee's output verbatim.
///
/// The callee's engine is irrelevant at the language level — the host's
/// `call_contract` seam dispatches on the callee's registered [`VmKind`]
/// (CONFIDE-VM input passes through as-is; an EVM callee receives
/// [`evm_calldata`]`("main", input)`), so the same stub exercises
/// CCL→CCL and CCL→EVM calls. The address is embedded byte-by-byte to
/// stay within CCL's literal syntax.
///
/// [`VmKind`]: https://docs.rs/confide-core
pub fn cross_call_source(callee: &[u8; 32]) -> String {
    let mut src = String::from("export fn main() {\n    let target: bytes = alloc(32);\n");
    for (i, b) in callee.iter().enumerate() {
        src.push_str(&format!("    set_byte(target, {i}, {b});\n"));
    }
    src.push_str("    ret(call(target, input()));\n}\n");
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_call_stub_compiles_on_both_backends() {
        let src = cross_call_source(&[0x44; 32]);
        assert!(build_vm(&src).is_ok(), "CONFIDE-VM backend rejected stub");
        let evm = build_evm(&src).expect("EVM backend rejected stub");
        // Whatever the EVM backend emits must clear the deploy-time
        // verifier — the same gate Engine::deploy applies.
        confide_evm::verify_bytecode(&evm, &confide_evm::VerifyConfig::default())
            .expect("compiled stub failed deploy-time verification");
    }

    #[test]
    fn compiled_evm_modules_pass_the_deploy_verifier() {
        let src = r#"
            export fn main() {
                let k: bytes = concat(b"bal:", json_get(input(), b"to"));
                let v: int = atoi(storage_get(k)) + json_get_int(input(), b"amount");
                storage_set(k, itoa(v));
                ret(itoa(v));
            }
            export fn peek() { ret(storage_get(concat(b"bal:", input()))); }
        "#;
        let evm = build_evm(src).unwrap();
        confide_evm::verify_bytecode(&evm, &confide_evm::VerifyConfig::default())
            .expect("codegen output failed deploy-time verification");
    }
}
