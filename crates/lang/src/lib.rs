//! # confide-lang
//!
//! CCL (CONFIDE Contract Language): a small C-like smart-contract language
//! with **two compiler backends** — CONFIDE-VM bytecode and EVM bytecode.
//!
//! The paper's contracts are written in C/C++/Go/Solidity and compiled to
//! Wasm or EVM by off-the-shelf toolchains we cannot ship; CCL is the
//! substitution (DESIGN.md §2): one source, two targets, so Figure 10's
//! EVM-vs-CONFIDE-VM comparison runs the *same logical program* on both
//! machines and the performance gap emerges from the architectures
//! (256-bit words and word-granular memory vs. i64 and byte memory), not
//! from hand-tuned kernels.
//!
//! ## The language
//!
//! ```text
//! fn transfer(/* input read via input() */) -> int {
//!     let body: bytes = input();
//!     let bal: int = atoi(storage_get(concat(b"bal:", sender_hex())));
//!     if (bal < 10) { return 0; }
//!     storage_set(b"last", body);
//!     ret(itoa(bal));
//!     return 1;
//! }
//! ```
//!
//! * Types: `int` (i64) and `bytes` (pointer+length into linear memory).
//! * `fn` definitions; `export fn` are contract entry points.
//! * Statements: `let`, assignment, `if`/`else`, `while`, `return`,
//!   expression statements, blocks.
//! * Built-ins: `input`, `ret`, `storage_get`/`storage_set`, `alloc`,
//!   `len`, `byte_at`/`set_byte`, `take`, `sha256`, `keccak256`, `call`,
//!   `sender`, `log`, plus a CCL-level [`stdlib`] (`concat`, `itoa`,
//!   `atoi`, `eq_bytes`, `json_get`, `slice`, `find`, `i2b`, `b2i`).
//!
//! ## Contract ABI
//!
//! Exported functions take no declared parameters; arguments travel in the
//! call input (`input()`), results in the return data (`ret(...)`). On
//! CONFIDE-VM exports are called by name; on the EVM a dispatcher compares
//! the first 32 bytes of calldata against `keccak256(name)` and the rest of
//! the calldata is `input()`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod codegen_evm;
pub mod codegen_vm;
pub mod lexer;
pub mod parser;
pub mod stdlib;
pub mod typeck;

pub use analysis::{lint_program, lint_source, Diagnostic, LintReport, Severity};
pub use ast::{Program, Type};
pub use codegen_evm::compile_evm;
pub use codegen_vm::compile_vm;

/// A compilation error with a human-readable message and source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line, when known.
    pub line: usize,
}

impl CompileError {
    /// Construct.
    pub fn new(message: impl Into<String>, line: usize) -> Self {
        CompileError {
            message: message.into(),
            line,
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Parse + typecheck `source` (with the stdlib prepended) into a checked
/// program ready for either backend.
pub fn frontend(source: &str) -> Result<Program, CompileError> {
    let full = format!("{}\n{}", stdlib::STDLIB, source);
    let tokens = lexer::lex(&full)?;
    let program = parser::parse(tokens)?;
    typeck::check(&program)?;
    Ok(program)
}

/// Convenience: compile straight to encoded CONFIDE-VM module bytes.
pub fn build_vm(source: &str) -> Result<Vec<u8>, CompileError> {
    let program = frontend(source)?;
    Ok(compile_vm(&program)?.encode())
}

/// Convenience: compile straight to EVM bytecode.
pub fn build_evm(source: &str) -> Result<Vec<u8>, CompileError> {
    let program = frontend(source)?;
    compile_evm(&program)
}

/// The EVM calldata for invoking exported `method` with `input`.
pub fn evm_calldata(method: &str, input: &[u8]) -> Vec<u8> {
    let mut data = Vec::with_capacity(32 + input.len());
    data.extend_from_slice(&confide_crypto::keccak256(method.as_bytes()));
    data.extend_from_slice(input);
    data
}
