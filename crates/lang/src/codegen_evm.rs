//! CCL → EVM bytecode.
//!
//! Runtime model on the EVM:
//!
//! * `bytes` handles pack `(ptr << 32) | len` exactly as on the VM, but
//!   live in 256-bit words; memory accesses go through `MLOAD`/`MSTORE8`
//!   word machinery, which is where the architectural cost shows up.
//! * Locals live in statically assigned memory frames (no recursion —
//!   enforced by the typechecker), internal calls use the classic
//!   push-return-address-and-JUMP convention.
//! * A dispatcher compares `CALLDATALOAD(0)` against `keccak256(name)` for
//!   each export; the rest of the calldata is `input()`.
//! * Memory map: `0x00` scratch, `0x20` pending-return handle, `0x40` heap
//!   pointer, `0x60+` local frames, then the bump heap.

use crate::ast::*;
use crate::typeck::always_returns;
use crate::CompileError;
use confide_evm::asm::{Asm, EvmLabel};
use confide_evm::opcode as op;
use confide_evm::u256::U256;
use std::collections::HashMap;

const PENDING_RET: u64 = 0x20;
const HEAP_PTR: u64 = 0x40;
const FRAMES_BASE: u64 = 0x60;

const LEN_MASK: u64 = 0xffff_ffff;

fn u256_i64(v: i64) -> U256 {
    let ext = if v < 0 { u64::MAX } else { 0 };
    U256([v as u64, ext, ext, ext])
}

fn not_u64(v: u64) -> U256 {
    U256::from_u64(v).not()
}

/// Compile a checked program to EVM bytecode.
pub fn compile_evm(program: &Program) -> Result<Vec<u8>, CompileError> {
    let mut asm = Asm::new();

    // Plan frames: every `let` site and parameter gets a distinct slot.
    let mut frame_base: HashMap<&str, u64> = HashMap::new();
    let mut next = FRAMES_BASE;
    for f in &program.functions {
        frame_base.insert(&f.name, next);
        let slots = f.params.len() + count_lets(&f.body);
        next += 32 * slots as u64;
    }
    let heap_base = next;

    // Labels per function.
    let mut fn_labels: HashMap<&str, EvmLabel> = HashMap::new();
    for f in &program.functions {
        fn_labels.insert(&f.name, asm.label());
    }

    // ---- Init + dispatcher ----
    asm.push_u64(heap_base).push_u64(HEAP_PTR).op(op::MSTORE);
    let revert_lbl = asm.label();
    let epilogue_lbl = asm.label();
    // calldata must carry the 32-byte selector.
    asm.push_u64(32);
    asm.op(op::CALLDATASIZE);
    asm.op(op::LT); // cds < 32
    asm.jumpi(revert_lbl);
    let mut entries: Vec<(EvmLabel, &FnDef)> = Vec::new();
    for f in program.functions.iter().filter(|f| f.exported) {
        let entry = asm.label();
        entries.push((entry, f));
        let selector = confide_crypto::keccak256(f.name.as_bytes());
        asm.push_word(&selector);
        asm.push_u64(0).op(op::CALLDATALOAD);
        asm.op(op::EQ);
        asm.jumpi(entry);
    }
    asm.bind(revert_lbl);
    asm.push_u64(0).push_u64(0).op(op::REVERT);

    // Entry stubs: call the function, then run the shared epilogue.
    for (entry, f) in &entries {
        asm.bind(*entry);
        let ret = asm.label();
        asm.push_label(ret);
        asm.jump(fn_labels[f.name.as_str()]);
        asm.bind(ret);
        if f.ret != Type::Unit {
            asm.op(op::POP);
        }
        asm.jump(epilogue_lbl);
    }

    // Shared epilogue: RETURN pending data or STOP.
    asm.bind(epilogue_lbl);
    let stop_lbl = asm.label();
    asm.push_u64(PENDING_RET).op(op::MLOAD); // [handle]
    asm.dup(1).op(op::ISZERO);
    asm.jumpi(stop_lbl);
    asm.dup(1).push(U256::from_u64(LEN_MASK)).op(op::AND); // [h, len]
    asm.swap(1); // [len, h]
    asm.push_u64(32).op(op::SHR); // [len, ptr]
    asm.op(op::RETURN);
    asm.bind(stop_lbl);
    asm.op(op::STOP);

    // ---- Function bodies ----
    for f in &program.functions {
        let mut ctx = EvmCtx {
            program,
            asm: &mut asm,
            fn_labels: &fn_labels,
            frame_base: frame_base[f.name.as_str()],
            next_slot: 0,
            scopes: vec![HashMap::new()],
        };
        ctx.asm.bind(fn_labels[f.name.as_str()]);
        // Params arrive on the stack, last on top; store them to slots.
        for i in (0..f.params.len()).rev() {
            ctx.next_slot = ctx.next_slot.max(i as u64 + 1);
            let slot = ctx.frame_base + 32 * i as u64;
            ctx.asm.push_u64(slot).op(op::MSTORE);
        }
        for (i, (name, ty)) in f.params.iter().enumerate() {
            ctx.scopes[0].insert(name.clone(), (ctx.frame_base + 32 * i as u64, *ty));
        }
        ctx.gen_block(&f.body)?;
        if !(f.ret != Type::Unit && always_returns(&f.body)) {
            // Unit fall-through: return to caller with no result.
            ctx.asm.op(op::JUMP);
        }
    }

    Ok(asm.finish())
}

fn count_lets(body: &[Stmt]) -> usize {
    let mut n = 0;
    for stmt in body {
        match stmt {
            Stmt::Let(..) => n += 1,
            Stmt::If(_, t, f, _) => n += count_lets(t) + count_lets(f),
            Stmt::While(_, b, _) => n += count_lets(b),
            _ => {}
        }
    }
    n
}

struct EvmCtx<'a> {
    program: &'a Program,
    asm: &'a mut Asm,
    fn_labels: &'a HashMap<&'a str, EvmLabel>,
    frame_base: u64,
    next_slot: u64,
    scopes: Vec<HashMap<String, (u64, Type)>>,
}

impl<'a> EvmCtx<'a> {
    fn lookup(&self, name: &str) -> Option<(u64, Type)> {
        for frame in self.scopes.iter().rev() {
            if let Some(v) = frame.get(name) {
                return Some(*v);
            }
        }
        None
    }

    fn fresh_slot(&mut self) -> u64 {
        let slot = self.frame_base + 32 * self.next_slot;
        self.next_slot += 1;
        slot
    }

    fn gen_block(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for stmt in body {
            self.gen_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn gen_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Let(name, ty, init, _) => {
                self.gen_expr(init)?;
                let slot = self.fresh_slot();
                self.asm.push_u64(slot).op(op::MSTORE);
                self.scopes
                    .last_mut()
                    .expect("scope stack")
                    .insert(name.clone(), (slot, *ty));
                Ok(())
            }
            Stmt::Assign(name, value, line) => {
                self.gen_expr(value)?;
                let (slot, _) = self
                    .lookup(name)
                    .ok_or_else(|| CompileError::new(format!("undeclared `{name}`"), *line))?;
                self.asm.push_u64(slot).op(op::MSTORE);
                Ok(())
            }
            Stmt::If(cond, then, els, _) => {
                let l_else = self.asm.label();
                let l_end = self.asm.label();
                self.gen_expr(cond)?;
                self.asm.op(op::ISZERO);
                self.asm.jumpi(l_else);
                self.gen_block(then)?;
                self.asm.jump(l_end);
                self.asm.bind(l_else);
                self.gen_block(els)?;
                self.asm.bind(l_end);
                Ok(())
            }
            Stmt::While(cond, body, _) => {
                let l_top = self.asm.label();
                let l_end = self.asm.label();
                self.asm.bind(l_top);
                self.gen_expr(cond)?;
                self.asm.op(op::ISZERO);
                self.asm.jumpi(l_end);
                self.gen_block(body)?;
                self.asm.jump(l_top);
                self.asm.bind(l_end);
                Ok(())
            }
            Stmt::Return(value, _) => {
                match value {
                    Some(e) => {
                        // Stack: [ret_addr] → [ret_addr, v] → swap → jump.
                        self.gen_expr(e)?;
                        self.asm.swap(1);
                        self.asm.op(op::JUMP);
                    }
                    None => {
                        self.asm.op(op::JUMP);
                    }
                }
                Ok(())
            }
            Stmt::Expr(e, _) => {
                let pushes = self.expr_pushes(e);
                self.gen_expr(e)?;
                if pushes {
                    self.asm.op(op::POP);
                }
                Ok(())
            }
        }
    }

    /// Whether evaluating `e` leaves a value on the stack.
    fn expr_pushes(&self, e: &Expr) -> bool {
        match e {
            Expr::Call(name, _, _) => {
                if let Some((_, ret)) = builtin_signature(name) {
                    ret != Type::Unit
                } else {
                    self.program.get(name).map(|f| f.ret) != Some(Type::Unit)
                }
            }
            _ => true,
        }
    }

    fn gen_expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Int(v, _) => {
                self.asm.push(u256_i64(*v));
                Ok(())
            }
            Expr::Str(s, _) => {
                self.materialize_literal(s);
                Ok(())
            }
            Expr::Var(name, line) => {
                let (slot, _) = self
                    .lookup(name)
                    .ok_or_else(|| CompileError::new(format!("undeclared `{name}`"), *line))?;
                self.asm.push_u64(slot).op(op::MLOAD);
                Ok(())
            }
            Expr::Un(UnOp::Neg, inner, _) => {
                self.gen_expr(inner)?;
                self.asm.push_u64(0).op(op::SUB); // top=0: 0 - v
                Ok(())
            }
            Expr::Un(UnOp::Not, inner, _) => {
                self.gen_expr(inner)?;
                self.asm.op(op::ISZERO);
                Ok(())
            }
            Expr::Bin(BinOp::AndAnd, lhs, rhs, _) => {
                let l_false = self.asm.label();
                let l_end = self.asm.label();
                self.gen_expr(lhs)?;
                self.asm.op(op::ISZERO);
                self.asm.jumpi(l_false);
                self.gen_expr(rhs)?;
                self.asm.op(op::ISZERO).op(op::ISZERO);
                self.asm.jump(l_end);
                self.asm.bind(l_false);
                self.asm.push_u64(0);
                self.asm.bind(l_end);
                Ok(())
            }
            Expr::Bin(BinOp::OrOr, lhs, rhs, _) => {
                let l_true = self.asm.label();
                let l_end = self.asm.label();
                self.gen_expr(lhs)?;
                self.asm.jumpi(l_true);
                self.gen_expr(rhs)?;
                self.asm.op(op::ISZERO).op(op::ISZERO);
                self.asm.jump(l_end);
                self.asm.bind(l_true);
                self.asm.push_u64(1);
                self.asm.bind(l_end);
                Ok(())
            }
            Expr::Bin(bop, lhs, rhs, _) => {
                self.gen_expr(lhs)?;
                self.gen_expr(rhs)?;
                // Stack: [lhs, rhs], rhs on top. EVM binary ops take the
                // *top* as the left operand, so swap where it matters.
                match bop {
                    BinOp::Add => self.asm.op(op::ADD),
                    BinOp::Mul => self.asm.op(op::MUL),
                    BinOp::BitAnd => self.asm.op(op::AND),
                    BinOp::BitOr => self.asm.op(op::OR),
                    BinOp::BitXor => self.asm.op(op::XOR),
                    BinOp::Eq => self.asm.op(op::EQ),
                    BinOp::Ne => self.asm.op(op::EQ).op(op::ISZERO),
                    BinOp::Sub => self.asm.swap(1).op(op::SUB),
                    BinOp::Div => self.asm.swap(1).op(op::SDIV),
                    BinOp::Rem => self.asm.swap(1).op(op::SMOD),
                    // lhs < rhs  ⇔  SGT with rhs on top (rhs > lhs).
                    BinOp::Lt => self.asm.op(op::SGT),
                    BinOp::Gt => self.asm.op(op::SLT),
                    BinOp::Le => self.asm.op(op::SLT).op(op::ISZERO),
                    BinOp::Ge => self.asm.op(op::SGT).op(op::ISZERO),
                    // SHL/SAR pop the shift amount first — rhs is on top.
                    BinOp::Shl => self.asm.op(op::SHL),
                    BinOp::Shr => self.asm.op(op::SAR),
                    BinOp::AndAnd | BinOp::OrOr => unreachable!(),
                };
                Ok(())
            }
            Expr::Index(base, idx, _) => {
                self.gen_expr(base)?;
                self.emit_ptr();
                self.gen_expr(idx)?;
                self.asm.op(op::ADD).op(op::MLOAD).push_u64(248).op(op::SHR);
                Ok(())
            }
            Expr::Call(name, args, line) => self.gen_call(name, args, *line),
        }
    }

    /// `[handle] → [ptr]`.
    fn emit_ptr(&mut self) {
        self.asm.push_u64(32).op(op::SHR);
    }

    /// `[handle] → [len]`.
    fn emit_len(&mut self) {
        self.asm.push(U256::from_u64(LEN_MASK)).op(op::AND);
    }

    /// `[n] → [handle]`: bump-allocate n bytes (32-byte padded).
    fn inline_alloc(&mut self) {
        self.asm.dup(1); // [n, n]
        self.asm.push_u64(HEAP_PTR).op(op::MLOAD); // [n, n, hp]
        self.asm.swap(1); // [n, hp, n]
        self.asm.push_u64(31).op(op::ADD); // [n, hp, n+31]
        self.asm.push(not_u64(31)).op(op::AND); // [n, hp, pad]
        self.asm.dup(2).op(op::ADD); // [n, hp, hp+pad]
        self.asm.push_u64(HEAP_PTR).op(op::MSTORE); // [n, hp]
        self.asm.push_u64(32).op(op::SHL); // [n, hp<<32]
        self.asm.op(op::OR); // [handle]
    }

    /// Materialize a byte-string literal into fresh heap memory.
    fn materialize_literal(&mut self, s: &[u8]) {
        self.asm.push_u64(s.len() as u64);
        self.inline_alloc(); // [h]
        if !s.is_empty() {
            self.asm.dup(1);
            self.emit_ptr(); // [h, ptr]
            for (k, chunk) in s.chunks(32).enumerate() {
                let mut word = [0u8; 32];
                word[..chunk.len()].copy_from_slice(chunk);
                self.asm.push_word(&word); // [h, ptr, word]
                self.asm.dup(2); // [h, ptr, word, ptr]
                if k > 0 {
                    self.asm.push_u64(32 * k as u64).op(op::ADD);
                }
                self.asm.op(op::MSTORE); // [h, ptr]
            }
            self.asm.op(op::POP); // [h]
        }
    }

    fn gen_call(&mut self, name: &str, args: &[Expr], line: usize) -> Result<(), CompileError> {
        if builtin_signature(name).is_none() {
            let target = *self
                .fn_labels
                .get(name)
                .ok_or_else(|| CompileError::new(format!("unknown function `{name}`"), line))?;
            let ret = self.asm.label();
            self.asm.push_label(ret);
            for a in args {
                self.gen_expr(a)?;
            }
            self.asm.jump(target);
            self.asm.bind(ret);
            return Ok(());
        }
        match name {
            "input" => {
                // len = CALLDATASIZE - 32 (selector word).
                self.asm.push_u64(32).op(op::CALLDATASIZE).op(op::SUB); // cds-32? top=cds: SUB = cds - 32
                self.inline_alloc(); // [h]
                self.asm.dup(1);
                self.emit_len(); // [h, len]
                self.asm.push_u64(32); // [h, len, 32]
                self.asm.dup(3);
                self.emit_ptr(); // [h, len, 32, ptr]
                self.asm.op(op::CALLDATACOPY); // [h]
            }
            "ret" => {
                self.gen_expr(&args[0])?;
                self.asm.push_u64(PENDING_RET).op(op::MSTORE);
            }
            "alloc" => {
                self.gen_expr(&args[0])?;
                self.inline_alloc();
            }
            "len" => {
                self.gen_expr(&args[0])?;
                self.emit_len();
            }
            "take" => {
                self.gen_expr(&args[0])?;
                self.asm.push(not_u64(LEN_MASK)).op(op::AND);
                self.gen_expr(&args[1])?;
                self.asm.op(op::OR);
            }
            "byte_at" => {
                self.gen_expr(&args[0])?;
                self.emit_ptr();
                self.gen_expr(&args[1])?;
                self.asm.op(op::ADD).op(op::MLOAD).push_u64(248).op(op::SHR);
            }
            "set_byte" => {
                self.gen_expr(&args[0])?;
                self.emit_ptr();
                self.gen_expr(&args[1])?;
                self.asm.op(op::ADD); // [addr]
                self.gen_expr(&args[2])?; // [addr, v]
                self.asm.swap(1).op(op::MSTORE8);
            }
            "__copy" => {
                // dst addr:
                self.gen_expr(&args[0])?;
                self.emit_ptr();
                self.gen_expr(&args[1])?;
                self.asm.op(op::ADD); // [d]
                self.gen_expr(&args[2])?; // [d, srch]
                self.asm.dup(1);
                self.emit_ptr(); // [d, srch, sptr]
                self.asm.swap(1); // [d, sptr, srch]
                self.emit_len(); // [d, s, len]
                self.asm.push_u64(0); // [d, s, len, i]
                let l_top = self.asm.label();
                let l_end = self.asm.label();
                self.asm.bind(l_top);
                self.asm.dup(2).dup(2).op(op::LT).op(op::ISZERO); // i<len ?
                self.asm.jumpi(l_end);
                self.asm.dup(3).dup(2).op(op::ADD); // [.., s+i]
                self.asm.op(op::MLOAD).push_u64(248).op(op::SHR); // [d,s,len,i,byte]
                self.asm.dup(5).dup(3).op(op::ADD); // [.., byte, d+i]
                self.asm.op(op::MSTORE8); // [d,s,len,i]
                self.asm.push_u64(1).op(op::ADD); // i+1
                self.asm.jump(l_top);
                self.asm.bind(l_end);
                self.asm.op(op::POP).op(op::POP).op(op::POP).op(op::POP);
            }
            "sha256" => {
                self.gen_expr(&args[0])?; // [b]
                self.asm.push_u64(32);
                self.inline_alloc(); // [b, oh]
                self.asm.push_u64(32); // retLen
                self.asm.dup(2);
                self.emit_ptr(); // retOff
                self.asm.dup(4);
                self.emit_len(); // argsLen
                self.asm.dup(5);
                self.emit_ptr(); // argsOff
                self.asm.push_u64(0); // value
                self.asm.push_u64(2); // addr = SHA-256 precompile
                self.asm.push_u64(0); // gas
                self.asm.op(op::CALL); // [b, oh, ok]
                self.asm.op(op::POP).swap(1).op(op::POP); // [oh]
            }
            "keccak256" => {
                self.gen_expr(&args[0])?; // [b]
                self.asm.dup(1);
                self.emit_len(); // [b, len]
                self.asm.dup(2);
                self.emit_ptr(); // [b, len, ptr]
                self.asm.op(op::SHA3); // [b, hash]
                self.asm.push_u64(32);
                self.inline_alloc(); // [b, hash, oh]
                self.asm.swap(1); // [b, oh, hash]
                self.asm.dup(2);
                self.emit_ptr(); // [b, oh, hash, optr]
                self.asm.op(op::MSTORE); // [b, oh]
                self.asm.swap(1).op(op::POP); // [oh]
            }
            "sender" => {
                self.asm.push_u64(32);
                self.inline_alloc(); // [oh]
                self.asm.op(op::CALLER); // [oh, caller]
                self.asm.dup(2);
                self.emit_ptr(); // [oh, caller, optr]
                self.asm.op(op::MSTORE); // [oh]
            }
            "log" => {
                self.gen_expr(&args[0])?; // [b]
                self.asm.dup(1);
                self.emit_len(); // [b, len]
                self.asm.swap(1); // [len, b]
                self.emit_ptr(); // [len, ptr]
                self.asm.op(op::LOG0);
            }
            "storage_set" => {
                self.gen_expr(&args[0])?; // [k]
                self.gen_expr(&args[1])?; // [k, v]
                self.asm.dup(1);
                self.emit_len(); // vlen
                self.asm.dup(2);
                self.emit_ptr(); // voff
                self.asm.dup(4);
                self.emit_len(); // klen
                self.asm.dup(5);
                self.emit_ptr(); // koff
                self.asm.op(op::SSTOREB); // [k, v]
                self.asm.op(op::POP).op(op::POP);
            }
            "__get_storage" => {
                self.gen_expr(&args[0])?; // [k]
                self.gen_expr(&args[1])?; // [k, b]
                self.asm.dup(1);
                self.emit_len(); // cap
                self.asm.dup(2);
                self.emit_ptr(); // dst
                self.asm.dup(4);
                self.emit_len(); // klen
                self.asm.dup(5);
                self.emit_ptr(); // koff
                self.asm.op(op::SLOADB); // [k, b, len]
                self.asm.swap(2).op(op::POP).op(op::POP); // [len]
            }
            "__call" => {
                self.gen_expr(&args[0])?; // [a]
                self.gen_expr(&args[1])?; // [a, in]
                self.gen_expr(&args[2])?; // [a, in, buf]
                self.asm.dup(1);
                self.emit_len(); // retLen = cap
                self.asm.dup(2);
                self.emit_ptr(); // retOff
                self.asm.dup(4);
                self.emit_len(); // argsLen
                self.asm.dup(5);
                self.emit_ptr(); // argsOff
                self.asm.push_u64(0); // value
                self.asm.dup(8);
                self.emit_ptr();
                self.asm.op(op::MLOAD); // addr word
                self.asm.push_u64(0); // gas
                self.asm.op(op::CALL); // [a, in, buf, ok]
                self.asm.op(op::POP);
                self.asm.op(op::RETURNDATASIZE); // [a, in, buf, rds]
                self.asm.swap(3).op(op::POP).op(op::POP).op(op::POP); // [rds]
            }
            other => {
                return Err(CompileError::new(
                    format!("builtin `{other}` not implemented in EVM backend"),
                    line,
                ))
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confide_evm::host::MockEvmHost;
    use confide_evm::interp::{Evm, EvmConfig};

    fn run(src: &str, export: &str, input: &[u8]) -> (Vec<u8>, MockEvmHost) {
        let code = crate::build_evm(src).unwrap();
        let evm = Evm::new(code, EvmConfig::default());
        let mut host = MockEvmHost::default();
        let calldata = crate::evm_calldata(export, input);
        let out = evm.run(&calldata, &mut host).unwrap();
        (out.return_data, host)
    }

    #[test]
    fn arithmetic_and_return_data() {
        let (out, _) = run("export fn main() { ret(itoa(6 * 7 - 2)); }", "main", b"");
        assert_eq!(out, b"40");
    }

    #[test]
    fn negative_numbers_and_division() {
        let (out, _) = run("export fn main() { ret(itoa((0 - 17) / 5)); }", "main", b"");
        assert_eq!(out, b"-3"); // trunc toward zero, same as VM DivS
    }

    #[test]
    fn input_echo() {
        let (out, _) = run(
            r#"export fn main() { ret(concat(b"got:", input())); }"#,
            "main",
            b"payload",
        );
        assert_eq!(out, b"got:payload");
    }

    #[test]
    fn unknown_selector_reverts() {
        let code = crate::build_evm("export fn main() { }").unwrap();
        let evm = Evm::new(code, EvmConfig::default());
        let mut host = MockEvmHost::default();
        let err = evm
            .run(&crate::evm_calldata("other", b""), &mut host)
            .unwrap_err();
        assert!(matches!(err, confide_evm::interp::EvmTrap::Reverted(_)));
    }

    #[test]
    fn storage_round_trip() {
        let (out, host) = run(
            r#"
            export fn main() {
                storage_set(b"key", b"hello storage");
                ret(storage_get(b"key"));
            }
            "#,
            "main",
            b"",
        );
        assert_eq!(out, b"hello storage");
        assert_eq!(host.byte_storage[&b"key"[..].to_vec()], b"hello storage");
    }

    #[test]
    fn json_parsing_on_evm() {
        let (out, _) = run(
            r#"
            export fn main() {
                let j: bytes = input();
                ret(concat(json_get(j, b"who"), itoa(json_get_int(j, b"n") + 1)));
            }
            "#,
            "main",
            br#"{"who":"bob","n":41}"#,
        );
        assert_eq!(out, b"bob42");
    }

    #[test]
    fn hashes_match_references() {
        let (out, _) = run(
            r#"export fn main() { ret(concat(to_hex(sha256(b"abc")), to_hex(keccak256(b"abc")))); }"#,
            "main",
            b"",
        );
        assert_eq!(
            out,
            b"ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad\
              4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
                .iter()
                .filter(|c| !c.is_ascii_whitespace())
                .copied()
                .collect::<Vec<u8>>()
        );
    }

    #[test]
    fn internal_calls_and_loops() {
        let (out, _) = run(
            r#"
            fn square(x: int) -> int { return x * x; }
            export fn main() {
                let i: int = 1;
                let acc: int = 0;
                while (i <= 10) { acc = acc + square(i); i = i + 1; }
                ret(itoa(acc));
            }
            "#,
            "main",
            b"",
        );
        assert_eq!(out, b"385");
    }

    #[test]
    fn short_circuit_semantics() {
        let (out, _) = run(
            r#"
            export fn main() {
                let b: bytes = alloc(1);
                let v: int = 0;
                if (len(b) == 1 || byte_at(b, 999999999) == 0) { v = v + 1; }
                if (len(b) > 9 && byte_at(b, 999999999) == 0) { v = v + 10; }
                ret(itoa(v));
            }
            "#,
            "main",
            b"",
        );
        assert_eq!(out, b"1");
    }

    #[test]
    fn sender_and_log() {
        let code =
            crate::build_evm(r#"export fn main() { log(b"hello log"); ret(to_hex(sender())); }"#)
                .unwrap();
        let evm = Evm::new(code, EvmConfig::default());
        let mut host = MockEvmHost {
            caller: U256::from_be_bytes(&[0xcd; 32]),
            ..Default::default()
        };
        let out = evm
            .run(&crate::evm_calldata("main", b""), &mut host)
            .unwrap();
        assert_eq!(out.return_data, "cd".repeat(32).as_bytes());
        assert_eq!(host.logs, vec![b"hello log".to_vec()]);
    }

    #[test]
    fn multiple_exports_dispatch() {
        let src = r#"
            export fn alpha() { ret(b"A"); }
            export fn beta() { ret(b"B"); }
        "#;
        assert_eq!(run(src, "alpha", b"").0, b"A");
        assert_eq!(run(src, "beta", b"").0, b"B");
    }

    #[test]
    fn no_ret_means_stop_with_empty_data() {
        let (out, _) = run(
            "export fn main() { let x: int = 1; x = x + 1; }",
            "main",
            b"",
        );
        assert!(out.is_empty());
    }

    /// The headline cross-backend property: the same CCL source produces
    /// the same observable behaviour on both machines.
    #[test]
    fn cross_backend_equivalence_suite() {
        use confide_vm::host::MockHost;
        use confide_vm::interp::{ExecConfig, Vm};

        let cases: Vec<(&str, Vec<&[u8]>)> = vec![
            (
                r#"export fn main() { ret(itoa(atoi(input()) * 3 - 7)); }"#,
                vec![b"14", b"-5", b"0", b"123456"],
            ),
            (
                r#"export fn main() {
                    let j: bytes = input();
                    ret(concat3(json_get(j, b"a"), b"|", itoa(json_get_int(j, b"b") % 7)));
                }"#,
                vec![br#"{"a":"xy","b":100}"#, br#"{"b":-3,"a":""}"#],
            ),
            (
                r#"export fn main() {
                    let h: bytes = sha256(keccak256(input()));
                    storage_set(b"digest", h);
                    ret(to_hex(storage_get(b"digest")));
                }"#,
                vec![b"seed one", b""],
            ),
            (
                r#"fn fib(n: int) -> int {
                    let a: int = 0; let b: int = 1; let i: int = 0;
                    while (i < n) { let t: int = a + b; a = b; b = t; i = i + 1; }
                    return a;
                }
                export fn main() { ret(itoa(fib(atoi(input())))); }"#,
                vec![b"0", b"1", b"10", b"30"],
            ),
        ];
        for (src, inputs) in cases {
            let vm_module = crate::frontend(src)
                .and_then(|p| crate::compile_vm(&p))
                .unwrap();
            let evm_code = crate::build_evm(src).unwrap();
            for input in inputs {
                let vm = Vm::from_module(vm_module.clone(), ExecConfig::default());
                let mut vh = MockHost {
                    input: input.to_vec(),
                    ..MockHost::default()
                };
                let mut mem = Vec::new();
                let vout = vm.invoke("main", &[], &mut vh, &mut mem).unwrap();

                let evm = Evm::new(evm_code.clone(), EvmConfig::default());
                let mut eh = MockEvmHost::default();
                let eout = evm
                    .run(&crate::evm_calldata("main", input), &mut eh)
                    .unwrap();
                assert_eq!(
                    vout.return_data, eout.return_data,
                    "backend divergence on {src} with input {input:?}"
                );
            }
        }
    }
}
