//! CCL → CONFIDE-VM bytecode.
//!
//! Runtime model on the VM:
//!
//! * `bytes` values are i64 handles packing `(ptr << 32) | len` into linear
//!   memory (both 32-bit).
//! * A bump allocator lives in global 0; string literals become data
//!   segments below the heap base.
//! * Every exported function gets a wrapper that resets the heap pointer
//!   and calls the internal body — the module ABI the Confidential-Engine
//!   invokes by name.

use crate::ast::*;
use crate::CompileError;
use confide_vm::builder::{FuncBuilder, ModuleBuilder};
use confide_vm::module::Module;
use confide_vm::opcode::{HostFn, Instr};
use std::collections::HashMap;

/// Low-memory address where literal data starts (0 is kept as a null page).
const DATA_BASE: u32 = 8;
/// Fixed linear memory size for compiled contracts.
const MEMORY_SIZE: u32 = 1 << 20;

const LEN_MASK: i64 = 0xffff_ffff;
const PTR_MASK: i64 = !LEN_MASK;

/// Compile a checked program to a VM module.
pub fn compile_vm(program: &Program) -> Result<Module, CompileError> {
    // 1. Literal pool.
    let mut literals: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut data: Vec<u8> = Vec::new();
    for f in &program.functions {
        collect_literals(&f.body, &mut literals, &mut data);
    }
    let heap_base = (DATA_BASE as i64 + data.len() as i64 + 7) & !7;

    // 2. Function index plan: 0 = __alloc, then internal bodies, then
    //    export wrappers.
    let mut indices: HashMap<&str, u32> = HashMap::new();
    for (i, f) in program.functions.iter().enumerate() {
        indices.insert(&f.name, 1 + i as u32);
    }

    let mut mb = ModuleBuilder::new();
    mb.memory(MEMORY_SIZE);
    mb.globals(1); // global 0 = heap pointer
    if !data.is_empty() {
        mb.data(DATA_BASE, &data);
    }

    // __alloc(n) -> ptr, 8-byte aligned bump.
    let mut alloc_fn = FuncBuilder::new("", 1, 1);
    alloc_fn.ops(&[
        Instr::GlobalGet(0),
        Instr::LocalSet(1),
        Instr::GlobalGet(0),
        Instr::LocalGet(0),
        Instr::Add,
        Instr::I64Const(7),
        Instr::Add,
        Instr::I64Const(-8),
        Instr::And,
        Instr::GlobalSet(0),
        Instr::LocalGet(1),
        Instr::Ret,
    ]);
    mb.func(alloc_fn.finish());

    // 3. Internal bodies.
    for f in program.functions.iter() {
        let mut ctx = FnCtx {
            program,
            indices: &indices,
            literals: &literals,
            builder: FuncBuilder::new("", f.params.len() as u32, 0),
            scopes: vec![HashMap::new()],
        };
        for (i, (name, ty)) in f.params.iter().enumerate() {
            ctx.scopes[0].insert(name.clone(), (i as u32, *ty));
        }
        ctx.gen_block(&f.body)?;
        // Implicit return for unit functions falling off the end.
        ctx.builder.op(Instr::Ret);
        mb.func(ctx.builder.finish());
    }

    // 4. Export wrappers.
    for f in program.functions.iter().filter(|f| f.exported) {
        let mut w = FuncBuilder::new(&f.name, 0, 0);
        w.i64(heap_base).op(Instr::GlobalSet(0));
        w.op(Instr::Call(indices[f.name.as_str()]));
        if f.ret != Type::Unit {
            w.op(Instr::Drop);
        }
        w.op(Instr::Ret);
        mb.func(w.finish());
    }

    Ok(mb.finish())
}

fn collect_literals(body: &[Stmt], pool: &mut HashMap<Vec<u8>, u32>, data: &mut Vec<u8>) {
    fn walk_expr(e: &Expr, pool: &mut HashMap<Vec<u8>, u32>, data: &mut Vec<u8>) {
        match e {
            Expr::Str(s, _) if !pool.contains_key(s) => {
                let off = DATA_BASE + data.len() as u32;
                pool.insert(s.clone(), off);
                data.extend_from_slice(s);
            }
            Expr::Str(..) => {}
            Expr::Bin(_, a, b, _) | Expr::Index(a, b, _) => {
                walk_expr(a, pool, data);
                walk_expr(b, pool, data);
            }
            Expr::Un(_, a, _) => walk_expr(a, pool, data),
            Expr::Call(_, args, _) => {
                for a in args {
                    walk_expr(a, pool, data);
                }
            }
            _ => {}
        }
    }
    for stmt in body {
        match stmt {
            Stmt::Let(_, _, e, _) | Stmt::Assign(_, e, _) | Stmt::Expr(e, _) => {
                walk_expr(e, pool, data)
            }
            Stmt::Return(Some(e), _) => walk_expr(e, pool, data),
            Stmt::Return(None, _) => {}
            Stmt::If(c, t, f, _) => {
                walk_expr(c, pool, data);
                collect_literals(t, pool, data);
                collect_literals(f, pool, data);
            }
            Stmt::While(c, b, _) => {
                walk_expr(c, pool, data);
                collect_literals(b, pool, data);
            }
        }
    }
}

struct FnCtx<'a> {
    program: &'a Program,
    indices: &'a HashMap<&'a str, u32>,
    literals: &'a HashMap<Vec<u8>, u32>,
    builder: FuncBuilder,
    /// name → (local index, type), lexical scopes.
    scopes: Vec<HashMap<String, (u32, Type)>>,
}

impl<'a> FnCtx<'a> {
    fn lookup(&self, name: &str) -> Option<(u32, Type)> {
        for frame in self.scopes.iter().rev() {
            if let Some(v) = frame.get(name) {
                return Some(*v);
            }
        }
        None
    }

    fn expr_type(&self, e: &Expr) -> Type {
        match e {
            Expr::Int(..) | Expr::Bin(..) | Expr::Un(..) | Expr::Index(..) => Type::Int,
            Expr::Str(..) => Type::Bytes,
            Expr::Var(name, _) => self.lookup(name).map(|(_, t)| t).unwrap_or(Type::Int),
            Expr::Call(name, _, _) => builtin_signature(name)
                .map(|(_, r)| r)
                .or_else(|| self.program.get(name).map(|f| f.ret))
                .unwrap_or(Type::Unit),
        }
    }

    fn gen_block(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for stmt in body {
            self.gen_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn gen_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Let(name, ty, init, _) => {
                self.gen_expr(init)?;
                let idx = self.builder.add_local();
                self.builder.op(Instr::LocalSet(idx));
                self.scopes
                    .last_mut()
                    .expect("scope stack")
                    .insert(name.clone(), (idx, *ty));
                Ok(())
            }
            Stmt::Assign(name, value, line) => {
                self.gen_expr(value)?;
                let (idx, _) = self
                    .lookup(name)
                    .ok_or_else(|| CompileError::new(format!("undeclared `{name}`"), *line))?;
                self.builder.op(Instr::LocalSet(idx));
                Ok(())
            }
            Stmt::If(cond, then, els, _) => {
                let l_else = self.builder.label();
                let l_end = self.builder.label();
                self.gen_expr(cond)?;
                self.builder.jmp_ifz(l_else);
                self.gen_block(then)?;
                self.builder.jmp(l_end);
                self.builder.bind(l_else);
                self.gen_block(els)?;
                self.builder.bind(l_end);
                Ok(())
            }
            Stmt::While(cond, body, _) => {
                let l_top = self.builder.label();
                let l_end = self.builder.label();
                self.builder.bind(l_top);
                self.gen_expr(cond)?;
                self.builder.jmp_ifz(l_end);
                self.gen_block(body)?;
                self.builder.jmp(l_top);
                self.builder.bind(l_end);
                Ok(())
            }
            Stmt::Return(value, _) => {
                if let Some(e) = value {
                    self.gen_expr(e)?;
                }
                self.builder.op(Instr::Ret);
                Ok(())
            }
            Stmt::Expr(e, _) => {
                let ty = self.expr_type(e);
                self.gen_expr(e)?;
                if ty != Type::Unit {
                    self.builder.op(Instr::Drop);
                }
                Ok(())
            }
        }
    }

    fn gen_expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Int(v, _) => {
                self.builder.i64(*v);
                Ok(())
            }
            Expr::Str(s, _) => {
                let off = self.literals[s];
                let handle = ((off as i64) << 32) | s.len() as i64;
                self.builder.i64(handle);
                Ok(())
            }
            Expr::Var(name, line) => {
                let (idx, _) = self
                    .lookup(name)
                    .ok_or_else(|| CompileError::new(format!("undeclared `{name}`"), *line))?;
                self.builder.op(Instr::LocalGet(idx));
                Ok(())
            }
            Expr::Un(UnOp::Neg, inner, _) => {
                self.builder.i64(0);
                self.gen_expr(inner)?;
                self.builder.op(Instr::Sub);
                Ok(())
            }
            Expr::Un(UnOp::Not, inner, _) => {
                self.gen_expr(inner)?;
                self.builder.op(Instr::Eqz);
                Ok(())
            }
            Expr::Bin(BinOp::AndAnd, lhs, rhs, _) => {
                let l_false = self.builder.label();
                let l_end = self.builder.label();
                self.gen_expr(lhs)?;
                self.builder.jmp_ifz(l_false);
                self.gen_expr(rhs)?;
                self.builder.op(Instr::Eqz).op(Instr::Eqz);
                self.builder.jmp(l_end);
                self.builder.bind(l_false);
                self.builder.i64(0);
                self.builder.bind(l_end);
                Ok(())
            }
            Expr::Bin(BinOp::OrOr, lhs, rhs, _) => {
                let l_true = self.builder.label();
                let l_end = self.builder.label();
                self.gen_expr(lhs)?;
                self.builder.jmp_if(l_true);
                self.gen_expr(rhs)?;
                self.builder.op(Instr::Eqz).op(Instr::Eqz);
                self.builder.jmp(l_end);
                self.builder.bind(l_true);
                self.builder.i64(1);
                self.builder.bind(l_end);
                Ok(())
            }
            Expr::Bin(op, lhs, rhs, _) => {
                self.gen_expr(lhs)?;
                self.gen_expr(rhs)?;
                let instr = match op {
                    BinOp::Add => Instr::Add,
                    BinOp::Sub => Instr::Sub,
                    BinOp::Mul => Instr::Mul,
                    BinOp::Div => Instr::DivS,
                    BinOp::Rem => Instr::RemS,
                    BinOp::Lt => Instr::LtS,
                    BinOp::Gt => Instr::GtS,
                    BinOp::Le => Instr::LeS,
                    BinOp::Ge => Instr::GeS,
                    BinOp::Eq => Instr::Eq,
                    BinOp::Ne => Instr::Ne,
                    BinOp::BitAnd => Instr::And,
                    BinOp::BitOr => Instr::Or,
                    BinOp::BitXor => Instr::Xor,
                    BinOp::Shl => Instr::Shl,
                    BinOp::Shr => Instr::ShrS,
                    BinOp::AndAnd | BinOp::OrOr => unreachable!("handled above"),
                };
                self.builder.op(instr);
                Ok(())
            }
            Expr::Index(base, idx, _) => {
                self.gen_expr(base)?;
                self.emit_ptr();
                self.gen_expr(idx)?;
                self.builder.op(Instr::Add).op(Instr::Load8U(0));
                Ok(())
            }
            Expr::Call(name, args, line) => self.gen_call(name, args, *line),
        }
    }

    /// Emit `ptr(top)`: handle >> 32.
    fn emit_ptr(&mut self) {
        self.builder.i64(32).op(Instr::ShrU);
    }

    /// Emit `len(top)`: handle & 0xffffffff.
    fn emit_len(&mut self) {
        self.builder.i64(LEN_MASK).op(Instr::And);
    }

    /// Store top of stack into a fresh scratch local; return its index.
    fn stash(&mut self) -> u32 {
        let t = self.builder.add_local();
        self.builder.op(Instr::LocalSet(t));
        t
    }

    fn load_ptr(&mut self, t: u32) {
        self.builder.op(Instr::LocalGet(t));
        self.emit_ptr();
    }

    fn load_len(&mut self, t: u32) {
        self.builder.op(Instr::LocalGet(t));
        self.emit_len();
    }

    /// Emit `(ptr << 32) | len_const`.
    fn pack_handle_const_len(&mut self, ptr_local: u32, len: i64) {
        self.builder
            .op(Instr::LocalGet(ptr_local))
            .i64(32)
            .op(Instr::Shl)
            .i64(len)
            .op(Instr::Or);
    }

    fn gen_call(&mut self, name: &str, args: &[Expr], line: usize) -> Result<(), CompileError> {
        // User-defined function?
        if builtin_signature(name).is_none() {
            let idx = *self
                .indices
                .get(name)
                .ok_or_else(|| CompileError::new(format!("unknown function `{name}`"), line))?;
            for a in args {
                self.gen_expr(a)?;
            }
            self.builder.op(Instr::Call(idx));
            return Ok(());
        }
        match name {
            "input" => {
                self.builder.op(Instr::CallHost(HostFn::InputLen));
                let t_len = self.stash();
                self.builder.op(Instr::LocalGet(t_len)).op(Instr::Call(0));
                let t_ptr = self.stash();
                self.builder
                    .op(Instr::LocalGet(t_ptr))
                    .op(Instr::CallHost(HostFn::InputRead));
                self.builder
                    .op(Instr::LocalGet(t_ptr))
                    .i64(32)
                    .op(Instr::Shl)
                    .op(Instr::LocalGet(t_len))
                    .op(Instr::Or);
            }
            "ret" => {
                self.gen_expr(&args[0])?;
                let t = self.stash();
                self.load_ptr(t);
                self.load_len(t);
                self.builder.op(Instr::CallHost(HostFn::Ret));
            }
            "alloc" => {
                self.gen_expr(&args[0])?;
                let t = self.stash();
                self.builder.op(Instr::LocalGet(t)).op(Instr::Call(0));
                let p = self.stash();
                self.builder
                    .op(Instr::LocalGet(p))
                    .i64(32)
                    .op(Instr::Shl)
                    .op(Instr::LocalGet(t))
                    .op(Instr::Or);
            }
            "len" => {
                self.gen_expr(&args[0])?;
                self.emit_len();
            }
            "byte_at" => {
                self.gen_expr(&args[0])?;
                self.emit_ptr();
                self.gen_expr(&args[1])?;
                self.builder.op(Instr::Add).op(Instr::Load8U(0));
            }
            "set_byte" => {
                self.gen_expr(&args[0])?;
                self.emit_ptr();
                self.gen_expr(&args[1])?;
                self.builder.op(Instr::Add);
                self.gen_expr(&args[2])?;
                self.builder.op(Instr::Store8(0));
            }
            "take" => {
                self.gen_expr(&args[0])?;
                self.builder.i64(PTR_MASK).op(Instr::And);
                self.gen_expr(&args[1])?;
                self.builder.op(Instr::Or);
            }
            "sha256" | "keccak256" => {
                let host = if name == "sha256" {
                    HostFn::Sha256
                } else {
                    HostFn::Keccak256
                };
                self.gen_expr(&args[0])?;
                let t = self.stash();
                self.builder.i64(32).op(Instr::Call(0));
                let o = self.stash();
                self.load_ptr(t);
                self.load_len(t);
                self.builder
                    .op(Instr::LocalGet(o))
                    .op(Instr::CallHost(host));
                self.pack_handle_const_len(o, 32);
            }
            "sender" => {
                self.builder.i64(32).op(Instr::Call(0));
                let o = self.stash();
                self.builder
                    .op(Instr::LocalGet(o))
                    .op(Instr::CallHost(HostFn::Sender));
                self.pack_handle_const_len(o, 32);
            }
            "log" => {
                self.gen_expr(&args[0])?;
                let t = self.stash();
                self.load_ptr(t);
                self.load_len(t);
                self.builder.op(Instr::CallHost(HostFn::Log));
            }
            "storage_set" => {
                self.gen_expr(&args[0])?;
                let tk = self.stash();
                self.gen_expr(&args[1])?;
                let tv = self.stash();
                self.load_ptr(tk);
                self.load_len(tk);
                self.load_ptr(tv);
                self.load_len(tv);
                self.builder.op(Instr::CallHost(HostFn::SetStorage));
            }
            "__get_storage" => {
                self.gen_expr(&args[0])?;
                let tk = self.stash();
                self.gen_expr(&args[1])?;
                let tb = self.stash();
                self.load_ptr(tk);
                self.load_len(tk);
                self.load_ptr(tb);
                self.load_len(tb);
                self.builder.op(Instr::CallHost(HostFn::GetStorage));
            }
            "__call" => {
                self.gen_expr(&args[0])?;
                let ta = self.stash();
                self.gen_expr(&args[1])?;
                let ti = self.stash();
                self.gen_expr(&args[2])?;
                let tb = self.stash();
                self.load_ptr(ta);
                self.load_ptr(ti);
                self.load_len(ti);
                self.load_ptr(tb);
                self.load_len(tb);
                self.builder.op(Instr::CallHost(HostFn::CallContract));
            }
            "__copy" => {
                self.gen_expr(&args[0])?;
                self.emit_ptr();
                self.gen_expr(&args[1])?;
                self.builder.op(Instr::Add); // dst addr
                self.gen_expr(&args[2])?;
                let ts = self.stash();
                self.load_ptr(ts); // src addr
                self.load_len(ts); // len
                self.builder.op(Instr::MemCopy);
            }
            other => {
                return Err(CompileError::new(
                    format!("builtin `{other}` not implemented in VM backend"),
                    line,
                ))
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confide_vm::host::MockHost;
    use confide_vm::interp::{ExecConfig, Vm};

    fn run(src: &str, export: &str, input: &[u8]) -> (Vec<u8>, MockHost) {
        let program = crate::frontend(src).unwrap();
        let module = compile_vm(&program).unwrap();
        let vm = Vm::from_module(module, ExecConfig::default());
        let mut host = MockHost {
            input: input.to_vec(),
            ..MockHost::default()
        };
        let mut mem = Vec::new();
        let out = vm.invoke(export, &[], &mut host, &mut mem).unwrap();
        (out.return_data, host)
    }

    #[test]
    fn arithmetic_and_return_data() {
        let (out, _) = run("export fn main() { ret(itoa(6 * 7)); }", "main", b"");
        assert_eq!(out, b"42");
    }

    #[test]
    fn itoa_edge_cases() {
        let (out, _) = run("export fn main() { ret(itoa(0)); }", "main", b"");
        assert_eq!(out, b"0");
        let (out, _) = run("export fn main() { ret(itoa(0 - 123)); }", "main", b"");
        assert_eq!(out, b"-123");
        let (out, _) = run(
            "export fn main() { ret(itoa(9223372036854775807)); }",
            "main",
            b"",
        );
        assert_eq!(out, b"9223372036854775807");
    }

    #[test]
    fn atoi_round_trip() {
        let (out, _) = run(
            r#"export fn main() { ret(itoa(atoi(b"-4512") + atoi(b"12abc"))); }"#,
            "main",
            b"",
        );
        assert_eq!(out, b"-4500");
    }

    #[test]
    fn concat_and_input_echo() {
        let (out, _) = run(
            r#"export fn main() { ret(concat(b"hello, ", input())); }"#,
            "main",
            b"world",
        );
        assert_eq!(out, b"hello, world");
    }

    #[test]
    fn storage_wrappers() {
        let (out, host) = run(
            r#"
            export fn main() {
                storage_set(b"k1", b"stored value");
                let v: bytes = storage_get(b"k1");
                let missing: bytes = storage_get(b"nope");
                ret(concat(v, itoa(len(missing))));
            }
            "#,
            "main",
            b"",
        );
        assert_eq!(out, b"stored value0");
        assert_eq!(host.storage[&b"k1"[..].to_vec()], b"stored value");
    }

    #[test]
    fn storage_get_large_value_two_call_path() {
        // Value larger than the 128-byte first buffer exercises the retry.
        let big: Vec<u8> = (0..200u8).collect();
        let program = crate::frontend(r#"export fn main() { ret(storage_get(b"big")); }"#).unwrap();
        let module = compile_vm(&program).unwrap();
        let vm = Vm::from_module(module, ExecConfig::default());
        let mut host = MockHost::default();
        host.storage.insert(b"big".to_vec(), big.clone());
        let mut mem = Vec::new();
        let out = vm.invoke("main", &[], &mut host, &mut mem).unwrap();
        assert_eq!(out.return_data, big);
    }

    #[test]
    fn json_get_extracts_fields() {
        let (out, _) = run(
            r#"
            export fn main() {
                let j: bytes = input();
                let name: bytes = json_get(j, b"name");
                let amt: int = json_get_int(j, b"amount");
                ret(concat(name, itoa(amt * 2)));
            }
            "#,
            "main",
            br#"{"name": "alice", "amount": 21, "other": "x"}"#,
        );
        assert_eq!(out, b"alice42");
    }

    #[test]
    fn json_get_missing_key_is_empty() {
        let (out, _) = run(
            r#"export fn main() { ret(itoa(len(json_get(input(), b"zzz")))); }"#,
            "main",
            br#"{"a":1}"#,
        );
        assert_eq!(out, b"0");
    }

    #[test]
    fn eq_bytes_and_find() {
        let (out, _) = run(
            r#"
            export fn main() {
                let a: int = eq_bytes(b"abc", b"abc");
                let b: int = eq_bytes(b"abc", b"abd");
                let c: int = find(b"hello world", b"world", 0);
                let d: int = find(b"hello", b"xyz", 0);
                ret(concat(concat(itoa(a), itoa(b)), concat(itoa(c), itoa(d))));
            }
            "#,
            "main",
            b"",
        );
        assert_eq!(out, b"106-1");
    }

    #[test]
    fn sha256_builtin_matches_reference() {
        let (out, _) = run(
            r#"export fn main() { ret(to_hex(sha256(b"abc"))); }"#,
            "main",
            b"",
        );
        assert_eq!(
            out,
            b"ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn keccak_builtin_matches_reference() {
        let (out, _) = run(
            r#"export fn main() { ret(to_hex(keccak256(b"abc"))); }"#,
            "main",
            b"",
        );
        assert_eq!(
            out,
            b"4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn short_circuit_does_not_evaluate_rhs() {
        // If && evaluated its RHS, byte_at would trap out-of-bounds.
        let (out, _) = run(
            r#"
            export fn main() {
                let b: bytes = alloc(1);
                let safe: int = 0;
                if (len(b) > 5 && byte_at(b, 99999999) == 0) { safe = 1; }
                if (len(b) == 1 || byte_at(b, 99999999) == 0) { safe = safe + 2; }
                ret(itoa(safe));
            }
            "#,
            "main",
            b"",
        );
        assert_eq!(out, b"2");
    }

    #[test]
    fn while_loop_with_nested_if() {
        let (out, _) = run(
            r#"
            export fn main() {
                let i: int = 0;
                let even: int = 0;
                while (i < 100) {
                    if (i % 2 == 0) { even = even + 1; }
                    i = i + 1;
                }
                ret(itoa(even));
            }
            "#,
            "main",
            b"",
        );
        assert_eq!(out, b"50");
    }

    #[test]
    fn internal_function_calls_with_args() {
        let (out, _) = run(
            r#"
            fn fma(a: int, b: int, c: int) -> int { return a * b + c; }
            fn double_str(s: bytes) -> bytes { return concat(s, s); }
            export fn main() { ret(concat(double_str(b"ab"), itoa(fma(3, 4, 5)))); }
            "#,
            "main",
            b"",
        );
        assert_eq!(out, b"abab17");
    }

    #[test]
    fn multiple_exports() {
        let src = r#"
            export fn first() { ret(b"one"); }
            export fn second() { ret(b"two"); }
        "#;
        assert_eq!(run(src, "first", b"").0, b"one");
        assert_eq!(run(src, "second", b"").0, b"two");
    }

    #[test]
    fn sender_and_log() {
        let program =
            crate::frontend(r#"export fn main() { log(b"audit line"); ret(to_hex(sender())); }"#)
                .unwrap();
        let module = compile_vm(&program).unwrap();
        let vm = Vm::from_module(module, ExecConfig::default());
        let mut host = MockHost {
            sender: [0xab; 32],
            ..Default::default()
        };
        let mut mem = Vec::new();
        let out = vm.invoke("main", &[], &mut host, &mut mem).unwrap();
        assert_eq!(out.return_data, "ab".repeat(32).as_bytes());
        assert_eq!(host.logs, vec![b"audit line".to_vec()]);
    }

    #[test]
    fn i2b_b2i_round_trip() {
        let (out, _) = run(
            r#"export fn main() { ret(itoa(b2i(i2b(123456789012345)))); }"#,
            "main",
            b"",
        );
        assert_eq!(out, b"123456789012345");
    }

    #[test]
    fn slice_and_index() {
        let (out, _) = run(
            r#"
            export fn main() {
                let s: bytes = b"abcdefgh";
                let mid: bytes = slice(s, 2, 3);
                ret(concat(mid, itoa(s[0])));
            }
            "#,
            "main",
            b"",
        );
        assert_eq!(out, b"cde97");
    }
}
