//! CCL type checker: two value types, explicit annotations, lexical block
//! scoping, and the structural rules the backends rely on (non-Unit
//! functions return on every path; no recursion — the EVM backend uses
//! statically allocated frames).

use crate::ast::*;
use crate::CompileError;
use std::collections::{HashMap, HashSet};

/// Check the whole program.
pub fn check(program: &Program) -> Result<(), CompileError> {
    // Duplicate function names / builtin shadowing.
    let mut names = HashSet::new();
    for f in &program.functions {
        if builtin_signature(&f.name).is_some() {
            return Err(CompileError::new(
                format!("function `{}` shadows a builtin", f.name),
                f.line,
            ));
        }
        if !names.insert(f.name.clone()) {
            return Err(CompileError::new(
                format!("duplicate function `{}`", f.name),
                f.line,
            ));
        }
    }
    for f in &program.functions {
        if f.exported && !f.params.is_empty() {
            return Err(CompileError::new(
                format!(
                    "exported fn `{}` must take no parameters (arguments travel via input())",
                    f.name
                ),
                f.line,
            ));
        }
        check_fn(program, f)?;
        if f.ret != Type::Unit && !always_returns(&f.body) {
            return Err(CompileError::new(
                format!(
                    "fn `{}` may fall off the end without returning {}",
                    f.name, f.ret
                ),
                f.line,
            ));
        }
    }
    check_no_recursion(program)?;
    Ok(())
}

/// Lexically scoped variable typing environment (exposed for `infer`).
pub struct Scope {
    stack: Vec<HashMap<String, Type>>,
}

impl Scope {
    fn lookup(&self, name: &str) -> Option<Type> {
        for frame in self.stack.iter().rev() {
            if let Some(t) = frame.get(name) {
                return Some(*t);
            }
        }
        None
    }

    fn declare(&mut self, name: &str, ty: Type) {
        self.stack
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), ty);
    }
}

fn check_fn(program: &Program, f: &FnDef) -> Result<(), CompileError> {
    let mut scope = Scope {
        stack: vec![HashMap::new()],
    };
    for (name, ty) in &f.params {
        if *ty == Type::Unit {
            return Err(CompileError::new("parameters cannot be ()", f.line));
        }
        scope.declare(name, *ty);
    }
    check_block(program, f, &mut scope, &f.body)
}

fn check_block(
    program: &Program,
    f: &FnDef,
    scope: &mut Scope,
    body: &[Stmt],
) -> Result<(), CompileError> {
    scope.stack.push(HashMap::new());
    for stmt in body {
        check_stmt(program, f, scope, stmt)?;
    }
    scope.stack.pop();
    Ok(())
}

fn check_stmt(
    program: &Program,
    f: &FnDef,
    scope: &mut Scope,
    stmt: &Stmt,
) -> Result<(), CompileError> {
    match stmt {
        Stmt::Let(name, ty, init, line) => {
            let got = infer(program, scope, init)?;
            if got != *ty {
                return Err(CompileError::new(
                    format!("let `{name}`: declared {ty} but initializer is {got}"),
                    *line,
                ));
            }
            scope.declare(name, *ty);
            Ok(())
        }
        Stmt::Assign(name, value, line) => {
            let declared = scope.lookup(name).ok_or_else(|| {
                CompileError::new(format!("assignment to undeclared `{name}`"), *line)
            })?;
            let got = infer(program, scope, value)?;
            if got != declared {
                return Err(CompileError::new(
                    format!("cannot assign {got} to `{name}`: {declared}"),
                    *line,
                ));
            }
            Ok(())
        }
        Stmt::If(cond, then, els, line) => {
            expect_int(program, scope, cond, *line)?;
            check_block(program, f, scope, then)?;
            check_block(program, f, scope, els)
        }
        Stmt::While(cond, body, line) => {
            expect_int(program, scope, cond, *line)?;
            check_block(program, f, scope, body)
        }
        Stmt::Return(value, line) => {
            let got = match value {
                Some(e) => infer(program, scope, e)?,
                None => Type::Unit,
            };
            if got != f.ret {
                return Err(CompileError::new(
                    format!("return type mismatch: fn returns {}, got {got}", f.ret),
                    *line,
                ));
            }
            Ok(())
        }
        Stmt::Expr(e, _) => {
            infer(program, scope, e)?;
            Ok(())
        }
    }
}

fn expect_int(program: &Program, scope: &Scope, e: &Expr, line: usize) -> Result<(), CompileError> {
    let got = infer(program, scope, e)?;
    if got != Type::Int {
        return Err(CompileError::new(
            format!("condition must be int, got {got}"),
            line,
        ));
    }
    Ok(())
}

/// Infer (and check) the type of an expression.
pub fn infer(program: &Program, scope: &Scope, e: &Expr) -> Result<Type, CompileError> {
    match e {
        Expr::Int(..) => Ok(Type::Int),
        Expr::Str(..) => Ok(Type::Bytes),
        Expr::Var(name, line) => scope
            .lookup(name)
            .ok_or_else(|| CompileError::new(format!("unknown variable `{name}`"), *line)),
        Expr::Un(op, inner, line) => {
            let t = infer(program, scope, inner)?;
            if t != Type::Int {
                return Err(CompileError::new(
                    format!("unary {op:?} needs int, got {t}"),
                    *line,
                ));
            }
            Ok(Type::Int)
        }
        Expr::Bin(op, lhs, rhs, line) => {
            let lt = infer(program, scope, lhs)?;
            let rt = infer(program, scope, rhs)?;
            if lt != Type::Int || rt != Type::Int {
                return Err(CompileError::new(
                    format!(
                        "operator {op:?} needs int operands, got {lt} and {rt} \
                         (bytes comparison: use eq_bytes)"
                    ),
                    *line,
                ));
            }
            Ok(Type::Int)
        }
        Expr::Index(base, idx, line) => {
            let bt = infer(program, scope, base)?;
            let it = infer(program, scope, idx)?;
            if bt != Type::Bytes || it != Type::Int {
                return Err(CompileError::new(
                    format!("indexing needs bytes[int], got {bt}[{it}]"),
                    *line,
                ));
            }
            Ok(Type::Int)
        }
        Expr::Call(name, args, line) => {
            let (params, ret) = if let Some(sig) = builtin_signature(name) {
                sig
            } else if let Some(f) = program.get(name) {
                (f.params.iter().map(|(_, t)| *t).collect(), f.ret)
            } else {
                return Err(CompileError::new(
                    format!("unknown function `{name}`"),
                    *line,
                ));
            };
            if args.len() != params.len() {
                return Err(CompileError::new(
                    format!(
                        "`{name}` takes {} argument(s), got {}",
                        params.len(),
                        args.len()
                    ),
                    *line,
                ));
            }
            for (i, (arg, want)) in args.iter().zip(&params).enumerate() {
                let got = infer(program, scope, arg)?;
                if got != *want {
                    return Err(CompileError::new(
                        format!("`{name}` argument {}: expected {want}, got {got}", i + 1),
                        *line,
                    ));
                }
            }
            Ok(ret)
        }
    }
}

/// True if every control path through `body` hits a `return`.
pub fn always_returns(body: &[Stmt]) -> bool {
    for stmt in body {
        match stmt {
            Stmt::Return(..) => return true,
            Stmt::If(_, then, els, _)
                if !els.is_empty() && always_returns(then) && always_returns(els) =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

fn check_no_recursion(program: &Program) -> Result<(), CompileError> {
    // DFS over the call graph looking for a cycle.
    let mut callees: HashMap<&str, Vec<String>> = HashMap::new();
    for f in &program.functions {
        let mut calls = Vec::new();
        collect_calls(&f.body, &mut calls);
        callees.insert(&f.name, calls);
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        InProgress,
        Done,
    }
    fn dfs<'a>(
        name: &'a str,
        callees: &'a HashMap<&str, Vec<String>>,
        marks: &mut HashMap<&'a str, Mark>,
    ) -> Result<(), String> {
        match marks.get(name) {
            Some(Mark::Done) => return Ok(()),
            Some(Mark::InProgress) => return Err(name.to_string()),
            None => {}
        }
        marks.insert(name, Mark::InProgress);
        if let Some(calls) = callees.get(name) {
            for c in calls {
                if let Some((key, _)) = callees.get_key_value(c.as_str()) {
                    dfs(key, callees, marks)?;
                }
            }
        }
        marks.insert(name, Mark::Done);
        Ok(())
    }
    let mut marks = HashMap::new();
    for f in &program.functions {
        if let Err(cycle_fn) = dfs(&f.name, &callees, &mut marks) {
            return Err(CompileError::new(
                format!("recursion involving `{cycle_fn}` is not supported"),
                f.line,
            ));
        }
    }
    Ok(())
}

fn collect_calls(body: &[Stmt], out: &mut Vec<String>) {
    fn walk_expr(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Call(name, args, _) => {
                out.push(name.clone());
                for a in args {
                    walk_expr(a, out);
                }
            }
            Expr::Bin(_, a, b, _) | Expr::Index(a, b, _) => {
                walk_expr(a, out);
                walk_expr(b, out);
            }
            Expr::Un(_, a, _) => walk_expr(a, out),
            _ => {}
        }
    }
    for stmt in body {
        match stmt {
            Stmt::Let(_, _, e, _) | Stmt::Assign(_, e, _) | Stmt::Expr(e, _) => walk_expr(e, out),
            Stmt::Return(Some(e), _) => walk_expr(e, out),
            Stmt::Return(None, _) => {}
            Stmt::If(c, t, f, _) => {
                walk_expr(c, out);
                collect_calls(t, out);
                collect_calls(f, out);
            }
            Stmt::While(c, b, _) => {
                walk_expr(c, out);
                collect_calls(b, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), CompileError> {
        check(&parse(lex(src).unwrap()).unwrap())
    }

    #[test]
    fn well_typed_program_passes() {
        check_src(
            r#"
            fn helper(x: int) -> int { return x * 2; }
            export fn main() -> int {
                let a: int = helper(21);
                let s: bytes = b"hi";
                if (a > 0 && s[0] == 104) { return a; }
                return 0;
            }
            "#,
        )
        .unwrap();
    }

    #[test]
    fn type_mismatch_in_let() {
        let e = check_src("fn f() { let a: int = b\"str\"; }").unwrap_err();
        assert!(e.message.contains("declared int"));
    }

    #[test]
    fn bytes_arithmetic_rejected() {
        let e = check_src("fn f(a: bytes, b: bytes) -> int { return a + b; }").unwrap_err();
        assert!(e.message.contains("needs int operands"));
    }

    #[test]
    fn unknown_variable_and_function() {
        assert!(check_src("fn f() -> int { return nope; }").is_err());
        assert!(check_src("fn f() { missing(); }").is_err());
    }

    #[test]
    fn arity_and_arg_types() {
        assert!(check_src("fn g(x: int) {} fn f() { g(); }").is_err());
        assert!(check_src("fn g(x: int) {} fn f() { g(b\"s\"); }").is_err());
    }

    #[test]
    fn missing_return_detected() {
        let e = check_src("fn f(x: int) -> int { if (x > 0) { return 1; } }").unwrap_err();
        assert!(e.message.contains("fall off"));
        // Both branches return: fine.
        check_src("fn f(x: int) -> int { if (x > 0) { return 1; } else { return 0; } }").unwrap();
    }

    #[test]
    fn recursion_rejected() {
        let e = check_src("fn f(x: int) -> int { return f(x); }").unwrap_err();
        assert!(e.message.contains("recursion"));
        let e2 =
            check_src("fn a(x: int) -> int { return b(x); } fn b(x: int) -> int { return a(x); }")
                .unwrap_err();
        assert!(e2.message.contains("recursion"));
    }

    #[test]
    fn exported_fn_with_params_rejected() {
        let e = check_src("export fn main(x: int) {}").unwrap_err();
        assert!(e.message.contains("no parameters"));
    }

    #[test]
    fn builtin_shadowing_rejected() {
        let e = check_src("fn len(b: bytes) -> int { return 0; }").unwrap_err();
        assert!(e.message.contains("shadows"));
    }

    #[test]
    fn block_scoping_shadows_and_expires() {
        check_src(
            "fn f() -> int { let x: int = 1; if (x > 0) { let x: int = 2; x = 3; } return x; }",
        )
        .unwrap();
        // Variable declared in inner block is not visible outside.
        assert!(check_src("fn f() -> int { if (1) { let y: int = 2; } return y; }").is_err());
    }

    #[test]
    fn condition_must_be_int() {
        let e = check_src("fn f(b: bytes) { while (b) { } }").unwrap_err();
        assert!(e.message.contains("condition must be int"));
    }

    #[test]
    fn stdlib_typechecks() {
        crate::frontend("export fn main() { }").unwrap();
    }
}
