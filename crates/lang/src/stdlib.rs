//! The CCL standard library, written in CCL itself.
//!
//! Keeping these routines at the language level (byte loops over linear
//! memory) is deliberate: both backends compile the *same* logic, so the
//! EVM pays its architectural tax on string processing exactly as the
//! paper's Figure 10 describes ("parsing JSON based on interpreter
//! execution will introduce huge amount of byte code instruction", §6.4).
//! Only true primitives (`__copy`, `alloc`, hashing, storage, I/O) are
//! backend intrinsics.
//!
//! The static access analyzer recognizes these functions in compiled
//! modules *by position and byte-identity* (`confide-core::probe`,
//! `STDLIB_LAYOUT`): function index 0..=15 must stay `__alloc`, `concat`,
//! `concat3`, `slice`, `eq_bytes`, `find`, `itoa`, `atoi`, `i2b`, `b2i`,
//! `to_hex`, `storage_get`, `storage_has`, `call`, `json_get`,
//! `json_get_int`. Reordering, inserting or editing helpers here is safe
//! for correctness (recognition degrades to abstract interpretation,
//! all-or-nothing) but silently costs analysis precision until
//! `STDLIB_LAYOUT` and the `confide_vm::access` ports (`ccl_find`,
//! `ccl_json_get`, …) are updated to match.

/// CCL source prepended to every user program.
pub const STDLIB: &str = r#"
// ---- CCL standard library (prepended to every program) ----

fn concat(a: bytes, b: bytes) -> bytes {
    let out: bytes = alloc(len(a) + len(b));
    __copy(out, 0, a);
    __copy(out, len(a), b);
    return out;
}

fn concat3(a: bytes, b: bytes, c: bytes) -> bytes {
    return concat(concat(a, b), c);
}

fn slice(b: bytes, start: int, n: int) -> bytes {
    let out: bytes = alloc(n);
    let i: int = 0;
    while (i < n) {
        set_byte(out, i, byte_at(b, start + i));
        i = i + 1;
    }
    return out;
}

fn eq_bytes(a: bytes, b: bytes) -> int {
    if (len(a) != len(b)) { return 0; }
    let i: int = 0;
    while (i < len(a)) {
        if (byte_at(a, i) != byte_at(b, i)) { return 0; }
        i = i + 1;
    }
    return 1;
}

// First index of `needle` in `hay` at or after `from`, or -1.
fn find(hay: bytes, needle: bytes, from: int) -> int {
    let n: int = len(hay);
    let m: int = len(needle);
    if (m == 0) { return from; }
    let i: int = from;
    while (i + m <= n) {
        let j: int = 0;
        let ok: int = 1;
        while (j < m) {
            if (byte_at(hay, i + j) != byte_at(needle, j)) {
                ok = 0;
                j = m;
            } else {
                j = j + 1;
            }
        }
        if (ok == 1) { return i; }
        i = i + 1;
    }
    return 0 - 1;
}

fn itoa(v0: int) -> bytes {
    let v: int = v0;
    if (v == 0) { return b"0"; }
    let neg: int = 0;
    if (v < 0) { neg = 1; v = 0 - v; }
    let tmp: bytes = alloc(24);
    let i: int = 0;
    while (v > 0) {
        set_byte(tmp, i, 48 + v % 10);
        v = v / 10;
        i = i + 1;
    }
    let out: bytes = alloc(i + neg);
    if (neg == 1) { set_byte(out, 0, 45); }
    let j: int = 0;
    while (j < i) {
        set_byte(out, neg + j, byte_at(tmp, i - 1 - j));
        j = j + 1;
    }
    return out;
}

// Parse a decimal integer prefix; stops at the first non-digit.
fn atoi(b: bytes) -> int {
    let n: int = len(b);
    if (n == 0) { return 0; }
    let i: int = 0;
    let neg: int = 0;
    if (byte_at(b, 0) == 45) { neg = 1; i = 1; }
    let v: int = 0;
    while (i < n) {
        let c: int = byte_at(b, i);
        if (c < 48 || c > 57) {
            i = n;
        } else {
            v = v * 10 + (c - 48);
            i = i + 1;
        }
    }
    if (neg == 1) { return 0 - v; }
    return v;
}

// 8-byte little-endian encoding of an int.
fn i2b(v: int) -> bytes {
    let out: bytes = alloc(8);
    let i: int = 0;
    while (i < 8) {
        set_byte(out, i, (v >> (i * 8)) & 255);
        i = i + 1;
    }
    return out;
}

fn b2i(b: bytes) -> int {
    let v: int = 0;
    let i: int = 0;
    let n: int = len(b);
    if (n > 8) { n = 8; }
    while (i < n) {
        v = v | (byte_at(b, i) << (i * 8));
        i = i + 1;
    }
    return v;
}

// Lowercase hex of a byte string (used to build readable storage keys).
fn to_hex(b: bytes) -> bytes {
    let out: bytes = alloc(len(b) * 2);
    let i: int = 0;
    while (i < len(b)) {
        let v: int = byte_at(b, i);
        let hi: int = v >> 4;
        let lo: int = v & 15;
        if (hi < 10) { set_byte(out, i * 2, 48 + hi); } else { set_byte(out, i * 2, 87 + hi); }
        if (lo < 10) { set_byte(out, i * 2 + 1, 48 + lo); } else { set_byte(out, i * 2 + 1, 87 + lo); }
        i = i + 1;
    }
    return out;
}

// Friendly storage read: returns the value, or empty bytes when absent.
// Two-call protocol: retry with an exact-size buffer when 128B is too small
// (the multi-ocall trade-off of paper §5.3).
fn storage_get(key: bytes) -> bytes {
    let buf: bytes = alloc(128);
    let n: int = __get_storage(key, buf);
    if (n < 0) { return alloc(0); }
    if (n <= 128) { return take(buf, n); }
    let buf2: bytes = alloc(n);
    let m: int = __get_storage(key, buf2);
    return take(buf2, n);
}

fn storage_has(key: bytes) -> int {
    let buf: bytes = alloc(0);
    let n: int = __get_storage(key, buf);
    if (n < 0) { return 0; }
    return 1;
}

// Cross-contract call returning the callee's output bytes.
fn call(addr: bytes, inp: bytes) -> bytes {
    let buf: bytes = alloc(256);
    let n: int = __call(addr, inp, buf);
    if (n < 0) { return alloc(0); }
    if (n <= 256) { return take(buf, n); }
    let buf2: bytes = alloc(n);
    let m: int = __call(addr, inp, buf2);
    return take(buf2, n);
}

// Extract the value of `"key":` from a flat JSON object. String values are
// returned without quotes; other values are returned as their raw token.
fn json_get(json: bytes, key: bytes) -> bytes {
    let pat: bytes = concat3(b"\"", key, b"\"");
    let p: int = find(json, pat, 0);
    if (p < 0) { return alloc(0); }
    let i: int = p + len(pat);
    let n: int = len(json);
    while (i < n && (byte_at(json, i) == 32 || byte_at(json, i) == 58)) {
        i = i + 1;
    }
    if (i >= n) { return alloc(0); }
    if (byte_at(json, i) == 34) {
        let s: int = i + 1;
        let e: int = find(json, b"\"", s);
        if (e < 0) { return alloc(0); }
        return slice(json, s, e - s);
    }
    let s2: int = i;
    while (i < n && byte_at(json, i) != 44 && byte_at(json, i) != 125) {
        i = i + 1;
    }
    let e2: int = i;
    while (e2 > s2 && byte_at(json, e2 - 1) == 32) {
        e2 = e2 - 1;
    }
    return slice(json, s2, e2 - s2);
}

// Integer field straight out of JSON.
fn json_get_int(json: bytes, key: bytes) -> int {
    return atoi(json_get(json, key));
}
"#;

#[cfg(test)]
mod tests {
    // The stdlib itself is exercised end-to-end from codegen tests; here we
    // just pin that it parses and typechecks.
    #[test]
    fn stdlib_compiles_standalone() {
        crate::frontend("export fn noop() { }").unwrap();
    }
}
