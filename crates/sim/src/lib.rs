//! # confide-sim
//!
//! The discrete-event simulation substrate standing in for the paper's
//! Alibaba-Cloud testbed (DESIGN.md §2): a virtual clock, a time-ordered
//! event queue, and a network model with zones (the §6.2 Shanghai/Beijing
//! split), per-link latency and bandwidth.
//!
//! Compute costs fed into the simulation are *measured* from real
//! execution (instruction counts, crypto bytes) and converted to time via
//! the calibrated [`confide_tee::CostModel`]; only the environment —
//! network, disk, transitions — is modelled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod network;

pub use event::{EventQueue, SimTime};
pub use network::{DiskModel, NetworkModel, Zone};
