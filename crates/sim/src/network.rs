//! Network and disk models.
//!
//! §6.2's topology: nodes in the same VPC see sub-millisecond latency and
//! ample bandwidth; splitting nodes across Shanghai/Beijing puts ~30 ms of
//! public-network RTT (and a tighter bandwidth cap) between the zones,
//! which is what bends the two-zone curve in Figure 11 downward as node
//! count (and thus O(n²) PBFT traffic) grows.

use crate::event::{SimTime, MS, SEC, US};
use confide_crypto::drbg::HmacDrbg;
use std::collections::HashMap;

/// A network zone (datacenter / region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Zone(pub u32);

/// Latency/bandwidth model between zones.
pub struct NetworkModel {
    /// One-way latency within a zone.
    pub intra_zone_latency: SimTime,
    /// One-way latency across zones.
    pub inter_zone_latency: SimTime,
    /// Bytes/second within a zone.
    pub intra_zone_bandwidth: u64,
    /// Bytes/second across zones (public network).
    pub inter_zone_bandwidth: u64,
    /// Jitter fraction in 1/1000 units (e.g. 100 = ±10%).
    pub jitter_permille: u64,
    rng: HmacDrbg,
    /// Serialization cursor per inter-zone link direction: the shared
    /// public-network pipe drains at `inter_zone_bandwidth`, so concurrent
    /// senders queue behind each other (the §6.2 contention that bends the
    /// two-zone curve down as PBFT traffic grows with n²).
    link_free: HashMap<(u32, u32), SimTime>,
}

impl NetworkModel {
    /// The paper's LAN/VPC setting (§6.1: "four nodes in a local network").
    pub fn lan(seed: u64) -> NetworkModel {
        NetworkModel {
            intra_zone_latency: 250 * US,
            inter_zone_latency: 250 * US,
            intra_zone_bandwidth: 1_250_000_000, // 10 Gbps
            inter_zone_bandwidth: 1_250_000_000,
            jitter_permille: 50,
            rng: HmacDrbg::from_u64(seed),
            link_free: HashMap::new(),
        }
    }

    /// The §6.3/§6.4 production setting: a cloud VPC — virtualized network
    /// stack with ~1.5 ms one-way latency between instances.
    pub fn vpc(seed: u64) -> NetworkModel {
        NetworkModel {
            intra_zone_latency: 1_500 * US,
            inter_zone_latency: 1_500 * US,
            intra_zone_bandwidth: 1_250_000_000,
            inter_zone_bandwidth: 1_250_000_000,
            jitter_permille: 80,
            rng: HmacDrbg::from_u64(seed),
            link_free: HashMap::new(),
        }
    }

    /// The §6.2 two-city setting: Shanghai↔Beijing over public network.
    pub fn two_zone(seed: u64) -> NetworkModel {
        NetworkModel {
            intra_zone_latency: 250 * US,
            inter_zone_latency: 15 * MS, // ~30 ms RTT
            intra_zone_bandwidth: 1_250_000_000,
            inter_zone_bandwidth: 12_000_000, // ~100 Mbps shared cross-city pipe
            jitter_permille: 100,
            rng: HmacDrbg::from_u64(seed),
            link_free: HashMap::new(),
        }
    }

    /// Absolute delivery time for a message sent at `now`: propagation
    /// latency plus serialization on the (shared, for inter-zone) link.
    pub fn send_at(&mut self, now: SimTime, from: Zone, to: Zone, bytes: usize) -> SimTime {
        if from == to {
            return now + self.delay(from, to, bytes);
        }
        let serialize =
            (bytes as u128 * SEC as u128 / self.inter_zone_bandwidth as u128) as SimTime;
        let cursor = self.link_free.entry((from.0, to.0)).or_insert(0);
        let start = (*cursor).max(now);
        *cursor = start + serialize;
        let base = start + serialize + self.inter_zone_latency;
        if self.jitter_permille == 0 {
            return base;
        }
        let span = self.inter_zone_latency * self.jitter_permille / 1000;
        if span == 0 {
            return base;
        }
        base - span + self.rng.gen_range(2 * span + 1)
    }

    /// One-way delivery delay for `bytes` from `from` to `to`.
    pub fn delay(&mut self, from: Zone, to: Zone, bytes: usize) -> SimTime {
        let (latency, bandwidth) = if from == to {
            (self.intra_zone_latency, self.intra_zone_bandwidth)
        } else {
            (self.inter_zone_latency, self.inter_zone_bandwidth)
        };
        let transfer = (bytes as u128 * SEC as u128 / bandwidth as u128) as SimTime;
        let base = latency + transfer;
        if self.jitter_permille == 0 {
            return base;
        }
        // Deterministic jitter in [-j, +j].
        let span = base * self.jitter_permille / 1000;
        if span == 0 {
            return base;
        }
        let offset = self.rng.gen_range(2 * span + 1);
        base - span + offset
    }
}

/// Disk (cloud SSD) write model — §6.4: "Cloud SSD disks are mounted as
/// storage system of the blockchain, the typical block write latency is
/// about 6 ms on average."
pub struct DiskModel {
    /// Fixed per-write latency (fsync + network-attached round trip).
    pub write_latency: SimTime,
    /// Streaming bandwidth, bytes/second.
    pub bandwidth: u64,
}

impl DiskModel {
    /// Cloud-SSD defaults calibrated to §6.4's ~6 ms block writes.
    pub fn cloud_ssd() -> DiskModel {
        DiskModel {
            write_latency: 5_500_000, // 5.5 ms fixed
            bandwidth: 140_000_000,   // 140 MB/s
        }
    }

    /// Time to persist `bytes`.
    pub fn write(&self, bytes: usize) -> SimTime {
        self.write_latency + (bytes as u128 * SEC as u128 / self.bandwidth as u128) as SimTime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_zone_is_fast() {
        let mut net = NetworkModel::lan(1);
        let d = net.delay(Zone(0), Zone(0), 4096);
        assert!(d < MS, "{d}");
    }

    #[test]
    fn inter_zone_pays_public_network() {
        let mut net = NetworkModel::two_zone(1);
        let intra = net.delay(Zone(0), Zone(0), 4096);
        let inter = net.delay(Zone(0), Zone(1), 4096);
        assert!(inter > 10 * intra, "inter {inter} vs intra {intra}");
        assert!((10 * MS..40 * MS).contains(&inter), "{inter}");
    }

    #[test]
    fn bandwidth_term_scales_with_size() {
        let mut net = NetworkModel::two_zone(2);
        net.jitter_permille = 0;
        let small = net.delay(Zone(0), Zone(1), 1_000);
        let large = net.delay(Zone(0), Zone(1), 4_000_000);
        assert!(large > small + 50 * MS, "large {large} small {small}");
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut a = NetworkModel::lan(7);
        let mut b = NetworkModel::lan(7);
        for _ in 0..10 {
            assert_eq!(
                a.delay(Zone(0), Zone(0), 100),
                b.delay(Zone(0), Zone(0), 100)
            );
        }
    }

    #[test]
    fn inter_zone_link_queues_concurrent_sends() {
        let mut net = NetworkModel::two_zone(3);
        net.jitter_permille = 0;
        // 20 concurrent 50 KB messages at t=0 must serialize on the link.
        let times: Vec<SimTime> = (0..20)
            .map(|_| net.send_at(0, Zone(0), Zone(1), 50_000))
            .collect();
        assert!(times.windows(2).all(|w| w[1] > w[0]), "{times:?}");
        // Intra-zone sends do not contend.
        let a = net.send_at(0, Zone(0), Zone(0), 50_000);
        let b = net.send_at(0, Zone(0), Zone(0), 50_000);
        assert!(a.abs_diff(b) < MS, "{a} {b}");
    }

    #[test]
    fn disk_model_matches_paper_block_write() {
        let disk = DiskModel::cloud_ssd();
        // A 4 KB block writes in ~6 ms (§6.4).
        let t = disk.write(4096);
        assert!((5 * MS..8 * MS).contains(&t), "{t}");
    }
}
