//! Virtual time and the event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in nanoseconds since experiment start.
pub type SimTime = u64;

/// One nanosecond expressed in [`SimTime`] units.
pub const NS: SimTime = 1;
/// One microsecond.
pub const US: SimTime = 1_000;
/// One millisecond.
pub const MS: SimTime = 1_000_000;
/// One second.
pub const SEC: SimTime = 1_000_000_000;

/// A deterministic time-ordered event queue. Ties break by insertion
/// order, so simulations replay identically.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventBox<E>)>>,
    seq: u64,
    now: SimTime,
}

/// Wrapper giving the payload a no-op ordering so the heap orders only by
/// (time, seq).
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at` (clamped to now).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        self.heap.push(Reverse((at, self.seq, EventBox(event))));
        self.seq += 1;
    }

    /// Schedule `event` after `delay` from now.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((t, _, EventBox(e))) = self.heap.pop()?;
        self.now = t;
        Some((t, e))
    }

    /// Events pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// No events pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(q.now(), 30);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(5, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "first");
        q.pop();
        q.schedule_in(50, "second");
        assert_eq!(q.pop(), Some((150, "second")));
    }

    #[test]
    fn past_events_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "a");
        q.pop();
        q.schedule_at(10, "late"); // would be in the past
        assert_eq!(q.pop(), Some((100, "late")));
    }

    #[test]
    fn units() {
        assert_eq!(MS, 1_000_000);
        assert_eq!(SEC / MS, 1000);
    }
}
