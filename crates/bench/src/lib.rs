//! # confide-bench
//!
//! The §6 reproduction harness. Every table and figure in the paper's
//! evaluation has a binary here that regenerates it (see DESIGN.md §4):
//!
//! | target | reproduces |
//! |---|---|
//! | `fig10` | Figure 10 — four synthetic workloads × {EVM, CONFIDE-VM} × {public, TEE} |
//! | `fig11` | Figure 11 — ABS scalability, 4→20 nodes, 1/4/6-way parallel, two-zone |
//! | `fig12` | Figure 12 — ABS optimization waterfall OPT1→OPT4 |
//! | `table1` | Table 1 — SCF-AR per-operation profile |
//! | `prod64` | §6.4 prose — production block execution / empty-block / disk-write times |
//!
//! Methodology (DESIGN.md §5): compute costs are **measured** by really
//! executing the workload bytecode through the engines (instruction
//! counts, crypto byte counts, cache hits); the environment (network,
//! disk, enclave transitions) is the calibrated model. Criterion benches
//! (in `benches/`) additionally measure real wall time of the components.

#![forbid(unsafe_code)]

pub mod harness;

use confide_contracts::abs;
use confide_core::context::ExecContext;
use confide_core::engine::{Engine, EngineConfig, VmKind};
use confide_core::keys::NodeKeys;
use confide_crypto::HmacDrbg;
use confide_storage::versioned::StateDb;
use confide_tee::platform::TeePlatform;

/// One measured workload configuration.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Mean execution-phase cycles per transaction (contract + state I/O).
    pub exec_cycles: u64,
    /// Mean per-transaction envelope-open cycles (0 for public).
    pub envelope_cycles: u64,
    /// Mean signature-verify cycles (0 for public).
    pub verify_cycles: u64,
    /// Mean symmetric-only decrypt cycles (the preverified fast path).
    pub symmetric_cycles: u64,
    /// Mean VM instructions retired.
    pub instret: u64,
    /// Transaction wire size used.
    pub tx_bytes: usize,
}

/// Build an engine in the given mode.
pub fn make_engine(confidential: bool, config: EngineConfig, seed: u64) -> Engine {
    if confidential {
        let platform = TeePlatform::new(seed, seed);
        let mut rng = HmacDrbg::from_u64(seed);
        let keys = NodeKeys::generate(&mut rng);
        Engine::confidential(platform, keys, config)
    } else {
        Engine::public(config)
    }
}

/// Measure a contract under an engine: run `inputs` through `method`,
/// averaging the per-transaction cost counters. Warmup runs populate the
/// code cache first (steady-state measurement, as the paper's throughput
/// numbers are).
#[allow(clippy::too_many_arguments)]
pub fn measure_contract(
    engine: &Engine,
    state: &StateDb,
    ctx: &mut ExecContext,
    contract: &[u8; 32],
    method: &str,
    inputs: &[Vec<u8>],
    sender: &[u8; 32],
    warmup: usize,
) -> Measured {
    for input in inputs.iter().take(warmup) {
        engine
            .invoke_inner(state, ctx, contract, method, input, sender)
            .expect("warmup invoke");
    }
    ctx.take_counters();
    let mut total_cycles = 0u64;
    let mut total_instret = 0u64;
    let mut total_bytes = 0usize;
    let measured = &inputs[warmup.min(inputs.len())..];
    for input in measured {
        engine
            .invoke_inner(state, ctx, contract, method, input, sender)
            .expect("measured invoke");
        let c = ctx.take_counters();
        total_cycles += c.total_cycles();
        total_instret += c.vm_instret;
        total_bytes += input.len();
    }
    let n = measured.len().max(1) as u64;
    let model = engine.model();
    let avg_bytes = total_bytes / measured.len().max(1);
    let confidential = engine.is_confidential();
    Measured {
        exec_cycles: total_cycles / n,
        envelope_cycles: if confidential {
            model.envelope_open_cycles + avg_bytes as u64 * model.aes_gcm_cycles_per_byte
        } else {
            0
        },
        verify_cycles: if confidential {
            model.sig_verify_cycles
        } else {
            0
        },
        symmetric_cycles: if confidential {
            model.aes_gcm_fixed_cycles + avg_bytes as u64 * model.aes_gcm_cycles_per_byte
        } else {
            0
        },
        instret: total_instret / n,
        tx_bytes: avg_bytes + 170, // envelope framing + signature overhead
    }
}

/// Deploy + genesis an ABS contract (FB or JSON variant) and return the
/// measurement over `n` random requests.
pub fn measure_abs(
    confidential: bool,
    config: EngineConfig,
    flatbuffers: bool,
    n: usize,
    seed: u64,
) -> Measured {
    let engine = make_engine(confidential, config, seed);
    let src = if flatbuffers {
        abs::abs_fb_src()
    } else {
        abs::abs_json_src()
    };
    let code = confide_lang::build_vm(&src).expect("abs compiles");
    let contract = [0x70; 32];
    engine
        .deploy(contract, &code, VmKind::ConfideVm, confidential)
        .expect("abs deploys");
    let state = StateDb::new();
    let mut ctx = ExecContext::new();
    let sender = [5u8; 32];
    for (k, v) in abs::genesis_state(&confide_crypto::hex(&sender)) {
        ctx.write(confide_core::engine::full_key(&contract, &k), Some(v));
    }
    let mut rng = HmacDrbg::from_u64(seed.wrapping_add(1));
    let inputs: Vec<Vec<u8>> = (0..n + 2)
        .map(|_| {
            let req = abs::AbsRequest::random(&mut rng);
            if flatbuffers {
                req.to_fb()
            } else {
                req.to_json()
            }
        })
        .collect();
    measure_contract(
        &engine, &state, &mut ctx, &contract, "transfer", &inputs, &sender, 2,
    )
}

/// Pretty horizontal rule for harness output.
pub fn rule() -> String {
    "-".repeat(78)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_measurement_is_stable_and_confidentiality_costs_more() {
        let public = measure_abs(false, EngineConfig::default(), true, 10, 1);
        let conf = measure_abs(true, EngineConfig::default(), true, 10, 1);
        assert!(public.exec_cycles > 0);
        // TEE mode charges boundary + crypto on the same workload.
        assert!(conf.exec_cycles > public.exec_cycles);
        assert!(conf.envelope_cycles > 0 && public.envelope_cycles == 0);
    }

    #[test]
    fn json_costs_more_than_flatbuffers() {
        let json = measure_abs(false, EngineConfig::default(), false, 10, 2);
        let fb = measure_abs(false, EngineConfig::default(), true, 10, 2);
        assert!(
            json.exec_cycles > fb.exec_cycles * 3 / 2,
            "json {} fb {}",
            json.exec_cycles,
            fb.exec_cycles
        );
    }
}
