//! A small self-contained wall-clock benchmark harness.
//!
//! The workspace builds hermetically (no registry access), so `criterion`
//! is out; this module gives `benches/components.rs` the two things it
//! actually used: adaptive iteration-count timing and grouped, labelled
//! reporting with throughput. Results print as
//! `group/name  median_ns_per_iter  (iters, total_ms [, MB/s])`.
//!
//! Methodology: a calibration pass sizes the batch so one sample takes
//! ≥ `SAMPLE_TARGET` wall time, then `SAMPLES` batches are timed and the
//! median per-iteration time reported — robust to scheduler noise without
//! external dependencies.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimum wall time for one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);
/// Number of timed samples (median is reported).
const SAMPLES: usize = 11;

/// Re-export so benches can `harness::black_box` without `std::hint`.
pub use std::hint::black_box as bb;

/// One measured result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` label.
    pub label: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per sample used.
    pub iters: u64,
    /// Optional throughput in bytes per iteration.
    pub bytes: Option<u64>,
}

impl Measurement {
    fn report(&self) {
        let per_iter = if self.ns_per_iter >= 1_000_000.0 {
            format!("{:10.3} ms", self.ns_per_iter / 1e6)
        } else if self.ns_per_iter >= 1_000.0 {
            format!("{:10.3} µs", self.ns_per_iter / 1e3)
        } else {
            format!("{:10.1} ns", self.ns_per_iter)
        };
        let tput = match self.bytes {
            Some(b) if self.ns_per_iter > 0.0 => {
                let mbps = (b as f64) / self.ns_per_iter * 1e9 / (1024.0 * 1024.0);
                format!("  {mbps:9.1} MiB/s")
            }
            _ => String::new(),
        };
        println!(
            "{:<44} {per_iter}/iter  x{}{}",
            self.label, self.iters, tput
        );
    }
}

/// A named group of benchmarks (mirrors criterion's `benchmark_group`).
pub struct BenchGroup {
    name: String,
    bytes: Option<u64>,
    results: Vec<Measurement>,
}

impl BenchGroup {
    /// Start a group; prints a header.
    pub fn new(name: &str) -> BenchGroup {
        println!("\n== {name} ==");
        BenchGroup {
            name: name.to_string(),
            bytes: None,
            results: Vec::new(),
        }
    }

    /// Set per-iteration byte throughput for subsequent benches (0 clears).
    pub fn throughput_bytes(&mut self, bytes: u64) {
        self.bytes = if bytes == 0 { None } else { Some(bytes) };
    }

    /// Time `f`, reporting the median per-iteration wall time.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &Measurement {
        // Calibrate: grow the batch until one sample exceeds SAMPLE_TARGET.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t.elapsed();
            if dt >= SAMPLE_TARGET || iters >= 1 << 24 {
                break;
            }
            // Aim slightly past the target to converge fast.
            let scale = (SAMPLE_TARGET.as_nanos() as f64 / dt.as_nanos().max(1) as f64) * 1.3;
            iters = ((iters as f64 * scale).ceil() as u64).clamp(iters + 1, 1 << 24);
        }
        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let m = Measurement {
            label: format!("{}/{}", self.name, name),
            ns_per_iter: samples[samples.len() / 2],
            iters,
            bytes: self.bytes,
        };
        m.report();
        self.results.push(m);
        self.results.last().expect("just pushed")
    }

    /// Finish the group, returning all measurements.
    pub fn finish(self) -> Vec<Measurement> {
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut g = BenchGroup::new("selftest");
        let m = g.bench("sum", || (0..100u64).sum::<u64>()).clone();
        assert!(m.ns_per_iter > 0.0);
        assert!(m.iters >= 1);
        assert_eq!(m.label, "selftest/sum");
        assert_eq!(g.finish().len(), 1);
    }
}
