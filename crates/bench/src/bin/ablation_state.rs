//! Ablation: CONFIDE's on-demand SDM state access vs Ekiden-style
//! whole-state loading (the paper's §1 motivation).
//!
//! ```text
//! cargo run -p confide-bench --release --bin ablation_state
//! ```
//!
//! "Ekiden … The whole contract states have to be loaded into TEE to
//! guarantee the data integrity before transaction execution. This works
//! well for simple and small smart contracts in public blockchains.
//! However, in our scenario, financial service smart contracts are
//! complicated and have large bytesize with the state data, for example,
//! the total size of an SCF smart contract for one-month execution can be
//! larger than the SGX physical memory limit."
//!
//! Model (constants from the calibrated CostModel + the EPC simulator):
//!
//! * **Whole-state loading**: per transaction, copy the full state across
//!   the boundary, decrypt it, page it into the EPC (evicting when it
//!   exceeds the 93.5 MB budget), execute, re-encrypt and write back.
//! * **CONFIDE SDM**: per transaction, K storage operations each paying an
//!   ocall + AES-GCM over the touched value only.

#![forbid(unsafe_code)]
use confide_bench::rule;
use confide_tee::epc::{EpcManager, PAGE_SIZE};
use confide_tee::meter::{CostModel, CycleMeter};

const TOUCHED_KEYS: u64 = 160; // a heavy SCF flow (Table 1's GetStorage count)
const VALUE_BYTES: u64 = 1024;

fn whole_state_cycles(model: &CostModel, state_bytes: u64) -> u64 {
    // Boundary copy in + decrypt + (paged) residency + re-encrypt + copy out.
    let copy = 2 * state_bytes * model.copy_check_cycles_per_byte;
    let crypto = 2 * (model.aes_gcm_fixed_cycles + state_bytes * model.aes_gcm_cycles_per_byte);
    // Paging: drive the real EPC simulator — allocate the state, touch all
    // of it, and read back the charged swap cycles.
    let meter = CycleMeter::new();
    let epc = EpcManager::new(93 * 1024 * 1024 + 512 * 1024, meter.clone(), *model);
    // 16 MB resident baseline (runtime, code, heap).
    let runtime = epc.alloc(16 << 20).expect("runtime alloc");
    epc.touch(runtime, 0, 16 << 20).expect("runtime touch");
    let state = epc.alloc(state_bytes as usize).expect("state alloc");
    epc.touch(state, 0, state_bytes as usize)
        .expect("state touch");
    let paging = meter.total();
    copy + crypto + paging + 2 * model.transition_warm_cycles
}

fn sdm_cycles(model: &CostModel) -> u64 {
    TOUCHED_KEYS
        * (model.transition_warm_cycles
            + model.user_check_cycles
            + model.kv_read_cycles
            + model.aes_gcm_fixed_cycles
            + VALUE_BYTES * model.aes_gcm_cycles_per_byte)
}

fn main() {
    let model = CostModel::default();
    println!("Ablation — per-transaction state-access cost vs total contract state size");
    println!(
        "(transaction touches {TOUCHED_KEYS} keys of {VALUE_BYTES} B; EPC budget 93.5 MB, page {PAGE_SIZE} B)"
    );
    println!("{}", rule());
    println!(
        "{:<14} {:>22} {:>18} {:>10}",
        "state size", "whole-state load (ms)", "CONFIDE SDM (ms)", "ratio"
    );
    println!("{}", rule());
    let sdm = sdm_cycles(&model);
    let mut ratios = Vec::new();
    for mb in [1u64, 4, 16, 64, 96, 128, 256] {
        let whole = whole_state_cycles(&model, mb << 20);
        let ratio = whole as f64 / sdm as f64;
        println!(
            "{:>10} MB {:>22.2} {:>18.2} {:>9.1}x",
            mb,
            model.cycles_to_ms(whole),
            model.cycles_to_ms(sdm),
            ratio
        );
        ratios.push((mb, ratio));
    }
    println!("{}", rule());
    // Shape assertions: SDM cost is constant; whole-state cost scales with
    // state size and inflects once the EPC budget is exceeded.
    let small = ratios.iter().find(|(mb, _)| *mb == 1).unwrap().1;
    let at_64 = ratios.iter().find(|(mb, _)| *mb == 64).unwrap().1;
    let at_256 = ratios.iter().find(|(mb, _)| *mb == 256).unwrap().1;
    assert!(
        small < 1.0,
        "tiny states should favour whole-state loading ({small:.2})"
    );
    assert!(
        at_64 > 1.0,
        "tens of MB should already favour SDM ({at_64:.2})"
    );
    assert!(
        at_256 > 2.0 * at_64,
        "past the EPC budget, paging must blow the whole-state cost up \
         (64MB {at_64:.1}x vs 256MB {at_256:.1}x)"
    );
    println!(
        "crossover below 64 MB; past the 93.5 MB EPC budget paging adds a second regime \
         (256 MB: {at_256:.0}x) — the paper's argument for the SDM design"
    );
}
