//! Figure 10 reproduction: throughput of the four synthetic workloads on
//! {EVM, CONFIDE-VM} × {public, confidential(TEE)}, four nodes, 4 KB
//! blocks (§6.1).
//!
//! ```text
//! cargo run -p confide-bench --release --bin fig10
//! ```

#![forbid(unsafe_code)]
use confide_bench::{make_engine, measure_contract, rule, Measured};
use confide_chain::{ChainConfig, ChainSim, SimTx};
use confide_contracts::synthetic;
use confide_core::context::ExecContext;
use confide_core::engine::{EngineConfig, VmKind};
use confide_crypto::HmacDrbg;
use confide_sim::network::NetworkModel;
use confide_storage::versioned::StateDb;

fn measure_workload(workload: usize, vm: VmKind, confidential: bool, seed: u64) -> Measured {
    let (_, src) = synthetic::ALL[workload];
    let engine = make_engine(confidential, EngineConfig::default(), seed);
    let code = match vm {
        VmKind::ConfideVm => confide_lang::build_vm(src).unwrap(),
        VmKind::Evm => confide_lang::build_evm(src).unwrap(),
    };
    let contract = [0x33; 32];
    engine.deploy(contract, &code, vm, confidential).unwrap();
    let state = StateDb::new();
    let mut ctx = ExecContext::new();
    let mut rng = HmacDrbg::from_u64(seed);
    let inputs: Vec<Vec<u8>> = (0..12)
        .map(|_| synthetic::input_for(workload, &mut rng))
        .collect();
    measure_contract(
        &engine, &state, &mut ctx, &contract, "main", &inputs, &[9u8; 32], 2,
    )
}

fn tps(m: &Measured, confidential: bool) -> f64 {
    // Drive the measured costs through the 4-node LAN chain of §6.1.
    let mut cfg = ChainConfig::local(4);
    cfg.threads = 1;
    let txs: Vec<(u64, SimTx)> = (0..120)
        .map(|i| {
            let tx = if confidential {
                SimTx::confidential(
                    m.tx_bytes,
                    i % 24,
                    m.exec_cycles,
                    m.envelope_cycles,
                    m.verify_cycles,
                    m.symmetric_cycles,
                )
            } else {
                SimTx::public(m.tx_bytes, i % 24, m.exec_cycles)
            };
            (i * 100_000, tx)
        })
        .collect();
    ChainSim::new(cfg, NetworkModel::lan(7)).run(txs).tps
}

fn main() {
    println!("Figure 10 — Performance on 4 Synthetic workloads (TPS, 4 nodes, 4KB blocks)");
    println!("{}", rule());
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>12}",
        "Workload", "EVM", "EVM+TEE", "CONFIDE-VM", "CONF-VM+TEE"
    );
    println!("{}", rule());
    let mut rows = Vec::new();
    for (i, (name, _)) in synthetic::ALL.iter().enumerate() {
        let evm_pub = tps(&measure_workload(i, VmKind::Evm, false, 1), false);
        let evm_tee = tps(&measure_workload(i, VmKind::Evm, true, 2), true);
        let cvm_pub = tps(&measure_workload(i, VmKind::ConfideVm, false, 3), false);
        let cvm_tee = tps(&measure_workload(i, VmKind::ConfideVm, true, 4), true);
        println!("{name:<26} {evm_pub:>12.0} {evm_tee:>12.0} {cvm_pub:>12.0} {cvm_tee:>12.0}");
        rows.push((name, evm_pub, evm_tee, cvm_pub, cvm_tee));
    }
    println!("{}", rule());
    println!("Shape checks vs the paper:");
    for (name, evm_pub, evm_tee, cvm_pub, cvm_tee) in rows {
        let vm_adv = cvm_pub / evm_pub.max(1e-9);
        let evm_slow = (evm_pub - evm_tee) / evm_pub.max(1e-9) * 100.0;
        let cvm_slow = (cvm_pub - cvm_tee) / cvm_pub.max(1e-9) * 100.0;
        println!(
            "  {name:<26} CONFIDE-VM/EVM = {vm_adv:>5.1}x | TEE slowdown: EVM {evm_slow:>4.1}%, CONFIDE-VM {cvm_slow:>4.1}%"
        );
        assert!(vm_adv > 1.0, "CONFIDE-VM must beat EVM ({name})");
        assert!(
            cvm_slow <= evm_slow + 1.0,
            "CONFIDE-VM's confidentiality slowdown should not exceed EVM's ({name})"
        );
    }
    println!(
        "(paper: CONFIDE-VM ≫ EVM on all workloads; TEE slowdown visibly smaller for CONFIDE-VM)"
    );
}
