//! Table 1 reproduction: per-operation profile of the production SCF-AR
//! asset-transfer flow (§6.3).
//!
//! ```text
//! cargo run -p confide-bench --release --bin table1
//! ```
//!
//! Runs the typical transfer through the Gateway→Manager→services chain as
//! a full confidential transaction (envelope open + signature verify
//! included, as the production profiler sees them) and prints the measured
//! rows next to the paper's.

#![forbid(unsafe_code)]
use confide_bench::rule;
use confide_contracts::scf;
use confide_core::client::ConfideClient;
use confide_core::engine::EngineConfig;
use confide_core::keys::NodeKeys;
use confide_core::node::ConfideNode;
use confide_crypto::HmacDrbg;
use confide_tee::platform::TeePlatform;

/// Paper values: (method, duration ms, counts, ratio %).
const PAPER: [(&str, f64, u64, f64); 5] = [
    ("Contract Call", 32.46, 31, 86.1),
    ("GetStorage", 4.80, 151, 12.7),
    ("SetStorage", 0.55, 9, 1.5),
    ("Transaction Verify", 0.22, 1, 0.6),
    ("Transaction Decryption", 0.10, 1, 0.3),
];

fn main() {
    let platform = TeePlatform::new(1, 31);
    let mut rng = HmacDrbg::from_u64(31);
    let keys = NodeKeys::generate(&mut rng);
    let mut node = ConfideNode::new(platform, keys, EngineConfig::default(), 31);
    let addrs = scf::deploy_suite(&node.confidential_engine, true);

    // Genesis block: configs, accounts, asset with a 16-step custody chain
    // (the depth production receivables accumulate).
    node.run_genesis(|engine, state, ctx| {
        scf::run_genesis(engine, state, ctx, &addrs, 16);
    })
    .expect("genesis");

    // The profiled flow: one confidential transfer transaction.
    let mut client = ConfideClient::new([1u8; 32], [2u8; 32], 3);
    let req = scf::transfer_request("alice", "bob", "AR-7788", 25_000);
    let (tx, _, _) = client
        .confidential_tx(&node.pk_tx(), addrs.gateway, "main", &req)
        .expect("seal");
    let result = node.execute_block(&[tx]).expect("execute");
    assert!(result.receipts[0].success, "transfer must succeed");
    let counters = &result.tx_stats[0].counters;
    let model = node.confidential_engine.model();

    println!("Table 1 — Operations of SCF-AR contract (typical asset transfer flow)");
    println!("{}", rule());
    println!(
        "{:<24} {:>13} {:>8} {:>8}   | {:>13} {:>8} {:>8}",
        "Method", "Duration(ms)", "Counts", "Ratio", "paper ms", "paper n", "paper %"
    );
    println!("{}", rule());
    let rows = counters.table1_rows(model);
    for ((name, ms, count, ratio), (pname, pms, pn, ppct)) in rows.iter().zip(PAPER.iter()) {
        assert_eq!(name, pname);
        println!(
            "{name:<24} {ms:>13.2} {count:>8} {:>7.1}%   | {pms:>13.2} {pn:>8} {ppct:>7.1}%",
            ratio * 100.0
        );
    }
    println!("{}", rule());

    // Shape checks: same ordering and the same operation-count regime.
    let calls = counters.contract_calls;
    let gets = counters.get_storage;
    let sets = counters.set_storage;
    println!(
        "operation mix: {calls} contract calls (paper 31), {gets} GetStorage (paper 151), {sets} SetStorage (paper 9)"
    );
    assert!((24..=42).contains(&calls), "contract calls {calls}");
    assert!((100..=200).contains(&gets), "get storage {gets}");
    assert!((6..=14).contains(&sets), "set storage {sets}");
    assert_eq!(counters.verifies, 1);
    assert_eq!(counters.decrypts, 1);
    // Contract Call dominates; decryption cheapest — the paper's ordering.
    let ratios: Vec<f64> = rows.iter().map(|r| r.3).collect();
    assert!(ratios[0] > 0.5, "Contract Call should dominate: {ratios:?}");
    assert!(ratios[1] > ratios[2] && ratios[2] > ratios[4], "{ratios:?}");
    println!("ordering matches Table 1: Contract Call ≫ GetStorage > SetStorage > crypto");
}
