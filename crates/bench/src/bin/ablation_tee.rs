//! Ablations for the §5.3 TEE engineering techniques:
//!
//! 1. **EDL `user_check` vs copy-and-check marshalling** ("Optimized data
//!    structure") — measured on the real ABS workload through the engine.
//! 2. **One-time vs multi-time ocalls** — the paper's balance calculation
//!    between one big serialized fetch and several small field fetches.
//! 3. **Exit-less monitoring vs ocall-per-status** ("Improved enclave's
//!    monitor system") — the lock-free ring buffer against paying an
//!    enclave transition per status record.
//!
//! ```text
//! cargo run -p confide-bench --release --bin ablation_tee
//! ```

#![forbid(unsafe_code)]
use confide_bench::rule;
use confide_core::engine::EngineConfig;
use confide_tee::enclave::CrossingMode;
use confide_tee::meter::CostModel;
use confide_tee::ringbuf::RingBuffer;

fn main() {
    let model = CostModel::default();

    // ---- 1. user_check vs copy-and-check ----
    // The paper: "for large memory buffer, the copy-and-check process will
    // have a significant impact" — so measure a large-buffer workload: a
    // 128 KB e-note deposited through the engine.
    println!("Ablation 1 — EDL marshalling mode (128 KB depository tx, per-tx cycles)");
    println!("{}", rule());
    let measure_big = |mode: CrossingMode, seed: u64| {
        use confide_bench::{make_engine, measure_contract};
        use confide_core::context::ExecContext;
        use confide_core::engine::VmKind;
        use confide_storage::versioned::StateDb;
        let engine = make_engine(
            true,
            EngineConfig {
                crossing: mode,
                ..EngineConfig::default()
            },
            seed,
        );
        let src = r#"
            export fn main() {
                let note: bytes = input();
                storage_set(b"note", note);
                ret(itoa(len(note)));
            }
        "#;
        let code = confide_lang::build_vm(src).unwrap();
        let contract = [0x90; 32];
        engine
            .deploy(contract, &code, VmKind::ConfideVm, true)
            .unwrap();
        let state = StateDb::new();
        let mut ctx = ExecContext::new();
        let inputs: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 128 * 1024]).collect();
        measure_contract(
            &engine, &state, &mut ctx, &contract, "main", &inputs, &[9u8; 32], 2,
        )
    };
    let copy = measure_big(CrossingMode::CopyAndCheck, 81);
    let user_check = measure_big(CrossingMode::UserCheck, 82);
    let saved = copy.exec_cycles.saturating_sub(user_check.exec_cycles);
    println!(
        "copy-and-check: {:>10} cycles/tx\nuser_check:     {:>10} cycles/tx  (saves {} cycles, {:.1}%)",
        copy.exec_cycles,
        user_check.exec_cycles,
        saved,
        saved as f64 / copy.exec_cycles as f64 * 100.0
    );
    assert!(
        saved as f64 / copy.exec_cycles as f64 > 0.05,
        "user_check should save >5% on large-buffer transactions"
    );

    // ---- 2. one-time vs multi-time ocalls ----
    // Fetching a complex record: one ocall that serializes the whole
    // structure (copy S bytes) vs k ocalls that fetch only the needed
    // sub-fields (k transitions, f bytes each). The paper: an ocall costs
    // 8,314–14,160 cycles, so "balance between the cost of one-time ocall
    // and multi-times ocall can be achieved".
    println!("\nAblation 2 — one-time vs multi-time ocalls (cycles per record fetch)");
    println!("{}", rule());
    println!(
        "{:<14} {:>16} {:>8} {:>18} {:>10}",
        "record size", "one-time ocall", "fields", "multi-time ocalls", "winner"
    );
    println!("{}", rule());
    let one_time = |record_bytes: u64| {
        model.transition_warm_cycles + record_bytes * model.copy_check_cycles_per_byte
            // serializing a complex class is not free (RLP-style encode).
            + record_bytes * 3
    };
    let multi_time = |fields: u64, field_bytes: u64| {
        fields * (model.transition_warm_cycles + field_bytes * model.copy_check_cycles_per_byte)
    };
    let mut flipped = (false, false);
    for record_kb in [1u64, 4, 16, 64, 256] {
        let record = record_kb * 1024;
        let needed_fields = 3u64;
        let field_bytes = 64u64;
        let ot = one_time(record);
        let mt = multi_time(needed_fields, field_bytes);
        let winner = if mt < ot { "multi" } else { "one" };
        if mt < ot {
            flipped.1 = true;
        } else {
            flipped.0 = true;
        }
        println!(
            "{:>10} KB {:>16} {:>8} {:>18} {:>10}",
            record_kb, ot, needed_fields, mt, winner
        );
    }
    println!("{}", rule());
    assert!(
        flipped.0 && flipped.1,
        "both regimes must appear — that's the paper's 'balance' point"
    );
    println!("small records: take the whole thing; large records: pay extra transitions\nfor just the sub-fields — the §5.3 trade-off.");

    // ---- 3. exit-less monitoring ----
    println!("\nAblation 3 — status streaming out of the enclave (10,000 records)");
    println!("{}", rule());
    let records = 10_000u64;
    let ocall_based = records * model.transition_warm_cycles;
    // Exit-less: a lock-free ring push is a few dozen cycles; drain happens
    // on an untrusted polling thread off the enclave's critical path.
    let ring_push_cycles = 60u64;
    let exitless = records * ring_push_cycles;
    println!(
        "ocall per status:   {:>12} cycles ({:.2} ms)\nexit-less ring:     {:>12} cycles ({:.3} ms)   => {:.0}x cheaper",
        ocall_based,
        model.cycles_to_ms(ocall_based),
        exitless,
        model.cycles_to_ms(exitless),
        ocall_based as f64 / exitless as f64
    );
    // And the real data structure actually works at this rate:
    let rb = RingBuffer::with_capacity(16_384);
    let (px, cx) = rb.split();
    let start = std::time::Instant::now();
    for i in 0..records {
        px.push(i);
    }
    let produced = start.elapsed();
    let drained = cx.drain().len();
    println!(
        "real ring buffer: {} pushes in {:?} ({} drained, {} dropped)",
        records,
        produced,
        drained,
        rb.dropped()
    );
    assert!(ocall_based > 100 * exitless);
    println!("{}", rule());
    println!("all three §5.3 ablations hold");
}
