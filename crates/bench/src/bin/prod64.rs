//! §6.4 production metrics reproduction: "transactions are submitted in
//! batch by the application into the blockchain network. The time duration
//! of blocks execution is about 30 ms on average. Periodically, empty
//! blocks are generated continuously with about 5ms duration. Cloud SSD
//! disks are mounted as storage system of the blockchain, the typical
//! block write latency is about 6 ms on average."
//!
//! ```text
//! cargo run -p confide-bench --release --bin prod64
//! ```

#![forbid(unsafe_code)]
use confide_bench::{measure_abs, rule};
use confide_chain::{ChainConfig, ChainSim, SimTx};
use confide_core::engine::EngineConfig;
use confide_sim::network::{DiskModel, NetworkModel};

fn main() {
    println!("§6.4 — Production ABS platform metrics");
    let m = measure_abs(true, EngineConfig::default(), true, 15, 64);
    println!(
        "measured ABS transfer: {:.3} ms execution/tx",
        m.exec_cycles as f64 / 3.7e6
    );
    println!("{}", rule());

    // Batched submission: the application submits large batches, so blocks
    // fill to the production batch size (~18 txs with our measured tx).
    let mut cfg = ChainConfig::local(4);
    cfg.threads = 1;
    cfg.block_max_txs = 18;
    cfg.block_max_bytes = 64 * 1024;
    let txs: Vec<(u64, SimTx)> = (0..360u64)
        .map(|i| {
            (
                i * 30_000, // a hot batch queue
                SimTx::confidential(
                    m.tx_bytes,
                    i % 24,
                    m.exec_cycles,
                    m.envelope_cycles,
                    m.verify_cycles,
                    m.symmetric_cycles,
                ),
            )
        })
        .collect();
    let report = ChainSim::new(cfg, NetworkModel::vpc(64)).run(txs);
    let exec_ms = report.avg_block_exec_ns / 1e6;
    let write_ms = report.avg_block_write_ns / 1e6;

    // Empty block duration: the consensus round (three VPC hops, measured
    // from the run above) plus block assembly, with zero transactions.
    let empty_exec_cycles = ChainConfig::local(4).block_overhead_cycles;
    let consensus_ms = report.avg_consensus_latency_ns / 1e6;
    let empty_block_ms = consensus_ms + empty_exec_cycles as f64 / 3.7e6;
    let _ = DiskModel::cloud_ssd; // write latency reported separately below

    println!("{:<44} {:>10} {:>10}", "Metric", "measured", "paper");
    println!("{}", rule());
    println!(
        "{:<44} {:>9.1}ms {:>10}",
        "block execution duration (batched ABS)", exec_ms, "~30ms"
    );
    println!(
        "{:<44} {:>9.1}ms {:>10}",
        "empty block duration (consensus + assembly)", empty_block_ms, "~5ms"
    );
    println!(
        "{:<44} {:>9.1}ms {:>10}",
        "block write latency (cloud SSD)", write_ms, "~6ms"
    );
    println!("{}", rule());
    println!(
        "throughput: {:.0} TPS over {} blocks ({} txs committed)",
        report.tps, report.blocks, report.committed_txs
    );

    assert!((20.0..45.0).contains(&exec_ms), "block exec {exec_ms}");
    assert!(
        (2.0..9.0).contains(&empty_block_ms),
        "empty block {empty_block_ms}"
    );
    assert!((5.0..8.0).contains(&write_ms), "block write {write_ms}");
    println!("all three §6.4 metrics in the paper's range");
}
