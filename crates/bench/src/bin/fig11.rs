//! Figure 11 reproduction: scalability with the ABS workload —
//! confidential transactions only, node counts 4→20, 1/4/6-way parallel
//! execution, and the two-zone (Shanghai/Beijing, 1:2) setting (§6.2).
//!
//! ```text
//! cargo run -p confide-bench --release --bin fig11
//! ```

#![forbid(unsafe_code)]
use confide_bench::{measure_abs, rule};
use confide_chain::{ChainConfig, ChainSim, SimTx};
use confide_core::engine::EngineConfig;
use confide_sim::network::NetworkModel;

fn run(nodes: usize, threads: usize, two_zone: bool, m: &confide_bench::Measured) -> f64 {
    let mut cfg = if two_zone {
        ChainConfig::two_zone(nodes)
    } else {
        ChainConfig::local(nodes)
    };
    cfg.threads = threads;
    cfg.block_max_txs = 32;
    cfg.block_max_bytes = 16 * 1024;
    let network = if two_zone {
        NetworkModel::two_zone(5)
    } else {
        NetworkModel::lan(5)
    };
    // Offered load: 400 ABS transfers at 10k TPS offered. Conflict
    // structure mirrors production ABS: about half of all transfers
    // touch the central securitization pool account (one hot conflict
    // group), the rest spread across originator accounts — which is why
    // the paper sees ~2x at 4-way and nothing more at 6-way ("not all the
    // transactions can be executed in parallel", §6.2).
    let txs: Vec<(u64, SimTx)> = (0..400u64)
        .map(|i| {
            let conflict = if i % 2 == 0 { 0 } else { 1 + (i % 23) };
            (
                i * 100_000,
                SimTx::confidential(
                    m.tx_bytes,
                    conflict,
                    m.exec_cycles,
                    m.envelope_cycles,
                    m.verify_cycles,
                    m.symmetric_cycles,
                ),
            )
        })
        .collect();
    ChainSim::new(cfg, network).run(txs).tps
}

fn main() {
    println!("Figure 11 — Scalability with ABS workload (confidential txs, TPS)");
    let m = measure_abs(true, EngineConfig::default(), true, 20, 11);
    println!(
        "measured ABS transfer: {} exec cycles/tx ({:.3} ms), {} VM instructions",
        m.exec_cycles,
        m.exec_cycles as f64 / 3.7e6,
        m.instret
    );
    println!("{}", rule());
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>14}",
        "Nodes", "serial", "4-way", "6-way", "two-zone(1:2)"
    );
    println!("{}", rule());
    let mut series: Vec<(usize, f64, f64, f64, f64)> = Vec::new();
    for nodes in [4usize, 8, 12, 16, 20] {
        let serial = run(nodes, 1, false, &m);
        let par4 = run(nodes, 4, false, &m);
        let par6 = run(nodes, 6, false, &m);
        let wan = run(nodes, 4, true, &m);
        println!("{nodes:<8} {serial:>12.0} {par4:>12.0} {par6:>12.0} {wan:>14.0}");
        series.push((nodes, serial, par4, par6, wan));
    }
    println!("{}", rule());

    // Shape checks vs the paper.
    let first = series.first().unwrap();
    let last = series.last().unwrap();
    // 1. Single-zone curves stay roughly flat from 4 to 20 nodes.
    for (idx, label) in [(1usize, "serial"), (2, "4-way"), (3, "6-way")] {
        let vals: Vec<f64> = series
            .iter()
            .map(|row| match idx {
                1 => row.1,
                2 => row.2,
                _ => row.3,
            })
            .collect();
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let max = vals.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  {label}: 4→20 nodes spread {:.1}% (paper: stable)",
            (max / min - 1.0) * 100.0
        );
        assert!(max / min < 1.5, "{label} not stable: {vals:?}");
    }
    // 2. 4-way ≈ 2× serial; 6-way adds nothing.
    let speedup4 = first.2 / first.1;
    let speedup6 = first.3 / first.2;
    println!("  parallel execution: 4-way = {speedup4:.2}x serial (paper ~2x), 6-way/4-way = {speedup6:.2}x (paper ~1x)");
    assert!(
        speedup4 > 1.5 && speedup4 < 2.8,
        "4-way should give ~2x, got {speedup4:.2}"
    );
    assert!((0.9..1.15).contains(&speedup6), "6-way should saturate");
    // 3. Two-zone decreases as nodes increase.
    println!(
        "  two-zone: {:.0} TPS at 4 nodes → {:.0} TPS at 20 nodes (paper: decreasing)",
        first.4, last.4
    );
    assert!(last.4 < first.4, "two-zone should degrade with node count");
}
