//! Figure 12 reproduction: the ABS optimization waterfall (§6.4).
//!
//! ```text
//! cargo run -p confide-bench --release --bin fig12
//! ```
//!
//! Starting from a pessimal baseline (JSON-encoded assets, no code cache,
//! no memory pool, no pre-verification, no fusion), apply the paper's four
//! optimizations cumulatively:
//!
//! * **OPT1** — code cache + memory management (paper: ~2×)
//! * **OPT2** — Flatbuffers-style encoding instead of JSON (paper: ~2.5×)
//! * **OPT3** — transaction pre-verification (paper: +6%)
//! * **OPT4** — instruction-set reduction / superinstruction fusion
//!   (paper: +17%)
//!
//! Throughput proxy: single-stream transactions/second =
//! CPU_HZ / per-transaction cycles (execution phase + the T-Protocol cost
//! the phase pays under each configuration).

#![forbid(unsafe_code)]
use confide_bench::{measure_abs, rule, Measured};
use confide_core::engine::EngineConfig;

struct Step {
    name: &'static str,
    flatbuffers: bool,
    config: EngineConfig,
    paper_gain: &'static str,
}

fn per_tx_cycles(m: &Measured, preverify: bool) -> u64 {
    if preverify {
        // P1–P5 ran off the critical path; execution pays symmetric only.
        m.exec_cycles + m.symmetric_cycles + m.verify_cycles_attributed()
    } else {
        m.exec_cycles + m.envelope_cycles + m.verify_cycles
    }
}

trait VerifyAttr {
    fn verify_cycles_attributed(&self) -> u64;
}
impl VerifyAttr for Measured {
    fn verify_cycles_attributed(&self) -> u64 {
        0 // verification was pipelined; §5.2's point
    }
}

fn main() {
    let baseline_cfg = EngineConfig {
        fusion: false,
        code_cache: false,
        memory_pool: false,
        preverify_cache: false,
        ..EngineConfig::default()
    };
    let opt1_cfg = EngineConfig {
        code_cache: true,
        memory_pool: true,
        ..baseline_cfg
    };
    let opt3_cfg = EngineConfig {
        preverify_cache: true,
        ..opt1_cfg
    };
    let opt4_cfg = EngineConfig {
        fusion: true,
        ..opt3_cfg
    };
    let steps = [
        Step {
            name: "Baseline",
            flatbuffers: false,
            config: baseline_cfg,
            paper_gain: "-",
        },
        Step {
            name: "+OPT1 code cache/memmgmt",
            flatbuffers: false,
            config: opt1_cfg,
            paper_gain: "~2x",
        },
        Step {
            name: "+OPT2 Flatbuffers",
            flatbuffers: true,
            config: opt1_cfg,
            paper_gain: "~2.5x",
        },
        Step {
            name: "+OPT3 pre-verification",
            flatbuffers: true,
            config: opt3_cfg,
            paper_gain: "+6%",
        },
        Step {
            name: "+OPT4 instruction opt",
            flatbuffers: true,
            config: opt4_cfg,
            paper_gain: "+17%",
        },
    ];

    println!("Figure 12 — Optimizations on ABS contract (confidential, single stream)");
    println!("{}", rule());
    println!(
        "{:<28} {:>12} {:>10} {:>10} {:>10}",
        "Configuration", "cycles/tx", "TPS", "step gain", "paper"
    );
    println!("{}", rule());
    let mut prev_tps = 0.0f64;
    let mut gains = Vec::new();
    for (i, step) in steps.iter().enumerate() {
        let m = measure_abs(true, step.config, step.flatbuffers, 15, 21 + i as u64);
        let preverified = step.config.preverify_cache;
        let cycles = per_tx_cycles(&m, preverified);
        let tps = 3.7e9 / cycles as f64;
        let gain = if i == 0 { 1.0 } else { tps / prev_tps };
        println!(
            "{:<28} {:>12} {:>10.0} {:>9.2}x {:>10}",
            step.name, cycles, tps, gain, step.paper_gain
        );
        gains.push(gain);
        prev_tps = tps;
    }
    println!("{}", rule());
    println!(
        "cumulative speedup over baseline: {:.1}x (paper: ~2 * 2.5 * 1.06 * 1.17 ≈ 6.2x)",
        gains.iter().product::<f64>()
    );
    // Shape assertions.
    assert!(
        gains[1] > 1.3,
        "OPT1 should give a large gain, got {:.2}",
        gains[1]
    );
    assert!(
        gains[2] > 1.8 && gains[2] < 3.5,
        "OPT2 ~2.5x, got {:.2}",
        gains[2]
    );
    assert!(
        gains[3] > 1.02 && gains[3] < 1.45,
        "OPT3 modest gain, got {:.2}",
        gains[3]
    );
    assert!(
        gains[4] > 1.03 && gains[4] < 1.5,
        "OPT4 modest gain, got {:.2}",
        gains[4]
    );
}
