//! Criterion microbenchmarks: real wall time of the real components.
//!
//! These complement the figure harnesses (which use the calibrated virtual
//! clock) by measuring what this implementation actually costs on the host
//! machine: crypto primitives, VM dispatch with and without OPT4 fusion,
//! code-cache effects, CCLe field-level vs whole-state encryption, and
//! end-to-end engine execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use confide_ccle::codec::{encode, EncryptionContext};
use confide_ccle::parse_schema;
use confide_ccle::value::Value;
use confide_contracts::{abs, synthetic};
use confide_core::context::ExecContext;
use confide_core::engine::{EngineConfig, VmKind};
use confide_crypto::ed25519::SigningKey;
use confide_crypto::envelope::{Envelope, EnvelopeKeyPair};
use confide_crypto::gcm::AesGcm;
use confide_crypto::HmacDrbg;
use confide_storage::versioned::StateDb;
use confide_vm::{ExecConfig, MockHost, Module, Vm};

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let gcm = AesGcm::new(&[7u8; 32]).unwrap();
    for size in [256usize, 4096] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("aes256_gcm_seal", size), &data, |b, d| {
            b.iter(|| gcm.seal(&[1u8; 12], b"aad", black_box(d)));
        });
    }
    let data4k = vec![0u8; 4096];
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("sha256_4k", |b| {
        b.iter(|| confide_crypto::sha256(black_box(&data4k)))
    });
    g.bench_function("keccak256_4k", |b| {
        b.iter(|| confide_crypto::keccak256(black_box(&data4k)))
    });
    g.throughput(Throughput::Elements(1));
    let key = SigningKey::from_seed(&[1u8; 32]);
    let msg = b"a typical transaction body for signing";
    let sig = key.sign(msg);
    g.bench_function("ed25519_sign", |b| b.iter(|| key.sign(black_box(msg))));
    g.bench_function("ed25519_verify", |b| {
        b.iter(|| key.verifying_key().verify(black_box(msg), &sig).unwrap())
    });
    let mut rng = HmacDrbg::from_u64(1);
    let kp = EnvelopeKeyPair::generate(&mut rng);
    let k_tx = rng.gen32();
    let env = Envelope::seal(&kp.public(), &k_tx, b"", &vec![0u8; 512], &mut rng).unwrap();
    g.bench_function("envelope_open_asymmetric", |b| {
        b.iter(|| env.open(black_box(&kp), b"").unwrap())
    });
    g.bench_function("envelope_open_body_symmetric", |b| {
        b.iter(|| env.open_body(black_box(&k_tx), b"").unwrap())
    });
    g.finish();
}

fn bench_vms(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm_vs_evm");
    g.sample_size(20);
    let mut rng = HmacDrbg::from_u64(2);
    for (i, (name, src)) in synthetic::ALL.iter().enumerate() {
        let input = synthetic::input_for(i, &mut rng);
        let vm_code = confide_lang::build_vm(src).unwrap();
        let module = Module::decode(&vm_code).unwrap();
        let vm = Vm::from_module(module.clone(), ExecConfig::default());
        g.bench_function(BenchmarkId::new("confide_vm", *name), |b| {
            b.iter(|| {
                let mut host = MockHost {
                    input: input.clone(),
                    ..MockHost::default()
                };
                let mut mem = Vec::new();
                vm.invoke("main", &[], &mut host, &mut mem).unwrap()
            });
        });
        let evm_code = confide_lang::build_evm(src).unwrap();
        let evm = confide_evm::Evm::new(evm_code, confide_evm::EvmConfig::default());
        let calldata = confide_lang::evm_calldata("main", &input);
        g.bench_function(BenchmarkId::new("evm", *name), |b| {
            b.iter(|| {
                let mut host = confide_evm::MockEvmHost::default();
                evm.run(&calldata, &mut host).unwrap()
            });
        });
        // OPT4 ablation on the real interpreter.
        let unfused = Vm::from_module(
            module.clone(),
            ExecConfig {
                fusion: false,
                ..ExecConfig::default()
            },
        );
        g.bench_function(BenchmarkId::new("confide_vm_no_fusion", *name), |b| {
            b.iter(|| {
                let mut host = MockHost {
                    input: input.clone(),
                    ..MockHost::default()
                };
                let mut mem = Vec::new();
                unfused.invoke("main", &[], &mut host, &mut mem).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_code_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("code_cache");
    let src = abs::abs_fb_src();
    let code = confide_lang::build_vm(&src).unwrap();
    g.bench_function("decode_prepare_miss", |b| {
        b.iter(|| {
            let module = Module::decode(black_box(&code)).unwrap();
            confide_vm::Prepared::new(module, &ExecConfig::default())
        });
    });
    let cache = confide_vm::CodeCache::new(true);
    cache.get_or_prepare(&code, &ExecConfig::default()).unwrap();
    g.bench_function("cache_hit", |b| {
        b.iter(|| cache.get_or_prepare(black_box(&code), &ExecConfig::default()).unwrap());
    });
    g.finish();
}

fn bench_ccle(c: &mut Criterion) {
    let mut g = c.benchmark_group("ccle");
    let schema_partial = parse_schema(
        r#"
        attribute "confidential";
        table Rec { id: string; public_note: string; secret: string(confidential); }
        root_type Rec;
        "#,
    )
    .unwrap();
    let schema_full = parse_schema(
        r#"
        attribute "confidential";
        table Inner { id: string; public_note: string; secret: string; }
        table Rec { all: Inner(confidential); }
        root_type Rec;
        "#,
    )
    .unwrap();
    let note = "x".repeat(800);
    let secret = "s".repeat(200);
    let partial = Value::Table(vec![
        ("id".into(), Value::Str("rec-1".into())),
        ("public_note".into(), Value::Str(note.clone())),
        ("secret".into(), Value::Str(secret.clone())),
    ]);
    let full = Value::Table(vec![(
        "all".into(),
        Value::Table(vec![
            ("id".into(), Value::Str("rec-1".into())),
            ("public_note".into(), Value::Str(note)),
            ("secret".into(), Value::Str(secret)),
        ]),
    )]);
    g.bench_function("field_level_encryption", |b| {
        let mut ctx = EncryptionContext::new(&[1u8; 32], b"aad", 1);
        b.iter(|| encode(&schema_partial, black_box(&partial), Some(&mut ctx)).unwrap());
    });
    g.bench_function("whole_state_encryption", |b| {
        let mut ctx = EncryptionContext::new(&[1u8; 32], b"aad", 1);
        b.iter(|| encode(&schema_full, black_box(&full), Some(&mut ctx)).unwrap());
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    let engine = confide_bench::make_engine(true, EngineConfig::default(), 9);
    let code = confide_lang::build_vm(&abs::abs_fb_src()).unwrap();
    let contract = [0x70; 32];
    engine.deploy(contract, &code, VmKind::ConfideVm, true);
    let state = StateDb::new();
    let sender = [5u8; 32];
    let mut rng = HmacDrbg::from_u64(3);
    let req = abs::AbsRequest::random(&mut rng).to_fb();
    g.bench_function("abs_transfer_confidential_invoke", |b| {
        b.iter(|| {
            let mut ctx = ExecContext::new();
            for (k, v) in abs::genesis_state(&confide_crypto::hex(&sender)) {
                ctx.write(confide_core::engine::full_key(&contract, &k), Some(v));
            }
            engine
                .invoke_inner(&state, &mut ctx, &contract, "transfer", black_box(&req), &sender)
                .unwrap()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_vms,
    bench_code_cache,
    bench_ccle,
    bench_engine
);
criterion_main!(benches);
