//! Wall-clock microbenchmarks of the real components.
//!
//! These complement the figure harnesses (which use the calibrated virtual
//! clock) by measuring what this implementation actually costs on the host
//! machine: crypto primitives, VM dispatch with and without OPT4 fusion and
//! with/without ahead-of-time verification, code-cache effects, CCLe
//! field-level vs whole-state encryption, and end-to-end engine execution.
//!
//! Uses the hermetic `confide_bench::harness` (criterion-free; see
//! DESIGN.md) so `cargo bench` works without registry access.

#![forbid(unsafe_code)]

use confide_bench::harness::{bb as black_box, BenchGroup};

use confide_ccle::codec::{encode, EncryptionContext};
use confide_ccle::parse_schema;
use confide_ccle::value::Value;
use confide_contracts::{abs, synthetic};
use confide_core::context::ExecContext;
use confide_core::engine::{EngineConfig, VmKind};
use confide_crypto::ed25519::SigningKey;
use confide_crypto::envelope::{Envelope, EnvelopeKeyPair};
use confide_crypto::gcm::AesGcm;
use confide_crypto::HmacDrbg;
use confide_storage::versioned::StateDb;
use confide_vm::{ExecConfig, MockHost, Module, Prepared, Vm};

fn bench_crypto() {
    let mut g = BenchGroup::new("crypto");
    let gcm = AesGcm::new(&[7u8; 32]).unwrap();
    for size in [256usize, 4096] {
        let data = vec![0xabu8; size];
        g.throughput_bytes(size as u64);
        g.bench(&format!("aes256_gcm_seal/{size}"), || {
            gcm.seal(&[1u8; 12], b"aad", black_box(&data))
        });
    }
    let data4k = vec![0u8; 4096];
    g.throughput_bytes(4096);
    g.bench("sha256_4k", || confide_crypto::sha256(black_box(&data4k)));
    g.bench("keccak256_4k", || {
        confide_crypto::keccak256(black_box(&data4k))
    });
    g.throughput_bytes(0);
    let key = SigningKey::from_seed(&[1u8; 32]);
    let msg = b"a typical transaction body for signing";
    let sig = key.sign(msg);
    g.bench("ed25519_sign", || key.sign(black_box(msg)));
    g.bench("ed25519_verify", || {
        key.verifying_key().verify(black_box(msg), &sig).unwrap()
    });
    let mut rng = HmacDrbg::from_u64(1);
    let kp = EnvelopeKeyPair::generate(&mut rng);
    let k_tx = rng.gen32();
    let env = Envelope::seal(&kp.public(), &k_tx, b"", &vec![0u8; 512], &mut rng).unwrap();
    g.bench("envelope_open_asymmetric", || {
        env.open(black_box(&kp), b"").unwrap()
    });
    g.bench("envelope_open_body_symmetric", || {
        env.open_body(black_box(&k_tx), b"").unwrap()
    });
    g.finish();
}

fn bench_vms() {
    let mut g = BenchGroup::new("vm_vs_evm");
    let mut rng = HmacDrbg::from_u64(2);
    for (i, (name, src)) in synthetic::ALL.iter().enumerate() {
        let input = synthetic::input_for(i, &mut rng);
        let vm_code = confide_lang::build_vm(src).unwrap();
        let module = Module::decode(&vm_code).unwrap();
        let vm = Vm::from_module(module.clone(), ExecConfig::default());
        g.bench(&format!("confide_vm/{name}"), || {
            let mut host = MockHost {
                input: input.clone(),
                ..MockHost::default()
            };
            let mut mem = Vec::new();
            vm.invoke("main", &[], &mut host, &mut mem).unwrap()
        });
        // Ahead-of-time verified module: interpreter runs the unchecked
        // fast path (no per-dispatch stack/local bounds checks).
        let cfg = ExecConfig::default();
        let verified = Prepared::new_verified(Module::decode(&vm_code).unwrap(), &cfg).unwrap();
        let vvm = Vm::from_prepared(verified, cfg);
        g.bench(&format!("confide_vm_verified/{name}"), || {
            let mut host = MockHost {
                input: input.clone(),
                ..MockHost::default()
            };
            let mut mem = Vec::new();
            vvm.invoke("main", &[], &mut host, &mut mem).unwrap()
        });
        let evm_code = confide_lang::build_evm(src).unwrap();
        let evm = confide_evm::Evm::new(evm_code, confide_evm::EvmConfig::default());
        let calldata = confide_lang::evm_calldata("main", &input);
        g.bench(&format!("evm/{name}"), || {
            let mut host = confide_evm::MockEvmHost::default();
            evm.run(&calldata, &mut host).unwrap()
        });
        // OPT4 ablation on the real interpreter.
        let unfused = Vm::from_module(
            module.clone(),
            ExecConfig {
                fusion: false,
                ..ExecConfig::default()
            },
        );
        g.bench(&format!("confide_vm_no_fusion/{name}"), || {
            let mut host = MockHost {
                input: input.clone(),
                ..MockHost::default()
            };
            let mut mem = Vec::new();
            unfused.invoke("main", &[], &mut host, &mut mem).unwrap()
        });
    }
    g.finish();
}

fn bench_code_cache() {
    let mut g = BenchGroup::new("code_cache");
    let src = abs::abs_fb_src();
    let code = confide_lang::build_vm(&src).unwrap();
    g.bench("decode_prepare_miss", || {
        let module = Module::decode(black_box(&code)).unwrap();
        Prepared::new(module, &ExecConfig::default())
    });
    g.bench("decode_verify_prepare_miss", || {
        let module = Module::decode(black_box(&code)).unwrap();
        Prepared::new_verified(module, &ExecConfig::default()).unwrap()
    });
    let cache = confide_vm::CodeCache::new(true);
    cache.get_or_prepare(&code, &ExecConfig::default()).unwrap();
    g.bench("cache_hit", || {
        cache
            .get_or_prepare(black_box(&code), &ExecConfig::default())
            .unwrap()
    });
    g.finish();
}

fn bench_ccle() {
    let mut g = BenchGroup::new("ccle");
    let schema_partial = parse_schema(
        r#"
        attribute "confidential";
        table Rec { id: string; public_note: string; secret: string(confidential); }
        root_type Rec;
        "#,
    )
    .unwrap();
    let schema_full = parse_schema(
        r#"
        attribute "confidential";
        table Inner { id: string; public_note: string; secret: string; }
        table Rec { all: Inner(confidential); }
        root_type Rec;
        "#,
    )
    .unwrap();
    let note = "x".repeat(800);
    let secret = "s".repeat(200);
    let partial = Value::Table(vec![
        ("id".into(), Value::Str("rec-1".into())),
        ("public_note".into(), Value::Str(note.clone())),
        ("secret".into(), Value::Str(secret.clone())),
    ]);
    let full = Value::Table(vec![(
        "all".into(),
        Value::Table(vec![
            ("id".into(), Value::Str("rec-1".into())),
            ("public_note".into(), Value::Str(note)),
            ("secret".into(), Value::Str(secret)),
        ]),
    )]);
    {
        let mut ctx = EncryptionContext::new(&[1u8; 32], b"aad", 1);
        g.bench("field_level_encryption", || {
            encode(&schema_partial, black_box(&partial), Some(&mut ctx)).unwrap()
        });
    }
    {
        let mut ctx = EncryptionContext::new(&[1u8; 32], b"aad", 1);
        g.bench("whole_state_encryption", || {
            encode(&schema_full, black_box(&full), Some(&mut ctx)).unwrap()
        });
    }
    g.finish();
}

fn bench_engine() {
    let mut g = BenchGroup::new("engine");
    let engine = confide_bench::make_engine(true, EngineConfig::default(), 9);
    let code = confide_lang::build_vm(&abs::abs_fb_src()).unwrap();
    let contract = [0x70; 32];
    engine
        .deploy(contract, &code, VmKind::ConfideVm, true)
        .unwrap();
    let state = StateDb::new();
    let sender = [5u8; 32];
    let mut rng = HmacDrbg::from_u64(3);
    let req = abs::AbsRequest::random(&mut rng).to_fb();
    g.bench("abs_transfer_confidential_invoke", || {
        let mut ctx = ExecContext::new();
        for (k, v) in abs::genesis_state(&confide_crypto::hex(&sender)) {
            ctx.write(confide_core::engine::full_key(&contract, &k), Some(v));
        }
        engine
            .invoke_inner(
                &state,
                &mut ctx,
                &contract,
                "transfer",
                black_box(&req),
                &sender,
            )
            .unwrap()
    });
    g.finish();
}

fn main() {
    bench_crypto();
    bench_vms();
    bench_code_cache();
    bench_ccle();
    bench_engine();
}
