//! The contract execution engine — Confidential-Engine in confidential
//! mode (Fig. 3: Pre-processor → VM → SDM), Public-Engine in public mode.
//!
//! One executor serves both modes; the mode decides whether the
//! pre-processor opens envelopes, whether the SDM seals state through
//! D-Protocol, and whether enclave-boundary costs are charged. All four
//! Figure-12 optimizations are independent [`EngineConfig`] switches:
//!
//! * OPT1 — [`EngineConfig::code_cache`] (decoded-module cache; on a miss
//!   the engine pays LEB decode + code decryption) and
//!   [`EngineConfig::memory_pool`] (recycled linear memories).
//! * OPT2 is a *workload* property (Flatbuffers-style CCLe instead of JSON
//!   parsing) exercised by `confide-contracts`.
//! * OPT3 — [`Engine::preverify`] + [`EngineConfig::preverify_cache`]: the
//!   §5.2 pipeline caches `(k_tx, f_verified)` by wire hash so execution
//!   pays only a symmetric decryption (C2/C3).
//! * OPT4 — [`EngineConfig::fusion`]: the CONFIDE-VM superinstruction pass.

use crate::context::ExecContext;
use crate::counters::TxStats;
use crate::keys::NodeKeys;
use crate::receipt::Receipt;
use crate::tx::{RawTx, SignedTx, WireTx};
use confide_crypto::gcm::AesGcm;
use confide_crypto::hmac::hmac_sha256;
use confide_crypto::{sha256, HmacDrbg};
use confide_evm::{Evm, EvmConfig, EvmHost};
use confide_storage::kv::WriteBatch;
use confide_storage::versioned::StateDb;
use confide_sync::Mutex;
use confide_tee::enclave::{CrossingMode, Enclave, EnclaveConfig};
use confide_tee::meter::CostModel;
use confide_tee::platform::TeePlatform;
use confide_vm::host::{HostApi, HostError};
use confide_vm::interp::{ExecConfig, Prepared, Vm};
use confide_vm::module::Module;
use confide_vm::{KeyMatcher, ModuleAccess};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Which virtual machine a contract targets (§3.2.1: CONFIDE enables both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmKind {
    /// The Wasm-derived CONFIDE-VM.
    ConfideVm,
    /// The EVM baseline.
    Evm,
}

/// Engine tuning switches (Figure 12's OPT1/OPT3/OPT4 + EDL marshalling).
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// OPT4: superinstruction fusion in CONFIDE-VM.
    pub fusion: bool,
    /// OPT1: cache decoded (and decrypted) modules.
    pub code_cache: bool,
    /// OPT1: recycle linear memories.
    pub memory_pool: bool,
    /// OPT3: use the pre-verification cache.
    pub preverify_cache: bool,
    /// EDL marshalling mode for enclave crossings (§5.3 `user_check`).
    pub crossing: CrossingMode,
    /// Cross-contract call depth bound.
    pub max_call_depth: usize,
    /// VM fuel per transaction.
    pub fuel: u64,
    /// Enforce strictly increasing per-sender nonces (replay protection).
    pub enforce_nonces: bool,
    /// Ahead-of-time bytecode verification at deploy time; verified
    /// modules run the interpreter's unchecked fast path.
    pub verify_bytecode: bool,
    /// Escape hatch: accept CCL deployments whose confidentiality lint
    /// reports errors (see [`Engine::deploy_ccl`]). Off by default.
    pub allow_leaky: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            fusion: true,
            code_cache: true,
            memory_pool: true,
            preverify_cache: true,
            crossing: CrossingMode::UserCheck,
            max_call_depth: 64,
            fuel: 500_000_000,
            enforce_nonces: true,
            verify_bytecode: true,
            allow_leaky: false,
        }
    }
}

/// Engine-level failures (reported in receipts, never leaked as oracles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// No contract at the target address.
    UnknownContract([u8; 32]),
    /// VM trapped.
    Trap(String),
    /// Envelope/signature/state crypto failed.
    Crypto,
    /// Transaction failed to parse.
    Malformed,
    /// Public transaction sent to the confidential path or vice versa.
    WrongEngine,
    /// Cross-contract call depth exceeded.
    DepthExceeded,
    /// Contract code failed to decode.
    BadCode,
    /// Transaction nonce not greater than the sender's last (replay).
    Replay,
    /// CONFIDE-VM bytecode failed ahead-of-time verification at deploy.
    Verify(String),
    /// CCL source failed to compile at deploy.
    Compile(String),
    /// The confidentiality-flow lint found errors and `allow_leaky` is off.
    Leaky(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownContract(a) => {
                write!(f, "unknown contract {}", confide_crypto::hex(&a[..4]))
            }
            EngineError::Trap(t) => write!(f, "vm trap: {t}"),
            EngineError::Crypto => f.write_str("cryptographic failure"),
            EngineError::Malformed => f.write_str("malformed transaction"),
            EngineError::WrongEngine => f.write_str("transaction routed to wrong engine"),
            EngineError::DepthExceeded => f.write_str("call depth exceeded"),
            EngineError::BadCode => f.write_str("contract code undecodable"),
            EngineError::Replay => f.write_str("transaction replay (stale nonce)"),
            EngineError::Verify(e) => write!(f, "bytecode verification failed: {e}"),
            EngineError::Compile(e) => write!(f, "contract compilation failed: {e}"),
            EngineError::Leaky(e) => {
                write!(f, "confidentiality lint rejected deployment: {e}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Address of the built-in system "contract" whose confidential state
/// stores retained transaction keys for the authorization chain-code.
pub(crate) const SYSTEM_KTX_ADDR: [u8; 32] = [0xfe; 32];

/// Code-load cost per byte on a code-cache miss: code decryption, LEB128
/// decode, validation, jump-table construction and in-enclave allocation
/// of the decoded form (the work OPT1's code cache memoizes). Calibrated
/// against in-enclave Wasm module instantiation costs.
const DECODE_CYCLES_PER_BYTE: u64 = 400;
/// Fresh linear-memory cost per 4 KiB EPC page when the memory pool cannot
/// supply a recycled buffer: dynamic page commit (EAUG/EACCEPT-class),
/// zeroing, and eventual teardown — the allocator traffic OPT1's memory
/// pool eliminates.
const MEM_COMMIT_CYCLES_PER_PAGE: u64 = 24_000;
/// Fixed frame cost per contract invocation.
const CALL_FIXED_CYCLES: u64 = 18_000;

struct ContractRecord {
    vm: VmKind,
    /// Code as stored: sealed under `k_states` for confidential contracts.
    stored: Vec<u8>,
    confidential: bool,
    /// Deploy-time static access summaries (CONFIDE-VM only): per-method
    /// read/write key sets the parallel executor schedules from without a
    /// speculation run. `None` for the EVM and undecodable modules.
    access: Option<Arc<ModuleAccess>>,
}

enum LoadedCode {
    Vm(Arc<Prepared>),
    Evm(Arc<Evm>),
}

impl Clone for LoadedCode {
    fn clone(&self) -> Self {
        match self {
            LoadedCode::Vm(p) => LoadedCode::Vm(Arc::clone(p)),
            LoadedCode::Evm(e) => LoadedCode::Evm(Arc::clone(e)),
        }
    }
}

struct PreverifyEntry {
    k_tx: [u8; 32],
    verified: bool,
    /// Cycles spent in the pre-verification phase (pipelined off the
    /// execution path; reported by [`Engine::preverify`]'s return value).
    #[allow(dead_code)]
    spent_cycles: u64,
}

/// Cache hit/miss statistics (code cache + pre-verification cache).
#[derive(Debug, Default, Clone, Copy)]
pub struct EngineCacheStats {
    /// Code cache hits.
    pub code_hits: u64,
    /// Code cache misses (decode + decrypt paid).
    pub code_misses: u64,
    /// Pre-verification cache hits at execution time.
    pub preverify_hits: u64,
    /// Pre-verification cache misses.
    pub preverify_misses: u64,
}

/// The execution engine. Confidential mode carries the enclave + keys.
pub struct Engine {
    confidential: Option<TeeParts>,
    config: EngineConfig,
    model: CostModel,
    contracts: Mutex<HashMap<[u8; 32], ContractRecord>>,
    code_cache: Mutex<HashMap<[u8; 32], LoadedCode>>,
    mem_pool: confide_vm::cache::MemoryPool,
    preverify: Mutex<HashMap<[u8; 32], PreverifyEntry>>,
    cache_stats: Mutex<EngineCacheStats>,
}

pub(crate) struct TeeParts {
    #[allow(dead_code)]
    pub(crate) platform: Arc<TeePlatform>,
    #[allow(dead_code)]
    pub(crate) cs_enclave: Enclave,
    pub(crate) keys: NodeKeys,
    pub(crate) gcm_states: AesGcm,
}

impl Engine {
    /// A Public-Engine: plaintext transactions and states, no TEE costs.
    pub fn public(config: EngineConfig) -> Engine {
        Engine {
            confidential: None,
            model: CostModel::default(),
            mem_pool: confide_vm::cache::MemoryPool::new(config.memory_pool, 16),
            config,
            contracts: Mutex::new(HashMap::new()),
            code_cache: Mutex::new(HashMap::new()),
            preverify: Mutex::new(HashMap::new()),
            cache_stats: Mutex::new(EngineCacheStats::default()),
        }
    }

    /// A Confidential-Engine on `platform` with provisioned `keys`.
    ///
    /// Convenience wrapper over [`Engine::try_confidential`] for callers
    /// that construct the platform themselves; panics only if the platform
    /// refuses the CS enclave (it never does for the simulated TEE) — use
    /// `try_confidential` where enclave creation failure must surface as a
    /// typed error.
    pub fn confidential(
        platform: Arc<TeePlatform>,
        keys: NodeKeys,
        config: EngineConfig,
    ) -> Engine {
        Engine::try_confidential(platform, keys, config)
            .expect("simulated TEE accepts the CS enclave and 32-byte k_states")
    }

    /// Fallible constructor: create the CS enclave and the `k_states`
    /// sealing cipher, surfacing failures as [`EngineError::Crypto`]
    /// instead of panicking.
    pub fn try_confidential(
        platform: Arc<TeePlatform>,
        keys: NodeKeys,
        config: EngineConfig,
    ) -> Result<Engine, EngineError> {
        let cs_enclave = Enclave::create(
            &platform,
            EnclaveConfig::new(
                crate::keys::CS_ENCLAVE_CODE.to_vec(),
                [0xC5; 32],
                1,
                8 << 20,
            ),
        )
        .map_err(|_| EngineError::Crypto)?;
        let gcm_states = AesGcm::new(&keys.k_states).map_err(|_| EngineError::Crypto)?;
        let contracts = HashMap::from([(
            SYSTEM_KTX_ADDR,
            ContractRecord {
                vm: VmKind::ConfideVm,
                stored: Vec::new(),
                confidential: true,
                access: None,
            },
        )]);
        Ok(Engine {
            model: platform.model(),
            confidential: Some(TeeParts {
                platform,
                cs_enclave,
                keys,
                gcm_states,
            }),
            mem_pool: confide_vm::cache::MemoryPool::new(config.memory_pool, 16),
            config,
            contracts: Mutex::new(contracts),
            code_cache: Mutex::new(HashMap::new()),
            preverify: Mutex::new(HashMap::new()),
            cache_stats: Mutex::new(EngineCacheStats::default()),
        })
    }

    /// True when running in confidential (TEE) mode.
    pub fn is_confidential(&self) -> bool {
        self.confidential.is_some()
    }

    /// Crate-internal access to the TEE parts (authorization chain-code).
    pub(crate) fn tee(&self) -> Option<&TeeParts> {
        self.confidential.as_ref()
    }

    /// The cost model used for cycle accounting.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Cache statistics snapshot.
    pub fn cache_stats(&self) -> EngineCacheStats {
        *self.cache_stats.lock()
    }

    /// `pk_tx` for clients (confidential mode only).
    pub fn pk_tx(&self) -> Option<[u8; 32]> {
        self.confidential.as_ref().map(|t| t.keys.envelope.public())
    }

    /// A remote-attestation report over the CS enclave with the SHA-256
    /// fingerprint of `pk_tx` locked into `report_data` (§3.2.2): clients
    /// fetching `pk_tx` over an untrusted channel verify this quote against
    /// the platform's attestation root before sealing envelopes, defeating
    /// key-substitution MITM. `None` in public mode.
    pub fn attestation_report(&self) -> Option<confide_tee::attestation::Report> {
        self.confidential.as_ref().map(|t| {
            let mut report_data = [0u8; 64];
            report_data[..32].copy_from_slice(&confide_crypto::sha256(&t.keys.envelope.public()));
            confide_tee::attestation::Report::generate(&t.cs_enclave, report_data)
        })
    }

    /// Register a contract at `address`. Confidential contracts' code is
    /// sealed under `k_states` (D-Protocol covers "smart contract states
    /// and smart contract code").
    ///
    /// With [`EngineConfig::verify_bytecode`] (the default), CONFIDE-VM
    /// modules must pass ahead-of-time verification
    /// ([`confide_vm::verify_module`]) — stack discipline, jump targets,
    /// call arities, resource limits — or deployment is rejected with
    /// [`EngineError::Verify`]. Verified modules later execute on the
    /// interpreter's unchecked fast path. EVM blobs go through the same
    /// gate ([`confide_evm::verify_bytecode`]): opcode whitelist, JUMPDEST
    /// analysis, static stack-depth bounds, and code-size limits — garbage
    /// is rejected at deploy, not at first invoke.
    pub fn deploy(
        &self,
        address: [u8; 32],
        code: &[u8],
        vm: VmKind,
        confidential: bool,
    ) -> Result<(), EngineError> {
        let access = if vm == VmKind::ConfideVm {
            match Module::decode(code) {
                Ok(module) => {
                    if self.config.verify_bytecode {
                        confide_vm::verify_module(&module)
                            .map_err(|e| EngineError::Verify(e.to_string()))?;
                    }
                    // Deploy-time static access analysis: sound per-method
                    // read/write summaries the block executor schedules
                    // from. A degraded summary (`Top`) only disables the
                    // speculation-free fast path, never deployment.
                    let known = crate::probe::recognize_stdlib(&module);
                    Some(Arc::new(confide_vm::analyze_module(&module, &known)))
                }
                Err(_) => {
                    if self.config.verify_bytecode {
                        return Err(EngineError::BadCode);
                    }
                    None
                }
            }
        } else {
            // EVM deploys get no static access summary (the scheduler
            // falls back to whole-block OCC for them) but the bytecode is
            // held to the same deploy-time standard as CONFIDE-VM.
            if self.config.verify_bytecode {
                confide_evm::verify_bytecode(code, &confide_evm::VerifyConfig::default())
                    .map_err(|e| EngineError::Verify(e.to_string()))?;
            }
            None
        };
        let stored = if confidential {
            let tee = self.confidential.as_ref().ok_or(EngineError::WrongEngine)?;
            let nonce = code_nonce(&tee.keys.k_states, &address);
            let mut blob = nonce.to_vec();
            blob.extend_from_slice(&tee.gcm_states.seal(&nonce, &code_aad(&address), code));
            blob
        } else {
            code.to_vec()
        };
        self.contracts.lock().insert(
            address,
            ContractRecord {
                vm,
                stored,
                confidential,
                access,
            },
        );
        // A (re)deployment invalidates any cached module for this address's
        // previous code; the cache is keyed by stored-code hash so stale
        // entries are simply never hit again.
        Ok(())
    }

    /// Compile, **lint**, and deploy a CCL contract in one step — the
    /// deployment path the developer toolchain uses. The
    /// confidentiality-flow analysis (`confide_lang::lint_source`) runs
    /// against the optional CCLe-schema key map; findings at `Error`
    /// severity reject the deployment with [`EngineError::Leaky`] unless
    /// [`EngineConfig::allow_leaky`] is set. The surviving report (advisory
    /// warnings) is returned so callers can surface it.
    pub fn deploy_ccl(
        &self,
        address: [u8; 32],
        source: &str,
        schema_keys: Option<&confide_ccle::ConfidentialKeys>,
        confidential: bool,
    ) -> Result<confide_lang::LintReport, EngineError> {
        let report = confide_lang::lint_source(source, schema_keys)
            .map_err(|e| EngineError::Compile(e.to_string()))?;
        if !report.deployable() && !self.config.allow_leaky {
            let summary = report
                .errors()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("; ");
            return Err(EngineError::Leaky(summary));
        }
        let code =
            confide_lang::build_vm(source).map_err(|e| EngineError::Compile(e.to_string()))?;
        self.deploy(address, &code, VmKind::ConfideVm, confidential)?;
        Ok(report)
    }

    /// Whether a contract exists.
    pub fn has_contract(&self, address: &[u8; 32]) -> bool {
        self.contracts.lock().contains_key(address)
    }

    /// Whether a contract's state is confidential.
    pub fn contract_confidential(&self, address: &[u8; 32]) -> bool {
        self.contracts
            .lock()
            .get(address)
            .map(|r| r.confidential)
            .unwrap_or(false)
    }

    /// The deploy-time static access summaries of the contract at
    /// `address` (CONFIDE-VM contracts deployed by this engine instance).
    pub fn contract_access(&self, address: &[u8; 32]) -> Option<Arc<ModuleAccess>> {
        self.contracts
            .lock()
            .get(address)
            .and_then(|r| r.access.clone())
    }

    /// Build a transaction's static execution plan from its target
    /// method's deploy-time [`AccessSummary`](confide_vm::AccessSummary):
    /// the full-storage-key matchers it may touch, instantiated against
    /// the concrete input and sender, plus the engine-added system keys
    /// (nonce read+write, retained-`k_tx` write).
    ///
    /// Returns `None` whenever the plan would be incomplete — deployment
    /// transactions, unknown contracts, EVM contracts, summaries that are
    /// `Top` or make cross-contract calls, or undecodable wire payloads —
    /// and the block executor then falls back to speculative (OCC)
    /// scheduling. Planning a confidential transaction opens its envelope
    /// with the node key but is cache-neutral: it never touches the
    /// pre-verification cache, so costs attribute identically on both
    /// scheduling paths.
    pub fn plan_tx(&self, wire: &WireTx) -> Option<TxPlan> {
        let mut plan_cycles = 0u64;
        let signed = match wire {
            WireTx::Public(signed) => {
                if self.is_confidential() {
                    return None;
                }
                signed.clone()
            }
            WireTx::Confidential(env) => {
                let tee = self.confidential.as_ref()?;
                plan_cycles += self.model.envelope_open_cycles
                    + env.body.len() as u64 * self.model.aes_gcm_cycles_per_byte;
                let (_k_tx, plain) = env.open(&tee.keys.envelope, b"").ok()?;
                SignedTx::decode(&plain).ok()?
            }
        };
        let raw = &signed.raw;
        if raw.contract == [0u8; 32] && raw.method == "deploy" {
            // Deployments mutate the contract registry outside the
            // journal; they are never statically schedulable.
            return None;
        }
        let access = self.contract_access(&raw.contract)?;
        let summary = access.method(&raw.method)?;
        if summary.top || summary.calls_out {
            return None;
        }
        let lift = |m: KeyMatcher| match m {
            KeyMatcher::Exact(k) => KeyMatcher::Exact(full_key(&raw.contract, &k)),
            KeyMatcher::Prefix(p) => KeyMatcher::Prefix(full_key(&raw.contract, &p)),
        };
        let mut exact = true;
        let mut reads = Vec::with_capacity(summary.reads.len() + 1);
        let mut writes = Vec::with_capacity(summary.writes.len() + 2);
        for k in &summary.reads {
            let m = k.instantiate(&raw.args, &raw.sender);
            exact &= matches!(m, KeyMatcher::Exact(_));
            reads.push(lift(m));
        }
        for k in &summary.writes {
            let m = k.instantiate(&raw.args, &raw.sender);
            exact &= matches!(m, KeyMatcher::Exact(_));
            writes.push(lift(m));
        }
        if self.config.enforce_nonces {
            let mut nonce_key = if self.is_confidential() {
                b"nonce|c|".to_vec()
            } else {
                b"nonce|p|".to_vec()
            };
            nonce_key.extend_from_slice(&raw.sender);
            let fk = full_key(&SYSTEM_KTX_ADDR, &nonce_key);
            reads.push(KeyMatcher::Exact(fk.clone()));
            writes.push(KeyMatcher::Exact(fk));
        }
        if matches!(wire, WireTx::Confidential(_)) {
            let mut ktx_key = b"ktx|".to_vec();
            ktx_key.extend_from_slice(&raw.hash());
            writes.push(KeyMatcher::Exact(full_key(&SYSTEM_KTX_ADDR, &ktx_key)));
        }
        // LPT load proxy: fixed frame + the summary's reachable
        // instruction count priced at VM speed. Only relative magnitudes
        // matter (the schedule), and the figure is identical on every
        // replica for identical bytecode.
        let cost = CALL_FIXED_CYCLES + summary.cost_hint * self.model.vm_cycles_per_instr;
        Some(TxPlan {
            contract: raw.contract,
            reads,
            writes,
            exact,
            cost,
            plan_cycles,
        })
    }

    /// §5.2 P1–P5: pre-verify a confidential transaction, caching
    /// `(k_tx, f_verified)` under the wire hash. Returns the cycles spent
    /// (which the pipeline pays off the execution path).
    pub fn preverify(&self, wire: &WireTx) -> Result<u64, EngineError> {
        let WireTx::Confidential(env) = wire else {
            return Ok(0); // public txs verify in the cheap path
        };
        let tee = self.confidential.as_ref().ok_or(EngineError::WrongEngine)?;
        let mut cycles = 0u64;
        // P2: private-key envelope open.
        cycles += self.model.envelope_open_cycles
            + env.body.len() as u64 * self.model.aes_gcm_cycles_per_byte;
        let (k_tx, plain) = env
            .open(&tee.keys.envelope, b"")
            .map_err(|_| EngineError::Crypto)?;
        // P3: signature verification.
        cycles += self.model.sig_verify_cycles;
        let signed = SignedTx::decode(&plain).map_err(|_| EngineError::Malformed)?;
        let verified = signed.verify().is_ok();
        // P4: aggregate metadata into the enclave cache.
        if self.config.preverify_cache {
            self.preverify.lock().insert(
                wire.wire_hash(),
                PreverifyEntry {
                    k_tx,
                    verified,
                    spent_cycles: cycles,
                },
            );
        }
        Ok(cycles)
    }

    /// Execute one transaction against `state` within the block context
    /// `ctx`. Returns the plaintext receipt, the sealed receipt (for
    /// confidential transactions), and the cost accounting.
    pub fn execute_transaction(
        &self,
        state: &StateDb,
        ctx: &mut ExecContext,
        wire: &WireTx,
        rng: &mut HmacDrbg,
    ) -> Result<(Receipt, Option<Vec<u8>>, TxStats), EngineError> {
        match wire {
            WireTx::Public(signed) => {
                if self.is_confidential() {
                    return Err(EngineError::WrongEngine);
                }
                ctx.counters.verifies += 1;
                ctx.counters.verify_cycles += self.model.sig_verify_cycles;
                if signed.verify().is_err() {
                    return Err(EngineError::Crypto);
                }
                let receipt = self.run_signed(state, ctx, signed)?;
                let counters = ctx.take_counters();
                Ok((
                    receipt,
                    None,
                    TxStats {
                        exec_cycles: counters.total_cycles(),
                        counters,
                    },
                ))
            }
            WireTx::Confidential(env) => {
                let tee = self.confidential.as_ref().ok_or(EngineError::WrongEngine)?;
                // C2: probe the pre-verification cache by wire hash.
                let cached = if self.config.preverify_cache {
                    self.preverify.lock().remove(&wire.wire_hash())
                } else {
                    None
                };
                let (k_tx, signed) = match cached {
                    Some(entry) => {
                        self.cache_stats.lock().preverify_hits += 1;
                        if !entry.verified {
                            return Err(EngineError::Crypto);
                        }
                        // C3: symmetric-only body decryption with cached k_tx.
                        ctx.counters.decrypts += 1;
                        let sym = self.model.aes_gcm_fixed_cycles
                            + env.body.len() as u64 * self.model.aes_gcm_cycles_per_byte;
                        ctx.counters.decrypt_cycles += sym;
                        // Verification already done in P3; attribute the
                        // pipelined cost so Table 1 shows it.
                        ctx.counters.verifies += 1;
                        ctx.counters.verify_cycles += self.model.sig_verify_cycles;
                        let plain = env
                            .open_body(&entry.k_tx, b"")
                            .map_err(|_| EngineError::Crypto)?;
                        let signed =
                            SignedTx::decode(&plain).map_err(|_| EngineError::Malformed)?;
                        (entry.k_tx, signed)
                    }
                    None => {
                        self.cache_stats.lock().preverify_misses += 1;
                        // Full asymmetric path inline.
                        ctx.counters.decrypts += 1;
                        ctx.counters.decrypt_cycles += self.model.envelope_open_cycles
                            + env.body.len() as u64 * self.model.aes_gcm_cycles_per_byte;
                        let (k_tx, plain) = env
                            .open(&tee.keys.envelope, b"")
                            .map_err(|_| EngineError::Crypto)?;
                        ctx.counters.verifies += 1;
                        ctx.counters.verify_cycles += self.model.sig_verify_cycles;
                        let signed =
                            SignedTx::decode(&plain).map_err(|_| EngineError::Malformed)?;
                        if signed.verify().is_err() {
                            return Err(EngineError::Crypto);
                        }
                        (k_tx, signed)
                    }
                };
                let receipt = self.run_signed(state, ctx, &signed)?;
                // Retain k_tx (sealed at commit under k_states) so the
                // authorization chain-code can later re-wrap it to parties
                // the contract's access rules admit (§3.2.3).
                let mut ktx_key = b"ktx|".to_vec();
                ktx_key.extend_from_slice(&receipt.tx_hash);
                ctx.write(full_key(&SYSTEM_KTX_ADDR, &ktx_key), Some(k_tx.to_vec()));
                let sealed = receipt.seal(&k_tx, rng).map_err(|_| EngineError::Crypto)?;
                let counters = ctx.take_counters();
                Ok((
                    receipt,
                    Some(sealed),
                    TxStats {
                        exec_cycles: counters.total_cycles(),
                        counters,
                    },
                ))
            }
        }
    }

    /// Dispatch a verified signed transaction: deployment or invocation.
    fn run_signed(
        &self,
        state: &StateDb,
        ctx: &mut ExecContext,
        signed: &SignedTx,
    ) -> Result<Receipt, EngineError> {
        let raw = &signed.raw;
        if self.config.enforce_nonces {
            // Replay protection: the sender's nonce must strictly increase.
            // Tracked as (sealed, for the confidential engine) system state
            // so replicas agree on it through the state root.
            // Namespaced per engine mode: the public and confidential
            // engines account independently (their ctxs merge into one
            // block batch, and the at-rest encodings differ).
            let mut nonce_key = if self.is_confidential() {
                b"nonce|c|".to_vec()
            } else {
                b"nonce|p|".to_vec()
            };
            nonce_key.extend_from_slice(&raw.sender);
            let fk = full_key(&SYSTEM_KTX_ADDR, &nonce_key);
            ctx.note_read(&fk);
            let last = match ctx.lookup(&fk).map(|v| v.cloned()) {
                Some(v) => v,
                None => {
                    let stored = state.get(&fk);
                    let plain = match (&stored, self.confidential.as_ref()) {
                        (Some(blob), Some(tee)) if blob.len() >= 12 => {
                            let mut nonce = [0u8; 12];
                            nonce.copy_from_slice(&blob[..12]);
                            tee.gcm_states
                                .open(
                                    &nonce,
                                    &state_aad(&SYSTEM_KTX_ADDR, &nonce_key),
                                    &blob[12..],
                                )
                                .ok()
                        }
                        (Some(v), None) => Some(v.clone()),
                        _ => None,
                    };
                    ctx.cache_read(fk.clone(), plain.clone());
                    plain
                }
            };
            let last_nonce = last
                .as_deref()
                .and_then(|v| v.try_into().ok().map(u64::from_le_bytes))
                .unwrap_or(0);
            if raw.nonce <= last_nonce {
                return Err(EngineError::Replay);
            }
            ctx.write(fk, Some(raw.nonce.to_le_bytes().to_vec()));
        }
        let (success, return_data) = if raw.contract == [0u8; 32] && raw.method == "deploy" {
            let address = self.deploy_from_tx(raw)?;
            (true, address.to_vec())
        } else {
            match self.invoke_inner(
                state,
                ctx,
                &raw.contract,
                &raw.method,
                &raw.args,
                &raw.sender,
            ) {
                Ok(out) => (true, out),
                Err(EngineError::Trap(t)) => (false, format!("trap: {t}").into_bytes()),
                Err(e) => return Err(e),
            }
        };
        Ok(Receipt {
            tx_hash: raw.hash(),
            sender: raw.sender,
            contract: raw.contract,
            success,
            return_data,
            logs: ctx.take_logs(),
        })
    }

    /// Rebuild this engine's in-memory contract registry from a logged
    /// wire transaction during WAL recovery. State writes replay from the
    /// logged batch; the registry (sealed code, outside the state DB) is
    /// the one side effect that must be re-derived, and
    /// [`deploy_from_tx`](Engine::deploy_from_tx) is deterministic in the
    /// transaction, so re-running it reproduces the pre-crash record
    /// byte-for-byte. Returns whether `wire` was a deployment.
    pub fn replay_deploy(&self, wire: &WireTx) -> Result<bool, EngineError> {
        let signed = match wire {
            WireTx::Public(signed) => signed.clone(),
            WireTx::Confidential(env) => {
                let tee = self.confidential.as_ref().ok_or(EngineError::WrongEngine)?;
                let (_k_tx, plain) = env
                    .open(&tee.keys.envelope, b"")
                    .map_err(|_| EngineError::Crypto)?;
                SignedTx::decode(&plain).map_err(|_| EngineError::Malformed)?
            }
        };
        if signed.raw.contract == [0u8; 32] && signed.raw.method == "deploy" {
            self.deploy_from_tx(&signed.raw)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Deployment transaction payload: `[vm_kind u8][confidential u8][code…]`.
    fn deploy_from_tx(&self, raw: &RawTx) -> Result<[u8; 32], EngineError> {
        if raw.args.len() < 2 {
            return Err(EngineError::Malformed);
        }
        let vm = match raw.args[0] {
            0 => VmKind::ConfideVm,
            1 => VmKind::Evm,
            _ => return Err(EngineError::Malformed),
        };
        let confidential = raw.args[1] == 1;
        if confidential && !self.is_confidential() {
            return Err(EngineError::WrongEngine);
        }
        let code = &raw.args[2..];
        // Deterministic address from deployer + nonce.
        let mut preimage = Vec::with_capacity(40);
        preimage.extend_from_slice(&raw.sender);
        preimage.extend_from_slice(&raw.nonce.to_le_bytes());
        let address = sha256(&preimage);
        self.deploy(address, code, vm, confidential)?;
        Ok(address)
    }

    /// Invoke `method` on the contract at `address` (used directly by the
    /// harnesses, and recursively by cross-contract calls).
    pub fn invoke_inner(
        &self,
        state: &StateDb,
        ctx: &mut ExecContext,
        address: &[u8; 32],
        method: &str,
        input: &[u8],
        sender: &[u8; 32],
    ) -> Result<Vec<u8>, EngineError> {
        if ctx.depth >= self.config.max_call_depth {
            return Err(EngineError::DepthExceeded);
        }
        ctx.depth += 1;
        let result = self.invoke_guarded(state, ctx, address, method, input, sender);
        ctx.depth -= 1;
        result
    }

    fn invoke_guarded(
        &self,
        state: &StateDb,
        ctx: &mut ExecContext,
        address: &[u8; 32],
        method: &str,
        input: &[u8],
        sender: &[u8; 32],
    ) -> Result<Vec<u8>, EngineError> {
        let loaded = self.fetch_code(ctx, address)?;
        ctx.counters.contract_calls += 1;
        ctx.counters.contract_cycles += CALL_FIXED_CYCLES;
        // Entering the enclave: one ecall with the marshalling mode from
        // config ([in] copy vs user_check).
        if self.is_confidential() {
            ctx.counters.ocalls += 1;
            ctx.counters.contract_cycles +=
                self.model.transition_warm_cycles + self.crossing_cost(input.len());
        }
        match loaded {
            LoadedCode::Vm(prepared) => {
                let vm = Vm::new(
                    prepared,
                    ExecConfig {
                        fuel: self.config.fuel,
                        fusion: self.config.fusion,
                        max_call_depth: 256,
                    },
                );
                let mut memory = self.mem_pool.take();
                if memory.capacity() == 0 {
                    // Pool miss: commit fresh EPC pages for the fixed
                    // linear memory (OPT1's memory pool avoids this).
                    let pages = (vm.memory_size() as u64).div_ceil(4096);
                    ctx.counters.contract_cycles += pages * MEM_COMMIT_CYCLES_PER_PAGE;
                    ctx.counters.mem_commit_cycles += pages * MEM_COMMIT_CYCLES_PER_PAGE;
                }
                let mut sdm = Sdm {
                    engine: self,
                    state,
                    ctx,
                    contract: *address,
                    sender: *sender,
                    input: input.to_vec(),
                    return_data: Vec::new(),
                };
                let outcome = vm.invoke(method, &[], &mut sdm, &mut memory);
                self.mem_pool.put(memory);
                let outcome = outcome.map_err(|t| EngineError::Trap(t.to_string()))?;
                ctx.counters.vm_instret += outcome.stats.instret;
                let mut cycles = outcome.stats.instret * self.model.vm_cycles_per_instr;
                if self.is_confidential() {
                    // MEE / EPC pressure on in-enclave interpretation.
                    cycles += cycles * self.model.tee_exec_overhead_vm_permille / 1000;
                }
                ctx.counters.contract_cycles += cycles;
                Ok(outcome.return_data)
            }
            LoadedCode::Evm(evm) => {
                let calldata = {
                    let mut d = confide_crypto::keccak256(method.as_bytes()).to_vec();
                    d.extend_from_slice(input);
                    d
                };
                let mut sdm = Sdm {
                    engine: self,
                    state,
                    ctx,
                    contract: *address,
                    sender: *sender,
                    input: input.to_vec(),
                    return_data: Vec::new(),
                };
                let outcome = evm
                    .run(&calldata, &mut sdm)
                    .map_err(|t| EngineError::Trap(t.to_string()))?;
                ctx.counters.vm_instret += outcome.stats.instret;
                let mut cycles = outcome.stats.instret * self.model.evm_cycles_per_instr;
                if self.is_confidential() {
                    // The EVM's per-op memory traffic makes the MEE tax
                    // several times heavier than CONFIDE-VM's.
                    cycles += cycles * self.model.tee_exec_overhead_evm_permille / 1000;
                }
                ctx.counters.contract_cycles += cycles;
                Ok(outcome.return_data)
            }
        }
    }

    fn crossing_cost(&self, bytes: usize) -> u64 {
        match self.config.crossing {
            CrossingMode::CopyAndCheck => self.model.copy_check_cycles_per_byte * bytes as u64,
            CrossingMode::UserCheck => self.model.user_check_cycles,
        }
    }

    fn fetch_code(
        &self,
        ctx: &mut ExecContext,
        address: &[u8; 32],
    ) -> Result<LoadedCode, EngineError> {
        let (stored, vm, confidential) = {
            let contracts = self.contracts.lock();
            let record = contracts
                .get(address)
                .ok_or(EngineError::UnknownContract(*address))?;
            (record.stored.clone(), record.vm, record.confidential)
        };
        // Cache key binds the contract identity to the stored bytes: a
        // spliced ciphertext must never hit another contract's cached
        // (already-authenticated) module.
        let key = sha256(&[&address[..], &stored].concat());
        if self.config.code_cache {
            if let Some(hit) = self.code_cache.lock().get(&key) {
                self.cache_stats.lock().code_hits += 1;
                return Ok(hit.clone());
            }
        }
        self.cache_stats.lock().code_misses += 1;
        // Miss: decrypt (confidential code) + decode, both charged.
        let plain = if confidential {
            let tee = self.confidential.as_ref().ok_or(EngineError::WrongEngine)?;
            ctx.counters.contract_cycles += self.model.aes_gcm_fixed_cycles
                + stored.len() as u64 * self.model.aes_gcm_cycles_per_byte;
            ctx.counters.state_crypto_bytes += stored.len() as u64;
            if stored.len() < 12 {
                return Err(EngineError::BadCode);
            }
            let mut nonce = [0u8; 12];
            nonce.copy_from_slice(&stored[..12]);
            tee.gcm_states
                .open(&nonce, &code_aad(address), &stored[12..])
                .map_err(|_| EngineError::Crypto)?
        } else {
            stored
        };
        ctx.counters.contract_cycles += plain.len() as u64 * DECODE_CYCLES_PER_BYTE;
        let loaded = match vm {
            VmKind::ConfideVm => {
                let module = Module::decode(&plain).map_err(|_| EngineError::BadCode)?;
                let cfg = ExecConfig {
                    fuel: self.config.fuel,
                    fusion: self.config.fusion,
                    max_call_depth: 256,
                };
                let prepared = if self.config.verify_bytecode {
                    // Deploy already proved the module well-formed; run the
                    // monomorphized unchecked interpreter loop.
                    Prepared::new_verified(module, &cfg)
                        .map_err(|e| EngineError::Verify(e.to_string()))?
                } else {
                    Prepared::new(module, &cfg)
                };
                LoadedCode::Vm(prepared)
            }
            VmKind::Evm => LoadedCode::Evm(Arc::new(Evm::new(plain, EvmConfig::default()))),
        };
        if self.config.code_cache {
            self.code_cache.lock().insert(key, loaded.clone());
        }
        Ok(loaded)
    }

    /// Seal the block's overlay into a write batch (deterministic nonces,
    /// so every replica produces byte-identical ciphertext and the state
    /// roots agree — §3.2.2: each engine "generates the same encrypted
    /// contract state").
    pub fn commit_block(
        &self,
        ctx: &mut ExecContext,
        height: u64,
    ) -> Result<WriteBatch, EngineError> {
        let mut batch = WriteBatch::new();
        let overlay = std::mem::take(&mut ctx.overlay);
        ctx.read_cache.clear();
        let mut entries: Vec<_> = overlay.into_iter().collect();
        entries.sort(); // deterministic batch order
        for (full_key, value) in entries {
            match value {
                None => {
                    batch.delete(full_key);
                }
                Some(plain) => {
                    let mut contract = [0u8; 32];
                    if full_key.len() >= 32 {
                        contract.copy_from_slice(&full_key[..32]);
                    }
                    let sealed = if self.contract_confidential(&contract) {
                        // A confidential overlay entry on a public engine is
                        // an engine-wiring bug; surface it as a typed error
                        // rather than panicking mid-commit.
                        let tee = self.confidential.as_ref().ok_or(EngineError::WrongEngine)?;
                        let nonce = state_nonce(&tee.keys.k_states, &full_key, height, &plain);
                        let mut blob = nonce.to_vec();
                        blob.extend_from_slice(&tee.gcm_states.seal(
                            &nonce,
                            &state_aad(&contract, &full_key[32..]),
                            &plain,
                        ));
                        blob
                    } else {
                        plain
                    };
                    batch.put(full_key, sealed);
                }
            }
        }
        Ok(batch)
    }
}

fn code_aad(address: &[u8; 32]) -> Vec<u8> {
    let mut aad = b"confide/d-protocol/code|".to_vec();
    aad.extend_from_slice(address);
    aad
}

fn code_nonce(k_states: &[u8; 32], address: &[u8; 32]) -> [u8; 12] {
    let mac = hmac_sha256(k_states, &[b"code-nonce", &address[..]].concat());
    let mut nonce = [0u8; 12];
    nonce.copy_from_slice(&mac[..12]);
    nonce
}

pub(crate) fn state_aad(contract: &[u8; 32], key: &[u8]) -> Vec<u8> {
    // Formula (3)'s "additional authentication data … related to on-chain
    // run-time information such as contract identity".
    let mut aad = b"confide/d-protocol/state|".to_vec();
    aad.extend_from_slice(contract);
    aad.push(b'|');
    aad.extend_from_slice(key);
    aad
}

fn state_nonce(k_states: &[u8; 32], full_key: &[u8], height: u64, value: &[u8]) -> [u8; 12] {
    // Deterministic across replicas, unique per (key, height, value).
    let mut input = Vec::with_capacity(full_key.len() + 8 + 32);
    input.extend_from_slice(full_key);
    input.extend_from_slice(&height.to_le_bytes());
    input.extend_from_slice(&sha256(value));
    let mac = hmac_sha256(k_states, &input);
    let mut nonce = [0u8; 12];
    nonce.copy_from_slice(&mac[..12]);
    nonce
}

/// A transaction's statically derived execution plan (see
/// [`Engine::plan_tx`]): the full-storage-key matchers it is proven to
/// stay within, the scheduling cost proxy, and the cycles spent deriving
/// the plan itself.
#[derive(Debug, Clone)]
pub struct TxPlan {
    /// Target contract address.
    pub contract: [u8; 32],
    /// Full-key matchers covering every key the transaction may read
    /// (contract keys + the engine's nonce read).
    pub reads: Vec<KeyMatcher>,
    /// Full-key matchers covering every key the transaction may write
    /// (contract keys + nonce write + retained-`k_tx` write).
    pub writes: Vec<KeyMatcher>,
    /// True when every matcher is exact — the plan supports
    /// speculation-free conflict grouping. Prefix matchers are still
    /// sound for the debug oracle but not for static scheduling.
    pub exact: bool,
    /// Deterministic LPT load estimate (virtual cycles).
    pub cost: u64,
    /// Cycles spent deriving the plan (envelope peek for confidential
    /// transactions; zero for public ones).
    pub plan_cycles: u64,
}

/// A plan's exact full-key footprint: `(touched, written)`.
pub type ExactSets = (BTreeSet<Vec<u8>>, BTreeSet<Vec<u8>>);

impl TxPlan {
    /// The exact `(touched, written)` full-key sets, when every matcher
    /// is exact — the inputs conflict grouping needs. `None` for plans
    /// with prefix matchers.
    pub fn exact_sets(&self) -> Option<ExactSets> {
        if !self.exact {
            return None;
        }
        let mut touched = BTreeSet::new();
        let mut written = BTreeSet::new();
        for m in &self.reads {
            touched.insert(m.exact_key()?.to_vec());
        }
        for m in &self.writes {
            let k = m.exact_key()?.to_vec();
            touched.insert(k.clone());
            written.insert(k);
        }
        Some((touched, written))
    }
}

/// The storage-key layout: contract address prefix + contract-local key.
/// Public so harnesses and tests can address raw state.
pub fn full_key(contract: &[u8; 32], key: &[u8]) -> Vec<u8> {
    let mut k = Vec::with_capacity(32 + key.len());
    k.extend_from_slice(contract);
    k.extend_from_slice(key);
    k
}

/// The Secure Data Module: the host interface the VMs call through. Reads
/// go overlay → read cache → database (ocall + D-Protocol decrypt); writes
/// land in the overlay and are sealed at block commit.
struct Sdm<'a> {
    engine: &'a Engine,
    state: &'a StateDb,
    ctx: &'a mut ExecContext,
    contract: [u8; 32],
    sender: [u8; 32],
    input: Vec<u8>,
    return_data: Vec<u8>,
}

impl<'a> Sdm<'a> {
    fn read(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let fk = full_key(&self.contract, key);
        self.ctx.note_read(&fk);
        self.ctx.counters.get_storage += 1;
        if let Some(hit) = self.ctx.lookup(&fk).map(|v| v.cloned()) {
            // SDM memory cache: no ocall, no decryption.
            self.ctx.counters.cache_hits += 1;
            self.ctx.counters.get_cycles += 300; // in-enclave map lookup
            return hit;
        }
        // Database read: one ocall + copy + (confidential) decrypt.
        let model = &self.engine.model;
        let raw = self.state.get(&fk);
        let mut cycles = model.kv_read_cycles; // untrusted DB point read
        if self.engine.is_confidential() {
            self.ctx.counters.ocalls += 1;
            cycles += model.transition_warm_cycles
                + self
                    .engine
                    .crossing_cost(raw.as_ref().map_or(0, |v| v.len()));
        }
        let plain = match raw {
            None => None,
            Some(stored) => {
                if self.engine.is_confidential()
                    && self.engine.contract_confidential(&self.contract)
                {
                    cycles += model.aes_gcm_fixed_cycles
                        + stored.len() as u64 * model.aes_gcm_cycles_per_byte;
                    self.ctx.counters.state_crypto_bytes += stored.len() as u64;
                    if stored.len() < 12 {
                        return None;
                    }
                    let mut nonce = [0u8; 12];
                    nonce.copy_from_slice(&stored[..12]);
                    let Some(tee) = self.engine.confidential.as_ref() else {
                        // Sealed bytes on a public engine: unreadable, treat
                        // as absent rather than panicking inside the host.
                        return None;
                    };
                    match tee.gcm_states.open(
                        &nonce,
                        &state_aad(&self.contract, key),
                        &stored[12..],
                    ) {
                        Ok(p) => Some(p),
                        Err(_) => {
                            // Tampered/spliced state: fail closed.
                            self.ctx.counters.get_cycles += cycles;
                            return None;
                        }
                    }
                } else {
                    Some(stored)
                }
            }
        };
        self.ctx.counters.get_cycles += cycles;
        self.ctx.cache_read(fk, plain.clone());
        plain
    }

    fn write(&mut self, key: &[u8], val: &[u8]) {
        let fk = full_key(&self.contract, key);
        self.ctx.counters.set_storage += 1;
        let model = &self.engine.model;
        let mut cycles = 0u64;
        if self.engine.is_confidential() && self.engine.contract_confidential(&self.contract) {
            // Seal cost charged at write time (actual sealing at commit).
            cycles += model.aes_gcm_fixed_cycles + val.len() as u64 * model.aes_gcm_cycles_per_byte;
            self.ctx.counters.state_crypto_bytes += val.len() as u64;
        }
        // Buffered into the overlay now; the DB write happens at commit
        // but is attributed to the operation, as the production profiler
        // does (Table 1 measures SetStorage end-to-end).
        cycles += model.kv_write_cycles;
        self.ctx.counters.set_cycles += cycles;
        self.ctx.write(fk, Some(val.to_vec()));
    }
}

impl<'a> HostApi for Sdm<'a> {
    fn input(&self) -> &[u8] {
        &self.input
    }

    fn set_return(&mut self, data: Vec<u8>) {
        self.return_data = data;
    }

    fn take_return(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.return_data)
    }

    fn get_storage(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, HostError> {
        Ok(self.read(key))
    }

    fn set_storage(&mut self, key: &[u8], val: &[u8]) -> Result<(), HostError> {
        self.write(key, val);
        Ok(())
    }

    fn call_contract(&mut self, addr: &[u8; 32], input: &[u8]) -> Result<Vec<u8>, HostError> {
        // Cross-contract call: stays inside the enclave (no boundary
        // crossing); the caller identity becomes this contract.
        self.engine
            .invoke_inner(self.state, self.ctx, addr, "main", input, &self.contract)
            .map_err(|e| HostError::Call(e.to_string()))
    }

    fn sender(&self) -> [u8; 32] {
        self.sender
    }

    fn log(&mut self, msg: &[u8]) {
        self.ctx.logs.push(msg.to_vec());
    }

    fn sha256(&mut self, data: &[u8]) -> [u8; 32] {
        self.ctx.counters.contract_cycles +=
            data.len() as u64 * self.engine.model.sha256_cycles_per_byte;
        confide_crypto::sha256(data)
    }

    fn keccak256(&mut self, data: &[u8]) -> [u8; 32] {
        self.ctx.counters.contract_cycles +=
            data.len() as u64 * self.engine.model.sha256_cycles_per_byte;
        confide_crypto::keccak256(data)
    }
}

impl<'a> EvmHost for Sdm<'a> {
    fn sload(
        &mut self,
        key: &confide_evm::U256,
    ) -> Result<confide_evm::U256, confide_evm::host::EvmHostError> {
        let kb = key.to_be_bytes();
        Ok(match self.read(&kb) {
            Some(v) if v.len() == 32 => {
                let mut w = [0u8; 32];
                w.copy_from_slice(&v);
                confide_evm::U256::from_be_bytes(&w)
            }
            _ => confide_evm::U256::ZERO,
        })
    }

    fn sstore(
        &mut self,
        key: &confide_evm::U256,
        value: &confide_evm::U256,
    ) -> Result<(), confide_evm::host::EvmHostError> {
        let kb = key.to_be_bytes();
        self.write(&kb, &value.to_be_bytes());
        Ok(())
    }

    fn caller(&self) -> confide_evm::U256 {
        confide_evm::U256::from_be_bytes(&self.sender)
    }

    fn call_contract(
        &mut self,
        addr: &confide_evm::U256,
        input: &[u8],
    ) -> Result<Vec<u8>, confide_evm::host::EvmHostError> {
        let address = addr.to_be_bytes();
        self.engine
            .invoke_inner(
                self.state,
                self.ctx,
                &address,
                "main",
                input,
                &self.contract,
            )
            .map_err(|e| confide_evm::host::EvmHostError::Call(e.to_string()))
    }

    fn log(&mut self, data: &[u8]) {
        self.ctx.logs.push(data.to_vec());
    }

    fn get_storage_bytes(
        &mut self,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>, confide_evm::host::EvmHostError> {
        Ok(self.read(key))
    }

    fn set_storage_bytes(
        &mut self,
        key: &[u8],
        val: &[u8],
    ) -> Result<(), confide_evm::host::EvmHostError> {
        self.write(key, val);
        Ok(())
    }

    fn keccak256(&mut self, data: &[u8]) -> [u8; 32] {
        self.ctx.counters.contract_cycles +=
            data.len() as u64 * self.engine.model.sha256_cycles_per_byte;
        confide_crypto::keccak256(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER_SRC: &str = r#"
        export fn main() {
            let n: int = atoi(storage_get(b"count"));
            n = n + atoi(input());
            storage_set(b"count", itoa(n));
            ret(itoa(n));
        }
    "#;

    fn addr(b: u8) -> [u8; 32] {
        [b; 32]
    }

    fn confidential_engine() -> Engine {
        let platform = TeePlatform::new(1, 1);
        let mut rng = HmacDrbg::from_u64(7);
        let keys = NodeKeys::generate(&mut rng);
        Engine::confidential(platform, keys, EngineConfig::default())
    }

    fn client_tx(engine: &Engine, contract: [u8; 32], method: &str, args: &[u8]) -> WireTx {
        client_tx_n(engine, contract, method, args, 1)
    }

    fn client_tx_n(
        engine: &Engine,
        contract: [u8; 32],
        method: &str,
        args: &[u8],
        nonce: u64,
    ) -> WireTx {
        let key = confide_crypto::ed25519::SigningKey::from_seed(&[3u8; 32]);
        let raw = RawTx {
            sender: key.verifying_key().0,
            contract,
            method: method.into(),
            args: args.to_vec(),
            nonce,
        };
        let signed = SignedTx::sign(raw.clone(), &key);
        let mut rng = HmacDrbg::from_u64(11);
        let k_tx = confide_crypto::envelope::derive_k_tx(&[5u8; 32], &raw.hash());
        let env = confide_crypto::envelope::Envelope::seal(
            &engine.pk_tx().unwrap(),
            &k_tx,
            b"",
            &signed.encode(),
            &mut rng,
        )
        .unwrap();
        WireTx::Confidential(env)
    }

    #[test]
    fn public_engine_runs_plain_contract() {
        let engine = Engine::public(EngineConfig::default());
        let code = confide_lang_build(COUNTER_SRC);
        engine
            .deploy(addr(1), &code, VmKind::ConfideVm, false)
            .unwrap();
        let state = StateDb::new();
        let mut ctx = ExecContext::new();
        let out = engine
            .invoke_inner(&state, &mut ctx, &addr(1), "main", b"5", &addr(9))
            .unwrap();
        assert_eq!(out, b"5");
        // Second call in the same block sees the overlay.
        let out = engine
            .invoke_inner(&state, &mut ctx, &addr(1), "main", b"3", &addr(9))
            .unwrap();
        assert_eq!(out, b"8");
        assert_eq!(ctx.counters.contract_calls, 2);
        assert!(ctx.counters.get_storage >= 2);
    }

    // Helper shelling into confide-lang via the dev-dependency below.
    fn confide_lang_build(src: &str) -> Vec<u8> {
        confide_lang::build_vm(src).unwrap()
    }

    #[test]
    fn confidential_end_to_end_with_sealed_state() {
        let engine = confidential_engine();
        let code = confide_lang_build(COUNTER_SRC);
        engine
            .deploy(addr(1), &code, VmKind::ConfideVm, true)
            .unwrap();
        let mut state = StateDb::new();
        let mut ctx = ExecContext::new();
        let mut rng = HmacDrbg::from_u64(2);

        let wire = client_tx(&engine, addr(1), "main", b"41");
        let (receipt, sealed, stats) = engine
            .execute_transaction(&state, &mut ctx, &wire, &mut rng)
            .unwrap();
        assert!(receipt.success);
        assert_eq!(receipt.return_data, b"41");
        assert!(sealed.is_some());
        assert!(stats.counters.decrypts == 1);
        assert!(stats.exec_cycles > 0);

        // Commit: state lands sealed, unreadable through the raw DB.
        let batch = engine.commit_block(&mut ctx, 1).unwrap();
        state.apply_block(1, &batch).unwrap();
        let fk = full_key(&addr(1), b"count");
        let stored = state.get(&fk).unwrap();
        assert_ne!(stored, b"41".to_vec());
        assert!(!stored.windows(2).any(|w| w == b"41"), "plaintext leaked");

        // A fresh context reads it back through the SDM decrypt path.
        let mut ctx2 = ExecContext::new();
        let out = engine
            .invoke_inner(&state, &mut ctx2, &addr(1), "main", b"1", &addr(9))
            .unwrap();
        assert_eq!(out, b"42");
        assert_eq!(ctx2.counters.cache_hits, 0);
    }

    #[test]
    fn preverify_cache_hit_skips_asymmetric_cost() {
        let engine = confidential_engine();
        let code = confide_lang_build(COUNTER_SRC);
        engine
            .deploy(addr(1), &code, VmKind::ConfideVm, true)
            .unwrap();
        let state = StateDb::new();
        let mut rng = HmacDrbg::from_u64(2);

        let wire_cold = client_tx_n(&engine, addr(1), "main", b"1", 1);
        let wire_warm = client_tx_n(&engine, addr(1), "main", b"1", 2);
        // Without preverify: decrypt cost = asymmetric.
        let mut ctx = ExecContext::new();
        let (_, _, cold) = engine
            .execute_transaction(&state, &mut ctx, &wire_cold, &mut rng)
            .unwrap();
        // With preverify: decrypt cost = symmetric only.
        engine.preverify(&wire_warm).unwrap();
        let (_, _, warm) = engine
            .execute_transaction(&state, &mut ctx, &wire_warm, &mut rng)
            .unwrap();
        assert!(
            warm.counters.decrypt_cycles < cold.counters.decrypt_cycles / 5,
            "warm {} cold {}",
            warm.counters.decrypt_cycles,
            cold.counters.decrypt_cycles
        );
        let cs = engine.cache_stats();
        assert_eq!(cs.preverify_hits, 1);
        assert_eq!(cs.preverify_misses, 1);
    }

    #[test]
    fn code_cache_avoids_repeat_decode() {
        let engine = confidential_engine();
        let code = confide_lang_build(COUNTER_SRC);
        engine
            .deploy(addr(1), &code, VmKind::ConfideVm, true)
            .unwrap();
        let state = StateDb::new();
        let mut ctx = ExecContext::new();
        for _ in 0..3 {
            engine
                .invoke_inner(&state, &mut ctx, &addr(1), "main", b"1", &addr(9))
                .unwrap();
        }
        let cs = engine.cache_stats();
        assert_eq!(cs.code_misses, 1);
        assert_eq!(cs.code_hits, 2);
    }

    #[test]
    fn tampered_sealed_state_fails_closed() {
        let engine = confidential_engine();
        let code = confide_lang_build(COUNTER_SRC);
        engine
            .deploy(addr(1), &code, VmKind::ConfideVm, true)
            .unwrap();
        let mut state = StateDb::new();
        let mut ctx = ExecContext::new();
        engine
            .invoke_inner(&state, &mut ctx, &addr(1), "main", b"41", &addr(9))
            .unwrap();
        let batch = engine.commit_block(&mut ctx, 1).unwrap();
        state.apply_block(1, &batch).unwrap();
        // Malicious host flips one byte of the sealed value.
        let fk = full_key(&addr(1), b"count");
        let mut stored = state.get(&fk).unwrap();
        let n = stored.len();
        stored[n - 1] ^= 1;
        state.tamper_raw(&fk, Some(&stored));
        // The SDM treats it as absent (fails closed), so the counter
        // restarts from zero instead of using attacker-controlled data.
        let mut ctx2 = ExecContext::new();
        let out = engine
            .invoke_inner(&state, &mut ctx2, &addr(1), "main", b"1", &addr(9))
            .unwrap();
        assert_eq!(out, b"1");
    }

    #[test]
    fn cross_contract_calls_work_and_count() {
        let engine = Engine::public(EngineConfig::default());
        let callee_src = r#"
            export fn main() { ret(concat(b"callee:", input())); }
        "#;
        let caller_src = r#"
            export fn main() {
                let target: bytes = alloc(32);
                let i: int = 0;
                while (i < 32) { set_byte(target, i, 2); i = i + 1; }
                ret(call(target, input()));
            }
        "#;
        engine
            .deploy(
                addr(2),
                &confide_lang_build(callee_src),
                VmKind::ConfideVm,
                false,
            )
            .unwrap();
        engine
            .deploy(
                addr(1),
                &confide_lang_build(caller_src),
                VmKind::ConfideVm,
                false,
            )
            .unwrap();
        let state = StateDb::new();
        let mut ctx = ExecContext::new();
        let out = engine
            .invoke_inner(&state, &mut ctx, &addr(1), "main", b"ping", &addr(9))
            .unwrap();
        assert_eq!(out, b"callee:ping");
        assert_eq!(ctx.counters.contract_calls, 2);
    }

    #[test]
    fn deployment_via_transaction() {
        let engine = Engine::public(EngineConfig::default());
        let key = confide_crypto::ed25519::SigningKey::from_seed(&[8u8; 32]);
        let code = confide_lang_build(COUNTER_SRC);
        let mut args = vec![0u8, 0u8]; // ConfideVm, public
        args.extend_from_slice(&code);
        let raw = RawTx {
            sender: key.verifying_key().0,
            contract: [0u8; 32],
            method: "deploy".into(),
            args,
            nonce: 7,
        };
        let wire = WireTx::Public(SignedTx::sign(raw, &key));
        let state = StateDb::new();
        let mut ctx = ExecContext::new();
        let mut rng = HmacDrbg::from_u64(1);
        let (receipt, _, _) = engine
            .execute_transaction(&state, &mut ctx, &wire, &mut rng)
            .unwrap();
        assert!(receipt.success);
        let mut address = [0u8; 32];
        address.copy_from_slice(&receipt.return_data);
        assert!(engine.has_contract(&address));
        // And it runs.
        let out = engine
            .invoke_inner(&state, &mut ctx, &address, "main", b"9", &addr(9))
            .unwrap();
        assert_eq!(out, b"9");
    }

    #[test]
    fn evm_contract_runs_through_sdm() {
        let engine = confidential_engine();
        let code = confide_lang::build_evm(COUNTER_SRC).unwrap();
        engine.deploy(addr(4), &code, VmKind::Evm, true).unwrap();
        let state = StateDb::new();
        let mut ctx = ExecContext::new();
        let out = engine
            .invoke_inner(&state, &mut ctx, &addr(4), "main", b"7", &addr(9))
            .unwrap();
        assert_eq!(out, b"7");
        let out = engine
            .invoke_inner(&state, &mut ctx, &addr(4), "main", b"3", &addr(9))
            .unwrap();
        assert_eq!(out, b"10");
        // EVM charges more cycles per instruction than CONFIDE-VM.
        assert!(ctx.counters.vm_instret > 0);
    }

    #[test]
    fn garbage_evm_deploy_rejected_at_deploy_time() {
        // Regression: the EVM branch of `deploy` used to skip verification
        // entirely, so `verify_bytecode: true` was silently ignored and
        // garbage only surfaced as a trap at first invoke.
        let engine = confidential_engine();
        let valid = confide_lang::build_evm(COUNTER_SRC).unwrap();

        // A truncated blob (cut mid-code, dangling PUSH4 label fixups).
        let truncated = &valid[..valid.len() / 2];
        match engine.deploy(addr(5), truncated, VmKind::Evm, true) {
            Err(EngineError::Verify(_)) => {}
            other => panic!("truncated EVM blob deployed: {other:?}"),
        }
        // Arbitrary garbage bytes.
        match engine.deploy(addr(5), &[0xcc, 0xdd, 0xee], VmKind::Evm, true) {
            Err(EngineError::Verify(_)) => {}
            other => panic!("garbage EVM blob deployed: {other:?}"),
        }
        assert!(!engine.has_contract(&addr(5)));

        // With verification disabled the old permissive behavior remains
        // reachable for harnesses that want raw bytes.
        let lax = Engine::public(EngineConfig {
            verify_bytecode: false,
            ..EngineConfig::default()
        });
        lax.deploy(addr(5), &[0xcc, 0xdd, 0xee], VmKind::Evm, false)
            .unwrap();
        assert!(lax.has_contract(&addr(5)));
    }

    #[test]
    fn ccl_contract_calls_evm_contract_confidentially() {
        // Cross-engine call inside one enclave transaction: a CONFIDE-VM
        // caller invokes an EVM callee through the SDM's `call_contract`
        // seam; both contracts are confidential, and the callee's state
        // lands sealed in the same journal/commit as the caller's.
        let engine = confidential_engine();
        let evm_callee = confide_lang::build_evm(COUNTER_SRC).unwrap();
        engine
            .deploy(addr(2), &evm_callee, VmKind::Evm, true)
            .unwrap();
        let caller_src = r#"
            export fn main() {
                let target: bytes = alloc(32);
                let i: int = 0;
                while (i < 32) { set_byte(target, i, 2); i = i + 1; }
                ret(call(target, input()));
            }
        "#;
        engine
            .deploy(
                addr(1),
                &confide_lang_build(caller_src),
                VmKind::ConfideVm,
                true,
            )
            .unwrap();
        let mut state = StateDb::new();
        let mut ctx = ExecContext::new();
        let out = engine
            .invoke_inner(&state, &mut ctx, &addr(1), "main", b"5", &addr(9))
            .unwrap();
        assert_eq!(out, b"5");
        let out = engine
            .invoke_inner(&state, &mut ctx, &addr(1), "main", b"3", &addr(9))
            .unwrap();
        assert_eq!(out, b"8");
        // Both engines ran in the same context: a CONFIDE-VM frame and
        // EVM instructions were both metered.
        assert_eq!(ctx.counters.contract_calls, 4); // 2 invokes × 2 frames
        assert!(ctx.counters.vm_instret > 0);

        // The EVM callee's counter commits sealed under *its* address —
        // confidential fields crossed the engine boundary only through
        // the SDM, never as plaintext state.
        let batch = engine.commit_block(&mut ctx, 1).unwrap();
        state.apply_block(1, &batch).unwrap();
        let fk = full_key(&addr(2), b"count");
        let stored = state.get(&fk).expect("callee state committed");
        assert_ne!(stored, b"8".to_vec(), "callee state stored in plaintext");
        let mut ctx2 = ExecContext::new();
        let out = engine
            .invoke_inner(&state, &mut ctx2, &addr(2), "main", b"0", &addr(9))
            .unwrap();
        assert_eq!(out, b"8", "callee state did not persist");
    }

    #[test]
    fn wrong_engine_rejected() {
        let public = Engine::public(EngineConfig::default());
        let conf = confidential_engine();
        let key = confide_crypto::ed25519::SigningKey::from_seed(&[8u8; 32]);
        let raw = RawTx {
            sender: key.verifying_key().0,
            contract: addr(1),
            method: "main".into(),
            args: vec![],
            nonce: 1,
        };
        let pub_tx = WireTx::Public(SignedTx::sign(raw, &key));
        let mut ctx = ExecContext::new();
        let mut rng = HmacDrbg::from_u64(1);
        let state = StateDb::new();
        assert_eq!(
            conf.execute_transaction(&state, &mut ctx, &pub_tx, &mut rng)
                .unwrap_err(),
            EngineError::WrongEngine
        );
        let conf_tx = client_tx(&conf, addr(1), "main", b"");
        assert_eq!(
            public
                .execute_transaction(&state, &mut ctx, &conf_tx, &mut rng)
                .unwrap_err(),
            EngineError::WrongEngine
        );
    }

    #[test]
    fn trap_produces_failed_receipt_not_error() {
        let engine = Engine::public(EngineConfig::default());
        let src = r#"export fn main() { let x: int = 1 / atoi(input()); ret(itoa(x)); }"#;
        engine
            .deploy(addr(1), &confide_lang_build(src), VmKind::ConfideVm, false)
            .unwrap();
        let key = confide_crypto::ed25519::SigningKey::from_seed(&[8u8; 32]);
        let raw = RawTx {
            sender: key.verifying_key().0,
            contract: addr(1),
            method: "main".into(),
            args: b"0".to_vec(),
            nonce: 1,
        };
        let wire = WireTx::Public(SignedTx::sign(raw, &key));
        let state = StateDb::new();
        let mut ctx = ExecContext::new();
        let mut rng = HmacDrbg::from_u64(1);
        let (receipt, _, _) = engine
            .execute_transaction(&state, &mut ctx, &wire, &mut rng)
            .unwrap();
        assert!(!receipt.success);
        assert!(String::from_utf8_lossy(&receipt.return_data).contains("trap"));
    }

    #[test]
    fn contract_upgrade_replaces_behavior_and_rotates_cache() {
        // §3.3: "Updating the rules should be done through upgrading the
        // contract." Redeployment swaps the sealed code; the code cache is
        // keyed by stored-code hash so stale entries can never be hit.
        let engine = confidential_engine();
        let v1 = confide_lang_build(r#"export fn main() { ret(b"v1"); }"#);
        let v2 = confide_lang_build(r#"export fn main() { ret(b"v2"); }"#);
        engine
            .deploy(addr(1), &v1, VmKind::ConfideVm, true)
            .unwrap();
        let state = StateDb::new();
        let mut ctx = ExecContext::new();
        let out = engine
            .invoke_inner(&state, &mut ctx, &addr(1), "main", b"", &addr(9))
            .unwrap();
        assert_eq!(out, b"v1");
        engine
            .deploy(addr(1), &v2, VmKind::ConfideVm, true)
            .unwrap();
        let out = engine
            .invoke_inner(&state, &mut ctx, &addr(1), "main", b"", &addr(9))
            .unwrap();
        assert_eq!(out, b"v2");
        // Two misses (one per code version), one hit maximum.
        let cs = engine.cache_stats();
        assert_eq!(cs.code_misses, 2);
    }

    #[test]
    fn sealed_code_of_two_contracts_not_interchangeable() {
        // D-Protocol binds code ciphertext to the contract identity: a
        // malicious host copying contract A's sealed code over contract B's
        // record produces a decryption failure, not foreign-code execution.
        let engine = confidential_engine();
        let code = confide_lang_build(r#"export fn main() { ret(b"genuine"); }"#);
        engine
            .deploy(addr(1), &code, VmKind::ConfideVm, true)
            .unwrap();
        engine
            .deploy(addr(2), &code, VmKind::ConfideVm, true)
            .unwrap();
        // Splice: read A's stored blob, write into B's record.
        let stored_a = {
            let contracts = engine.contracts.lock();
            contracts.get(&addr(1)).unwrap().stored.clone()
        };
        {
            let mut contracts = engine.contracts.lock();
            contracts.get_mut(&addr(2)).unwrap().stored = stored_a;
        }
        let state = StateDb::new();
        let mut ctx = ExecContext::new();
        // A still runs; B now fails closed.
        assert_eq!(
            engine
                .invoke_inner(&state, &mut ctx, &addr(1), "main", b"", &addr(9))
                .unwrap(),
            b"genuine"
        );
        assert_eq!(
            engine
                .invoke_inner(&state, &mut ctx, &addr(2), "main", b"", &addr(9))
                .unwrap_err(),
            EngineError::Crypto
        );
    }

    #[test]
    fn replayed_transaction_rejected() {
        let engine = confidential_engine();
        let code = confide_lang_build(COUNTER_SRC);
        engine
            .deploy(addr(1), &code, VmKind::ConfideVm, true)
            .unwrap();
        let state = StateDb::new();
        let mut ctx = ExecContext::new();
        let mut rng = HmacDrbg::from_u64(2);
        let wire = client_tx_n(&engine, addr(1), "main", b"10", 1);
        engine
            .execute_transaction(&state, &mut ctx, &wire, &mut rng)
            .unwrap();
        // Byte-identical replay in the same block context: rejected.
        assert_eq!(
            engine
                .execute_transaction(&state, &mut ctx, &wire, &mut rng)
                .unwrap_err(),
            EngineError::Replay
        );
        // Stale nonce after a newer one: also rejected.
        let newer = client_tx_n(&engine, addr(1), "main", b"1", 5);
        engine
            .execute_transaction(&state, &mut ctx, &newer, &mut rng)
            .unwrap();
        let stale = client_tx_n(&engine, addr(1), "main", b"1", 3);
        assert_eq!(
            engine
                .execute_transaction(&state, &mut ctx, &stale, &mut rng)
                .unwrap_err(),
            EngineError::Replay
        );
    }

    /// A module that decodes fine but fails stack-discipline verification:
    /// `Add` with an empty operand stack.
    fn underflowing_module_bytes() -> Vec<u8> {
        use confide_vm::{FuncBuilder, Instr, ModuleBuilder};
        let mut f = FuncBuilder::new("main", 0, 0);
        f.op(Instr::Add).op(Instr::Ret);
        let mut m = ModuleBuilder::new();
        m.memory(1 << 16);
        m.func(f.finish());
        m.finish().encode()
    }

    #[test]
    fn malformed_bytecode_rejected_at_deploy() {
        let engine = Engine::public(EngineConfig::default());
        let err = engine
            .deploy(
                addr(1),
                &underflowing_module_bytes(),
                VmKind::ConfideVm,
                false,
            )
            .unwrap_err();
        match err {
            EngineError::Verify(msg) => assert!(msg.contains("underflow"), "{msg}"),
            other => panic!("expected Verify, got {other:?}"),
        }
        assert!(!engine.has_contract(&addr(1)));
    }

    #[test]
    fn undecodable_bytecode_rejected_at_deploy() {
        let engine = Engine::public(EngineConfig::default());
        assert_eq!(
            engine
                .deploy(addr(1), b"not a module", VmKind::ConfideVm, false)
                .unwrap_err(),
            EngineError::BadCode
        );
    }

    #[test]
    fn verify_gate_can_be_disabled() {
        let cfg = EngineConfig {
            verify_bytecode: false,
            ..EngineConfig::default()
        };
        let engine = Engine::public(cfg);
        engine
            .deploy(
                addr(1),
                &underflowing_module_bytes(),
                VmKind::ConfideVm,
                false,
            )
            .unwrap();
        assert!(engine.has_contract(&addr(1)));
    }

    const LEAKY_SRC: &str = r#"
        export fn main() {
            let secret: bytes = storage_get(b"acct:alice");
            log(secret);
            ret(b"ok");
        }
    "#;

    fn acct_schema_keys() -> confide_ccle::ConfidentialKeys {
        confide_ccle::parse_schema(
            r#"
            attribute "confidential";
            attribute "map";
            table Entry { key: string; value: string; }
            table Bank { acct: [Entry](map, confidential); }
            root_type Bank;
            "#,
        )
        .unwrap()
        .confidential_keys()
    }

    #[test]
    fn leaky_ccl_rejected_by_default() {
        let engine = confidential_engine();
        let keys = acct_schema_keys();
        let err = engine
            .deploy_ccl(addr(1), LEAKY_SRC, Some(&keys), true)
            .unwrap_err();
        match err {
            EngineError::Leaky(msg) => assert!(msg.contains("log"), "{msg}"),
            other => panic!("expected Leaky, got {other:?}"),
        }
        assert!(!engine.has_contract(&addr(1)));
    }

    #[test]
    fn allow_leaky_escape_hatch_deploys_with_report() {
        let platform = TeePlatform::new(1, 1);
        let mut rng = HmacDrbg::from_u64(7);
        let keys = NodeKeys::generate(&mut rng);
        let cfg = EngineConfig {
            allow_leaky: true,
            ..EngineConfig::default()
        };
        let engine = Engine::confidential(platform, keys, cfg);
        let schema = acct_schema_keys();
        let report = engine
            .deploy_ccl(addr(1), LEAKY_SRC, Some(&schema), true)
            .unwrap();
        assert!(!report.deployable(), "report should still carry the errors");
        assert!(engine.has_contract(&addr(1)));
    }

    #[test]
    fn clean_ccl_deploys_with_clean_report() {
        let engine = confidential_engine();
        let report = engine.deploy_ccl(addr(1), COUNTER_SRC, None, true).unwrap();
        assert!(report.deployable());
        assert!(engine.has_contract(&addr(1)));
        // And the deployed contract actually runs.
        let state = StateDb::new();
        let mut ctx = ExecContext::new();
        let out = engine
            .invoke_inner(&state, &mut ctx, &addr(1), "main", b"5", &addr(9))
            .unwrap();
        assert_eq!(out, b"5");
    }

    #[test]
    fn ccl_compile_error_surfaces() {
        let engine = Engine::public(EngineConfig::default());
        let err = engine
            .deploy_ccl(addr(1), "export fn main() { let x: int = ; }", None, false)
            .unwrap_err();
        assert!(matches!(err, EngineError::Compile(_)), "{err:?}");
    }
}
