//! Per-block execution context: the state overlay and pending writes that
//! become the block's write batch at commit.

use crate::counters::OpCounters;
use std::collections::HashMap;

/// Mutable execution state threaded through all transactions of one block.
#[derive(Default)]
pub struct ExecContext {
    /// Plaintext overlay of uncommitted writes: full storage key →
    /// Some(value) or None (deletion). Reads hit this before the database.
    pub overlay: HashMap<Vec<u8>, Option<Vec<u8>>>,
    /// SDM read cache: plaintext of values already fetched + decrypted
    /// from the database this block ("a memory cache for I/O efficiency",
    /// §3.2.1).
    pub read_cache: HashMap<Vec<u8>, Option<Vec<u8>>>,
    /// Counters for the current transaction (reset per tx).
    pub counters: OpCounters,
    /// Log lines emitted by the current transaction (reset per tx).
    pub logs: Vec<Vec<u8>>,
    /// Current call depth (re-entrancy / recursion bound).
    pub depth: usize,
}

impl ExecContext {
    /// Fresh context for a new block.
    pub fn new() -> ExecContext {
        ExecContext::default()
    }

    /// Take the counters for the finished transaction and reset them.
    pub fn take_counters(&mut self) -> OpCounters {
        std::mem::take(&mut self.counters)
    }

    /// Take the accumulated logs for the finished transaction.
    pub fn take_logs(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.logs)
    }

    /// Look up a key in overlay-then-cache. `None` = not seen this block.
    pub fn lookup(&self, key: &[u8]) -> Option<Option<&Vec<u8>>> {
        if let Some(v) = self.overlay.get(key) {
            return Some(v.as_ref());
        }
        self.read_cache.get(key).map(|v| v.as_ref())
    }

    /// Record a write (visible to subsequent reads in this block).
    pub fn write(&mut self, key: Vec<u8>, value: Option<Vec<u8>>) {
        self.overlay.insert(key, value);
    }

    /// Record a database read in the cache.
    pub fn cache_read(&mut self, key: Vec<u8>, value: Option<Vec<u8>>) {
        self.read_cache.insert(key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_wins_over_cache() {
        let mut ctx = ExecContext::new();
        ctx.cache_read(b"k".to_vec(), Some(b"old".to_vec()));
        assert_eq!(ctx.lookup(b"k"), Some(Some(&b"old".to_vec())));
        ctx.write(b"k".to_vec(), Some(b"new".to_vec()));
        assert_eq!(ctx.lookup(b"k"), Some(Some(&b"new".to_vec())));
        ctx.write(b"k".to_vec(), None);
        assert_eq!(ctx.lookup(b"k"), Some(None));
    }

    #[test]
    fn unknown_key_is_none() {
        let ctx = ExecContext::new();
        assert_eq!(ctx.lookup(b"missing"), None);
    }

    #[test]
    fn take_counters_resets() {
        let mut ctx = ExecContext::new();
        ctx.counters.get_storage = 3;
        let c = ctx.take_counters();
        assert_eq!(c.get_storage, 3);
        assert_eq!(ctx.counters.get_storage, 0);
    }
}
