//! Per-block execution context: the state overlay and pending writes that
//! become the block's write batch at commit.

use crate::counters::OpCounters;
use std::collections::{BTreeSet, HashMap};

/// One undo-journal record: the written key plus the overlay entry it
/// displaced (`None` when the key was absent from the overlay).
type JournalEntry = (Vec<u8>, Option<Option<Vec<u8>>>);

/// The read and write key sets one transaction touched while journaled —
/// the raw material for conflict grouping in the parallel block executor
/// (§6.2). Keys are full storage keys (contract-prefixed); `BTreeSet`
/// keeps iteration deterministic across replicas.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RwSet {
    /// Every key the transaction read (from overlay, cache, or database).
    pub reads: BTreeSet<Vec<u8>>,
    /// Every key the transaction wrote (including deletions).
    pub writes: BTreeSet<Vec<u8>>,
}

impl RwSet {
    /// All keys the transaction touched: reads ∪ writes.
    pub fn touched(&self) -> BTreeSet<Vec<u8>> {
        self.reads.union(&self.writes).cloned().collect()
    }

    /// Soundness oracle for the static access analysis (§6.2 fast path):
    /// true when every journaled read key is admitted by a read **or**
    /// write matcher (a summary lists a read-modify-write key once, under
    /// writes) and every journaled write key by a write matcher. The
    /// parallel executor debug-asserts this for each executed transaction
    /// against its [`TxPlan`](crate::engine::TxPlan), turning an
    /// under-approximating summary into a loud deterministic failure
    /// instead of a silent wrong-state root.
    pub fn covered_by(
        &self,
        read_matchers: &[confide_vm::KeyMatcher],
        write_matchers: &[confide_vm::KeyMatcher],
    ) -> bool {
        self.writes
            .iter()
            .all(|k| write_matchers.iter().any(|m| m.matches(k)))
            && self.reads.iter().all(|k| {
                read_matchers.iter().any(|m| m.matches(k))
                    || write_matchers.iter().any(|m| m.matches(k))
            })
    }

    /// True when `self` wrote a key the `other` transaction touched, or
    /// vice versa — the two must serialize.
    pub fn conflicts_with(&self, other: &RwSet) -> bool {
        self.writes
            .iter()
            .any(|k| other.reads.contains(k) || other.writes.contains(k))
            || other.writes.iter().any(|k| self.reads.contains(k))
    }
}

/// Mutable execution state threaded through all transactions of one block.
#[derive(Default)]
pub struct ExecContext {
    /// Plaintext overlay of uncommitted writes: full storage key →
    /// Some(value) or None (deletion). Reads hit this before the database.
    pub overlay: HashMap<Vec<u8>, Option<Vec<u8>>>,
    /// SDM read cache: plaintext of values already fetched + decrypted
    /// from the database this block ("a memory cache for I/O efficiency",
    /// §3.2.1).
    pub read_cache: HashMap<Vec<u8>, Option<Vec<u8>>>,
    /// Counters for the current transaction (reset per tx).
    pub counters: OpCounters,
    /// Log lines emitted by the current transaction (reset per tx).
    pub logs: Vec<Vec<u8>>,
    /// Current call depth (re-entrancy / recursion bound).
    pub depth: usize,
    /// Undo journal for the transaction currently executing under
    /// [`ExecContext::begin_tx`]: `(key, prior overlay entry)` where the
    /// prior entry is `None` when the key was absent from the overlay.
    journal: Vec<JournalEntry>,
    /// Whether writes are currently journaled.
    journaling: bool,
    /// Read/write key sets of the journaled transaction (reset per tx).
    rw: RwSet,
}

impl ExecContext {
    /// Fresh context for a new block.
    pub fn new() -> ExecContext {
        ExecContext::default()
    }

    /// Take the counters for the finished transaction and reset them.
    pub fn take_counters(&mut self) -> OpCounters {
        std::mem::take(&mut self.counters)
    }

    /// Take the accumulated logs for the finished transaction.
    pub fn take_logs(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.logs)
    }

    /// Look up a key in overlay-then-cache. `None` = not seen this block.
    pub fn lookup(&self, key: &[u8]) -> Option<Option<&Vec<u8>>> {
        if let Some(v) = self.overlay.get(key) {
            return Some(v.as_ref());
        }
        self.read_cache.get(key).map(|v| v.as_ref())
    }

    /// Record a write (visible to subsequent reads in this block).
    pub fn write(&mut self, key: Vec<u8>, value: Option<Vec<u8>>) {
        if self.journaling {
            self.journal
                .push((key.clone(), self.overlay.get(&key).cloned()));
            self.rw.writes.insert(key.clone());
        }
        self.overlay.insert(key, value);
    }

    /// Record that the journaled transaction read `key` (whether it hit
    /// the overlay, the cache, or the database — a miss is still a read
    /// dependency). No-op outside a journaled transaction.
    pub fn note_read(&mut self, key: &[u8]) {
        if self.journaling && !self.rw.reads.contains(key) {
            self.rw.reads.insert(key.to_vec());
        }
    }

    /// Start journaling overlay writes for one transaction so a mid-block
    /// failure can be undone without poisoning the whole batch (the
    /// lenient server-side execution path of `confide-net`).
    pub fn begin_tx(&mut self) {
        self.journal.clear();
        self.rw = RwSet::default();
        self.journaling = true;
    }

    /// Accept the current transaction's writes and stop journaling.
    /// Returns the transaction's read/write key sets for conflict
    /// grouping.
    pub fn commit_tx(&mut self) -> RwSet {
        self.journal.clear();
        self.journaling = false;
        std::mem::take(&mut self.rw)
    }

    /// Undo every overlay write made since [`ExecContext::begin_tx`] and
    /// discard the transaction's counters and logs. The read cache is
    /// deliberately kept: database reads are idempotent and stay valid.
    ///
    /// Still returns the read/write sets: a *failed* transaction's reads
    /// are real dependencies (it observed state before aborting), so the
    /// parallel executor must schedule it like any other.
    pub fn rollback_tx(&mut self) -> RwSet {
        while let Some((key, prior)) = self.journal.pop() {
            match prior {
                Some(entry) => {
                    self.overlay.insert(key, entry);
                }
                None => {
                    self.overlay.remove(&key);
                }
            }
        }
        self.journaling = false;
        self.counters = OpCounters::default();
        self.logs.clear();
        std::mem::take(&mut self.rw)
    }

    /// Record a database read in the cache.
    pub fn cache_read(&mut self, key: Vec<u8>, value: Option<Vec<u8>>) {
        self.read_cache.insert(key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_wins_over_cache() {
        let mut ctx = ExecContext::new();
        ctx.cache_read(b"k".to_vec(), Some(b"old".to_vec()));
        assert_eq!(ctx.lookup(b"k"), Some(Some(&b"old".to_vec())));
        ctx.write(b"k".to_vec(), Some(b"new".to_vec()));
        assert_eq!(ctx.lookup(b"k"), Some(Some(&b"new".to_vec())));
        ctx.write(b"k".to_vec(), None);
        assert_eq!(ctx.lookup(b"k"), Some(None));
    }

    #[test]
    fn unknown_key_is_none() {
        let ctx = ExecContext::new();
        assert_eq!(ctx.lookup(b"missing"), None);
    }

    #[test]
    fn rollback_restores_prior_overlay() {
        let mut ctx = ExecContext::new();
        ctx.write(b"a".to_vec(), Some(b"committed".to_vec()));
        ctx.begin_tx();
        ctx.write(b"a".to_vec(), Some(b"dirty".to_vec()));
        ctx.write(b"a".to_vec(), None); // second write to the same key
        ctx.write(b"b".to_vec(), Some(b"new".to_vec()));
        ctx.counters.set_storage = 3;
        ctx.logs.push(b"leak".to_vec());
        ctx.rollback_tx();
        assert_eq!(ctx.lookup(b"a"), Some(Some(&b"committed".to_vec())));
        assert_eq!(ctx.lookup(b"b"), None);
        assert_eq!(ctx.counters.set_storage, 0);
        assert!(ctx.logs.is_empty());
        // Journaling is off again: writes now stick even after rollback.
        ctx.write(b"c".to_vec(), Some(b"kept".to_vec()));
        ctx.rollback_tx();
        assert_eq!(ctx.lookup(b"c"), Some(Some(&b"kept".to_vec())));
    }

    #[test]
    fn commit_tx_keeps_writes() {
        let mut ctx = ExecContext::new();
        ctx.begin_tx();
        ctx.write(b"k".to_vec(), Some(b"v".to_vec()));
        ctx.commit_tx();
        ctx.rollback_tx(); // nothing journaled — no-op on the overlay
        assert_eq!(ctx.lookup(b"k"), Some(Some(&b"v".to_vec())));
    }

    #[test]
    fn rw_sets_track_only_while_journaled() {
        let mut ctx = ExecContext::new();
        // Outside a tx: nothing tracked.
        ctx.write(b"pre".to_vec(), Some(b"v".to_vec()));
        ctx.note_read(b"pre");

        ctx.begin_tx();
        ctx.note_read(b"r1");
        ctx.note_read(b"r1"); // duplicate reads collapse
        ctx.write(b"w1".to_vec(), Some(b"v".to_vec()));
        ctx.write(b"w1".to_vec(), None); // duplicate writes collapse
        let rw = ctx.commit_tx();
        assert_eq!(rw.reads, [b"r1".to_vec()].into_iter().collect());
        assert_eq!(rw.writes, [b"w1".to_vec()].into_iter().collect());

        // The next tx starts from empty sets; rollback returns them too.
        ctx.begin_tx();
        ctx.note_read(b"r2");
        ctx.write(b"w2".to_vec(), Some(b"v".to_vec()));
        let rw = ctx.rollback_tx();
        assert_eq!(rw.reads, [b"r2".to_vec()].into_iter().collect());
        assert_eq!(rw.writes, [b"w2".to_vec()].into_iter().collect());
        assert_eq!(ctx.lookup(b"w2"), None, "rollback undid the write");
    }

    #[test]
    fn rwset_conflict_rules() {
        let mk = |reads: &[&[u8]], writes: &[&[u8]]| RwSet {
            reads: reads.iter().map(|k| k.to_vec()).collect(),
            writes: writes.iter().map(|k| k.to_vec()).collect(),
        };
        let w = mk(&[], &[b"k"]);
        let r = mk(&[b"k"], &[]);
        let other = mk(&[b"x"], &[b"y"]);
        assert!(w.conflicts_with(&r), "write vs read conflicts");
        assert!(r.conflicts_with(&w), "symmetric");
        assert!(w.conflicts_with(&w), "write vs write conflicts");
        assert!(!r.conflicts_with(&r), "read vs read is fine");
        assert!(!w.conflicts_with(&other), "disjoint keys are fine");
        assert_eq!(r.touched(), [b"k".to_vec()].into_iter().collect());
    }

    #[test]
    fn take_counters_resets() {
        let mut ctx = ExecContext::new();
        ctx.counters.get_storage = 3;
        let c = ctx.take_counters();
        assert_eq!(c.get_storage, 3);
        assert_eq!(ctx.counters.get_storage, 0);
    }
}
