//! Stdlib recognition for the static access analyzer.
//!
//! The CCL compiler prepends the stdlib source to every program, so every
//! compiled module carries byte-identical stdlib function bodies at fixed
//! indices (0 = `__alloc`, …, 15 = `json_get_int`). The access analyzer in
//! `confide_vm::access` models these as [`KnownFn`] transfer functions
//! instead of interpreting their loops abstractly — that is where all of
//! its key precision comes from.
//!
//! Recognition is *semantic-free and sound*: a probe program is compiled
//! once with the very same compiler, and a target function is mapped to a
//! [`KnownFn`] only when its `(param_count, local_count, body)` triple is
//! bit-for-bit equal to the probe's. Hand-written bytecode that merely
//! resembles a stdlib helper falls through to abstract interpretation; a
//! compiler change that alters stdlib codegen silently disables
//! recognition (degrading precision, never soundness).

use std::collections::HashMap;
use std::sync::OnceLock;

use confide_vm::{KnownFn, Module};

/// Minimal CCL program whose compile carries the stdlib verbatim.
const PROBE_SRC: &str = "export fn main() { ret(b\"\"); }\n";

/// The stdlib layout the compiler emits: function index → transfer model.
const STDLIB_LAYOUT: [KnownFn; 16] = [
    KnownFn::Alloc,      // 0  __alloc
    KnownFn::Concat,     // 1  concat
    KnownFn::Concat3,    // 2  concat3
    KnownFn::Slice,      // 3  slice
    KnownFn::EqBytes,    // 4  eq_bytes
    KnownFn::Find,       // 5  find
    KnownFn::Itoa,       // 6  itoa
    KnownFn::Atoi,       // 7  atoi
    KnownFn::I2b,        // 8  i2b
    KnownFn::B2i,        // 9  b2i
    KnownFn::ToHex,      // 10 to_hex
    KnownFn::StorageGet, // 11 storage_get
    KnownFn::StorageHas, // 12 storage_has
    KnownFn::CallOut,    // 13 call
    KnownFn::JsonGet,    // 14 json_get
    KnownFn::JsonGetInt, // 15 json_get_int
];

fn probe_module() -> Option<&'static Module> {
    static PROBE: OnceLock<Option<Module>> = OnceLock::new();
    PROBE
        .get_or_init(|| {
            let bytes = confide_lang::build_vm(PROBE_SRC).ok()?;
            Module::decode(&bytes).ok()
        })
        .as_ref()
}

/// Map `module`'s stdlib function indices to their transfer models.
///
/// Recognition is **all-or-nothing**: the stdlib is a closed call graph
/// (`json_get` calls `find`, `storage_get` calls `__alloc`, …), so
/// modeling *any* helper by its semantics is only sound when *every*
/// helper body is bit-for-bit the compiler's — a helper with pristine
/// bytes still changes behaviour when a callee below it is corrupted.
/// One divergent byte anywhere in the 16 disables recognition entirely;
/// the analyzer then interprets the actual (possibly mutated) bodies
/// abstractly, which costs precision but never soundness.
pub fn recognize_stdlib(module: &Module) -> HashMap<u32, KnownFn> {
    let Some(probe) = probe_module() else {
        return HashMap::new();
    };
    let mut known = HashMap::new();
    for (pi, kf) in STDLIB_LAYOUT.iter().enumerate() {
        let (Some(f), Some(pf)) = (module.functions.get(pi), probe.functions.get(pi)) else {
            return HashMap::new();
        };
        let identical =
            f.param_count == pf.param_count && f.local_count == pf.local_count && f.body == pf.body;
        // Arity sanity: the transfer model must pop exactly what the
        // function declares, or the layout table is stale.
        if !identical || kf.param_count() != f.param_count as usize {
            return HashMap::new();
        }
        known.insert(pi as u32, *kf);
    }
    known
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_recognizes_all_sixteen_stdlib_fns_in_a_real_contract() {
        let src = r#"
            export fn main() {
                let v: bytes = storage_get(b"k");
                storage_set(b"k", concat(v, input()));
                ret(itoa(atoi(v)));
            }
        "#;
        let bytes = confide_lang::build_vm(src).expect("compiles");
        let module = Module::decode(&bytes).expect("decodes");
        let known = recognize_stdlib(&module);
        // Every stdlib helper must be found at its fixed index.
        for (i, kf) in STDLIB_LAYOUT.iter().enumerate() {
            assert_eq!(
                known.get(&(i as u32)),
                Some(kf),
                "stdlib fn {i} ({}) not recognized",
                kf.name()
            );
        }
        // User code (after the stdlib) must NOT be misrecognized.
        for idx in STDLIB_LAYOUT.len() as u32..module.functions.len() as u32 {
            assert!(
                !known.contains_key(&idx),
                "user function {idx} misrecognized as stdlib"
            );
        }
    }

    #[test]
    fn one_corrupted_stdlib_body_disables_recognition_entirely() {
        // `json_get` calls `find`: recognizing json_get by its own bytes
        // while find is corrupted would model the wrong semantics, so a
        // single divergent body must zero out the whole map.
        let bytes =
            confide_lang::build_vm("export fn main() { ret(input()); }\n").expect("compiles");
        let mut module = Module::decode(&bytes).expect("decodes");
        assert!(!recognize_stdlib(&module).is_empty(), "pristine recognizes");
        // Corrupt one byte of stdlib fn 5 (`find`)'s already-decoded body
        // by re-encoding a tweaked constant — simplest: clear the body.
        module.functions[5].body.pop();
        assert!(
            recognize_stdlib(&module).is_empty(),
            "corrupted find must disable all recognition"
        );
    }

    #[test]
    fn recognition_feeds_a_precise_summary_for_the_counter_example() {
        let src = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/ccl/counter.ccl"
        ))
        .expect("counter.ccl present");
        let bytes = confide_lang::build_vm(&src).expect("compiles");
        let module = Module::decode(&bytes).expect("decodes");
        let access = confide_vm::analyze_module(&module, &recognize_stdlib(&module));
        let summary = access.method("main").expect("main summarized");
        assert!(!summary.top, "counter must not be Top: {summary:?}");
        assert!(
            summary.is_static(),
            "counter keys are constant: {summary:?}"
        );
        let reads: Vec<String> = summary.reads.iter().map(|k| k.render()).collect();
        let writes: Vec<String> = summary.writes.iter().map(|k| k.render()).collect();
        assert!(reads.iter().any(|r| r.contains("count")), "{reads:?}");
        assert!(writes.iter().any(|w| w.contains("count")), "{writes:?}");
    }
}
