//! K-Protocol: secret-key agreement among node enclaves (§3.2.2, §5.1).
//!
//! Two agreed secrets exist consortium-wide:
//!
//! * `sk_tx` — the asymmetric key whose public half `pk_tx` clients seal
//!   envelopes to; its fingerprint is locked into the attestation report
//!   to defeat man-in-the-middle substitution.
//! * `k_states` — the symmetric state root key of D-Protocol.
//!
//! Both agreement modes are implemented:
//!
//! * **Centralized** ([`CentralKms`]) — a KMS trusted with the secrets
//!   (the HSM-backed option the paper calls "low-cost and highly
//!   efficient").
//! * **Decentralized MAP** ([`decentralized_join`]) — the first node's KM
//!   enclave generates the secrets; each joiner runs mutual remote
//!   attestation with an existing member, the two enclaves do an
//!   attestation-bound X25519 exchange, and the secrets are wrapped across.
//!
//! Per §5.1, key management runs in its own **KM enclave**, which the CS
//! enclave authenticates via local attestation before provisioning, and
//! which is destroyed as soon as provisioning ends to release EPC.

use confide_crypto::ed25519::VerifyingKey;
use confide_crypto::envelope::EnvelopeKeyPair;
use confide_crypto::gcm::AesGcm;
use confide_crypto::x25519;
use confide_crypto::HmacDrbg;
use confide_tee::attestation::{AttestationError, LocalReport, Report};
use confide_tee::enclave::{Enclave, EnclaveConfig};
use confide_tee::platform::TeePlatform;
use confide_tee::sealing::{seal, unseal, SealPolicy};
use std::sync::Arc;

/// The provisioned secrets a Confidential-Engine runs with.
#[derive(Clone)]
pub struct NodeKeys {
    /// The envelope key pair (`sk_tx` / `pk_tx`).
    pub envelope: EnvelopeKeyPair,
    /// The symmetric state root key.
    pub k_states: [u8; 32],
}

impl NodeKeys {
    /// Generate fresh consortium secrets (inside the first KM enclave).
    pub fn generate(rng: &mut HmacDrbg) -> NodeKeys {
        NodeKeys {
            envelope: EnvelopeKeyPair::generate(rng),
            k_states: rng.gen32(),
        }
    }

    /// `pk_tx`, the public key published to end users.
    pub fn pk_tx(&self) -> [u8; 32] {
        self.envelope.public()
    }
}

/// K-Protocol failures.
#[derive(Debug)]
pub enum KeyProtocolError {
    /// Remote or local attestation failed.
    Attestation(AttestationError),
    /// Key unwrap failed (wrong session key / tampered transcript).
    Unwrap,
    /// Enclave machinery failed.
    Enclave(String),
    /// A sealed key blob from an older security version was refused
    /// (rollback protection: a patched enclave must not resurrect
    /// secrets sealed by its vulnerable predecessor).
    StaleSealedBlob {
        /// Security version the blob was sealed at.
        sealed: u16,
        /// Minimum version this node accepts.
        min: u16,
    },
}

impl std::fmt::Display for KeyProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyProtocolError::Attestation(e) => write!(f, "attestation: {e}"),
            KeyProtocolError::Unwrap => f.write_str("key unwrap failed"),
            KeyProtocolError::Enclave(m) => write!(f, "enclave: {m}"),
            KeyProtocolError::StaleSealedBlob { sealed, min } => {
                write!(f, "sealed key blob at SVN {sealed} below required {min}")
            }
        }
    }
}

impl std::error::Error for KeyProtocolError {}

impl From<AttestationError> for KeyProtocolError {
    fn from(e: AttestationError) -> Self {
        KeyProtocolError::Attestation(e)
    }
}

/// Centralized key management service. In production this sits on an HSM;
/// here it is a struct holding the secrets and releasing them only to
/// enclaves that present a valid attestation report.
pub struct CentralKms {
    keys: NodeKeys,
    /// Expected KM-enclave measurement for release.
    expected_mrenclave: [u8; 32],
    /// Minimum security version.
    min_svn: u16,
}

impl CentralKms {
    /// Stand up the KMS with freshly generated secrets.
    pub fn new(seed: u64, expected_mrenclave: [u8; 32], min_svn: u16) -> CentralKms {
        let mut rng = HmacDrbg::from_u64(seed);
        CentralKms {
            keys: NodeKeys::generate(&mut rng),
            expected_mrenclave,
            min_svn,
        }
    }

    /// `pk_tx` for client distribution.
    pub fn pk_tx(&self) -> [u8; 32] {
        self.keys.pk_tx()
    }

    /// Release the secrets to an attested enclave: the enclave sends a
    /// report whose `report_data` carries an ephemeral X25519 public key;
    /// the KMS wraps the secrets to it.
    pub fn provision(
        &self,
        report: &Report,
        attestation_root: &confide_crypto::ed25519::VerifyingKey,
    ) -> Result<Vec<u8>, KeyProtocolError> {
        report.verify(attestation_root, &self.expected_mrenclave, self.min_svn)?;
        let mut enclave_eph = [0u8; 32];
        enclave_eph.copy_from_slice(&report.report_data[..32]);
        let mut rng = HmacDrbg::new(&report.report_data);
        wrap_keys(&self.keys, &enclave_eph, &mut rng)
    }
}

/// Serialize + wrap the two secrets to a receiver's ephemeral public key.
fn wrap_keys(
    keys: &NodeKeys,
    receiver_eph_pk: &[u8; 32],
    rng: &mut HmacDrbg,
) -> Result<Vec<u8>, KeyProtocolError> {
    let our_eph = rng.gen32();
    let our_pub = x25519::x25519_base(&our_eph);
    let shared =
        x25519::diffie_hellman(&our_eph, receiver_eph_pk).map_err(|_| KeyProtocolError::Unwrap)?;
    let session = confide_crypto::hkdf::derive_key32(
        &[&our_pub[..], receiver_eph_pk].concat(),
        &shared,
        b"confide/k-protocol/session-v1",
    );
    let gcm = AesGcm::new(&session).map_err(|_| KeyProtocolError::Unwrap)?;
    let mut plain = Vec::with_capacity(64);
    plain.extend_from_slice(keys.envelope.secret());
    plain.extend_from_slice(&keys.k_states);
    let nonce = rng.gen_nonce();
    let ct = gcm.seal(&nonce, b"k-protocol-keys", &plain);
    let mut out = Vec::with_capacity(32 + 12 + ct.len());
    out.extend_from_slice(&our_pub);
    out.extend_from_slice(&nonce);
    out.extend_from_slice(&ct);
    Ok(out)
}

/// Unwrap secrets wrapped by the K-Protocol session wrap, given the receiver's ephemeral
/// secret.
pub fn unwrap_keys(blob: &[u8], receiver_eph_sk: &[u8; 32]) -> Result<NodeKeys, KeyProtocolError> {
    if blob.len() < 44 {
        return Err(KeyProtocolError::Unwrap);
    }
    let mut sender_pub = [0u8; 32];
    sender_pub.copy_from_slice(&blob[..32]);
    let mut nonce = [0u8; 12];
    nonce.copy_from_slice(&blob[32..44]);
    let receiver_pub = x25519::x25519_base(receiver_eph_sk);
    let shared = x25519::diffie_hellman(receiver_eph_sk, &sender_pub)
        .map_err(|_| KeyProtocolError::Unwrap)?;
    let session = confide_crypto::hkdf::derive_key32(
        &[&sender_pub[..], &receiver_pub[..]].concat(),
        &shared,
        b"confide/k-protocol/session-v1",
    );
    let gcm = AesGcm::new(&session).map_err(|_| KeyProtocolError::Unwrap)?;
    let plain = gcm
        .open(&nonce, b"k-protocol-keys", &blob[44..])
        .map_err(|_| KeyProtocolError::Unwrap)?;
    if plain.len() != 64 {
        return Err(KeyProtocolError::Unwrap);
    }
    let mut sk = [0u8; 32];
    sk.copy_from_slice(&plain[..32]);
    let mut k_states = [0u8; 32];
    k_states.copy_from_slice(&plain[32..]);
    Ok(NodeKeys {
        envelope: EnvelopeKeyPair::from_secret(sk),
        k_states,
    })
}

/// The canonical KM-enclave build "binary" — in the simulation, enclave
/// identity is the measurement of these bytes.
pub const KM_ENCLAVE_CODE: &[u8] = b"confide-km-enclave-v1";
/// The canonical CS-enclave build.
pub const CS_ENCLAVE_CODE: &[u8] = b"confide-cs-enclave-v1";

/// Create the KM enclave on a platform. Fails with
/// [`KeyProtocolError::Enclave`] when the platform refuses the enclave
/// (e.g. EPC exhaustion) instead of panicking mid-protocol.
pub fn km_enclave(platform: &Arc<TeePlatform>, svn: u16) -> Result<Enclave, KeyProtocolError> {
    Enclave::create(
        platform,
        EnclaveConfig::new(KM_ENCLAVE_CODE.to_vec(), [0x4b; 32], svn, 1 << 20),
    )
    .map_err(|e| KeyProtocolError::Enclave(e.to_string()))
}

/// Bootstrap a node's keys from a centralized KMS (the low-cost HSM-backed
/// option of §3.2.2): the node's KM enclave quotes an ephemeral key, the
/// KMS verifies the attestation and wraps the consortium secrets back.
pub fn kms_bootstrap(
    kms: &CentralKms,
    platform: &Arc<TeePlatform>,
    svn: u16,
    seed: u64,
) -> Result<NodeKeys, KeyProtocolError> {
    let mut rng = HmacDrbg::from_u64(seed);
    let km = km_enclave(platform, svn)?;
    let eph_sk = rng.gen32();
    let mut report_data = [0u8; 64];
    report_data[..32].copy_from_slice(&x25519::x25519_base(&eph_sk));
    report_data[32..].copy_from_slice(&confide_crypto::sha256(&kms.pk_tx()));
    let report = Report::generate(&km, report_data);
    let blob = kms.provision(&report, &platform.attestation_public_key())?;
    let keys = unwrap_keys(&blob, &eph_sk)?;
    // §5.3: destroy the KM enclave promptly to release EPC.
    km.destroy()
        .map_err(|e| KeyProtocolError::Enclave(e.to_string()))?;
    Ok(keys)
}

/// The joiner's first MAP message: a quoted ephemeral key. The fields are
/// exactly what travels to the member node — everything in here is
/// attacker-visible (and, in the negative-path tests, attacker-mutable).
pub struct JoinOffer {
    /// The joiner KM enclave's ephemeral X25519 public key (also bound
    /// into `report.report_data[..32]`).
    pub eph_pk: [u8; 32],
    /// Remote-attestation quote over the joiner's KM enclave, with the
    /// `pk_tx` fingerprint locked into `report_data[32..]` (§3.2.2 MITM
    /// defence).
    pub report: Report,
}

/// The joiner's private half of an in-flight MAP join: the KM enclave and
/// the ephemeral secret. Never leaves the joiner.
pub struct JoinSession {
    km: Enclave,
    eph_sk: [u8; 32],
}

/// Step 1 (joiner): create the KM enclave, generate an ephemeral key and
/// quote it together with the expected `pk_tx` fingerprint.
pub fn begin_join(
    joiner_platform: &Arc<TeePlatform>,
    svn: u16,
    expected_pk_tx: &[u8; 32],
    seed: u64,
) -> Result<(JoinSession, JoinOffer), KeyProtocolError> {
    let mut rng = HmacDrbg::from_u64(seed);
    let km = km_enclave(joiner_platform, svn)?;
    let eph_sk = rng.gen32();
    let eph_pk = x25519::x25519_base(&eph_sk);
    let mut report_data = [0u8; 64];
    report_data[..32].copy_from_slice(&eph_pk);
    report_data[32..].copy_from_slice(&confide_crypto::sha256(expected_pk_tx));
    let report = Report::generate(&km, report_data);
    Ok((JoinSession { km, eph_sk }, JoinOffer { eph_pk, report }))
}

/// Step 2 (member): verify the joiner's quote — genuine platform, same KM
/// build, SVN at least `min_svn` — then wrap the consortium secrets to
/// the quoted ephemeral key and quote back (mutual attestation). Returns
/// `(wrap_blob, member_report)`.
///
/// Takes the joiner's *attestation root* rather than its platform: over a
/// real transport the member only ever sees the joiner's quote plus the
/// consortium-registered verification key for the joiner's platform.
pub fn approve_join(
    member_platform: &Arc<TeePlatform>,
    member_keys: &NodeKeys,
    joiner_attestation_root: &VerifyingKey,
    offer: &JoinOffer,
    svn: u16,
    min_svn: u16,
    seed: u64,
) -> Result<(Vec<u8>, Report), KeyProtocolError> {
    let mut rng = HmacDrbg::from_u64(seed);
    let member_km = km_enclave(member_platform, svn)?;
    offer
        .report
        .verify(joiner_attestation_root, &member_km.mrenclave(), min_svn)?;
    // The quoted ephemeral key is authoritative: a MITM substituting the
    // plaintext copy gains nothing.
    let mut quoted_eph = [0u8; 32];
    quoted_eph.copy_from_slice(&offer.report.report_data[..32]);
    let mut member_data = [0u8; 64];
    member_data[..32].copy_from_slice(&member_keys.pk_tx());
    let member_report = Report::generate(&member_km, member_data);
    let blob = wrap_keys(member_keys, &quoted_eph, &mut rng)?;
    Ok((blob, member_report))
}

/// Step 3 (joiner): verify the member's counter-quote, unwrap the
/// secrets, run the §5.1 local-attestation hop to the CS enclave, and
/// destroy the KM enclave to release EPC (§5.3).
///
/// Like [`approve_join`], identifies the remote peer by its registered
/// attestation root — the member's platform object never crosses the wire.
pub fn finish_join(
    session: JoinSession,
    joiner_platform: &Arc<TeePlatform>,
    member_attestation_root: &VerifyingKey,
    member_report: &Report,
    min_svn: u16,
    svn: u16,
    blob: &[u8],
) -> Result<NodeKeys, KeyProtocolError> {
    member_report.verify(member_attestation_root, &session.km.mrenclave(), min_svn)?;
    let keys = unwrap_keys(blob, &session.eph_sk)?;
    // §5.1/§5.3: the CS enclave local-attests to the KM enclave for the
    // final provisioning hop, then the KM enclave is destroyed to release
    // EPC as early as possible.
    let joiner_cs = Enclave::create(
        joiner_platform,
        EnclaveConfig::new(CS_ENCLAVE_CODE.to_vec(), [0xC5; 32], svn, 1 << 20),
    )
    .map_err(|e| KeyProtocolError::Enclave(e.to_string()))?;
    let local = LocalReport::generate(&joiner_cs, [0u8; 64]);
    local.verify(&session.km)?;
    session
        .km
        .destroy()
        .map_err(|e| KeyProtocolError::Enclave(e.to_string()))?;
    joiner_cs
        .destroy()
        .map_err(|e| KeyProtocolError::Enclave(e.to_string()))?;
    Ok(keys)
}

/// The decentralized MAP join: `member` (platform of an existing node,
/// which already holds `keys`) provisions `joiner_platform`'s KM enclave
/// after mutual remote attestation. Composes [`begin_join`] →
/// [`approve_join`] → [`finish_join`]; the granular steps exist so the
/// three protocol messages can travel over a real transport and so every
/// error arm is independently testable.
pub fn decentralized_join(
    member_platform: &Arc<TeePlatform>,
    member_keys: &NodeKeys,
    joiner_platform: &Arc<TeePlatform>,
    svn: u16,
    seed: u64,
) -> Result<NodeKeys, KeyProtocolError> {
    let (session, offer) = begin_join(joiner_platform, svn, &member_keys.pk_tx(), seed)?;
    let (blob, member_report) = approve_join(
        member_platform,
        member_keys,
        &joiner_platform.attestation_public_key(),
        &offer,
        svn,
        svn,
        seed.wrapping_add(1),
    )?;
    finish_join(
        session,
        joiner_platform,
        &member_platform.attestation_public_key(),
        &member_report,
        svn,
        svn,
        &blob,
    )
}

/// AAD label binding a sealed node-key blob to its layout version and the
/// SVN it was sealed at.
fn sealed_keys_aad(svn: u16) -> Vec<u8> {
    let mut aad = b"confide/sealed-node-keys-v1|".to_vec();
    aad.extend_from_slice(&svn.to_le_bytes());
    aad
}

/// Persist the consortium secrets across a restart: the KM enclave seals
/// them to untrusted disk under the `MRSIGNER` policy (so an upgraded KM
/// build can still recover them — §5.1 "service upgrading"). The blob is
/// `[svn u16le][nonce 12][sealed ciphertext]`; the SVN prefix is bound
/// into the AAD, so rolling it forward by hand breaks the GCM tag.
pub fn seal_node_keys(
    platform: &Arc<TeePlatform>,
    svn: u16,
    keys: &NodeKeys,
    seed: u64,
) -> Result<Vec<u8>, KeyProtocolError> {
    let mut rng = HmacDrbg::from_u64(seed);
    let km = km_enclave(platform, svn)?;
    let nonce = rng.gen_nonce();
    let mut plain = Vec::with_capacity(64);
    plain.extend_from_slice(keys.envelope.secret());
    plain.extend_from_slice(&keys.k_states);
    let ct = seal(
        &km,
        SealPolicy::MrSigner,
        &nonce,
        &sealed_keys_aad(svn),
        &plain,
    )
    .map_err(|_| KeyProtocolError::Unwrap)?;
    km.destroy()
        .map_err(|e| KeyProtocolError::Enclave(e.to_string()))?;
    let mut out = Vec::with_capacity(2 + 12 + ct.len());
    out.extend_from_slice(&svn.to_le_bytes());
    out.extend_from_slice(&nonce);
    out.extend_from_slice(&ct);
    Ok(out)
}

/// Recover sealed consortium secrets after a crash (the sole-node path of
/// the rejoin protocol — with no surviving member to MAP-join against,
/// sealed storage is the only source of `k_states`).
///
/// `min_svn` is the rollback floor: a blob sealed at an SVN below it is
/// refused with [`KeyProtocolError::StaleSealedBlob`] — a patched enclave
/// must not resurrect secrets its vulnerable predecessor sealed.
pub fn unseal_node_keys(
    platform: &Arc<TeePlatform>,
    svn: u16,
    min_svn: u16,
    blob: &[u8],
) -> Result<NodeKeys, KeyProtocolError> {
    if blob.len() < 2 + 12 {
        return Err(KeyProtocolError::Unwrap);
    }
    let sealed_svn = u16::from_le_bytes([blob[0], blob[1]]);
    if sealed_svn < min_svn {
        return Err(KeyProtocolError::StaleSealedBlob {
            sealed: sealed_svn,
            min: min_svn,
        });
    }
    let mut nonce = [0u8; 12];
    nonce.copy_from_slice(&blob[2..14]);
    let km = km_enclave(platform, svn)?;
    let plain = unseal(
        &km,
        SealPolicy::MrSigner,
        &nonce,
        &sealed_keys_aad(sealed_svn),
        &blob[14..],
    )
    .map_err(|_| KeyProtocolError::Unwrap)?;
    km.destroy()
        .map_err(|e| KeyProtocolError::Enclave(e.to_string()))?;
    if plain.len() != 64 {
        return Err(KeyProtocolError::Unwrap);
    }
    let mut sk = [0u8; 32];
    sk.copy_from_slice(&plain[..32]);
    let mut k_states = [0u8; 32];
    k_states.copy_from_slice(&plain[32..]);
    Ok(NodeKeys {
        envelope: EnvelopeKeyPair::from_secret(sk),
        k_states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn central_kms_provisions_valid_enclave() {
        let platform = TeePlatform::new(1, 1);
        let km = km_enclave(&platform, 2).unwrap();
        let kms = CentralKms::new(99, km.mrenclave(), 2);

        let mut rng = HmacDrbg::from_u64(3);
        let eph_sk = rng.gen32();
        let mut data = [0u8; 64];
        data[..32].copy_from_slice(&x25519::x25519_base(&eph_sk));
        let report = Report::generate(&km, data);
        let blob = kms
            .provision(&report, &platform.attestation_public_key())
            .unwrap();
        let keys = unwrap_keys(&blob, &eph_sk).unwrap();
        assert_eq!(keys.pk_tx(), kms.pk_tx());
    }

    #[test]
    fn central_kms_rejects_wrong_build() {
        let platform = TeePlatform::new(1, 1);
        let km = km_enclave(&platform, 2).unwrap();
        let kms = CentralKms::new(99, [0xbb; 32], 2); // expects another build
        let report = Report::generate(&km, [0u8; 64]);
        assert!(matches!(
            kms.provision(&report, &platform.attestation_public_key()),
            Err(KeyProtocolError::Attestation(
                AttestationError::MeasurementMismatch
            ))
        ));
    }

    #[test]
    fn central_kms_rejects_stale_svn() {
        let platform = TeePlatform::new(1, 1);
        let km = km_enclave(&platform, 1).unwrap();
        let kms = CentralKms::new(99, km.mrenclave(), 2);
        let report = Report::generate(&km, [0u8; 64]);
        assert!(matches!(
            kms.provision(&report, &platform.attestation_public_key()),
            Err(KeyProtocolError::Attestation(
                AttestationError::StaleSecurityVersion { .. }
            ))
        ));
    }

    #[test]
    fn decentralized_join_agrees_on_keys() {
        let member = TeePlatform::new(1, 10);
        let joiner = TeePlatform::new(2, 20);
        let mut rng = HmacDrbg::from_u64(7);
        let member_keys = NodeKeys::generate(&mut rng);
        let joiner_keys = decentralized_join(&member, &member_keys, &joiner, 1, 55).unwrap();
        assert_eq!(joiner_keys.pk_tx(), member_keys.pk_tx());
        assert_eq!(joiner_keys.k_states, member_keys.k_states);
    }

    #[test]
    fn chain_of_joins_propagates_keys() {
        // Node A generates; B joins via A; C joins via B.
        let a = TeePlatform::new(1, 1);
        let b = TeePlatform::new(2, 2);
        let c = TeePlatform::new(3, 3);
        let mut rng = HmacDrbg::from_u64(1);
        let ka = NodeKeys::generate(&mut rng);
        let kb = decentralized_join(&a, &ka, &b, 1, 2).unwrap();
        let kc = decentralized_join(&b, &kb, &c, 1, 3).unwrap();
        assert_eq!(kc.k_states, ka.k_states);
        assert_eq!(kc.pk_tx(), ka.pk_tx());
    }

    #[test]
    fn join_rejects_stale_svn_joiner() {
        // Joiner runs the right build but at SVN 1; member requires ≥ 2.
        let member = TeePlatform::new(1, 10);
        let joiner = TeePlatform::new(2, 20);
        let mut rng = HmacDrbg::from_u64(7);
        let member_keys = NodeKeys::generate(&mut rng);
        let (_session, offer) = begin_join(&joiner, 1, &member_keys.pk_tx(), 3).unwrap();
        // The member runs the same build (same measurement) but demands a
        // minimum security version of 2.
        assert!(matches!(
            approve_join(
                &member,
                &member_keys,
                &joiner.attestation_public_key(),
                &offer,
                1,
                2,
                4
            ),
            Err(KeyProtocolError::Attestation(
                AttestationError::StaleSecurityVersion { got: 1, min: 2 }
            ))
        ));
    }

    #[test]
    fn join_rejects_wrong_mrenclave() {
        // A malicious joiner quotes a *different* enclave build (correctly
        // signed by a genuine platform — the quote itself is valid).
        let member = TeePlatform::new(1, 10);
        let joiner = TeePlatform::new(2, 20);
        let mut rng = HmacDrbg::from_u64(7);
        let member_keys = NodeKeys::generate(&mut rng);
        let evil = Enclave::create(
            &joiner,
            EnclaveConfig::new(b"not-the-km-build".to_vec(), [0x4b; 32], 5, 1 << 20),
        )
        .unwrap();
        let eph_sk = rng.gen32();
        let eph_pk = x25519::x25519_base(&eph_sk);
        let mut report_data = [0u8; 64];
        report_data[..32].copy_from_slice(&eph_pk);
        report_data[32..].copy_from_slice(&confide_crypto::sha256(&member_keys.pk_tx()));
        let offer = JoinOffer {
            eph_pk,
            report: Report::generate(&evil, report_data),
        };
        assert!(matches!(
            approve_join(
                &member,
                &member_keys,
                &joiner.attestation_public_key(),
                &offer,
                1,
                1,
                4
            ),
            Err(KeyProtocolError::Attestation(
                AttestationError::MeasurementMismatch
            ))
        ));
    }

    #[test]
    fn join_rejects_forged_quote_signature() {
        // Offer whose quote claims a genuine platform but is signed by a
        // different one (platform substitution).
        let member = TeePlatform::new(1, 10);
        let joiner = TeePlatform::new(2, 20);
        let imposter = TeePlatform::new(3, 30);
        let mut rng = HmacDrbg::from_u64(7);
        let member_keys = NodeKeys::generate(&mut rng);
        let (_s, offer) = begin_join(&imposter, 1, &member_keys.pk_tx(), 3).unwrap();
        // Member checks the offer against *joiner*'s attestation root.
        assert!(matches!(
            approve_join(
                &member,
                &member_keys,
                &joiner.attestation_public_key(),
                &offer,
                1,
                1,
                4
            ),
            Err(KeyProtocolError::Attestation(
                AttestationError::BadSignature(_)
            ))
        ));
    }

    #[test]
    fn join_rejects_tampered_wrap_blob() {
        let member = TeePlatform::new(1, 10);
        let joiner = TeePlatform::new(2, 20);
        let mut rng = HmacDrbg::from_u64(7);
        let member_keys = NodeKeys::generate(&mut rng);
        let (session, offer) = begin_join(&joiner, 1, &member_keys.pk_tx(), 3).unwrap();
        let (mut blob, member_report) = approve_join(
            &member,
            &member_keys,
            &joiner.attestation_public_key(),
            &offer,
            1,
            1,
            4,
        )
        .unwrap();
        let n = blob.len();
        blob[n - 1] ^= 1; // tamper with the GCM ciphertext
        assert!(matches!(
            finish_join(
                session,
                &joiner,
                &member.attestation_public_key(),
                &member_report,
                1,
                1,
                &blob
            ),
            Err(KeyProtocolError::Unwrap)
        ));
    }

    #[test]
    fn join_rejects_member_counterquote_from_wrong_build() {
        // The member's counter-quote must come from the same KM build; a
        // quote from some other enclave is rejected by the joiner.
        let member = TeePlatform::new(1, 10);
        let joiner = TeePlatform::new(2, 20);
        let mut rng = HmacDrbg::from_u64(7);
        let member_keys = NodeKeys::generate(&mut rng);
        let (session, offer) = begin_join(&joiner, 1, &member_keys.pk_tx(), 3).unwrap();
        let (blob, _real_report) = approve_join(
            &member,
            &member_keys,
            &joiner.attestation_public_key(),
            &offer,
            1,
            1,
            4,
        )
        .unwrap();
        let evil = Enclave::create(
            &member,
            EnclaveConfig::new(b"evil-member".to_vec(), [0x4b; 32], 9, 1 << 20),
        )
        .unwrap();
        let fake_report = Report::generate(&evil, [0u8; 64]);
        assert!(matches!(
            finish_join(
                session,
                &joiner,
                &member.attestation_public_key(),
                &fake_report,
                1,
                1,
                &blob
            ),
            Err(KeyProtocolError::Attestation(
                AttestationError::MeasurementMismatch
            ))
        ));
    }

    #[test]
    fn join_step_composition_matches_monolithic_join() {
        let member = TeePlatform::new(1, 10);
        let joiner = TeePlatform::new(2, 20);
        let mut rng = HmacDrbg::from_u64(7);
        let member_keys = NodeKeys::generate(&mut rng);
        let (session, offer) = begin_join(&joiner, 1, &member_keys.pk_tx(), 3).unwrap();
        let (blob, member_report) = approve_join(
            &member,
            &member_keys,
            &joiner.attestation_public_key(),
            &offer,
            1,
            1,
            4,
        )
        .unwrap();
        let keys = finish_join(
            session,
            &joiner,
            &member.attestation_public_key(),
            &member_report,
            1,
            1,
            &blob,
        )
        .unwrap();
        assert_eq!(keys.pk_tx(), member_keys.pk_tx());
        assert_eq!(keys.k_states, member_keys.k_states);
    }

    #[test]
    fn wrapped_keys_unusable_with_wrong_secret() {
        let mut rng = HmacDrbg::from_u64(9);
        let keys = NodeKeys::generate(&mut rng);
        let receiver_sk = rng.gen32();
        let receiver_pk = x25519::x25519_base(&receiver_sk);
        let blob = wrap_keys(&keys, &receiver_pk, &mut rng).unwrap();
        let wrong_sk = rng.gen32();
        assert!(matches!(
            unwrap_keys(&blob, &wrong_sk),
            Err(KeyProtocolError::Unwrap)
        ));
        // And tampering breaks it too.
        let mut bad = blob.clone();
        let n = bad.len();
        bad[n - 1] ^= 1;
        assert!(matches!(
            unwrap_keys(&bad, &receiver_sk),
            Err(KeyProtocolError::Unwrap)
        ));
    }

    #[test]
    fn kms_bootstrap_provisions_a_whole_consortium() {
        // All nodes bootstrap from one KMS and agree on the secrets.
        let p1 = TeePlatform::new(1, 1);
        let km_build = km_enclave(&p1, 2).unwrap().mrenclave();
        let kms = CentralKms::new(7, km_build, 2);
        let mut keys = Vec::new();
        for i in 0..4u64 {
            let platform = TeePlatform::new(i + 1, i + 1);
            keys.push(kms_bootstrap(&kms, &platform, 2, 100 + i).unwrap());
        }
        assert!(keys.windows(2).all(|w| w[0].k_states == w[1].k_states));
        assert!(keys.iter().all(|k| k.pk_tx() == kms.pk_tx()));
    }

    #[test]
    fn sealed_keys_survive_a_restart() {
        // Seal, "crash" (drop everything but the blob + platform), unseal
        // from a brand-new KM enclave instance.
        let platform = TeePlatform::new(4, 44);
        let mut rng = HmacDrbg::from_u64(11);
        let keys = NodeKeys::generate(&mut rng);
        let blob = seal_node_keys(&platform, 2, &keys, 77).unwrap();
        let recovered = unseal_node_keys(&platform, 2, 2, &blob).unwrap();
        assert_eq!(recovered.pk_tx(), keys.pk_tx());
        assert_eq!(recovered.k_states, keys.k_states);
    }

    #[test]
    fn bumped_svn_refuses_old_sealed_blob() {
        // Blob sealed at SVN 1; after a security patch the node restarts at
        // SVN 2 with a rollback floor of 2 — the stale blob must be refused
        // with the typed error, not silently accepted.
        let platform = TeePlatform::new(4, 44);
        let mut rng = HmacDrbg::from_u64(11);
        let keys = NodeKeys::generate(&mut rng);
        let blob = seal_node_keys(&platform, 1, &keys, 77).unwrap();
        assert!(matches!(
            unseal_node_keys(&platform, 2, 2, &blob),
            Err(KeyProtocolError::StaleSealedBlob { sealed: 1, min: 2 })
        ));
        // The same blob is fine while the floor still admits SVN 1.
        assert!(unseal_node_keys(&platform, 2, 1, &blob).is_ok());
    }

    #[test]
    fn sealed_blob_svn_prefix_is_tamperproof() {
        // Rolling the plaintext SVN prefix forward to dodge the floor
        // breaks the GCM tag (the sealed SVN is bound into the AAD).
        let platform = TeePlatform::new(4, 44);
        let mut rng = HmacDrbg::from_u64(11);
        let keys = NodeKeys::generate(&mut rng);
        let mut blob = seal_node_keys(&platform, 1, &keys, 77).unwrap();
        blob[..2].copy_from_slice(&2u16.to_le_bytes());
        assert!(matches!(
            unseal_node_keys(&platform, 2, 2, &blob),
            Err(KeyProtocolError::Unwrap)
        ));
    }

    #[test]
    fn sealed_blob_is_platform_bound() {
        let p1 = TeePlatform::new(4, 44);
        let p2 = TeePlatform::new(5, 55);
        let mut rng = HmacDrbg::from_u64(11);
        let keys = NodeKeys::generate(&mut rng);
        let blob = seal_node_keys(&p1, 1, &keys, 77).unwrap();
        assert!(matches!(
            unseal_node_keys(&p2, 1, 1, &blob),
            Err(KeyProtocolError::Unwrap)
        ));
    }
}
