//! Execution receipts and their T-Protocol encryption (formula (2)).

use confide_crypto::gcm::AesGcm;
use confide_crypto::{CryptoError, HmacDrbg};

/// A plaintext execution receipt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// Hash of the transaction this receipt answers.
    pub tx_hash: [u8; 32],
    /// Sender address.
    pub sender: [u8; 32],
    /// Contract address.
    pub contract: [u8; 32],
    /// Whether execution succeeded.
    pub success: bool,
    /// Contract return data.
    pub return_data: Vec<u8>,
    /// Log lines emitted during execution.
    pub logs: Vec<Vec<u8>>,
}

impl Receipt {
    /// Canonical encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.return_data.len());
        out.extend_from_slice(&self.tx_hash);
        out.extend_from_slice(&self.sender);
        out.extend_from_slice(&self.contract);
        out.push(self.success as u8);
        out.extend_from_slice(&(self.return_data.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.return_data);
        out.extend_from_slice(&(self.logs.len() as u32).to_le_bytes());
        for log in &self.logs {
            out.extend_from_slice(&(log.len() as u32).to_le_bytes());
            out.extend_from_slice(log);
        }
        out
    }

    /// Parse.
    pub fn decode(bytes: &[u8]) -> Option<Receipt> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = bytes.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        let mut tx_hash = [0u8; 32];
        tx_hash.copy_from_slice(take(&mut pos, 32)?);
        let mut sender = [0u8; 32];
        sender.copy_from_slice(take(&mut pos, 32)?);
        let mut contract = [0u8; 32];
        contract.copy_from_slice(take(&mut pos, 32)?);
        let success = take(&mut pos, 1)?[0] != 0;
        let mut n4 = [0u8; 4];
        n4.copy_from_slice(take(&mut pos, 4)?);
        let rlen = u32::from_le_bytes(n4) as usize;
        let return_data = take(&mut pos, rlen)?.to_vec();
        n4.copy_from_slice(take(&mut pos, 4)?);
        let log_count = u32::from_le_bytes(n4) as usize;
        let mut logs = Vec::with_capacity(log_count.min(1024));
        for _ in 0..log_count {
            n4.copy_from_slice(take(&mut pos, 4)?);
            let llen = u32::from_le_bytes(n4) as usize;
            logs.push(take(&mut pos, llen)?.to_vec());
        }
        if pos != bytes.len() {
            return None;
        }
        Some(Receipt {
            tx_hash,
            sender,
            contract,
            success,
            return_data,
            logs,
        })
    }

    /// Seal under the one-time transaction key (`Rpt_conf = Enc(k_tx,
    /// Rpt_raw)`). Only the transaction owner — or whoever the owner hands
    /// `k_tx` to — can open it.
    pub fn seal(&self, k_tx: &[u8; 32], rng: &mut HmacDrbg) -> Result<Vec<u8>, CryptoError> {
        let gcm = AesGcm::new(k_tx)?;
        let nonce = rng.gen_nonce();
        let mut out = Vec::with_capacity(12 + self.encode().len() + 16);
        out.extend_from_slice(&nonce);
        out.extend_from_slice(&gcm.seal(&nonce, &self.tx_hash, &self.encode()));
        Ok(out)
    }

    /// Open a sealed receipt with `k_tx`, checking it answers `tx_hash`.
    pub fn open(
        sealed: &[u8],
        k_tx: &[u8; 32],
        tx_hash: &[u8; 32],
    ) -> Result<Receipt, CryptoError> {
        if sealed.len() < 12 {
            return Err(CryptoError::TruncatedInput);
        }
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&sealed[..12]);
        let gcm = AesGcm::new(k_tx)?;
        let plain = gcm.open(&nonce, tx_hash, &sealed[12..])?;
        Receipt::decode(&plain).ok_or(CryptoError::AuthenticationFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Receipt {
        Receipt {
            tx_hash: [1u8; 32],
            sender: [2u8; 32],
            contract: [3u8; 32],
            success: true,
            return_data: b"transfer ok: balance=990".to_vec(),
            logs: vec![b"audit: transfer".to_vec(), b"fee: 1".to_vec()],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = sample();
        assert_eq!(Receipt::decode(&r.encode()).unwrap(), r);
        let empty = Receipt {
            return_data: vec![],
            logs: vec![],
            success: false,
            ..sample()
        };
        assert_eq!(Receipt::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn seal_open_round_trip() {
        let r = sample();
        let k_tx = [9u8; 32];
        let mut rng = HmacDrbg::from_u64(4);
        let sealed = r.seal(&k_tx, &mut rng).unwrap();
        let opened = Receipt::open(&sealed, &k_tx, &r.tx_hash).unwrap();
        assert_eq!(opened, r);
    }

    #[test]
    fn wrong_key_or_wrong_tx_rejected() {
        let r = sample();
        let mut rng = HmacDrbg::from_u64(4);
        let sealed = r.seal(&[9u8; 32], &mut rng).unwrap();
        assert!(Receipt::open(&sealed, &[8u8; 32], &r.tx_hash).is_err());
        // Receipt bound to its tx hash by AAD: replaying it for another tx
        // fails.
        assert!(Receipt::open(&sealed, &[9u8; 32], &[0xaa; 32]).is_err());
    }

    #[test]
    fn decode_rejects_corruption() {
        let bytes = sample().encode();
        assert!(Receipt::decode(&bytes[..bytes.len() - 1]).is_none());
        let mut extended = bytes;
        extended.push(0);
        assert!(Receipt::decode(&extended).is_none());
    }
}
