//! Per-operation counters — the instrumentation behind Table 1 and the
//! SimTx cost inputs for the figure harnesses.

use confide_tee::meter::CostModel;

/// Counts and attributed cycles per operation category, accumulated over
/// one transaction (or one block).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpCounters {
    /// Contract invocations (direct + cross-contract), Table 1 row 1.
    pub contract_calls: u64,
    /// Cycles spent in contract execution (VM dispatch + host work).
    pub contract_cycles: u64,
    /// GetStorage operations (Table 1 row 2).
    pub get_storage: u64,
    /// Cycles in GetStorage (ocall + decrypt + copy).
    pub get_cycles: u64,
    /// SetStorage operations (Table 1 row 3).
    pub set_storage: u64,
    /// Cycles in SetStorage.
    pub set_cycles: u64,
    /// Signature verifications (Table 1 row 4).
    pub verifies: u64,
    /// Cycles in verification.
    pub verify_cycles: u64,
    /// Envelope decryptions (Table 1 row 5).
    pub decrypts: u64,
    /// Cycles in envelope decryption.
    pub decrypt_cycles: u64,
    /// VM instructions retired.
    pub vm_instret: u64,
    /// Enclave boundary crossings.
    pub ocalls: u64,
    /// Bytes pushed through AES-GCM for states.
    pub state_crypto_bytes: u64,
    /// SDM read-cache hits (decryptions avoided).
    pub cache_hits: u64,
    /// The memory-pool-miss share of `contract_cycles` (fresh EPC page
    /// commits). Tracked separately because it depends on pool pressure —
    /// i.e. on concurrency — so the parallel executor excludes it from
    /// its deterministic load estimates.
    pub mem_commit_cycles: u64,
}

impl OpCounters {
    /// Merge another counter set in.
    pub fn add(&mut self, other: &OpCounters) {
        self.contract_calls += other.contract_calls;
        self.contract_cycles += other.contract_cycles;
        self.get_storage += other.get_storage;
        self.get_cycles += other.get_cycles;
        self.set_storage += other.set_storage;
        self.set_cycles += other.set_cycles;
        self.verifies += other.verifies;
        self.verify_cycles += other.verify_cycles;
        self.decrypts += other.decrypts;
        self.decrypt_cycles += other.decrypt_cycles;
        self.vm_instret += other.vm_instret;
        self.ocalls += other.ocalls;
        self.state_crypto_bytes += other.state_crypto_bytes;
        self.cache_hits += other.cache_hits;
        self.mem_commit_cycles += other.mem_commit_cycles;
    }

    /// Sum a collection of counter sets — per-worker aggregation for the
    /// parallel block executor and the bench reporters.
    pub fn sum<'a>(sets: impl IntoIterator<Item = &'a OpCounters>) -> OpCounters {
        let mut total = OpCounters::default();
        for c in sets {
            total.add(c);
        }
        total
    }

    /// Total attributed cycles.
    pub fn total_cycles(&self) -> u64 {
        self.contract_cycles
            + self.get_cycles
            + self.set_cycles
            + self.verify_cycles
            + self.decrypt_cycles
    }

    /// Render the Table-1 style rows: (method, duration ms, count, ratio).
    pub fn table1_rows(&self, model: &CostModel) -> Vec<(&'static str, f64, u64, f64)> {
        let total = self.total_cycles().max(1) as f64;
        let row = |name, cycles: u64, count| {
            (
                name,
                model.cycles_to_ms(cycles),
                count,
                cycles as f64 / total,
            )
        };
        vec![
            row("Contract Call", self.contract_cycles, self.contract_calls),
            row("GetStorage", self.get_cycles, self.get_storage),
            row("SetStorage", self.set_cycles, self.set_storage),
            row("Transaction Verify", self.verify_cycles, self.verifies),
            row("Transaction Decryption", self.decrypt_cycles, self.decrypts),
        ]
    }
}

/// The outcome + cost of one executed transaction.
#[derive(Debug, Clone)]
pub struct TxStats {
    /// Per-operation accounting.
    pub counters: OpCounters,
    /// Total virtual cycles charged for the execution phase.
    pub exec_cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_totals() {
        let mut a = OpCounters {
            contract_calls: 2,
            contract_cycles: 100,
            get_storage: 5,
            get_cycles: 50,
            ..OpCounters::default()
        };
        let b = OpCounters {
            contract_calls: 1,
            contract_cycles: 10,
            set_storage: 1,
            set_cycles: 5,
            ..OpCounters::default()
        };
        a.add(&b);
        assert_eq!(a.contract_calls, 3);
        assert_eq!(a.total_cycles(), 165);
    }

    #[test]
    fn table1_ratios_sum_to_one() {
        let c = OpCounters {
            contract_calls: 31,
            contract_cycles: 120_000_000,
            get_storage: 151,
            get_cycles: 17_000_000,
            set_storage: 9,
            set_cycles: 2_000_000,
            verifies: 1,
            verify_cycles: 814_000,
            decrypts: 1,
            decrypt_cycles: 370_000,
            ..OpCounters::default()
        };
        let rows = c.table1_rows(&CostModel::default());
        let ratio_sum: f64 = rows.iter().map(|r| r.3).sum();
        assert!((ratio_sum - 1.0).abs() < 1e-9);
        assert_eq!(rows[0].0, "Contract Call");
        assert_eq!(rows[1].2, 151);
        // Durations convert at 3.7 GHz.
        assert!((rows[0].1 - 120_000_000.0 / 3.7e9 * 1e3).abs() < 1e-6);
    }
}
