//! `confide-audit` — the deploy-time auditing driver.
//!
//! For each CCL contract it chains every static check the platform runs
//! before (or instead of) trusting runtime behaviour, then closes the
//! loop with a *differential* check: execute the contract's exported
//! methods on the public engine under a journaled context and assert the
//! observed read/write sets are admitted by the statically inferred
//! access summary. A contract that passes is safe both for deployment
//! (no confidentiality leaks) and for the speculation-free parallel
//! scheduler (sound access summaries).
//!
//! ```text
//! confide-audit [--json] [--schema <file.ccle>] <file.ccl>...
//! ```
//!
//! Pipeline per file:
//! 1. confidentiality lint (`confide_lang::lint_source`) — errors fail;
//! 2. compile (`confide_lang::build_vm`) + decode;
//! 3. ahead-of-time bytecode verification, reporting per-module host-call
//!    totals from the per-function [`HostCallCounts`];
//! 4. stdlib recognition + static access analysis;
//! 5. differential soundness check: per exported method, run it with
//!    synthetic inputs and assert the journaled `RwSet` is covered by the
//!    summary's instantiated matchers (`Top` summaries are sound by
//!    construction and are reported, not failed);
//! 6. with a schema, flag which statically known keys touch confidential
//!    state.
//!
//! Exit status is non-zero iff any file fails — `scripts/check.sh` gates
//! on `examples/ccl/` (where `leaky.ccl` must fail and the rest pass).

use std::process::ExitCode;
use std::sync::Arc;

use confide_ccle::ConfidentialKeys;
use confide_core::engine::full_key;
use confide_core::{Engine, EngineConfig, ExecContext};
use confide_storage::StateDb;
use confide_vm::{analyze_module, verify_module, AccessSummary, KeyExpr, KeyMatcher, Module};

/// Fixed audit deployment address (public engine, throwaway state).
const AUDIT_ADDR: [u8; 32] = [0xAD; 32];
/// Fixed audit sender.
const AUDIT_SENDER: [u8; 32] = [0x51; 32];
/// Synthetic inputs exercised per method: a JSON object (feeds
/// `json_get`-derived keys) and a bare scalar.
const AUDIT_INPUTS: [&[u8]; 2] = [br#"{"to":"auditor","amount":7}"#, b"12345"];

fn usage() -> ExitCode {
    eprintln!("usage: confide-audit [--json] [--schema <file.ccle>] <file.ccl>...");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json = false;
    let mut schema_path: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--schema" => match args.next() {
                Some(p) => schema_path = Some(p),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ if a.starts_with('-') => return usage(),
            _ => files.push(a),
        }
    }
    if files.is_empty() {
        return usage();
    }

    let keys = match schema_path {
        Some(p) => match std::fs::read_to_string(&p) {
            Ok(text) => match confide_ccle::parse_schema(&text) {
                Ok(s) => Some(s.confidential_keys()),
                Err(e) => {
                    eprintln!("confide-audit: {p}: bad schema: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("confide-audit: {p}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let mut reports = Vec::new();
    let mut any_failed = false;
    for f in &files {
        let r = audit_file(f, keys.as_ref());
        any_failed |= !r.passed();
        reports.push(r);
    }

    if json {
        print!("{}", render_json(&reports));
    } else {
        for r in &reports {
            print!("{}", r.render_text());
        }
        let failed = reports.iter().filter(|r| !r.passed()).count();
        println!(
            "confide-audit: {} file(s), {} failed",
            reports.len(),
            failed
        );
    }
    if any_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Outcome of auditing one method.
struct MethodReport {
    name: String,
    top: bool,
    calls_out: bool,
    is_static: bool,
    reads: Vec<String>,
    writes: Vec<String>,
    confidential_keys: Vec<String>,
    cost_hint: u64,
    /// `None` = differential check skipped (Top / calls out);
    /// `Some(Ok(runs))` = journal covered by summary on every run;
    /// `Some(Err(msg))` = a journaled key escaped the summary.
    differential: Option<Result<usize, String>>,
}

/// Outcome of auditing one file.
struct FileReport {
    file: String,
    lint_errors: Vec<String>,
    lint_warnings: Vec<String>,
    error: Option<String>,
    host_gets: u64,
    host_puts: u64,
    host_calls: u64,
    methods: Vec<MethodReport>,
}

impl FileReport {
    fn failed(file: &str, error: String) -> FileReport {
        FileReport {
            file: file.to_string(),
            lint_errors: Vec::new(),
            lint_warnings: Vec::new(),
            error: Some(error),
            host_gets: 0,
            host_puts: 0,
            host_calls: 0,
            methods: Vec::new(),
        }
    }

    fn passed(&self) -> bool {
        self.error.is_none()
            && self.lint_errors.is_empty()
            && self
                .methods
                .iter()
                .all(|m| !matches!(m.differential, Some(Err(_))))
    }

    fn render_text(&self) -> String {
        let mut out = String::new();
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        out.push_str(&format!("== {} [{verdict}]\n", self.file));
        for e in &self.lint_errors {
            out.push_str(&format!("   lint error: {e}\n"));
        }
        for w in &self.lint_warnings {
            out.push_str(&format!("   lint warning: {w}\n"));
        }
        if let Some(e) = &self.error {
            out.push_str(&format!("   error: {e}\n"));
            return out;
        }
        out.push_str(&format!(
            "   host calls: {} get / {} put / {} cross-contract\n",
            self.host_gets, self.host_puts, self.host_calls
        ));
        for m in &self.methods {
            let shape = if m.top {
                "TOP"
            } else if m.calls_out {
                "calls-out"
            } else if m.is_static {
                "static"
            } else {
                "input-dependent"
            };
            out.push_str(&format!(
                "   method {}: {shape}, cost-hint {}\n",
                m.name, m.cost_hint
            ));
            if !m.top {
                out.push_str(&format!(
                    "     reads:  [{}]\n     writes: [{}]\n",
                    m.reads.join(", "),
                    m.writes.join(", ")
                ));
            }
            if !m.confidential_keys.is_empty() {
                out.push_str(&format!(
                    "     confidential: [{}]\n",
                    m.confidential_keys.join(", ")
                ));
            }
            match &m.differential {
                None => out.push_str("     differential: skipped (summary not invocable)\n"),
                Some(Ok(runs)) => out.push_str(&format!(
                    "     differential: journal ⊆ summary over {runs} run(s)\n"
                )),
                Some(Err(e)) => out.push_str(&format!("     differential: VIOLATION: {e}\n")),
            }
        }
        out
    }
}

/// Run the full audit pipeline over one CCL source file.
fn audit_file(path: &str, keys: Option<&ConfidentialKeys>) -> FileReport {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => return FileReport::failed(path, format!("read: {e}")),
    };

    // 1. Confidentiality lint.
    let lint = match confide_lang::lint_source(&source, keys) {
        Ok(r) => r,
        Err(e) => return FileReport::failed(path, format!("compile: {e}")),
    };
    let lint_errors: Vec<String> = lint.errors().map(|d| d.to_string()).collect();
    let lint_warnings: Vec<String> = lint
        .diagnostics
        .iter()
        .filter(|d| d.severity == confide_lang::Severity::Warning)
        .map(|d| d.to_string())
        .collect();

    // 2. Compile + decode.
    let code = match confide_lang::build_vm(&source) {
        Ok(c) => c,
        Err(e) => return FileReport::failed(path, format!("compile: {e}")),
    };
    let module = match Module::decode(&code) {
        Ok(m) => m,
        Err(e) => return FileReport::failed(path, format!("decode: {e:?}")),
    };

    // 3. Bytecode verification + host-call totals.
    let summary = match verify_module(&module) {
        Ok(s) => s,
        Err(e) => return FileReport::failed(path, format!("verify: {e}")),
    };
    let (host_gets, host_puts, host_calls) =
        summary
            .host_calls
            .iter()
            .fold((0u64, 0u64, 0u64), |(g, p, c), h| {
                (
                    g + h.state_gets as u64,
                    p + h.state_puts as u64,
                    c + h.contract_calls as u64,
                )
            });

    // 4. Static access analysis.
    let known = confide_core::recognize_stdlib(&module);
    let access = analyze_module(&module, &known);

    // 5+6. Per-method reporting and the differential soundness check.
    let engine = Arc::new(Engine::public(EngineConfig::default()));
    let deployed = engine
        .deploy(AUDIT_ADDR, &code, confide_core::VmKind::ConfideVm, false)
        .is_ok();
    let state = StateDb::new();
    let methods = access
        .methods
        .iter()
        .map(|(name, s)| audit_method(&engine, &state, deployed, name, s, keys))
        .collect();

    FileReport {
        file: path.to_string(),
        lint_errors,
        lint_warnings,
        error: None,
        host_gets,
        host_puts,
        host_calls,
        methods,
    }
}

/// Report one method's summary and differentially check it when possible.
fn audit_method(
    engine: &Engine,
    state: &StateDb,
    deployed: bool,
    name: &str,
    summary: &AccessSummary,
    keys: Option<&ConfidentialKeys>,
) -> MethodReport {
    let mut confidential = std::collections::BTreeSet::new();
    if let Some(keys) = keys {
        for k in summary.reads.iter().chain(summary.writes.iter()) {
            if let Some(lit) = leading_literal(k) {
                // A key is flagged when its literal part already falls in a
                // confidential region, or could extend into one.
                let hits = keys.key_is_confidential(&lit)
                    || keys.exact().iter().any(|e| e.as_bytes().starts_with(&lit))
                    || keys
                        .prefixes()
                        .iter()
                        .any(|p| p.as_bytes().starts_with(&lit));
                if hits {
                    confidential.insert(k.render());
                }
            }
        }
    }

    let invocable = deployed && !summary.top && !summary.calls_out;
    let differential = invocable.then(|| {
        let mut runs = 0usize;
        for input in AUDIT_INPUTS {
            let reads: Vec<KeyMatcher> = summary
                .reads
                .iter()
                .map(|k| lift(k.instantiate(input, &AUDIT_SENDER)))
                .collect();
            let writes: Vec<KeyMatcher> = summary
                .writes
                .iter()
                .map(|k| lift(k.instantiate(input, &AUDIT_SENDER)))
                .collect();
            let mut ctx = ExecContext::new();
            ctx.begin_tx();
            let res = engine.invoke_inner(state, &mut ctx, &AUDIT_ADDR, name, input, &AUDIT_SENDER);
            // A trap's partial journal must still be covered — take the
            // RwSet from whichever path ended the transaction.
            let rw = if res.is_ok() {
                ctx.commit_tx()
            } else {
                ctx.rollback_tx()
            };
            if !rw.covered_by(&reads, &writes) {
                return Err(format!(
                    "method {name} with input {:?}: journaled keys escape the static summary \
                     (reads {:?}, writes {:?})",
                    String::from_utf8_lossy(input),
                    rw.reads.len(),
                    rw.writes.len()
                ));
            }
            runs += 1;
        }
        Ok(runs)
    });

    MethodReport {
        name: name.to_string(),
        top: summary.top,
        calls_out: summary.calls_out,
        is_static: summary.is_static(),
        reads: summary.reads.iter().map(KeyExpr::render).collect(),
        writes: summary.writes.iter().map(KeyExpr::render).collect(),
        confidential_keys: confidential.into_iter().collect(),
        cost_hint: summary.cost_hint,
        differential,
    }
}

/// Lift a contract-relative matcher to the full-storage-key space the
/// journal records (`invoke_inner` bypasses the signed-tx wrapper, so no
/// nonce/ktx system keys appear).
fn lift(m: KeyMatcher) -> KeyMatcher {
    match m {
        KeyMatcher::Exact(k) => KeyMatcher::Exact(full_key(&AUDIT_ADDR, &k)),
        KeyMatcher::Prefix(p) => KeyMatcher::Prefix(full_key(&AUDIT_ADDR, &p)),
    }
}

/// The leading literal bytes of a key expression (for schema matching).
fn leading_literal(k: &KeyExpr) -> Option<Vec<u8>> {
    match k.segs.first() {
        Some(confide_vm::KeySeg::Lit(b)) => Some(b.clone()),
        _ => None,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_str_array(items: &[String]) -> String {
    let inner: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!("[{}]", inner.join(","))
}

fn render_json(reports: &[FileReport]) -> String {
    let mut files = Vec::new();
    for r in reports {
        let mut methods = Vec::new();
        for m in &r.methods {
            let differential = match &m.differential {
                None => "\"skipped\"".to_string(),
                Some(Ok(runs)) => format!("{{\"ok\":true,\"runs\":{runs}}}"),
                Some(Err(e)) => format!("{{\"ok\":false,\"violation\":\"{}\"}}", json_escape(e)),
            };
            methods.push(format!(
                "{{\"name\":\"{}\",\"top\":{},\"calls_out\":{},\"static\":{},\"cost_hint\":{},\
                 \"reads\":{},\"writes\":{},\"confidential\":{},\"differential\":{}}}",
                json_escape(&m.name),
                m.top,
                m.calls_out,
                m.is_static,
                m.cost_hint,
                json_str_array(&m.reads),
                json_str_array(&m.writes),
                json_str_array(&m.confidential_keys),
                differential
            ));
        }
        let error = match &r.error {
            Some(e) => format!("\"{}\"", json_escape(e)),
            None => "null".to_string(),
        };
        files.push(format!(
            "{{\"file\":\"{}\",\"pass\":{},\"error\":{},\"lint_errors\":{},\"lint_warnings\":{},\
             \"host_calls\":{{\"state_gets\":{},\"state_puts\":{},\"contract_calls\":{}}},\
             \"methods\":[{}]}}",
            json_escape(&r.file),
            r.passed(),
            error,
            json_str_array(&r.lint_errors),
            json_str_array(&r.lint_warnings),
            r.host_gets,
            r.host_puts,
            r.host_calls,
            files_join(&methods)
        ));
    }
    let pass = reports.iter().all(FileReport::passed);
    format!("{{\"pass\":{pass},\"files\":[{}]}}\n", files_join(&files))
}

fn files_join(items: &[String]) -> String {
    items.join(",")
}
