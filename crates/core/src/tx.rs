//! Transaction formats.

use confide_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use confide_crypto::envelope::Envelope;
use confide_crypto::{sha256, CryptoError};

/// A raw (plaintext) smart-contract transaction — "account information and
/// transaction input information" (§2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawTx {
    /// Sender public key (the initiator address).
    pub sender: [u8; 32],
    /// Target contract address.
    pub contract: [u8; 32],
    /// Method name on the contract.
    pub method: String,
    /// Serialized arguments.
    pub args: Vec<u8>,
    /// Anti-replay nonce.
    pub nonce: u64,
}

impl RawTx {
    /// Canonical byte encoding (signed and hashed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(84 + self.method.len() + self.args.len());
        out.extend_from_slice(&self.sender);
        out.extend_from_slice(&self.contract);
        out.extend_from_slice(&self.nonce.to_le_bytes());
        out.extend_from_slice(&(self.method.len() as u32).to_le_bytes());
        out.extend_from_slice(self.method.as_bytes());
        out.extend_from_slice(&(self.args.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.args);
        out
    }

    /// Parse the canonical encoding.
    pub fn decode(bytes: &[u8]) -> Result<RawTx, TxError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], TxError> {
            let s = bytes.get(*pos..*pos + n).ok_or(TxError::Truncated)?;
            *pos += n;
            Ok(s)
        };
        let mut sender = [0u8; 32];
        sender.copy_from_slice(take(&mut pos, 32)?);
        let mut contract = [0u8; 32];
        contract.copy_from_slice(take(&mut pos, 32)?);
        let mut n8 = [0u8; 8];
        n8.copy_from_slice(take(&mut pos, 8)?);
        let nonce = u64::from_le_bytes(n8);
        let mut n4 = [0u8; 4];
        n4.copy_from_slice(take(&mut pos, 4)?);
        let mlen = u32::from_le_bytes(n4) as usize;
        let method = std::str::from_utf8(take(&mut pos, mlen)?)
            .map_err(|_| TxError::BadEncoding)?
            .to_string();
        n4.copy_from_slice(take(&mut pos, 4)?);
        let alen = u32::from_le_bytes(n4) as usize;
        let args = take(&mut pos, alen)?.to_vec();
        if pos != bytes.len() {
            return Err(TxError::Truncated);
        }
        Ok(RawTx {
            sender,
            contract,
            method,
            args,
            nonce,
        })
    }

    /// The transaction hash (identifier; also the `k_tx` derivation input).
    pub fn hash(&self) -> [u8; 32] {
        sha256(&self.encode())
    }
}

/// A signed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedTx {
    /// The payload.
    pub raw: RawTx,
    /// Ed25519 signature by the sender key over `raw.encode()`.
    pub signature: Signature,
}

impl SignedTx {
    /// Sign `raw` (the sender field must match the key).
    pub fn sign(raw: RawTx, key: &SigningKey) -> SignedTx {
        debug_assert_eq!(raw.sender, key.verifying_key().0);
        let signature = key.sign(&raw.encode());
        SignedTx { raw, signature }
    }

    /// Verify the embedded signature against the sender address.
    pub fn verify(&self) -> Result<(), CryptoError> {
        VerifyingKey(self.raw.sender).verify(&self.raw.encode(), &self.signature)
    }

    /// Canonical byte encoding.
    pub fn encode(&self) -> Vec<u8> {
        let raw = self.raw.encode();
        let mut out = Vec::with_capacity(64 + raw.len());
        out.extend_from_slice(&self.signature.0);
        out.extend_from_slice(&raw);
        out
    }

    /// Parse.
    pub fn decode(bytes: &[u8]) -> Result<SignedTx, TxError> {
        if bytes.len() < 64 {
            return Err(TxError::Truncated);
        }
        let mut sig = [0u8; 64];
        sig.copy_from_slice(&bytes[..64]);
        Ok(SignedTx {
            raw: RawTx::decode(&bytes[64..])?,
            signature: Signature(sig),
        })
    }
}

/// The on-the-wire transaction: the `TYPE` flag of Fig. 3 selects the
/// engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireTx {
    /// TYPE=0: plaintext signed transaction for the Public-Engine.
    Public(SignedTx),
    /// TYPE=1: T-Protocol envelope for the Confidential-Engine. The inner
    /// plaintext is a [`SignedTx`] encoding.
    Confidential(Envelope),
}

impl WireTx {
    /// Wire encoding with a leading type byte.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WireTx::Public(tx) => {
                let mut out = vec![0u8];
                out.extend_from_slice(&tx.encode());
                out
            }
            WireTx::Confidential(env) => {
                let mut out = vec![1u8];
                out.extend_from_slice(&env.encode());
                out
            }
        }
    }

    /// Parse the wire encoding.
    pub fn decode(bytes: &[u8]) -> Result<WireTx, TxError> {
        match bytes.first() {
            Some(0) => Ok(WireTx::Public(SignedTx::decode(&bytes[1..])?)),
            Some(1) => Ok(WireTx::Confidential(
                Envelope::decode(&bytes[1..]).map_err(|_| TxError::BadEncoding)?,
            )),
            _ => Err(TxError::Truncated),
        }
    }

    /// Stable identifier usable *before* decryption: the hash of the wire
    /// bytes. This is the pre-verification cache key of §5.2 (the enclave
    /// looks cached `k_tx`/`f_verified` up by "incoming confidential
    /// transaction's hash").
    pub fn wire_hash(&self) -> [u8; 32] {
        sha256(&self.encode())
    }

    /// Byte size on the wire.
    pub fn size(&self) -> usize {
        self.encode().len()
    }
}

/// Transaction parse errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// Buffer too short / trailing bytes.
    Truncated,
    /// Structurally invalid.
    BadEncoding,
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::Truncated => f.write_str("truncated transaction"),
            TxError::BadEncoding => f.write_str("malformed transaction"),
        }
    }
}

impl std::error::Error for TxError {}

#[cfg(test)]
mod tests {
    use super::*;
    use confide_crypto::ed25519::SigningKey;

    fn sample(key: &SigningKey) -> RawTx {
        RawTx {
            sender: key.verifying_key().0,
            contract: [7u8; 32],
            method: "transfer".into(),
            args: b"{\"to\":\"bob\",\"amount\":10}".to_vec(),
            nonce: 42,
        }
    }

    #[test]
    fn raw_round_trip() {
        let key = SigningKey::from_seed(&[1u8; 32]);
        let tx = sample(&key);
        assert_eq!(RawTx::decode(&tx.encode()).unwrap(), tx);
    }

    #[test]
    fn hash_is_content_sensitive() {
        let key = SigningKey::from_seed(&[1u8; 32]);
        let a = sample(&key);
        let mut b = a.clone();
        b.nonce = 43;
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn signed_round_trip_and_verify() {
        let key = SigningKey::from_seed(&[2u8; 32]);
        let tx = SignedTx::sign(sample(&key), &key);
        tx.verify().unwrap();
        let decoded = SignedTx::decode(&tx.encode()).unwrap();
        assert_eq!(decoded, tx);
        decoded.verify().unwrap();
    }

    #[test]
    fn forged_sender_fails_verification() {
        let key = SigningKey::from_seed(&[2u8; 32]);
        let mut tx = SignedTx::sign(sample(&key), &key);
        tx.raw.sender = [9u8; 32];
        assert!(tx.verify().is_err());
    }

    #[test]
    fn tampered_args_fail_verification() {
        let key = SigningKey::from_seed(&[2u8; 32]);
        let mut tx = SignedTx::sign(sample(&key), &key);
        tx.raw.args[0] ^= 1;
        assert!(tx.verify().is_err());
    }

    #[test]
    fn wire_round_trips_both_types() {
        let key = SigningKey::from_seed(&[3u8; 32]);
        let public = WireTx::Public(SignedTx::sign(sample(&key), &key));
        assert_eq!(WireTx::decode(&public.encode()).unwrap(), public);

        let mut rng = confide_crypto::HmacDrbg::from_u64(5);
        let kp = confide_crypto::envelope::EnvelopeKeyPair::generate(&mut rng);
        let k_tx = rng.gen32();
        let env = Envelope::seal(&kp.public(), &k_tx, b"", b"inner", &mut rng).unwrap();
        let conf = WireTx::Confidential(env);
        assert_eq!(WireTx::decode(&conf.encode()).unwrap(), conf);
        assert_ne!(conf.wire_hash(), public.wire_hash());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(WireTx::decode(&[]).is_err());
        assert!(WireTx::decode(&[2, 0, 0]).is_err());
        assert!(RawTx::decode(&[0u8; 10]).is_err());
        // Trailing bytes rejected.
        let key = SigningKey::from_seed(&[1u8; 32]);
        let mut bytes = sample(&key).encode();
        bytes.push(0);
        assert!(RawTx::decode(&bytes).is_err());
    }
}
