//! The pre-defined authorization chain-code (§3.2.3).
//!
//! "CONFIDE provides a more elegant way to realize the authorization not
//! only for transaction receipt, but also including raw transaction
//! information. CONFIDE built a pre-defined chain code to handle the
//! pending request on the transaction receipts or raw transactions. The
//! request will be parsed and forwarded to the related user smart
//! contract, where user can define accessing rules for such requests."
//!
//! Concretely: at execution time the Confidential-Engine retains each
//! transaction's one-time key `k_tx` in confidential system state. A third
//! party later submits an access request naming the transaction and its
//! contract; the engine *forwards the request to the user contract's
//! `acl` method*, and only if the contract-defined rule answers `"1"` does
//! the enclave unseal `k_tx` and re-wrap it to the requester's public key.
//! No human ever handles `k_tx`, and the policy lives in auditable
//! contract code ("updating the rules should be done through upgrading the
//! contract", §3.3).

use crate::context::ExecContext;
use crate::engine::{full_key, state_aad, Engine, EngineError, SYSTEM_KTX_ADDR};
use confide_crypto::envelope::Envelope;
use confide_crypto::HmacDrbg;
use confide_storage::versioned::StateDb;

/// An access request for a transaction's receipt / raw content.
#[derive(Debug, Clone)]
pub struct AccessRequest {
    /// The transaction whose `k_tx` is requested.
    pub tx_hash: [u8; 32],
    /// The contract whose access rules govern the request.
    pub contract: [u8; 32],
    /// The requester's identity (their signing address).
    pub requester: [u8; 32],
    /// The requester's X25519 public key to wrap `k_tx` to.
    pub requester_dh_pk: [u8; 32],
}

/// Outcomes of an access request.
#[derive(Debug)]
pub enum AccessError {
    /// The user contract's rules denied the request.
    Denied,
    /// No retained key for this transaction.
    UnknownTransaction,
    /// Engine/crypto failure.
    Engine(EngineError),
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::Denied => f.write_str("access denied by contract rules"),
            AccessError::UnknownTransaction => f.write_str("no retained key for transaction"),
            AccessError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for AccessError {}

/// Handle an access request: consult the user contract, then re-wrap
/// `k_tx` to the requester. Returns the sealed envelope the requester can
/// open with their DH secret.
pub fn handle_access_request(
    engine: &Engine,
    state: &StateDb,
    ctx: &mut ExecContext,
    request: &AccessRequest,
    rng: &mut HmacDrbg,
) -> Result<Vec<u8>, AccessError> {
    let tee = engine
        .tee()
        .ok_or(AccessError::Engine(EngineError::WrongEngine))?;

    // 1. Forward to the user contract's access rule: acl(requester_hex).
    let requester_hex = confide_crypto::hex(&request.requester);
    let verdict = engine
        .invoke_inner(
            state,
            ctx,
            &request.contract,
            "acl",
            requester_hex.as_bytes(),
            &request.requester,
        )
        .map_err(AccessError::Engine)?;
    if verdict != b"1" {
        return Err(AccessError::Denied);
    }

    // 2. Unseal the retained k_tx from confidential system state.
    let mut ktx_key = b"ktx|".to_vec();
    ktx_key.extend_from_slice(&request.tx_hash);
    let fk = full_key(&SYSTEM_KTX_ADDR, &ktx_key);
    let plain = match ctx.lookup(&fk) {
        Some(Some(v)) => v.clone(),
        Some(None) => return Err(AccessError::UnknownTransaction),
        None => {
            let stored = state.get(&fk).ok_or(AccessError::UnknownTransaction)?;
            if stored.len() < 12 {
                return Err(AccessError::UnknownTransaction);
            }
            let mut nonce = [0u8; 12];
            nonce.copy_from_slice(&stored[..12]);
            tee.gcm_states
                .open(
                    &nonce,
                    &state_aad(&SYSTEM_KTX_ADDR, &ktx_key),
                    &stored[12..],
                )
                .map_err(|_| AccessError::Engine(EngineError::Crypto))?
        }
    };
    if plain.len() != 32 {
        return Err(AccessError::Engine(EngineError::Crypto));
    }
    let mut k_tx = [0u8; 32];
    k_tx.copy_from_slice(&plain);

    // 3. Re-wrap k_tx to the requester (never exposing it in plaintext
    // outside the enclave).
    let env = Envelope::seal(
        &request.requester_dh_pk,
        &k_tx,
        &request.tx_hash,
        b"k_tx-grant",
        &mut rng.clone(),
    )
    .map_err(|_| AccessError::Engine(EngineError::Crypto))?;
    Ok(env.encode())
}

/// Requester side: open a grant produced by [`handle_access_request`].
pub fn open_grant(
    grant: &[u8],
    requester_dh_sk: &[u8; 32],
    tx_hash: &[u8; 32],
) -> Option<[u8; 32]> {
    let env = Envelope::decode(grant).ok()?;
    let kp = confide_crypto::envelope::EnvelopeKeyPair::from_secret(*requester_dh_sk);
    let (k_tx, body) = env.open(&kp, tx_hash).ok()?;
    if body != b"k_tx-grant" {
        return None;
    }
    Some(k_tx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ConfideClient;
    use crate::engine::{EngineConfig, VmKind};
    use crate::keys::NodeKeys;
    use confide_tee::platform::TeePlatform;

    /// A contract with an on-chain whitelist: grant(hex) adds to the ACL,
    /// acl(hex) answers "1"/"0".
    const POLICY_SRC: &str = r#"
        export fn main() {
            storage_set(b"data", input());
            ret(b"stored");
        }
        export fn grant() {
            storage_set(concat(b"acl:", input()), b"1");
            ret(b"granted");
        }
        export fn acl() {
            let v: bytes = storage_get(concat(b"acl:", input()));
            if (eq_bytes(v, b"1") == 1) { ret(b"1"); } else { ret(b"0"); }
        }
    "#;

    fn setup() -> (Engine, StateDb, ExecContext, HmacDrbg, [u8; 32]) {
        let platform = TeePlatform::new(1, 1);
        let mut rng = HmacDrbg::from_u64(7);
        let keys = NodeKeys::generate(&mut rng);
        let engine = Engine::confidential(platform, keys, EngineConfig::default());
        let code = confide_lang::build_vm(POLICY_SRC).unwrap();
        let addr = [1u8; 32];
        engine.deploy(addr, &code, VmKind::ConfideVm, true).unwrap();
        (engine, StateDb::new(), ExecContext::new(), rng, addr)
    }

    #[test]
    fn authorized_party_recovers_receipt() {
        let (engine, state, mut ctx, mut rng, contract) = setup();
        let mut owner = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        let (wire, tx_hash, _k_tx) = owner
            .confidential_tx(
                &engine.pk_tx().unwrap(),
                contract,
                "main",
                b"secret-payload",
            )
            .unwrap();
        let (_receipt, sealed_receipt, _) = engine
            .execute_transaction(&state, &mut ctx, &wire, &mut rng)
            .unwrap();
        let sealed_receipt = sealed_receipt.unwrap();

        // The auditor's identity + DH key pair.
        let auditor_sk = rng.gen32();
        let auditor_pk = confide_crypto::x25519::x25519_base(&auditor_sk);
        let auditor_id = [0xaa; 32];

        // Without a grant, the contract rule denies.
        let request = AccessRequest {
            tx_hash,
            contract,
            requester: auditor_id,
            requester_dh_pk: auditor_pk,
        };
        assert!(matches!(
            handle_access_request(&engine, &state, &mut ctx, &request, &mut rng),
            Err(AccessError::Denied)
        ));

        // Owner updates the on-chain ACL through the contract.
        let (grant_wire, _, _) = owner
            .confidential_tx(
                &engine.pk_tx().unwrap(),
                contract,
                "grant",
                confide_crypto::hex(&auditor_id).as_bytes(),
            )
            .unwrap();
        let (r, _, _) = engine
            .execute_transaction(&state, &mut ctx, &grant_wire, &mut rng)
            .unwrap();
        assert_eq!(r.return_data, b"granted");

        // Now the request succeeds and the auditor can open the receipt.
        let grant = handle_access_request(&engine, &state, &mut ctx, &request, &mut rng).unwrap();
        let k_tx = open_grant(&grant, &auditor_sk, &tx_hash).unwrap();
        let receipt = crate::receipt::Receipt::open(&sealed_receipt, &k_tx, &tx_hash).unwrap();
        assert!(receipt.success);
        assert_eq!(receipt.return_data, b"stored");
    }

    #[test]
    fn unknown_transaction_rejected() {
        let (engine, state, mut ctx, mut rng, contract) = setup();
        let request = AccessRequest {
            tx_hash: [0x77; 32],
            contract,
            requester: [0xaa; 32],
            requester_dh_pk: [0x09; 32],
        };
        // Even a granted requester can't get a key that was never retained.
        // (acl denies first here; grant then retry against missing tx.)
        let err = handle_access_request(&engine, &state, &mut ctx, &request, &mut rng);
        assert!(matches!(err, Err(AccessError::Denied)));
    }

    #[test]
    fn grant_bound_to_tx_hash() {
        let (engine, state, mut ctx, mut rng, contract) = setup();
        let mut owner = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        let (wire, tx_hash, _) = owner
            .confidential_tx(&engine.pk_tx().unwrap(), contract, "main", b"x")
            .unwrap();
        engine
            .execute_transaction(&state, &mut ctx, &wire, &mut rng)
            .unwrap();
        let auditor_sk = rng.gen32();
        let auditor_pk = confide_crypto::x25519::x25519_base(&auditor_sk);
        let auditor_id = [0xaa; 32];
        let (g, _, _) = owner
            .confidential_tx(
                &engine.pk_tx().unwrap(),
                contract,
                "grant",
                confide_crypto::hex(&auditor_id).as_bytes(),
            )
            .unwrap();
        engine
            .execute_transaction(&state, &mut ctx, &g, &mut rng)
            .unwrap();
        let request = AccessRequest {
            tx_hash,
            contract,
            requester: auditor_id,
            requester_dh_pk: auditor_pk,
        };
        let grant = handle_access_request(&engine, &state, &mut ctx, &request, &mut rng).unwrap();
        // Wrong tx hash → AAD mismatch → no key.
        assert!(open_grant(&grant, &auditor_sk, &[0u8; 32]).is_none());
        assert!(open_grant(&grant, &auditor_sk, &tx_hash).is_some());
    }
}
