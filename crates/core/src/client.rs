//! The client side of T-Protocol.

use crate::receipt::Receipt;
use crate::tx::{RawTx, SignedTx, WireTx};
use confide_crypto::ed25519::SigningKey;
use confide_crypto::envelope::{derive_k_tx, Envelope};
use confide_crypto::{CryptoError, HmacDrbg};

/// Seal an already-signed transaction into a T-Protocol digital envelope
/// addressed to the consortium key `pk_tx`.
///
/// This is **the** canonical client-side sealing path: `k_tx` is derived
/// from the user root key and the transaction hash (§3.2.3), the signed
/// transaction encoding becomes the envelope body, and the caller gets
/// back `(wire_tx, tx_hash, k_tx)` — everything needed to later open the
/// sealed receipt or delegate access. Both the in-process
/// [`ConfideClient`] and the networked `confide-net` client go through
/// this one function so the two paths cannot drift.
pub fn seal_signed_tx(
    signed: &SignedTx,
    root_key: &[u8; 32],
    pk_tx: &[u8; 32],
    rng: &mut HmacDrbg,
) -> Result<(WireTx, [u8; 32], [u8; 32]), CryptoError> {
    let tx_hash = signed.raw.hash();
    let k_tx = derive_k_tx(root_key, &tx_hash);
    let env = Envelope::seal(pk_tx, &k_tx, b"", &signed.encode(), rng)?;
    Ok((WireTx::Confidential(env), tx_hash, k_tx))
}

/// A blockchain client: holds the user's signing key and the user root key
/// from which per-transaction one-time keys derive (§3.2.3: `k_tx` "is
/// derived from a user root key and the transaction hash").
pub struct ConfideClient {
    signing: SigningKey,
    root_key: [u8; 32],
    rng: HmacDrbg,
    nonce: u64,
}

impl ConfideClient {
    /// Create from seeds (deterministic for simulation replay).
    pub fn new(identity_seed: [u8; 32], root_key: [u8; 32], rng_seed: u64) -> ConfideClient {
        ConfideClient {
            signing: SigningKey::from_seed(&identity_seed),
            root_key,
            rng: HmacDrbg::from_u64(rng_seed),
            nonce: 0,
        }
    }

    /// The client's address (public key).
    pub fn address(&self) -> [u8; 32] {
        self.signing.verifying_key().0
    }

    /// Build a signed raw transaction (bumping the nonce).
    pub fn build_raw(&mut self, contract: [u8; 32], method: &str, args: &[u8]) -> SignedTx {
        self.nonce += 1;
        let raw = RawTx {
            sender: self.address(),
            contract,
            method: method.to_string(),
            args: args.to_vec(),
            nonce: self.nonce,
        };
        SignedTx::sign(raw, &self.signing)
    }

    /// Build a public (plaintext) wire transaction.
    pub fn public_tx(&mut self, contract: [u8; 32], method: &str, args: &[u8]) -> WireTx {
        WireTx::Public(self.build_raw(contract, method, args))
    }

    /// Build a confidential wire transaction sealed to `pk_tx`; returns the
    /// wire tx plus `(tx_hash, k_tx)` the client retains to open the
    /// receipt (and to delegate access).
    pub fn confidential_tx(
        &mut self,
        pk_tx: &[u8; 32],
        contract: [u8; 32],
        method: &str,
        args: &[u8],
    ) -> Result<(WireTx, [u8; 32], [u8; 32]), CryptoError> {
        let signed = self.build_raw(contract, method, args);
        seal_signed_tx(&signed, &self.root_key, pk_tx, &mut self.rng)
    }

    /// Recompute `k_tx` for a past transaction (the owner can always
    /// re-derive; distributing it to a third party is the off-line
    /// delegation path of §3.2.3).
    pub fn k_tx_for(&self, tx_hash: &[u8; 32]) -> [u8; 32] {
        derive_k_tx(&self.root_key, tx_hash)
    }

    /// Open a sealed receipt for a transaction this client sent.
    pub fn open_receipt(&self, sealed: &[u8], tx_hash: &[u8; 32]) -> Result<Receipt, CryptoError> {
        Receipt::open(sealed, &self.k_tx_for(tx_hash), tx_hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confide_crypto::envelope::EnvelopeKeyPair;

    #[test]
    fn nonce_increments_per_tx() {
        let mut c = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        let a = c.build_raw([0u8; 32], "m", b"");
        let b = c.build_raw([0u8; 32], "m", b"");
        assert_eq!(a.raw.nonce + 1, b.raw.nonce);
        assert_ne!(a.raw.hash(), b.raw.hash());
    }

    #[test]
    fn confidential_tx_round_trip_via_engine_keys() {
        let mut rng = HmacDrbg::from_u64(9);
        let kp = EnvelopeKeyPair::generate(&mut rng);
        let mut c = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        let (wire, tx_hash, k_tx) = c
            .confidential_tx(&kp.public(), [7u8; 32], "transfer", b"args")
            .unwrap();
        let WireTx::Confidential(env) = wire else {
            panic!()
        };
        let (k, plain) = env.open(&kp, b"").unwrap();
        assert_eq!(k, k_tx);
        let signed = SignedTx::decode(&plain).unwrap();
        signed.verify().unwrap();
        assert_eq!(signed.raw.hash(), tx_hash);
        assert_eq!(signed.raw.method, "transfer");
        // Owner can re-derive k_tx later.
        assert_eq!(c.k_tx_for(&tx_hash), k_tx);
    }

    #[test]
    fn receipt_opens_only_with_owner_key() {
        let mut rng = HmacDrbg::from_u64(9);
        let c = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        let other = ConfideClient::new([4u8; 32], [5u8; 32], 6);
        let tx_hash = [0xaa; 32];
        let receipt = Receipt {
            tx_hash,
            sender: c.address(),
            contract: [7u8; 32],
            success: true,
            return_data: b"ok".to_vec(),
            logs: vec![],
        };
        let sealed = receipt.seal(&c.k_tx_for(&tx_hash), &mut rng).unwrap();
        assert_eq!(c.open_receipt(&sealed, &tx_hash).unwrap(), receipt);
        assert!(other.open_receipt(&sealed, &tx_hash).is_err());
    }
}
