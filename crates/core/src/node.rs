//! A full CONFIDE node: storage + block store + both execution engines.

use crate::context::{ExecContext, RwSet};
use crate::counters::{OpCounters, TxStats};
use crate::engine::{Engine, EngineConfig, EngineError, TxPlan, VmKind};
use crate::keys::NodeKeys;
use crate::receipt::Receipt;
use crate::tx::WireTx;
use confide_chain::sched::{assign, conflict_groups, worker_loads, SchedError};
use confide_crypto::{sha256, HmacDrbg};
use confide_storage::blockstore::{Block, BlockHeader, BlockStore, BlockStoreError};
use confide_storage::kv::WriteBatch;
use confide_storage::versioned::{StateDb, StateError};
use confide_storage::wal::{BlockWal, CertLog};
use confide_tee::platform::TeePlatform;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Node-level failures.
#[derive(Debug)]
pub enum NodeError {
    /// Engine failure for a specific transaction index.
    Engine(usize, EngineError),
    /// Engine failure while sealing the block's state overlay at commit.
    Commit(EngineError),
    /// State application failure.
    State(StateError),
    /// Block store failure.
    Blocks(BlockStoreError),
    /// Invalid parallel-execution schedule request (e.g. zero threads).
    Sched(SchedError),
    /// WAL replay failure during crash recovery.
    Recover(RecoverError),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Engine(i, e) => write!(f, "tx {i}: {e}"),
            NodeError::Commit(e) => write!(f, "commit: {e}"),
            NodeError::State(e) => write!(f, "state: {e}"),
            NodeError::Blocks(e) => write!(f, "blocks: {e}"),
            NodeError::Sched(e) => write!(f, "sched: {e}"),
            NodeError::Recover(e) => write!(f, "recover: {e}"),
        }
    }
}

impl std::error::Error for NodeError {}

/// Why a WAL replay was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// Recovery must start on a freshly constructed node (height 0).
    NotFresh,
    /// The log's next block does not continue this node's chain.
    Height {
        /// The height this node expected to replay next.
        expected: u64,
        /// The height the log carried.
        found: u64,
    },
    /// Replaying a block's batch produced a different Merkle root than
    /// the sealed header recorded pre-crash — storage corruption beyond
    /// what the CRC framing models, or a log from a different node.
    RootMismatch {
        /// Height of the diverging block.
        height: u64,
    },
    /// A logged transaction no longer decodes (index within its block).
    BadTx {
        /// Height of the block carrying it.
        height: u64,
        /// Index within the block.
        index: usize,
    },
    /// Re-running a logged deployment's registry effect failed.
    Deploy(EngineError),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::NotFresh => f.write_str("node is not fresh (non-zero height)"),
            RecoverError::Height { expected, found } => {
                write!(
                    f,
                    "log height {found} does not continue tip (want {expected})"
                )
            }
            RecoverError::RootMismatch { height } => {
                write!(
                    f,
                    "replayed state root diverges from sealed header at height {height}"
                )
            }
            RecoverError::BadTx { height, index } => {
                write!(f, "undecodable logged tx {index} in block {height}")
            }
            RecoverError::Deploy(e) => write!(f, "deployment replay: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

/// What [`ConfideNode::recover_from_wal`] rebuilt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Blocks replayed from the log.
    pub blocks_replayed: u64,
    /// Post-recovery chain height.
    pub height: u64,
    /// Post-recovery state root (equals the last replayed header's).
    pub state_root: [u8; 32],
    /// Bytes discarded after the last intact commit marker.
    pub torn_bytes: usize,
    /// Deployment transactions whose registry effect was re-run.
    pub deploys_replayed: usize,
}

/// What [`ConfideNode::catch_up_from_wal`] applied from a peer's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatchUpReport {
    /// Blocks newly applied (heights at or below the tip are skipped).
    pub blocks_applied: u64,
    /// Post-catch-up chain height.
    pub height: u64,
    /// Post-catch-up state root.
    pub state_root: [u8; 32],
    /// Bytes of the fragment forming complete, applied record groups;
    /// the caller keeps the remainder and retries once more data arrives.
    pub bytes_consumed: usize,
}

/// Result of executing one block.
#[derive(Debug)]
pub struct BlockResult {
    /// The appended block.
    pub block: Block,
    /// Plaintext receipts (node-internal; confidential receipts also
    /// stored sealed).
    pub receipts: Vec<Receipt>,
    /// Sealed receipts for confidential transactions (indexed like txs;
    /// None for public).
    pub sealed_receipts: Vec<Option<Vec<u8>>>,
    /// Per-transaction cost accounting.
    pub tx_stats: Vec<TxStats>,
    /// Aggregate counters for the block.
    pub totals: OpCounters,
}

/// Outcome of one transaction under lenient execution: the plaintext
/// receipt plus the sealed receipt (confidential only), or the engine
/// error that evicted the transaction from the block.
pub type TxOutcome = Result<(Receipt, Option<Vec<u8>>), EngineError>;

/// Result of executing one block leniently: per-transaction outcomes
/// instead of first-failure-poisons-the-batch semantics.
#[derive(Debug)]
pub struct LenientBlockResult {
    /// The appended block (contains only the accepted transactions).
    pub block: Block,
    /// One entry per *input* transaction, in submission order.
    pub outcomes: Vec<TxOutcome>,
    /// Aggregate counters over the accepted transactions.
    pub totals: OpCounters,
}

impl LenientBlockResult {
    /// Number of transactions that made it into the block.
    pub fn accepted(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_ok()).count()
    }
}

/// How the parallel block executor derives its conflict groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Optimistic concurrency: speculate every transaction against the
    /// pre-block state, group by the *measured* read/write journals, then
    /// re-execute conflicting groups (the PR 4 pipeline).
    Occ,
    /// Speculation-free: group by the deploy-time static access summaries
    /// instantiated per transaction ([`Engine::plan_tx`]); falls back to
    /// [`SchedMode::Occ`] whenever any transaction in the block lacks a
    /// precise plan. The fallback decision depends only on the
    /// transactions and the deployed code, so every replica agrees on it.
    Static,
}

/// What the parallel block executor measured for one block (§6.2): the
/// conflict-group structure and the per-worker attributed virtual cycles
/// under the LPT schedule. `makespan_cycles / serial_cycles` is the
/// modeled speedup — the same quantity `confide_chain::sched::makespan`
/// prices in the PBFT simulator, now measured on the real executor.
#[derive(Debug, Clone)]
pub struct ParallelExecReport {
    /// Worker threads the schedule was built for.
    pub threads: usize,
    /// Conflict groups discovered from the measured read/write sets
    /// (0 when the block fell back to serial before grouping).
    pub groups: usize,
    /// Attributed cycles per worker under the LPT assignment.
    pub worker_cycles: Vec<u64>,
    /// max(worker_cycles): the block's parallel critical path.
    pub makespan_cycles: u64,
    /// Sum of all transactions' attributed cycles (the 1-thread cost).
    pub serial_cycles: u64,
    /// True when the block was executed serially instead — a deployment
    /// transaction or a cross-group conflict discovered at validation.
    /// The fallback decision is deterministic (it depends only on the
    /// transactions, never on thread count or timing).
    pub serial_fallback: bool,
    /// True when the schedule came from static access summaries and the
    /// block executed without a speculation phase.
    pub static_schedule: bool,
    /// Speculative (phase-1) executions performed: `txs.len()` on the OCC
    /// path, 0 on the static path — the overhead this PR's analysis
    /// removes.
    pub spec_runs: usize,
    /// Aggregate counters burned by the speculation phase (zero on the
    /// static path; the acceptance check that "zero speculation runs"
    /// is observable, not asserted by fiat).
    pub spec_counters: OpCounters,
    /// Cycles spent deriving static plans (envelope peeks) before
    /// execution; 0 on the OCC path.
    pub plan_cycles: u64,
}

/// Result of executing one block on the parallel executor. Identical
/// The WAL bytes one staged block appended — the input of the persist
/// half of the split commit seam ([`ConfideNode::execute_block_staged`]).
/// Acknowledging any transaction of height `height` before `bytes` is
/// durable breaks the crash-safety triad.
#[derive(Debug, Clone)]
pub struct WalDelta {
    /// Height of the block these bytes frame.
    pub height: u64,
    /// The framed record group (header, txs, batch, commit marker).
    pub bytes: Vec<u8>,
}

/// state transition to [`ConfideNode::execute_block_parallel`] at any
/// other thread count — the report is the only part that varies.
#[derive(Debug)]
pub struct ParallelBlockResult {
    /// The appended block (contains only the accepted transactions).
    pub block: Block,
    /// One entry per *input* transaction, in submission order.
    pub outcomes: Vec<TxOutcome>,
    /// Aggregate counters over the accepted transactions.
    pub totals: OpCounters,
    /// Scheduling measurements for this block.
    pub report: ParallelExecReport,
}

impl ParallelBlockResult {
    /// Number of transactions that made it into the block.
    pub fn accepted(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_ok()).count()
    }
}

/// Deterministic per-transaction receipt-sealing RNG. Seeded from the
/// block height and the wire hash only, so every replica — and every
/// thread count — seals a given transaction's receipt with the identical
/// nonce. Uniqueness holds because replay protection admits each wire
/// transaction at one height exactly once.
/// Deterministic LPT load estimate for one executed transaction: the
/// attributed cycles minus the memory-pool-miss share, which depends on
/// pool pressure (concurrency) and would otherwise jitter the schedule
/// and the makespan report across runs.
fn stable_cost(counters: &OpCounters) -> u64 {
    counters
        .total_cycles()
        .saturating_sub(counters.mem_commit_cycles)
        .max(1)
}

/// Debug-mode soundness oracle (the tentpole's enforcement clause): the
/// journaled [`RwSet`] of every executed transaction must be admitted by
/// its static plan's matchers. Compiled out of release builds; in debug
/// builds it turns an under-approximating access summary into a loud
/// deterministic panic instead of a silent wrong-state root.
fn oracle_check(plans: Option<&[Option<TxPlan>]>, i: usize, rw: &RwSet) {
    if cfg!(debug_assertions) {
        if let Some(Some(plan)) = plans.map(|p| p.get(i).and_then(Option::as_ref)) {
            debug_assert!(
                rw.covered_by(&plan.reads, &plan.writes),
                "static access summary under-approximates tx {i}: journal {rw:?} escapes plan {plan:?}"
            );
        }
    }
}

/// State key of the wire-hash → receipt index (dedup seam: a resubmitted
/// transaction resolves to its stored receipt instead of re-executing).
fn wire_index_key(wire_hash: &[u8; 32]) -> Vec<u8> {
    let mut k = b"wiretx|".to_vec();
    k.extend_from_slice(wire_hash);
    k
}

/// Index value: the receipt's tx hash plus a sealed flag.
fn wire_index_value(receipt: &Receipt, sealed: &Option<Vec<u8>>) -> Vec<u8> {
    let mut v = Vec::with_capacity(33);
    v.extend_from_slice(&receipt.tx_hash);
    v.push(sealed.is_some() as u8);
    v
}

fn tx_receipt_rng(height: u64, wire_hash: &[u8; 32]) -> HmacDrbg {
    let mut seed = Vec::with_capacity(29 + 8 + 32);
    seed.extend_from_slice(b"confide/par-exec/receipt-rng|");
    seed.extend_from_slice(&height.to_le_bytes());
    seed.extend_from_slice(wire_hash);
    HmacDrbg::new(&seed)
}

/// Prefix every key of `keys` with the engine namespace byte. The public
/// and confidential engines keep separate block overlays (their writes
/// are invisible to each other in-block), so identical full keys on the
/// two engines are *not* a conflict.
fn namespaced(ns: u8, keys: &BTreeSet<Vec<u8>>) -> BTreeSet<Vec<u8>> {
    keys.iter()
        .map(|k| {
            let mut nk = Vec::with_capacity(1 + k.len());
            nk.push(ns);
            nk.extend_from_slice(k);
            nk
        })
        .collect()
}

/// Phase-1 speculation result for one transaction: executed against the
/// committed pre-block state in a private context.
struct SpecTx {
    outcome: TxOutcome,
    stats: Option<TxStats>,
    /// Attributed cycles (≥ 1), the LPT load estimate.
    cost: u64,
    /// The speculative writes (the private context's overlay).
    overlay: HashMap<Vec<u8>, Option<Vec<u8>>>,
    is_conf: bool,
}

/// Phase-2 result for one multi-transaction conflict group, executed
/// serially (submission order) in a private context pair.
struct GroupExec {
    /// (tx index, outcome, stats) per member, in submission order.
    txs: Vec<(usize, TxOutcome, Option<TxStats>)>,
    pub_overlay: HashMap<Vec<u8>, Option<Vec<u8>>>,
    conf_overlay: HashMap<Vec<u8>, Option<Vec<u8>>>,
    touched: BTreeSet<Vec<u8>>,
    written: BTreeSet<Vec<u8>>,
    /// Measured stable cost of the group (sum of members').
    cost: u64,
}

/// A CONFIDE node. In a real deployment one process; in the simulation one
/// of these per simulated node, all sharing deterministic keys via
/// K-Protocol.
pub struct ConfideNode {
    /// Contract states (versioned, rollback-detecting).
    pub state: StateDb,
    /// The hash-linked chain.
    pub blocks: BlockStore,
    /// Plain execution. `Arc`-shared so a server front end can pre-verify
    /// against the engine without holding the node lock (the engines are
    /// internally synchronized; all their methods take `&self`).
    pub public_engine: Arc<Engine>,
    /// In-enclave execution (`Arc`-shared, same rationale).
    pub confidential_engine: Arc<Engine>,
    /// The block-framed commit log: every sealed block lands here before
    /// the node acknowledges it (durable-commit seam; `confide-node`
    /// flushes it to disk incrementally).
    wal: BlockWal,
    /// Sidecar log of quorum certificates, one opaque record per committed
    /// height. Opaque to the core (encoding and verification live in the
    /// consensus crate); kept out of the block WAL so replica-local vote
    /// subsets never perturb the byte-identical WAL stream.
    certs: CertLog,
    rng: HmacDrbg,
    timestamp_ns: u64,
}

impl ConfideNode {
    /// Stand up a node on a TEE platform with provisioned keys.
    pub fn new(
        platform: Arc<TeePlatform>,
        keys: NodeKeys,
        config: EngineConfig,
        seed: u64,
    ) -> ConfideNode {
        ConfideNode {
            state: StateDb::new(),
            blocks: BlockStore::new(),
            public_engine: Arc::new(Engine::public(config)),
            confidential_engine: Arc::new(Engine::confidential(platform, keys, config)),
            wal: BlockWal::new(),
            certs: CertLog::new(),
            rng: HmacDrbg::from_u64(seed),
            timestamp_ns: 0,
        }
    }

    /// The durable commit log: every block this node has sealed, framed
    /// and CRC'd. A file-backed deployment appends `wal_bytes()[n..]` to
    /// disk after each block (where `n` is the previously flushed length)
    /// and feeds the file back through [`ConfideNode::recover_from_wal`]
    /// on restart.
    pub fn wal_bytes(&self) -> &[u8] {
        self.wal.bytes()
    }

    /// Byte length of the commit log — the flush cursor a file-backed
    /// deployment tracks between incremental appends.
    pub fn wal_len(&self) -> usize {
        self.wal.len()
    }

    /// Record the quorum certificate for `height` in the sidecar log.
    /// Must be called *before* acknowledging the height's transactions, so
    /// every acked block is provable to a light peer.
    pub fn record_cert(&mut self, height: u64, cert: &[u8]) {
        self.certs.append_cert(height, cert);
    }

    /// The raw certificate sidecar bytes (flushed incrementally next to
    /// the WAL, at `<wal>.certs`).
    pub fn cert_sidecar_bytes(&self) -> &[u8] {
        self.certs.bytes()
    }

    /// Byte length of the certificate sidecar — its flush cursor.
    pub fn cert_sidecar_len(&self) -> usize {
        self.certs.len()
    }

    /// Restore the certificate sidecar from recovered file bytes (only
    /// the intact prefix is kept). Call alongside WAL recovery.
    pub fn load_cert_sidecar(&mut self, bytes: &[u8]) {
        self.certs = CertLog::from_recovered(bytes);
    }

    /// The stored certificate for `height`, if any.
    pub fn cert_for(&self, height: u64) -> Option<Vec<u8>> {
        CertLog::recover(self.certs.bytes())
            .certs
            .into_iter()
            .rev()
            .find(|(h, _)| *h == height)
            .map(|(_, c)| c)
    }

    /// All stored certificates for heights in `(from, to]`, ascending.
    pub fn certs_in(&self, from: u64, to: u64) -> Vec<(u64, Vec<u8>)> {
        let mut out: Vec<(u64, Vec<u8>)> = CertLog::recover(self.certs.bytes())
            .certs
            .into_iter()
            .filter(|(h, _)| *h > from && *h <= to)
            .collect();
        out.sort_by_key(|(h, _)| *h);
        out.dedup_by_key(|(h, _)| *h);
        out
    }

    /// Highest height with a stored certificate (None when empty).
    pub fn last_certified(&self) -> Option<u64> {
        CertLog::recover(self.certs.bytes())
            .certs
            .iter()
            .map(|(h, _)| *h)
            .max()
    }

    /// The **execute half** of the split commit seam: run
    /// [`ConfideNode::execute_block_sched`] and hand back the WAL delta
    /// this block appended, so the **persist half** (the commit stage of
    /// a pipelined server) can make it durable *outside* the node lock.
    ///
    /// The durability contract moves with the delta: no transaction of
    /// this block may be acknowledged until the returned bytes are
    /// fsynced. Splitting the halves lets execution of block N+1 overlap
    /// the fsync of block N (and lets several deltas share one fsync via
    /// group commit) without weakening ack-implies-durable.
    pub fn execute_block_staged(
        &mut self,
        txs: &[WireTx],
        threads: usize,
        mode: SchedMode,
    ) -> Result<(ParallelBlockResult, WalDelta), NodeError> {
        let from = self.wal.len();
        let res = self.execute_block_sched(txs, threads, mode)?;
        let bytes = self.wal.bytes()[from..].to_vec();
        Ok((
            res,
            WalDelta {
                height: self.blocks.height(),
                bytes,
            },
        ))
    }

    /// Replay a commit log into this **freshly constructed** node:
    /// rebuild the memtable and Merkle roots by re-applying each block's
    /// batch, assert the recovered root equals the sealed header root at
    /// every height, re-link the block store, and re-run the registry
    /// effect of any logged deployment transactions. The torn tail (a
    /// crash mid-append) is discarded — recovery lands on the last block
    /// whose commit marker is intact.
    ///
    /// Genesis-time direct [`ConfideNode::deploy`] calls are not block
    /// transactions and therefore not in the log; reconstruct the node
    /// through the same deterministic bootstrap first (same platform,
    /// keys, config, seed, genesis deploys), then replay.
    pub fn recover_from_wal(&mut self, log: &[u8]) -> Result<RecoveryReport, NodeError> {
        if self.state.height() != 0 || self.blocks.height() != 0 {
            return Err(NodeError::Recover(RecoverError::NotFresh));
        }
        let rec = BlockWal::recover(log);
        let mut deploys_replayed = 0usize;
        for wb in &rec.blocks {
            deploys_replayed += self.replay_wal_block(wb)?;
        }
        self.wal = BlockWal::from_recovered(log);
        Ok(RecoveryReport {
            blocks_replayed: rec.blocks.len() as u64,
            height: self.blocks.height(),
            state_root: self.state.root(),
            torn_bytes: rec.torn_bytes,
            deploys_replayed,
        })
    }

    /// Replay one recovered WAL block onto the tip: re-run deployment
    /// registry effects, re-apply the batch, assert the sealed root, and
    /// re-link the block store. Returns the deploys replayed.
    fn replay_wal_block(
        &mut self,
        wb: &confide_storage::wal::WalBlock,
    ) -> Result<usize, NodeError> {
        let expected = self.state.height() + 1;
        if wb.header.height != expected {
            return Err(NodeError::Recover(RecoverError::Height {
                expected,
                found: wb.header.height,
            }));
        }
        let mut deploys_replayed = 0usize;
        for (index, bytes) in wb.txs.iter().enumerate() {
            let wire = WireTx::decode(bytes).map_err(|_| {
                NodeError::Recover(RecoverError::BadTx {
                    height: wb.header.height,
                    index,
                })
            })?;
            let engine = match &wire {
                WireTx::Public(_) => &self.public_engine,
                WireTx::Confidential(_) => &self.confidential_engine,
            };
            if engine
                .replay_deploy(&wire)
                .map_err(|e| NodeError::Recover(RecoverError::Deploy(e)))?
            {
                deploys_replayed += 1;
            }
        }
        let root = self
            .state
            .apply_block(wb.header.height, &wb.batch)
            .map_err(NodeError::State)?;
        if root != wb.header.state_root {
            return Err(NodeError::Recover(RecoverError::RootMismatch {
                height: wb.header.height,
            }));
        }
        self.blocks
            .append(Block {
                header: wb.header.clone(),
                txs: wb.txs.clone(),
            })
            .map_err(NodeError::Blocks)?;
        self.timestamp_ns = wb.header.timestamp_ns;
        Ok(deploys_replayed)
    }

    /// Apply a fragment of a **peer's** WAL to a *running* node (state
    /// sync). Unlike [`ConfideNode::recover_from_wal`] this does not
    /// require a fresh node: blocks at or below the current tip are
    /// skipped, the next block must continue the chain (a height gap is a
    /// [`RecoverError::Height`] error), and every applied block is
    /// re-framed into the local WAL. Because block sealing is fully
    /// deterministic across replicas, the re-framed bytes are identical to
    /// the peer's — so byte-offset sync cursors remain valid afterwards.
    ///
    /// The fragment may end mid-record-group (a chunked transfer);
    /// complete groups are applied and `bytes_consumed` tells the caller
    /// how much of the fragment was used.
    pub fn catch_up_from_wal(&mut self, fragment: &[u8]) -> Result<CatchUpReport, NodeError> {
        let rec = BlockWal::recover(fragment);
        let mut applied = 0u64;
        for wb in &rec.blocks {
            if wb.header.height <= self.state.height() {
                continue;
            }
            self.replay_wal_block(wb)?;
            self.wal.append_block(&wb.header, &wb.txs, &wb.batch);
            applied += 1;
        }
        Ok(CatchUpReport {
            blocks_applied: applied,
            height: self.blocks.height(),
            state_root: self.state.root(),
            bytes_consumed: rec.consumed,
        })
    }

    /// `pk_tx` for clients.
    ///
    /// Infallible by construction: every `Node` is built with a
    /// confidential engine (see the constructors above), so the inner
    /// `Option` is always `Some`.
    pub fn pk_tx(&self) -> [u8; 32] {
        self.confidential_engine
            .pk_tx()
            .expect("confidential engine")
    }

    /// This node's platform attestation root — what peers verify this
    /// node's quotes against (the consortium registry entry for the
    /// platform).
    pub fn attestation_root(&self) -> confide_crypto::ed25519::VerifyingKey {
        self.confidential_engine
            .tee()
            .expect("confidential engine")
            .platform
            .attestation_public_key()
    }

    /// Member side of a wire rejoin (K-Protocol step 2): verify the
    /// joiner's quoted [`crate::keys::JoinOffer`] against its registered
    /// attestation root and, if genuine, wrap this node's consortium
    /// secrets back together with a counter-quote. This is the seam a
    /// networked server exposes so a crashed node can re-obtain
    /// `k_states` from any surviving member without manual key
    /// distribution.
    pub fn approve_join(
        &self,
        joiner_attestation_root: &confide_crypto::ed25519::VerifyingKey,
        offer: &crate::keys::JoinOffer,
        svn: u16,
        min_svn: u16,
        seed: u64,
    ) -> Result<(Vec<u8>, confide_tee::attestation::Report), crate::keys::KeyProtocolError> {
        let tee = self.confidential_engine.tee().expect("confidential engine");
        crate::keys::approve_join(
            &tee.platform,
            &tee.keys,
            joiner_attestation_root,
            offer,
            svn,
            min_svn,
            seed,
        )
    }

    /// Deploy a contract on the appropriate engine (genesis convenience;
    /// deployments can also travel as transactions). Subject to the same
    /// deploy-time bytecode verification as [`Engine::deploy`].
    pub fn deploy(
        &self,
        address: [u8; 32],
        code: &[u8],
        vm: VmKind,
        confidential: bool,
    ) -> Result<(), crate::engine::EngineError> {
        if confidential {
            self.confidential_engine.deploy(address, code, vm, true)
        } else {
            self.public_engine.deploy(address, code, vm, false)
        }
    }

    /// Run direct-invocation genesis setup against the confidential engine
    /// and commit it as an (empty-transaction) block, keeping the state DB
    /// and the block store in lockstep.
    pub fn run_genesis(
        &mut self,
        f: impl FnOnce(&Engine, &StateDb, &mut ExecContext),
    ) -> Result<(), NodeError> {
        let mut ctx = ExecContext::new();
        f(&self.confidential_engine, &self.state, &mut ctx);
        let height = self.state.height() + 1;
        let batch = self
            .confidential_engine
            .commit_block(&mut ctx, height)
            .map_err(NodeError::Commit)?;
        let state_root = self
            .state
            .apply_block(height, &batch)
            .map_err(NodeError::State)?;
        self.timestamp_ns += 1_000_000;
        let block = Block {
            header: BlockHeader {
                height,
                parent: self.blocks.tip().header.hash(),
                state_root,
                tx_root: Block::tx_root(&[]),
                timestamp_ns: self.timestamp_ns,
            },
            txs: Vec::new(),
        };
        let header = block.header.clone();
        self.blocks.append(block).map_err(NodeError::Blocks)?;
        self.wal.append_block(&header, &[], &batch);
        Ok(())
    }

    /// Pre-verify a batch of transactions (the §5.2 pipeline; done in
    /// parallel with ordering in production). Returns total cycles spent.
    pub fn preverify(&self, txs: &[WireTx]) -> u64 {
        let mut total = 0;
        for tx in txs {
            if let Ok(c) = self.confidential_engine.preverify(tx) {
                total += c;
            }
        }
        total
    }

    /// Execute a block of transactions: public → Public-Engine,
    /// confidential → Confidential-Engine (both write through one state
    /// overlay view per engine, merged at commit), then append the block.
    pub fn execute_block(&mut self, txs: &[WireTx]) -> Result<BlockResult, NodeError> {
        let height = self.state.height() + 1;
        let mut pub_ctx = ExecContext::new();
        let mut conf_ctx = ExecContext::new();
        let mut receipts = Vec::with_capacity(txs.len());
        let mut sealed_receipts = Vec::with_capacity(txs.len());
        let mut tx_stats = Vec::with_capacity(txs.len());
        let mut totals = OpCounters::default();
        for (i, tx) in txs.iter().enumerate() {
            let (engine, ctx) = match tx {
                WireTx::Public(_) => (&self.public_engine, &mut pub_ctx),
                WireTx::Confidential(_) => (&self.confidential_engine, &mut conf_ctx),
            };
            let (receipt, sealed, stats) = engine
                .execute_transaction(&self.state, ctx, tx, &mut self.rng)
                .map_err(|e| NodeError::Engine(i, e))?;
            totals.add(&stats.counters);
            receipts.push(receipt);
            sealed_receipts.push(sealed);
            tx_stats.push(stats);
        }
        // Merge both engines' batches; persist sealed receipts alongside.
        let mut batch = WriteBatch::new();
        for b in [
            self.public_engine.commit_block(&mut pub_ctx, height),
            self.confidential_engine.commit_block(&mut conf_ctx, height),
        ] {
            batch.ops.extend(b.map_err(NodeError::Commit)?.ops);
        }
        let tx_bytes: Vec<Vec<u8>> = txs.iter().map(|t| t.encode()).collect();
        for ((receipt, sealed), wire) in receipts.iter().zip(&sealed_receipts).zip(&tx_bytes) {
            let mut key = b"receipt|".to_vec();
            key.extend_from_slice(&receipt.tx_hash);
            match sealed {
                Some(ct) => batch.put(key, ct.clone()),
                None => batch.put(key, receipt.encode()),
            };
            batch.put(
                wire_index_key(&sha256(wire)),
                wire_index_value(receipt, sealed),
            );
        }
        let state_root = self
            .state
            .apply_block(height, &batch)
            .map_err(NodeError::State)?;
        self.timestamp_ns += 1_000_000;
        let block = Block {
            header: BlockHeader {
                height,
                parent: self.blocks.tip().header.hash(),
                state_root,
                tx_root: Block::tx_root(&tx_bytes),
                timestamp_ns: self.timestamp_ns,
            },
            txs: tx_bytes,
        };
        self.blocks
            .append(block.clone())
            .map_err(NodeError::Blocks)?;
        self.wal.append_block(&block.header, &block.txs, &batch);
        Ok(BlockResult {
            block,
            receipts,
            sealed_receipts,
            tx_stats,
            totals,
        })
    }

    /// Execute a block of transactions **leniently**: a transaction that
    /// fails (replay, bad envelope, unknown contract, …) is rolled back
    /// via the [`ExecContext`] journal and *excluded* from the block
    /// instead of aborting the whole batch. This is the server-side batch
    /// submit path of `confide-net`, where one malicious client must not
    /// be able to poison a block shared with honest traffic.
    ///
    /// A block is committed even when every transaction fails (matching
    /// the production habit of sealing empty blocks on a timer); only
    /// commit-level failures return `Err`.
    pub fn execute_block_lenient(
        &mut self,
        txs: &[WireTx],
    ) -> Result<LenientBlockResult, NodeError> {
        let mut pub_ctx = ExecContext::new();
        let mut conf_ctx = ExecContext::new();
        let mut outcomes = Vec::with_capacity(txs.len());
        let mut accepted_bytes = Vec::new();
        let mut totals = OpCounters::default();
        for tx in txs {
            let (engine, ctx) = match tx {
                WireTx::Public(_) => (&self.public_engine, &mut pub_ctx),
                WireTx::Confidential(_) => (&self.confidential_engine, &mut conf_ctx),
            };
            ctx.begin_tx();
            match engine.execute_transaction(&self.state, ctx, tx, &mut self.rng) {
                Ok((receipt, sealed, stats)) => {
                    ctx.commit_tx();
                    totals.add(&stats.counters);
                    accepted_bytes.push(tx.encode());
                    outcomes.push(Ok((receipt, sealed)));
                }
                Err(e) => {
                    ctx.rollback_tx();
                    outcomes.push(Err(e));
                }
            }
        }
        let block = self.seal_lenient_block(pub_ctx, conf_ctx, &outcomes, accepted_bytes)?;
        Ok(LenientBlockResult {
            block,
            outcomes,
            totals,
        })
    }

    /// Shared commit tail for the lenient executors: seal both engines'
    /// overlays, persist receipts, apply the batch, and append the block
    /// (containing only the accepted transactions' bytes).
    fn seal_lenient_block(
        &mut self,
        mut pub_ctx: ExecContext,
        mut conf_ctx: ExecContext,
        outcomes: &[TxOutcome],
        accepted_bytes: Vec<Vec<u8>>,
    ) -> Result<Block, NodeError> {
        let height = self.state.height() + 1;
        let mut batch = WriteBatch::new();
        for b in [
            self.public_engine.commit_block(&mut pub_ctx, height),
            self.confidential_engine.commit_block(&mut conf_ctx, height),
        ] {
            batch.ops.extend(b.map_err(NodeError::Commit)?.ops);
        }
        for ((receipt, sealed), wire) in outcomes.iter().flatten().zip(&accepted_bytes) {
            let mut key = b"receipt|".to_vec();
            key.extend_from_slice(&receipt.tx_hash);
            match sealed {
                Some(ct) => batch.put(key, ct.clone()),
                None => batch.put(key, receipt.encode()),
            };
            batch.put(
                wire_index_key(&sha256(wire)),
                wire_index_value(receipt, sealed),
            );
        }
        let state_root = self
            .state
            .apply_block(height, &batch)
            .map_err(NodeError::State)?;
        self.timestamp_ns += 1_000_000;
        let block = Block {
            header: BlockHeader {
                height,
                parent: self.blocks.tip().header.hash(),
                state_root,
                tx_root: Block::tx_root(&accepted_bytes),
                timestamp_ns: self.timestamp_ns,
            },
            txs: accepted_bytes,
        };
        self.blocks
            .append(block.clone())
            .map_err(NodeError::Blocks)?;
        self.wal.append_block(&block.header, &block.txs, &batch);
        Ok(block)
    }

    /// Execute a block on the **conflict-keyed parallel executor** (§6.2)
    /// with lenient per-transaction semantics, committing a state
    /// transition bit-identical to the same call at any other thread
    /// count.
    ///
    /// The pipeline:
    ///
    /// 1. **Speculate** every transaction in isolation against the
    ///    committed pre-block state on `threads` workers, deriving its
    ///    read/write set from the [`ExecContext`] journal.
    /// 2. **Group** transactions whose key sets conflict (a writer and
    ///    any toucher of the same key) with
    ///    [`confide_chain::sched::conflict_groups`]; groups are the §6.2
    ///    conflict keys, measured instead of declared.
    /// 3. **Schedule** groups onto the worker pool with the same LPT
    ///    [`confide_chain::sched::assign`] the PBFT simulator prices, and
    ///    re-execute multi-transaction groups serially-within-group.
    ///    Singleton groups adopt their speculation verbatim.
    /// 4. **Validate** that the executed groups' key sets stayed
    ///    pairwise write-disjoint, then **merge** the group overlays and
    ///    commit in deterministic submission order.
    ///
    /// Deployment transactions (they mutate the shared contract registry
    /// outside the journal) and validation failures fall back to a
    /// serial re-execution of the whole block — a decision that depends
    /// only on the transactions, so every replica and thread count
    /// agrees on it.
    ///
    /// Receipts are sealed with a per-transaction RNG derived from
    /// `(height, wire_hash)`, making the sealed bytes independent of
    /// execution interleaving.
    pub fn execute_block_parallel(
        &mut self,
        txs: &[WireTx],
        threads: usize,
    ) -> Result<ParallelBlockResult, NodeError> {
        self.execute_block_sched(txs, threads, SchedMode::Static)
    }

    /// [`ConfideNode::execute_block_parallel`] with an explicit scheduling
    /// mode. [`SchedMode::Static`] tries the speculation-free fast path
    /// first (deploy-time access summaries → conflict groups) and falls
    /// back to OCC whenever any transaction lacks a precise plan;
    /// [`SchedMode::Occ`] forces the speculative pipeline (the benchmark
    /// baseline). Both commit bit-identical state transitions.
    pub fn execute_block_sched(
        &mut self,
        txs: &[WireTx],
        threads: usize,
        mode: SchedMode,
    ) -> Result<ParallelBlockResult, NodeError> {
        if threads == 0 {
            return Err(NodeError::Sched(SchedError::ZeroThreads));
        }
        // Static mode needs the plans; debug builds compute them in OCC
        // mode too, so the soundness oracle covers every executed
        // transaction regardless of scheduling path.
        let plans: Option<Vec<Option<TxPlan>>> =
            if matches!(mode, SchedMode::Static) || cfg!(debug_assertions) {
                Some(txs.iter().map(|t| self.plan_of(t)).collect())
            } else {
                None
            };
        if matches!(mode, SchedMode::Static) {
            let planned = plans.as_deref().expect("plans computed in static mode");
            if let Some(res) = self.try_execute_block_static(txs, threads, planned)? {
                return Ok(res);
            }
        }
        self.execute_block_occ(txs, threads, plans.as_deref())
    }

    /// The static plan for one wire transaction, from whichever engine
    /// will execute it.
    fn plan_of(&self, tx: &WireTx) -> Option<TxPlan> {
        match tx {
            WireTx::Public(_) => self.public_engine.plan_tx(tx),
            WireTx::Confidential(_) => self.confidential_engine.plan_tx(tx),
        }
    }

    /// The §6.2 fast path: schedule the block purely from static access
    /// plans and execute every conflict group exactly once — zero
    /// speculation runs. Returns `Ok(None)` (try OCC instead) unless
    /// every transaction carries a precise, fully-exact plan.
    fn try_execute_block_static(
        &mut self,
        txs: &[WireTx],
        threads: usize,
        plans: &[Option<TxPlan>],
    ) -> Result<Option<ParallelBlockResult>, NodeError> {
        let mut touched = Vec::with_capacity(txs.len());
        let mut written = Vec::with_capacity(txs.len());
        let mut tx_loads = Vec::with_capacity(txs.len());
        let mut plan_cycles = 0u64;
        for (i, plan) in plans.iter().enumerate() {
            let Some(plan) = plan else { return Ok(None) };
            let Some((t, w)) = plan.exact_sets() else {
                return Ok(None);
            };
            // Same per-engine key namespacing the OCC path applies to its
            // measured journals, so grouping and validation speak one
            // key language.
            let ns = if matches!(txs[i], WireTx::Confidential(_)) {
                b'c'
            } else {
                b'p'
            };
            touched.push(namespaced(ns, &t));
            written.push(namespaced(ns, &w));
            tx_loads.push(plan.cost.max(1));
            plan_cycles += plan.plan_cycles;
        }
        let height = self.state.height() + 1;
        let groups = conflict_groups(&touched, &written);
        let loads: Vec<u64> = groups
            .iter()
            .map(|members| members.iter().map(|&i| tx_loads[i]).sum::<u64>().max(1))
            .collect();
        let assignment = assign(&loads, threads).map_err(NodeError::Sched)?;

        // Execute every group (including singletons — there is no
        // speculation to adopt) serially-within-group on the assigned
        // workers.
        let group_execs = self.execute_groups(txs, height, &groups, &assignment, true, Some(plans));

        // Validation: the *measured* key sets must honor the static
        // grouping — pairwise write-disjoint across groups. A violation
        // means a summary under-approximated (the debug oracle would have
        // fired); fall back to the deterministic serial path rather than
        // commit a racy merge.
        let mut writer_of: HashMap<&[u8], usize> = HashMap::new();
        for (g, exec) in group_execs.iter().enumerate() {
            if let Some(exec) = exec {
                for key in &exec.written {
                    writer_of.insert(key.as_slice(), g);
                }
            }
        }
        let disjoint = group_execs.iter().enumerate().all(|(g, exec)| {
            exec.as_ref().is_none_or(|exec| {
                exec.touched
                    .iter()
                    .all(|key| writer_of.get(key.as_slice()).is_none_or(|&w| w == g))
            })
        });
        if !disjoint {
            let mut res = self.execute_serial_equivalent(txs, threads, groups.len())?;
            res.report.plan_cycles = plan_cycles;
            return Ok(Some(res));
        }

        // Report loads are the measured per-group stable costs, like the
        // OCC path's (the planned costs only shaped the assignment).
        let measured: Vec<u64> = group_execs
            .iter()
            .map(|e| e.as_ref().map_or(1, |x| x.cost.max(1)))
            .collect();
        let worker_cycles = worker_loads(&assignment, &measured);
        let makespan_cycles = worker_cycles.iter().copied().max().unwrap_or(0);
        let serial_cycles: u64 = measured.iter().sum();

        let mut pub_ctx = ExecContext::new();
        let mut conf_ctx = ExecContext::new();
        let mut slots: Vec<Option<(TxOutcome, Option<TxStats>)>> =
            (0..txs.len()).map(|_| None).collect();
        for exec in group_execs.into_iter().flatten() {
            pub_ctx.overlay.extend(exec.pub_overlay);
            conf_ctx.overlay.extend(exec.conf_overlay);
            for (i, outcome, stats) in exec.txs {
                slots[i] = Some((outcome, stats));
            }
        }
        let mut outcomes = Vec::with_capacity(txs.len());
        let mut totals = OpCounters::default();
        let mut accepted_bytes = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            let (outcome, stats) = slot.expect("every tx belongs to exactly one group");
            if outcome.is_ok() {
                if let Some(stats) = &stats {
                    totals.add(&stats.counters);
                }
                accepted_bytes.push(txs[i].encode());
            }
            outcomes.push(outcome);
        }
        let block = self.seal_lenient_block(pub_ctx, conf_ctx, &outcomes, accepted_bytes)?;
        Ok(Some(ParallelBlockResult {
            block,
            outcomes,
            totals,
            report: ParallelExecReport {
                threads,
                groups: groups.len(),
                worker_cycles,
                makespan_cycles,
                serial_cycles,
                serial_fallback: false,
                static_schedule: true,
                spec_runs: 0,
                spec_counters: OpCounters::default(),
                plan_cycles,
            },
        }))
    }

    /// The speculative (OCC) pipeline — phases 1–4 of the module docs.
    fn execute_block_occ(
        &mut self,
        txs: &[WireTx],
        threads: usize,
        plans: Option<&[Option<TxPlan>]>,
    ) -> Result<ParallelBlockResult, NodeError> {
        let height = self.state.height() + 1;

        // Phase 1: speculate every tx in isolation on the worker pool.
        let (spec, spec_touched, spec_written) = self.speculate_all(txs, height, threads, plans);
        let mut spec_counters = OpCounters::default();
        for s in &spec {
            if let Some(stats) = &s.stats {
                spec_counters.add(&stats.counters);
            }
        }

        // Deployments mutate the contract registry outside any journal;
        // serialize the whole block when one is present. (Public deploys
        // are visible in the wire tx; confidential ones only in the
        // speculation receipt — both checks are thread-count-invariant.)
        let has_deploy = txs
            .iter()
            .any(|t| matches!(t, WireTx::Public(signed) if signed.raw.contract == [0u8; 32]))
            || spec
                .iter()
                .any(|s| matches!(&s.outcome, Ok((receipt, _)) if receipt.contract == [0u8; 32]));
        if has_deploy {
            let mut res = self.execute_serial_equivalent(txs, threads, 0)?;
            res.report.spec_runs = txs.len();
            res.report.spec_counters = spec_counters;
            return Ok(res);
        }

        // Group by the measured conflicts and schedule the groups LPT,
        // exactly as the simulator models it.
        let groups = conflict_groups(&spec_touched, &spec_written);
        let loads: Vec<u64> = groups
            .iter()
            .map(|members| members.iter().map(|&i| spec[i].cost).sum::<u64>().max(1))
            .collect();
        let serial_cycles: u64 = loads.iter().sum();
        let assignment = assign(&loads, threads).map_err(NodeError::Sched)?;
        let worker_cycles = worker_loads(&assignment, &loads);
        let makespan_cycles = worker_cycles.iter().copied().max().unwrap_or(0);

        // Phase 2: re-execute multi-tx groups serially-within-group on
        // the assigned workers; singleton groups adopt their speculation
        // (provably identical: same fresh context, same base state, same
        // per-tx RNG).
        let group_execs = self.execute_groups(txs, height, &groups, &assignment, false, plans);

        // Validation: the executed key sets must still be pairwise
        // write-disjoint across groups (re-execution can follow different
        // control flow than speculation). Any overlap → serial fallback.
        let mut group_touched: Vec<BTreeSet<Vec<u8>>> = Vec::with_capacity(groups.len());
        let mut group_written: Vec<BTreeSet<Vec<u8>>> = Vec::with_capacity(groups.len());
        for (g, members) in groups.iter().enumerate() {
            match &group_execs[g] {
                Some(exec) => {
                    group_touched.push(exec.touched.clone());
                    group_written.push(exec.written.clone());
                }
                None => {
                    let i = members[0];
                    group_touched.push(spec_touched[i].clone());
                    group_written.push(spec_written[i].clone());
                }
            }
        }
        let mut writer_of: HashMap<&[u8], usize> = HashMap::new();
        for (g, written) in group_written.iter().enumerate() {
            for key in written {
                writer_of.insert(key.as_slice(), g);
            }
        }
        let disjoint = group_touched.iter().enumerate().all(|(g, touched)| {
            touched
                .iter()
                .all(|key| writer_of.get(key.as_slice()).is_none_or(|&w| w == g))
        });
        if !disjoint {
            let mut res = self.execute_serial_equivalent(txs, threads, groups.len())?;
            res.report.spec_runs = txs.len();
            res.report.spec_counters = spec_counters;
            return Ok(res);
        }

        // Merge: group overlays are disjoint, so extending the two
        // block-level contexts in group order reproduces the serial
        // overlay exactly; outcomes re-assemble in submission order.
        let mut pub_ctx = ExecContext::new();
        let mut conf_ctx = ExecContext::new();
        let mut slots: Vec<Option<(TxOutcome, Option<TxStats>)>> =
            (0..txs.len()).map(|_| None).collect();
        let mut spec = spec; // consume speculation results by index
        for (g, members) in groups.iter().enumerate() {
            match group_execs[g] {
                Some(ref _exec) => {}
                None => {
                    let i = members[0];
                    let s = std::mem::replace(
                        &mut spec[i],
                        SpecTx {
                            outcome: Err(EngineError::WrongEngine),
                            stats: None,
                            cost: 0,
                            overlay: HashMap::new(),
                            is_conf: false,
                        },
                    );
                    let ctx = if s.is_conf {
                        &mut conf_ctx
                    } else {
                        &mut pub_ctx
                    };
                    ctx.overlay.extend(s.overlay);
                    slots[i] = Some((s.outcome, s.stats));
                }
            }
        }
        for exec in group_execs.into_iter().flatten() {
            pub_ctx.overlay.extend(exec.pub_overlay);
            conf_ctx.overlay.extend(exec.conf_overlay);
            for (i, outcome, stats) in exec.txs {
                slots[i] = Some((outcome, stats));
            }
        }
        let mut outcomes = Vec::with_capacity(txs.len());
        let mut totals = OpCounters::default();
        let mut accepted_bytes = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            let (outcome, stats) = slot.expect("every tx belongs to exactly one group");
            if outcome.is_ok() {
                if let Some(stats) = &stats {
                    totals.add(&stats.counters);
                }
                accepted_bytes.push(txs[i].encode());
            }
            outcomes.push(outcome);
        }
        let block = self.seal_lenient_block(pub_ctx, conf_ctx, &outcomes, accepted_bytes)?;
        Ok(ParallelBlockResult {
            block,
            outcomes,
            totals,
            report: ParallelExecReport {
                threads,
                groups: groups.len(),
                worker_cycles,
                makespan_cycles,
                serial_cycles,
                serial_fallback: false,
                static_schedule: false,
                spec_runs: txs.len(),
                spec_counters,
                plan_cycles: 0,
            },
        })
    }

    /// Phase 1 of the parallel executor: run every transaction in its own
    /// fresh [`ExecContext`] against the committed pre-block state, on a
    /// work-stealing pool of `threads` scoped workers. Returns the
    /// speculation results plus each transaction's engine-namespaced
    /// touched/written key sets.
    #[allow(clippy::type_complexity)]
    fn speculate_all(
        &self,
        txs: &[WireTx],
        height: u64,
        threads: usize,
        plans: Option<&[Option<TxPlan>]>,
    ) -> (Vec<SpecTx>, Vec<BTreeSet<Vec<u8>>>, Vec<BTreeSet<Vec<u8>>>) {
        let state = &self.state;
        let pub_engine = &self.public_engine;
        let conf_engine = &self.confidential_engine;
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, SpecTx, RwSet)>> = Mutex::new(Vec::with_capacity(txs.len()));
        let workers = threads.min(txs.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= txs.len() {
                        break;
                    }
                    let tx = &txs[i];
                    let is_conf = matches!(tx, WireTx::Confidential(_));
                    let engine = if is_conf { conf_engine } else { pub_engine };
                    let mut ctx = ExecContext::new();
                    let mut rng = tx_receipt_rng(height, &tx.wire_hash());
                    ctx.begin_tx();
                    let (spec, rw) = match engine.execute_transaction(state, &mut ctx, tx, &mut rng)
                    {
                        Ok((receipt, sealed, stats)) => {
                            let rw = ctx.commit_tx();
                            let cost = stable_cost(&stats.counters);
                            (
                                SpecTx {
                                    outcome: Ok((receipt, sealed)),
                                    stats: Some(stats),
                                    cost,
                                    overlay: std::mem::take(&mut ctx.overlay),
                                    is_conf,
                                },
                                rw,
                            )
                        }
                        Err(e) => {
                            let cost = stable_cost(&ctx.counters);
                            let rw = ctx.rollback_tx();
                            (
                                SpecTx {
                                    outcome: Err(e),
                                    stats: None,
                                    cost,
                                    overlay: HashMap::new(),
                                    is_conf,
                                },
                                rw,
                            )
                        }
                    };
                    oracle_check(plans, i, &rw);
                    results
                        .lock()
                        .expect("spec results lock")
                        .push((i, spec, rw));
                });
            }
        });
        let mut collected = results.into_inner().expect("spec results lock");
        collected.sort_by_key(|(i, _, _)| *i);
        let mut spec = Vec::with_capacity(txs.len());
        let mut touched = Vec::with_capacity(txs.len());
        let mut written = Vec::with_capacity(txs.len());
        for (_, s, rw) in collected {
            let ns = if s.is_conf { b'c' } else { b'p' };
            touched.push(namespaced(ns, &rw.touched()));
            written.push(namespaced(ns, &rw.writes));
            spec.push(s);
        }
        (spec, touched, written)
    }

    /// Phase 2 of the parallel executor: each worker executes its
    /// LPT-assigned multi-transaction groups serially-within-group in a
    /// private context pair. Singleton groups are `None` (their
    /// speculation is adopted verbatim). Indexed by group.
    fn execute_groups(
        &self,
        txs: &[WireTx],
        height: u64,
        groups: &[Vec<usize>],
        assignment: &[Vec<usize>],
        include_singletons: bool,
        plans: Option<&[Option<TxPlan>]>,
    ) -> Vec<Option<GroupExec>> {
        let state = &self.state;
        let pub_engine = &self.public_engine;
        let conf_engine = &self.confidential_engine;
        let results: Mutex<Vec<(usize, GroupExec)>> = Mutex::new(Vec::new());
        let results_ref = &results;
        std::thread::scope(|scope| {
            for worker_groups in assignment {
                scope.spawn(move || {
                    for &g in worker_groups {
                        let members = &groups[g];
                        if members.len() < 2 && !include_singletons {
                            continue;
                        }
                        let mut pub_ctx = ExecContext::new();
                        let mut conf_ctx = ExecContext::new();
                        let mut exec = GroupExec {
                            txs: Vec::with_capacity(members.len()),
                            pub_overlay: HashMap::new(),
                            conf_overlay: HashMap::new(),
                            touched: BTreeSet::new(),
                            written: BTreeSet::new(),
                            cost: 0,
                        };
                        for &i in members {
                            let tx = &txs[i];
                            let is_conf = matches!(tx, WireTx::Confidential(_));
                            let (engine, ctx) = if is_conf {
                                (conf_engine, &mut conf_ctx)
                            } else {
                                (pub_engine, &mut pub_ctx)
                            };
                            let ns = if is_conf { b'c' } else { b'p' };
                            let mut rng = tx_receipt_rng(height, &tx.wire_hash());
                            ctx.begin_tx();
                            let (entry, rw, cost) =
                                match engine.execute_transaction(state, ctx, tx, &mut rng) {
                                    Ok((receipt, sealed, stats)) => {
                                        let rw = ctx.commit_tx();
                                        let cost = stable_cost(&stats.counters);
                                        ((i, Ok((receipt, sealed)), Some(stats)), rw, cost)
                                    }
                                    Err(e) => {
                                        let cost = stable_cost(&ctx.counters);
                                        let rw = ctx.rollback_tx();
                                        ((i, Err(e), None), rw, cost)
                                    }
                                };
                            oracle_check(plans, i, &rw);
                            exec.touched.extend(namespaced(ns, &rw.touched()));
                            exec.written.extend(namespaced(ns, &rw.writes));
                            exec.cost += cost;
                            exec.txs.push(entry);
                        }
                        exec.pub_overlay = std::mem::take(&mut pub_ctx.overlay);
                        exec.conf_overlay = std::mem::take(&mut conf_ctx.overlay);
                        results_ref
                            .lock()
                            .expect("group results lock")
                            .push((g, exec));
                    }
                });
            }
        });
        let mut by_group: Vec<Option<GroupExec>> = (0..groups.len()).map(|_| None).collect();
        for (g, exec) in results.into_inner().expect("group results lock") {
            by_group[g] = Some(exec);
        }
        by_group
    }

    /// Deterministic serial fallback of the parallel executor: the
    /// lenient per-transaction loop, but sealing receipts with the same
    /// per-transaction `(height, wire_hash)` RNG the parallel phases use,
    /// so a block that falls back commits identically on every replica
    /// and at every thread count.
    fn execute_serial_equivalent(
        &mut self,
        txs: &[WireTx],
        threads: usize,
        groups: usize,
    ) -> Result<ParallelBlockResult, NodeError> {
        let height = self.state.height() + 1;
        let mut pub_ctx = ExecContext::new();
        let mut conf_ctx = ExecContext::new();
        let mut outcomes = Vec::with_capacity(txs.len());
        let mut accepted_bytes = Vec::new();
        let mut totals = OpCounters::default();
        let mut serial_cycles = 0u64;
        for tx in txs {
            let (engine, ctx) = match tx {
                WireTx::Public(_) => (&self.public_engine, &mut pub_ctx),
                WireTx::Confidential(_) => (&self.confidential_engine, &mut conf_ctx),
            };
            let mut rng = tx_receipt_rng(height, &tx.wire_hash());
            ctx.begin_tx();
            match engine.execute_transaction(&self.state, ctx, tx, &mut rng) {
                Ok((receipt, sealed, stats)) => {
                    ctx.commit_tx();
                    serial_cycles += stable_cost(&stats.counters);
                    totals.add(&stats.counters);
                    accepted_bytes.push(tx.encode());
                    outcomes.push(Ok((receipt, sealed)));
                }
                Err(e) => {
                    serial_cycles += stable_cost(&ctx.counters);
                    ctx.rollback_tx();
                    outcomes.push(Err(e));
                }
            }
        }
        let block = self.seal_lenient_block(pub_ctx, conf_ctx, &outcomes, accepted_bytes)?;
        Ok(ParallelBlockResult {
            block,
            outcomes,
            totals,
            report: ParallelExecReport {
                threads,
                groups,
                worker_cycles: vec![serial_cycles],
                makespan_cycles: serial_cycles,
                serial_cycles,
                serial_fallback: true,
                static_schedule: false,
                spec_runs: 0,
                spec_counters: OpCounters::default(),
                plan_cycles: 0,
            },
        })
    }

    /// The attestation report clients verify before trusting a
    /// wire-delivered `pk_tx` (see [`Engine::attestation_report`]).
    pub fn attestation_report(&self) -> Option<confide_tee::attestation::Report> {
        self.confidential_engine.attestation_report()
    }

    /// Serve an SPV-style state query: the (possibly sealed) value plus a
    /// Merkle inclusion proof against this node's current state root.
    pub fn prove_state(
        &self,
        key: &[u8],
    ) -> Option<(Vec<u8>, confide_storage::merkle::MerkleProof, [u8; 32])> {
        let (value, proof) = self.state.prove(key)?;
        Some((value, proof, self.state.root()))
    }

    /// Fetch a stored (possibly sealed) receipt by transaction hash.
    pub fn stored_receipt(&self, tx_hash: &[u8; 32]) -> Option<Vec<u8>> {
        let mut key = b"receipt|".to_vec();
        key.extend_from_slice(tx_hash);
        self.state.get(&key)
    }

    /// Resolve an already-committed wire transaction by its wire hash:
    /// `(sealed, stored receipt bytes)` when this exact wire payload was
    /// accepted in an earlier block. The server's dedup path — a client
    /// retrying after a lost reply gets its original receipt instead of a
    /// `Replay` rejection (and never a second execution).
    pub fn committed_by_wire(&self, wire_hash: &[u8; 32]) -> Option<(bool, Vec<u8>)> {
        let v = self.state.get(&wire_index_key(wire_hash))?;
        if v.len() != 33 {
            return None;
        }
        let mut tx_hash = [0u8; 32];
        tx_hash.copy_from_slice(&v[..32]);
        let receipt = self.stored_receipt(&tx_hash)?;
        Some((v[32] == 1, receipt))
    }

    /// Enumerate every committed wire transaction as
    /// `(wire_hash, sealed, receipt bytes)` — the full contents of the
    /// wire-hash index. A server front end seeds its own dedup index from
    /// this at spawn so the per-submission dedup check never has to take
    /// the node lock (which block execution holds write-side for whole
    /// blocks at a time).
    pub fn committed_wire_entries(&self) -> Vec<([u8; 32], bool, Vec<u8>)> {
        let prefix = b"wiretx|";
        let mut out = Vec::new();
        for (k, v) in self.state.scan_prefix(prefix) {
            if k.len() != prefix.len() + 32 || v.len() != 33 {
                continue;
            }
            let mut wire_hash = [0u8; 32];
            wire_hash.copy_from_slice(&k[prefix.len()..]);
            let mut tx_hash = [0u8; 32];
            tx_hash.copy_from_slice(&v[..32]);
            if let Some(receipt) = self.stored_receipt(&tx_hash) {
                out.push((wire_hash, v[32] == 1, receipt));
            }
        }
        out
    }

    /// Current state root.
    pub fn state_root(&self) -> [u8; 32] {
        self.state.root()
    }
}

/// Client-side consensus read (§3.3): fetch a proof from one node and
/// accept the value only if (a) the proof verifies against that node's
/// claimed root and (b) at least `quorum` of the consulted nodes report
/// the same root. Returns the (possibly sealed) value.
pub fn consensus_read(nodes: &[&ConfideNode], key: &[u8], quorum: usize) -> Option<Vec<u8>> {
    let (value, proof, claimed_root) = nodes.first()?.prove_state(key)?;
    if !proof.verify(&claimed_root, key, &value) {
        return None;
    }
    let agreeing = nodes
        .iter()
        .filter(|n| n.state_root() == claimed_root)
        .count();
    if agreeing >= quorum {
        Some(value)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ConfideClient;
    use crate::keys::{decentralized_join, NodeKeys};

    const BALANCE_SRC: &str = r#"
        export fn main() {
            let who: bytes = json_get(input(), b"to");
            let amt: int = json_get_int(input(), b"amount");
            let key: bytes = concat(b"bal:", who);
            let bal: int = atoi(storage_get(key));
            storage_set(key, itoa(bal + amt));
            ret(itoa(bal + amt));
        }
    "#;

    fn two_nodes() -> (ConfideNode, ConfideNode) {
        let pa = TeePlatform::new(1, 1);
        let pb = TeePlatform::new(2, 2);
        let mut rng = HmacDrbg::from_u64(5);
        let ka = NodeKeys::generate(&mut rng);
        let kb = decentralized_join(&pa, &ka, &pb, 1, 9).unwrap();
        let a = ConfideNode::new(pa, ka, EngineConfig::default(), 100);
        let b = ConfideNode::new(pb, kb, EngineConfig::default(), 100);
        (a, b)
    }

    #[test]
    fn replicas_agree_on_sealed_state_roots() {
        let (mut a, mut b) = two_nodes();
        let code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        let contract = [3u8; 32];
        a.deploy(contract, &code, VmKind::ConfideVm, true).unwrap();
        b.deploy(contract, &code, VmKind::ConfideVm, true).unwrap();

        let mut client = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        let (tx1, h1, _) = client
            .confidential_tx(
                &a.pk_tx(),
                contract,
                "main",
                br#"{"to":"alice","amount":100}"#,
            )
            .unwrap();
        let (tx2, _, _) = client
            .confidential_tx(
                &a.pk_tx(),
                contract,
                "main",
                br#"{"to":"alice","amount":-30}"#,
            )
            .unwrap();
        let txs = vec![tx1, tx2];
        let ra = a.execute_block(&txs).unwrap();
        let rb = b.execute_block(&txs).unwrap();
        // Same encrypted state on both replicas (deterministic D-Protocol).
        assert_eq!(a.state_root(), b.state_root());
        assert_eq!(ra.block.header.state_root, rb.block.header.state_root);
        assert_eq!(ra.receipts[1].return_data, b"70");
        // Receipt retrievable and owner-decryptable from either node.
        let sealed = b.stored_receipt(&h1).unwrap();
        let receipt = client.open_receipt(&sealed, &h1).unwrap();
        assert_eq!(receipt.return_data, b"100");
    }

    #[test]
    fn confidential_state_unreadable_via_raw_db() {
        let (mut a, _) = two_nodes();
        let code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        let contract = [3u8; 32];
        a.deploy(contract, &code, VmKind::ConfideVm, true).unwrap();
        let mut client = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        let (tx, _, _) = client
            .confidential_tx(
                &a.pk_tx(),
                contract,
                "main",
                br#"{"to":"alice","amount":12345}"#,
            )
            .unwrap();
        a.execute_block(&[tx]).unwrap();
        // Scan the whole database: the balance value must not appear.
        for (_, v) in a.state.kv().iter() {
            assert!(
                !v.windows(5).any(|w| w == b"12345"),
                "plaintext balance leaked to raw storage"
            );
        }
    }

    #[test]
    fn mixed_public_and_confidential_block() {
        let (mut a, _) = two_nodes();
        let pub_code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        let conf_code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        a.deploy([1u8; 32], &pub_code, VmKind::ConfideVm, false)
            .unwrap();
        a.deploy([2u8; 32], &conf_code, VmKind::ConfideVm, true)
            .unwrap();
        let mut client = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        let ptx = client.public_tx([1u8; 32], "main", br#"{"to":"x","amount":1}"#);
        let (ctx_, _, _) = client
            .confidential_tx(&a.pk_tx(), [2u8; 32], "main", br#"{"to":"y","amount":2}"#)
            .unwrap();
        let result = a.execute_block(&[ptx, ctx_]).unwrap();
        assert!(result.receipts.iter().all(|r| r.success));
        assert!(result.sealed_receipts[0].is_none());
        assert!(result.sealed_receipts[1].is_some());
        // Public state readable in the raw DB; confidential not.
        let pub_key = crate::engine::full_key(&[1u8; 32], b"bal:x");
        assert_eq!(a.state.get(&pub_key).unwrap(), b"1");
        let conf_key = crate::engine::full_key(&[2u8; 32], b"bal:y");
        assert_ne!(a.state.get(&conf_key).unwrap(), b"2");
    }

    #[test]
    fn chain_grows_and_verifies() {
        let (mut a, _) = two_nodes();
        let code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        a.deploy([1u8; 32], &code, VmKind::ConfideVm, false)
            .unwrap();
        let mut client = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        for i in 0..5 {
            let tx = client.public_tx(
                [1u8; 32],
                "main",
                format!(r#"{{"to":"u{i}","amount":{i}}}"#).as_bytes(),
            );
            a.execute_block(&[tx]).unwrap();
        }
        assert_eq!(a.blocks.height(), 5);
        assert!(a.blocks.verify_chain());
        a.state.verify_version(5).unwrap();
    }

    #[test]
    fn lenient_block_skips_bad_txs_and_matches_clean_replica() {
        let (mut a, mut b) = two_nodes();
        let code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        let contract = [3u8; 32];
        a.deploy(contract, &code, VmKind::ConfideVm, true).unwrap();
        b.deploy(contract, &code, VmKind::ConfideVm, true).unwrap();
        let mut client = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        let (good1, h1, _) = client
            .confidential_tx(&a.pk_tx(), contract, "main", br#"{"to":"a","amount":5}"#)
            .unwrap();
        let (good2, _, _) = client
            .confidential_tx(&a.pk_tx(), contract, "main", br#"{"to":"a","amount":7}"#)
            .unwrap();
        // Unknown contract: fails at execution, after the nonce write.
        let (bad_contract, _, _) = client
            .confidential_tx(&a.pk_tx(), [0x99; 32], "main", b"{}")
            .unwrap();
        // Replay of good1: stale nonce.
        let replay = good1.clone();
        let res = a
            .execute_block_lenient(&[good1.clone(), bad_contract, replay, good2.clone()])
            .unwrap();
        assert_eq!(res.accepted(), 2);
        assert!(res.outcomes[0].is_ok());
        assert!(matches!(
            res.outcomes[1],
            Err(EngineError::UnknownContract(_))
        ));
        assert!(matches!(res.outcomes[2], Err(EngineError::Replay)));
        assert!(res.outcomes[3].is_ok());
        // Only accepted txs are in the block body.
        assert_eq!(res.block.txs.len(), 2);
        // A replica executing just the accepted txs strictly agrees.
        b.execute_block(&[good1, good2]).unwrap();
        assert_eq!(a.state_root(), b.state_root());
        // Receipt for the first tx stored and owner-decryptable.
        let sealed = a.stored_receipt(&h1).unwrap();
        assert_eq!(client.open_receipt(&sealed, &h1).unwrap().return_data, b"5");
    }

    #[test]
    fn lenient_block_with_all_failures_still_commits_empty_block() {
        let (mut a, _) = two_nodes();
        let mut client = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        let (bad, _, _) = client
            .confidential_tx(&a.pk_tx(), [0x99; 32], "main", b"{}")
            .unwrap();
        let before = a.state_root();
        let res = a.execute_block_lenient(&[bad]).unwrap();
        assert_eq!(res.accepted(), 0);
        assert!(res.block.txs.is_empty());
        assert_eq!(a.blocks.height(), 1);
        // No state change beyond the (empty) version bump bookkeeping.
        let _ = before; // roots may differ only via version metadata
    }

    // ── parallel executor (§6.2) ────────────────────────────────────────

    const CONF_CONTRACT: [u8; 32] = [3u8; 32];
    const PUB_CONTRACT: [u8; 32] = [4u8; 32];

    /// A fresh node with deterministic keys: every call yields a replica
    /// that executes identical blocks to identical roots.
    fn fresh_node() -> ConfideNode {
        let platform = TeePlatform::new(1, 1);
        let mut rng = HmacDrbg::from_u64(5);
        let keys = NodeKeys::generate(&mut rng);
        let node = ConfideNode::new(platform, keys, EngineConfig::default(), 100);
        let code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        node.deploy(CONF_CONTRACT, &code, VmKind::ConfideVm, true)
            .unwrap();
        node.deploy(PUB_CONTRACT, &code, VmKind::ConfideVm, false)
            .unwrap();
        node
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// A deterministic randomized block: mixed public/confidential txs
    /// from `n_senders` senders over `n_users` hot keys, sprinkled with
    /// replays and unknown-contract failures.
    fn random_block(seed: u64, n_txs: usize, n_senders: usize, n_users: usize) -> Vec<WireTx> {
        let pk_tx = fresh_node().pk_tx();
        let mut state = seed | 1;
        let mut clients: Vec<crate::client::ConfideClient> = (0..n_senders)
            .map(|s| {
                crate::client::ConfideClient::new([s as u8 + 1; 32], [s as u8 + 50; 32], s as u64)
            })
            .collect();
        let mut txs: Vec<WireTx> = Vec::with_capacity(n_txs);
        while txs.len() < n_txs {
            let s = (xorshift(&mut state) % n_senders as u64) as usize;
            let user = xorshift(&mut state) % n_users as u64;
            let amount = xorshift(&mut state) % 100;
            let args = format!(r#"{{"to":"u{user}","amount":{amount}}}"#);
            let tx = match xorshift(&mut state) % 10 {
                0..=4 => {
                    clients[s]
                        .confidential_tx(&pk_tx, CONF_CONTRACT, "main", args.as_bytes())
                        .unwrap()
                        .0
                }
                5..=7 => clients[s].public_tx(PUB_CONTRACT, "main", args.as_bytes()),
                8 if !txs.is_empty() => {
                    // Replay an earlier tx verbatim: must fail identically
                    // at every thread count.
                    let j = (xorshift(&mut state) % txs.len() as u64) as usize;
                    txs[j].clone()
                }
                _ => {
                    clients[s]
                        .confidential_tx(&pk_tx, [0x99; 32], "main", b"{}")
                        .unwrap()
                        .0
                }
            };
            txs.push(tx);
        }
        txs
    }

    /// Flatten a result into comparable bytes: per-tx outcome (receipt +
    /// sealed bytes or error string), accepted tx bytes, and state root.
    fn fingerprint(root: [u8; 32], block: &Block, outcomes: &[TxOutcome]) -> Vec<String> {
        let mut out = vec![format!("root:{root:02x?}"), format!("txs:{:?}", block.txs)];
        for o in outcomes {
            out.push(match o {
                Ok((receipt, sealed)) => format!("ok:{receipt:?}|{sealed:?}"),
                Err(e) => format!("err:{e:?}"),
            });
        }
        out
    }

    #[test]
    fn parallel_execution_is_serial_equivalent_on_randomized_workloads() {
        for seed in [7u64, 21, 99, 1234] {
            let txs = random_block(seed, 24, 5, 4);
            // The serial reference: the deterministic fallback path.
            let mut serial_node = fresh_node();
            let serial = serial_node.execute_serial_equivalent(&txs, 1, 0).unwrap();
            assert!(serial.report.serial_fallback);
            let want = fingerprint(serial_node.state_root(), &serial.block, &serial.outcomes);
            for threads in [1usize, 2, 4, 6] {
                let mut node = fresh_node();
                let res = node.execute_block_parallel(&txs, threads).unwrap();
                assert!(
                    !res.report.serial_fallback,
                    "seed {seed}: unexpected fallback at {threads} threads"
                );
                let got = fingerprint(node.state_root(), &res.block, &res.outcomes);
                assert_eq!(
                    got, want,
                    "seed {seed}, {threads} threads diverged from serial"
                );
                assert_eq!(res.report.threads, threads);
                assert_eq!(
                    res.report.makespan_cycles,
                    res.report.worker_cycles.iter().copied().max().unwrap(),
                );
            }
        }
    }

    /// Warm the engine's code cache so per-tx cost estimates are uniform:
    /// the one-off module decrypt+decode otherwise lands on whichever tx
    /// wins the phase-1 race, jittering the (advisory) makespan report.
    fn warm_up(node: &mut ConfideNode, pk_tx: &[u8; 32]) {
        let mut warm = crate::client::ConfideClient::new([99u8; 32], [98u8; 32], 77);
        let (wtx, _, _) = warm
            .confidential_tx(pk_tx, CONF_CONTRACT, "main", br#"{"to":"warm","amount":1}"#)
            .unwrap();
        node.execute_block_parallel(&[wtx], 1).unwrap();
    }

    #[test]
    fn conflict_free_block_speeds_up_and_four_groups_flatline() {
        // 16 independent senders → 16 singleton-ish groups → near-linear
        // modeled speedup at 4 threads.
        let pk_tx = fresh_node().pk_tx();
        let mut free_txs = Vec::new();
        for s in 0..16u8 {
            let mut c = crate::client::ConfideClient::new([s + 1; 32], [s + 50; 32], s as u64);
            let args = format!(r#"{{"to":"own{s}","amount":1}}"#);
            free_txs.push(
                c.confidential_tx(&pk_tx, CONF_CONTRACT, "main", args.as_bytes())
                    .unwrap()
                    .0,
            );
        }
        let mut node = fresh_node();
        warm_up(&mut node, &pk_tx);
        let res = node.execute_block_parallel(&free_txs, 4).unwrap();
        assert_eq!(res.accepted(), 16);
        assert_eq!(res.report.groups, 16, "independent txs must not merge");
        let speedup = res.report.serial_cycles as f64 / res.report.makespan_cycles as f64;
        assert!(speedup >= 1.8, "modeled speedup {speedup:.2} below 1.8x");

        // 4 senders × 6 sequential txs each → exactly 4 conflict groups
        // (chained via the per-sender nonce key): 6 threads buy nothing
        // over 4 — the paper's flat curve.
        let mut grouped_txs = Vec::new();
        for s in 0..4u8 {
            let mut c = crate::client::ConfideClient::new([s + 1; 32], [s + 50; 32], s as u64);
            for n in 0..6 {
                let args = format!(r#"{{"to":"grp{s}","amount":{n}}}"#);
                grouped_txs.push(
                    c.confidential_tx(&pk_tx, CONF_CONTRACT, "main", args.as_bytes())
                        .unwrap()
                        .0,
                );
            }
        }
        let mut node4 = fresh_node();
        warm_up(&mut node4, &pk_tx);
        let r4 = node4.execute_block_parallel(&grouped_txs, 4).unwrap();
        let mut node6 = fresh_node();
        warm_up(&mut node6, &pk_tx);
        let r6 = node6.execute_block_parallel(&grouped_txs, 6).unwrap();
        assert_eq!(r4.accepted(), 24);
        assert_eq!(r4.report.groups, 4);
        assert_eq!(node4.state_root(), node6.state_root());
        assert_eq!(
            r4.report.makespan_cycles, r6.report.makespan_cycles,
            "no benefit past the conflict-group count"
        );
    }

    #[test]
    fn static_schedule_skips_speculation_and_matches_occ_and_serial() {
        // 8 independent senders on the confidential contract plus 4 on
        // the public one: every tx has a precise static plan, so the
        // default (static) mode must execute with ZERO speculation runs
        // and commit roots byte-identical to forced-OCC and serial.
        let pk_tx = fresh_node().pk_tx();
        let mut txs = Vec::new();
        for s in 0..8u8 {
            let mut c = crate::client::ConfideClient::new([s + 1; 32], [s + 50; 32], s as u64);
            let args = format!(r#"{{"to":"st{s}","amount":2}}"#);
            txs.push(
                c.confidential_tx(&pk_tx, CONF_CONTRACT, "main", args.as_bytes())
                    .unwrap()
                    .0,
            );
        }
        for s in 8..12u8 {
            let mut c = crate::client::ConfideClient::new([s + 1; 32], [s + 50; 32], s as u64);
            let args = format!(r#"{{"to":"st{s}","amount":2}}"#);
            txs.push(c.public_tx(PUB_CONTRACT, "main", args.as_bytes()));
        }

        let mut want: Option<Vec<String>> = None;
        for threads in [1usize, 4] {
            // Static (the default execute_block_parallel mode).
            let mut st = fresh_node();
            let rs = st.execute_block_parallel(&txs, threads).unwrap();
            assert!(
                rs.report.static_schedule,
                "plan-complete block must go static"
            );
            assert_eq!(rs.report.spec_runs, 0, "static path must not speculate");
            assert_eq!(
                rs.report.spec_counters.contract_calls, 0,
                "zero speculation executions, observed via OpCounters"
            );
            assert_eq!(rs.report.spec_counters.vm_instret, 0);
            assert!(!rs.report.serial_fallback);
            assert_eq!(rs.accepted(), 12);
            assert_eq!(rs.report.groups, 12, "independent txs must not merge");
            // Forced OCC: same transition, speculation paid.
            let mut occ = fresh_node();
            let ro = occ
                .execute_block_sched(&txs, threads, SchedMode::Occ)
                .unwrap();
            assert!(!ro.report.static_schedule);
            assert_eq!(ro.report.spec_runs, txs.len());
            assert!(ro.report.spec_counters.contract_calls >= txs.len() as u64);
            // Serial reference.
            let mut serial = fresh_node();
            let rl = serial.execute_serial_equivalent(&txs, threads, 0).unwrap();

            let fs = fingerprint(st.state_root(), &rs.block, &rs.outcomes);
            let fo = fingerprint(occ.state_root(), &ro.block, &ro.outcomes);
            let fl = fingerprint(serial.state_root(), &rl.block, &rl.outcomes);
            assert_eq!(fs, fo, "static vs OCC diverged at {threads} threads");
            assert_eq!(fs, fl, "static vs serial diverged at {threads} threads");
            match &want {
                None => want = Some(fs),
                Some(w) => assert_eq!(&fs, w, "thread count changed the block"),
            }
        }
    }

    #[test]
    fn unplannable_tx_falls_back_to_occ_deterministically() {
        // An unknown-contract tx has no deploy-time summary → no plan →
        // the static mode must fall back to the OCC pipeline, and the
        // result must still match the serial reference.
        let pk_tx = fresh_node().pk_tx();
        let mut c0 = crate::client::ConfideClient::new([1u8; 32], [50u8; 32], 0);
        let mut c1 = crate::client::ConfideClient::new([2u8; 32], [51u8; 32], 1);
        let txs = vec![
            c0.confidential_tx(&pk_tx, CONF_CONTRACT, "main", br#"{"to":"a","amount":1}"#)
                .unwrap()
                .0,
            c1.confidential_tx(&pk_tx, [0x99; 32], "main", b"{}")
                .unwrap()
                .0,
        ];
        let mut node = fresh_node();
        let res = node.execute_block_parallel(&txs, 4).unwrap();
        assert!(
            !res.report.static_schedule,
            "unplannable tx must disable the static fast path"
        );
        assert_eq!(res.report.spec_runs, txs.len(), "OCC fallback speculates");
        let mut serial = fresh_node();
        let rl = serial.execute_serial_equivalent(&txs, 1, 0).unwrap();
        assert_eq!(
            fingerprint(node.state_root(), &res.block, &res.outcomes),
            fingerprint(serial.state_root(), &rl.block, &rl.outcomes)
        );
    }

    #[test]
    fn deployment_tx_forces_deterministic_serial_fallback() {
        let code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        let mut payload = vec![0u8, 0u8]; // [vm_kind][confidential]
        payload.extend_from_slice(&code);
        let mut roots = Vec::new();
        for threads in [1usize, 4] {
            let mut node = fresh_node();
            let mut deployer = crate::client::ConfideClient::new([7u8; 32], [8u8; 32], 1);
            let deploy = deployer.public_tx([0u8; 32], "deploy", &payload);
            let mut user = crate::client::ConfideClient::new([9u8; 32], [10u8; 32], 2);
            let spend = user.public_tx(PUB_CONTRACT, "main", br#"{"to":"d","amount":3}"#);
            let res = node
                .execute_block_parallel(&[deploy, spend], threads)
                .unwrap();
            assert!(
                res.report.serial_fallback,
                "deploy must serialize the block"
            );
            assert_eq!(res.accepted(), 2);
            roots.push(node.state_root());
        }
        assert_eq!(roots[0], roots[1]);
    }

    /// [`fresh_node`] plus a confidential EVM replica of the balance
    /// contract, for mixed-engine blocks.
    const EVM_CONTRACT: [u8; 32] = [5u8; 32];

    fn fresh_node_with_evm() -> ConfideNode {
        let node = fresh_node();
        let code = confide_lang::build_evm(BALANCE_SRC).unwrap();
        node.deploy(EVM_CONTRACT, &code, VmKind::Evm, true).unwrap();
        node
    }

    #[test]
    fn mixed_vm_evm_block_takes_occ_fallback_with_identical_roots() {
        // EVM contracts carry no static access summary, so a block with
        // even one EVM tx must never be statically planned: Static mode
        // has to take the whole-block OCC fallback — and still commit
        // byte-identical state roots at every thread count.
        let pk_tx = fresh_node_with_evm().pk_tx();
        let mut txs = Vec::new();
        for s in 0..6u8 {
            let mut c = ConfideClient::new([s + 1; 32], [s + 50; 32], s as u64);
            let args = format!(r#"{{"to":"mx{s}","amount":{}}}"#, s + 1);
            let contract = if s % 2 == 0 {
                CONF_CONTRACT
            } else {
                EVM_CONTRACT
            };
            txs.push(
                c.confidential_tx(&pk_tx, contract, "main", args.as_bytes())
                    .unwrap()
                    .0,
            );
        }
        let mut serial = fresh_node_with_evm();
        let rl = serial.execute_serial_equivalent(&txs, 1, 0).unwrap();
        let want = fingerprint(serial.state_root(), &rl.block, &rl.outcomes);
        for threads in [1usize, 4] {
            let mut node = fresh_node_with_evm();
            let res = node
                .execute_block_sched(&txs, threads, SchedMode::Static)
                .unwrap();
            assert!(
                !res.report.static_schedule,
                "a block containing EVM txs must never be statically planned"
            );
            assert_eq!(
                res.report.spec_runs,
                txs.len(),
                "fallback must speculate the whole block, not a subset"
            );
            assert!(!res.report.serial_fallback);
            assert_eq!(res.accepted(), txs.len());
            let got = fingerprint(node.state_root(), &res.block, &res.outcomes);
            assert_eq!(got, want, "{threads} threads diverged from serial");
        }
    }

    #[test]
    fn zero_threads_is_a_typed_node_error() {
        let mut node = fresh_node();
        match node.execute_block_parallel(&[], 0) {
            Err(NodeError::Sched(SchedError::ZeroThreads)) => {}
            other => panic!("expected sched error, got {other:?}"),
        }
    }

    #[test]
    fn empty_parallel_block_commits_like_an_empty_lenient_block() {
        let mut node = fresh_node();
        let res = node.execute_block_parallel(&[], 4).unwrap();
        assert_eq!(res.accepted(), 0);
        assert!(!res.report.serial_fallback);
        assert_eq!(res.report.groups, 0);
        assert_eq!(node.blocks.height(), 1);
    }

    // ── durable commit & WAL recovery ───────────────────────────────────

    /// Commit `n` single-tx blocks of deterministic traffic on `node`.
    fn pump_blocks(node: &mut ConfideNode, n: usize, first_nonce: u64) -> Vec<WireTx> {
        let pk_tx = node.pk_tx();
        let mut client =
            ConfideClient::new([11u8; 32], [12u8; 32], first_nonce.wrapping_mul(31) ^ 0xA5);
        let mut txs = Vec::new();
        for i in 0..n {
            let args = format!(r#"{{"to":"w{}","amount":{}}}"#, i % 3, i + 1);
            let (tx, _, _) = client
                .confidential_tx(&pk_tx, CONF_CONTRACT, "main", args.as_bytes())
                .unwrap();
            node.execute_block_parallel(std::slice::from_ref(&tx), 2)
                .unwrap();
            txs.push(tx);
        }
        txs
    }

    #[test]
    fn wal_recovery_rebuilds_state_chain_and_receipts() {
        let mut node = fresh_node();
        let txs = pump_blocks(&mut node, 5, 0);
        let tip_root = node.state_root();
        let tip_height = node.blocks.height();
        let log = node.wal_bytes().to_vec();

        let mut recovered = fresh_node();
        let report = recovered.recover_from_wal(&log).unwrap();
        assert_eq!(report.blocks_replayed, 5);
        assert_eq!(report.torn_bytes, 0);
        assert_eq!(report.state_root, tip_root);
        assert_eq!(recovered.state_root(), tip_root);
        assert_eq!(recovered.blocks.height(), tip_height);
        assert!(recovered.blocks.verify_chain());
        recovered.state.verify_version(tip_height).unwrap();

        // Every committed receipt survived, via both lookup paths.
        for tx in &txs {
            let (sealed, receipt) = recovered.committed_by_wire(&tx.wire_hash()).unwrap();
            assert!(sealed);
            assert!(!receipt.is_empty());
        }

        // The recovered node continues bit-identically to the survivor.
        let next = pump_blocks(&mut node, 2, 100);
        for tx in &next {
            recovered
                .execute_block_parallel(std::slice::from_ref(tx), 2)
                .unwrap();
        }
        assert_eq!(recovered.state_root(), node.state_root());
        assert_eq!(
            recovered.blocks.tip().header.hash(),
            node.blocks.tip().header.hash()
        );
    }

    #[test]
    fn torn_wal_tail_rolls_back_to_the_last_complete_block() {
        let mut node = fresh_node();
        let mut wal_ends = Vec::new();
        let mut roots = Vec::new();
        for i in 0..4 {
            pump_blocks(&mut node, 1, i * 7 + 1);
            wal_ends.push(node.wal_bytes().len());
            roots.push(node.state_root());
        }
        let log = node.wal_bytes();
        // Cut mid-way through the last block's record group.
        let cut = (wal_ends[2] + wal_ends[3]) / 2;
        let mut recovered = fresh_node();
        let report = recovered.recover_from_wal(&log[..cut]).unwrap();
        assert_eq!(report.blocks_replayed, 3);
        assert!(report.torn_bytes > 0);
        assert_eq!(recovered.state_root(), roots[2]);
        assert_eq!(recovered.blocks.height(), 3);
    }

    #[test]
    fn catch_up_applies_new_blocks_onto_a_running_node() {
        let mut node = fresh_node();
        pump_blocks(&mut node, 5, 0);

        // A lagging replica that executed only the first two blocks.
        let mut lagging = fresh_node();
        let report = lagging
            .catch_up_from_wal(&node.wal_bytes()[..0])
            .expect("empty fragment is a no-op");
        assert_eq!(report.blocks_applied, 0);
        pump_blocks(&mut lagging, 2, 0);
        assert_eq!(lagging.blocks.height(), 2);
        let resume_at = lagging.wal_bytes().len();
        // Determinism: the shared prefix is byte-identical, so the local
        // WAL length is a valid cursor into the peer's log.
        assert_eq!(&node.wal_bytes()[..resume_at], lagging.wal_bytes());

        let report = lagging
            .catch_up_from_wal(&node.wal_bytes()[resume_at..])
            .unwrap();
        assert_eq!(report.blocks_applied, 3);
        assert_eq!(report.height, 5);
        assert_eq!(report.state_root, node.state_root());
        assert_eq!(lagging.state_root(), node.state_root());
        // The re-framed WAL is byte-identical to the peer's.
        assert_eq!(lagging.wal_bytes(), node.wal_bytes());
        assert!(lagging.blocks.verify_chain());

        // Receipts of synced blocks are queryable on the caught-up node.
        for tx in pump_blocks(&mut node, 1, 50) {
            lagging
                .execute_block_parallel(std::slice::from_ref(&tx), 2)
                .unwrap();
        }
        assert_eq!(lagging.state_root(), node.state_root());
    }

    #[test]
    fn catch_up_skips_known_blocks_and_stops_at_torn_chunks() {
        let mut node = fresh_node();
        let mut wal_ends = Vec::new();
        for i in 0..3 {
            pump_blocks(&mut node, 1, i * 3 + 1);
            wal_ends.push(node.wal_bytes().len());
        }
        let mut follower = fresh_node();
        // Overlapping fragment from offset 0 while the follower already
        // has block 1: the known block is skipped, not an error.
        follower
            .catch_up_from_wal(&node.wal_bytes()[..wal_ends[0]])
            .unwrap();
        let report = follower
            .catch_up_from_wal(&node.wal_bytes()[..wal_ends[1]])
            .unwrap();
        assert_eq!(report.blocks_applied, 1);
        assert_eq!(report.height, 2);

        // A chunk ending mid-record-group applies only the complete
        // prefix and reports how many bytes it consumed.
        let cut = (wal_ends[1] + wal_ends[2]) / 2;
        let fragment = &node.wal_bytes()[wal_ends[1]..cut];
        let report = follower.catch_up_from_wal(fragment).unwrap();
        assert_eq!(report.blocks_applied, 0);
        assert_eq!(report.bytes_consumed, 0);
        // Completing the chunk applies the block.
        let report = follower
            .catch_up_from_wal(&node.wal_bytes()[wal_ends[1]..])
            .unwrap();
        assert_eq!(report.blocks_applied, 1);
        assert_eq!(follower.state_root(), node.state_root());

        // A gap (fragment starting beyond the tip) is a typed error.
        let mut gapped = fresh_node();
        match gapped.catch_up_from_wal(&node.wal_bytes()[wal_ends[0]..]) {
            Err(NodeError::Recover(RecoverError::Height {
                expected: 1,
                found: 2,
            })) => {}
            other => panic!("expected height gap, got {other:?}"),
        }
    }

    #[test]
    fn recovery_replays_deployment_transactions_into_the_registry() {
        let code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        let mut payload = vec![0u8, 0u8]; // [vm_kind][public]
        payload.extend_from_slice(&code);
        let mut node = fresh_node();
        let mut deployer = ConfideClient::new([7u8; 32], [8u8; 32], 1);
        let deploy = deployer.public_tx([0u8; 32], "deploy", &payload);
        let res = node.execute_block_parallel(&[deploy], 2).unwrap();
        let Ok((receipt, _)) = &res.outcomes[0] else {
            panic!("deploy rejected");
        };
        let address: [u8; 32] = receipt.return_data.as_slice().try_into().unwrap();
        let spend = deployer.public_tx(address, "main", br#"{"to":"z","amount":4}"#);
        node.execute_block_parallel(&[spend], 2).unwrap();

        let mut recovered = fresh_node();
        let report = recovered.recover_from_wal(node.wal_bytes()).unwrap();
        assert_eq!(report.deploys_replayed, 1);
        assert!(recovered.public_engine.has_contract(&address));
        // The re-registered contract executes against the replayed state.
        let again = deployer.public_tx(address, "main", br#"{"to":"z","amount":1}"#);
        let res = recovered.execute_block_parallel(&[again], 2).unwrap();
        let Ok((receipt, _)) = &res.outcomes[0] else {
            panic!("post-recovery invoke failed: {:?}", res.outcomes[0]);
        };
        assert_eq!(receipt.return_data, b"5"); // 4 + 1
    }

    #[test]
    fn evm_deploys_and_invokes_replay_from_the_wal() {
        // Crash-recovery parity for the EVM: a wire deploy plus a few
        // invokes must replay from the WAL onto a wiped replica, and the
        // recovered contract must continue bit-identically.
        let code = confide_lang::build_evm(BALANCE_SRC).unwrap();
        let mut payload = vec![1u8, 0u8]; // [vm=Evm][public]
        payload.extend_from_slice(&code);
        let mut node = fresh_node();
        let mut deployer = ConfideClient::new([7u8; 32], [8u8; 32], 1);
        let deploy = deployer.public_tx([0u8; 32], "deploy", &payload);
        let res = node.execute_block_parallel(&[deploy], 2).unwrap();
        let Ok((receipt, _)) = &res.outcomes[0] else {
            panic!("EVM deploy rejected: {:?}", res.outcomes[0]);
        };
        assert!(receipt.success, "EVM deploy failed: {receipt:?}");
        let address: [u8; 32] = receipt.return_data.as_slice().try_into().unwrap();
        for amount in [4u64, 2, 1] {
            let args = format!(r#"{{"to":"e","amount":{amount}}}"#);
            let tx = deployer.public_tx(address, "main", args.as_bytes());
            node.execute_block_parallel(&[tx], 2).unwrap();
        }
        let tip_root = node.state_root();

        let mut recovered = fresh_node();
        let report = recovered.recover_from_wal(node.wal_bytes()).unwrap();
        assert_eq!(report.deploys_replayed, 1);
        assert_eq!(report.state_root, tip_root);
        assert_eq!(recovered.state_root(), tip_root);
        assert!(recovered.public_engine.has_contract(&address));

        // Survivor and recovered replica continue in lockstep.
        let again = deployer.public_tx(address, "main", br#"{"to":"e","amount":10}"#);
        node.execute_block_parallel(std::slice::from_ref(&again), 2)
            .unwrap();
        let res = recovered
            .execute_block_parallel(std::slice::from_ref(&again), 2)
            .unwrap();
        let Ok((receipt, _)) = &res.outcomes[0] else {
            panic!("post-recovery EVM invoke failed: {:?}", res.outcomes[0]);
        };
        assert_eq!(receipt.return_data, b"17"); // 4 + 2 + 1 + 10
        assert_eq!(recovered.state_root(), node.state_root());
        assert_eq!(
            recovered.blocks.tip().header.hash(),
            node.blocks.tip().header.hash()
        );
    }

    #[test]
    fn recovery_refuses_non_fresh_nodes_and_foreign_logs() {
        let mut node = fresh_node();
        pump_blocks(&mut node, 1, 3);
        let log = node.wal_bytes().to_vec();
        // Non-fresh: the same node cannot replay on top of itself.
        match node.recover_from_wal(&log) {
            Err(NodeError::Recover(RecoverError::NotFresh)) => {}
            other => panic!("expected NotFresh, got {other:?}"),
        }
        // A *differently keyed* node cannot open the logged confidential
        // envelopes to probe for deployments — replay refuses with a
        // typed error instead of silently rebuilding a registry it could
        // never have owned.
        let mut foreign = {
            let platform = TeePlatform::new(9, 9);
            let mut rng = HmacDrbg::from_u64(77);
            let keys = NodeKeys::generate(&mut rng);
            let node = ConfideNode::new(platform, keys, EngineConfig::default(), 100);
            let code = confide_lang::build_vm(BALANCE_SRC).unwrap();
            node.deploy(CONF_CONTRACT, &code, VmKind::ConfideVm, true)
                .unwrap();
            node
        };
        match foreign.recover_from_wal(&log) {
            Err(NodeError::Recover(RecoverError::Deploy(EngineError::Crypto))) => {}
            other => panic!("expected envelope-open failure, got {other:?}"),
        }
    }

    #[test]
    fn resubmitted_wire_tx_resolves_to_its_stored_receipt() {
        let mut node = fresh_node();
        let pk_tx = node.pk_tx();
        let mut client = ConfideClient::new([11u8; 32], [12u8; 32], 5);
        let (tx, tx_hash, _) = client
            .confidential_tx(&pk_tx, CONF_CONTRACT, "main", br#"{"to":"a","amount":9}"#)
            .unwrap();
        node.execute_block_parallel(std::slice::from_ref(&tx), 2)
            .unwrap();
        let (sealed, receipt) = node.committed_by_wire(&tx.wire_hash()).unwrap();
        assert!(sealed);
        assert_eq!(receipt, node.stored_receipt(&tx_hash).unwrap());
        assert_eq!(
            client.open_receipt(&receipt, &tx_hash).unwrap().return_data,
            b"9"
        );
        // Unknown wire hashes stay unknown.
        assert!(node.committed_by_wire(&[0xEE; 32]).is_none());
    }

    #[test]
    fn crashed_node_rejoins_a_surviving_member_and_replays_its_wal() {
        use crate::keys::{begin_join, finish_join};
        // Consortium of two: A generated the secrets, B MAP-joined.
        let pa = TeePlatform::new(1, 1);
        let pb = TeePlatform::new(2, 2);
        let mut rng = HmacDrbg::from_u64(5);
        let ka = NodeKeys::generate(&mut rng);
        let kb = decentralized_join(&pa, &ka, &pb, 1, 9).unwrap();
        let a = ConfideNode::new(pa, ka, EngineConfig::default(), 100);
        let mut b = ConfideNode::new(pb.clone(), kb, EngineConfig::default(), 100);
        let code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        b.deploy(CONF_CONTRACT, &code, VmKind::ConfideVm, true)
            .unwrap();
        pump_blocks(&mut b, 3, 0);
        let tip_root = b.state_root();
        let log = b.wal_bytes().to_vec();
        drop(b); // crash: in-memory secrets and state are gone

        // The restarted process holds only its platform and the WAL file.
        // It re-obtains the consortium secrets from surviving member A by
        // re-running the MAP join through the node-level seam.
        let (session, offer) = begin_join(&pb, 1, &a.pk_tx(), 41).unwrap();
        let (blob, member_report) = a
            .approve_join(&pb.attestation_public_key(), &offer, 1, 1, 42)
            .unwrap();
        let keys = finish_join(
            session,
            &pb,
            &a.attestation_root(),
            &member_report,
            1,
            1,
            &blob,
        )
        .unwrap();
        assert_eq!(keys.pk_tx(), a.pk_tx());

        // A member that mandates a newer SVN refuses the same joiner.
        let (_s2, offer2) = begin_join(&pb, 1, &a.pk_tx(), 43).unwrap();
        assert!(matches!(
            a.approve_join(&pb.attestation_public_key(), &offer2, 1, 2, 44),
            Err(crate::keys::KeyProtocolError::Attestation(_))
        ));

        // With the re-obtained keys the deterministic bootstrap + WAL
        // replay reproduces the pre-crash node exactly.
        let mut revived = ConfideNode::new(pb, keys, EngineConfig::default(), 100);
        revived
            .deploy(CONF_CONTRACT, &code, VmKind::ConfideVm, true)
            .unwrap();
        let report = revived.recover_from_wal(&log).unwrap();
        assert_eq!(report.blocks_replayed, 3);
        assert_eq!(revived.state_root(), tip_root);
    }

    #[test]
    fn attestation_report_carries_pk_tx_fingerprint() {
        let (a, _) = two_nodes();
        let report = a.attestation_report().unwrap();
        assert_eq!(report.report_data[..32], confide_crypto::sha256(&a.pk_tx()));
    }

    #[test]
    fn cert_sidecar_records_survive_reload_and_answer_queries() {
        let (mut a, _) = two_nodes();
        assert_eq!(a.last_certified(), None);
        a.record_cert(1, &[0x11; 40]);
        a.record_cert(2, &[0x22; 44]);
        a.record_cert(3, &[0x33; 48]);
        assert_eq!(a.last_certified(), Some(3));
        assert_eq!(a.cert_for(2), Some(vec![0x22; 44]));
        assert_eq!(a.cert_for(9), None);
        assert_eq!(
            a.certs_in(1, 3),
            vec![(2, vec![0x22; 44]), (3, vec![0x33; 48])]
        );

        // Reload from file bytes, including a torn tail.
        let mut bytes = a.cert_sidecar_bytes().to_vec();
        let (mut b, _) = two_nodes();
        b.load_cert_sidecar(&bytes);
        assert_eq!(b.last_certified(), Some(3));
        bytes.pop();
        let (mut c, _) = two_nodes();
        c.load_cert_sidecar(&bytes);
        assert_eq!(c.last_certified(), Some(2));
        // Re-certifying the repaired height appends cleanly.
        c.record_cert(3, &[0x44; 48]);
        assert_eq!(c.cert_for(3), Some(vec![0x44; 48]));
    }

    #[test]
    fn table1_shape_counters() {
        // A block whose counters expose the Table 1 categories.
        let (mut a, _) = two_nodes();
        let code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        a.deploy([2u8; 32], &code, VmKind::ConfideVm, true).unwrap();
        let mut client = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        let (tx, _, _) = client
            .confidential_tx(&a.pk_tx(), [2u8; 32], "main", br#"{"to":"a","amount":1}"#)
            .unwrap();
        let result = a.execute_block(&[tx]).unwrap();
        let c = &result.totals;
        assert_eq!(c.verifies, 1);
        assert_eq!(c.decrypts, 1);
        assert!(c.contract_calls >= 1);
        assert!(c.get_storage >= 1);
        assert!(c.set_storage >= 1);
        let rows = c.table1_rows(a.confidential_engine.model());
        assert_eq!(rows.len(), 5);
    }
}
