//! A full CONFIDE node: storage + block store + both execution engines.

use crate::context::ExecContext;
use crate::counters::{OpCounters, TxStats};
use crate::engine::{Engine, EngineConfig, EngineError, VmKind};
use crate::keys::NodeKeys;
use crate::receipt::Receipt;
use crate::tx::WireTx;
use confide_crypto::HmacDrbg;
use confide_storage::blockstore::{Block, BlockHeader, BlockStore, BlockStoreError};
use confide_storage::kv::WriteBatch;
use confide_storage::versioned::{StateDb, StateError};
use confide_tee::platform::TeePlatform;
use std::sync::Arc;

/// Node-level failures.
#[derive(Debug)]
pub enum NodeError {
    /// Engine failure for a specific transaction index.
    Engine(usize, EngineError),
    /// Engine failure while sealing the block's state overlay at commit.
    Commit(EngineError),
    /// State application failure.
    State(StateError),
    /// Block store failure.
    Blocks(BlockStoreError),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Engine(i, e) => write!(f, "tx {i}: {e}"),
            NodeError::Commit(e) => write!(f, "commit: {e}"),
            NodeError::State(e) => write!(f, "state: {e}"),
            NodeError::Blocks(e) => write!(f, "blocks: {e}"),
        }
    }
}

impl std::error::Error for NodeError {}

/// Result of executing one block.
#[derive(Debug)]
pub struct BlockResult {
    /// The appended block.
    pub block: Block,
    /// Plaintext receipts (node-internal; confidential receipts also
    /// stored sealed).
    pub receipts: Vec<Receipt>,
    /// Sealed receipts for confidential transactions (indexed like txs;
    /// None for public).
    pub sealed_receipts: Vec<Option<Vec<u8>>>,
    /// Per-transaction cost accounting.
    pub tx_stats: Vec<TxStats>,
    /// Aggregate counters for the block.
    pub totals: OpCounters,
}

/// Outcome of one transaction under lenient execution: the plaintext
/// receipt plus the sealed receipt (confidential only), or the engine
/// error that evicted the transaction from the block.
pub type TxOutcome = Result<(Receipt, Option<Vec<u8>>), EngineError>;

/// Result of executing one block leniently: per-transaction outcomes
/// instead of first-failure-poisons-the-batch semantics.
#[derive(Debug)]
pub struct LenientBlockResult {
    /// The appended block (contains only the accepted transactions).
    pub block: Block,
    /// One entry per *input* transaction, in submission order.
    pub outcomes: Vec<TxOutcome>,
    /// Aggregate counters over the accepted transactions.
    pub totals: OpCounters,
}

impl LenientBlockResult {
    /// Number of transactions that made it into the block.
    pub fn accepted(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_ok()).count()
    }
}

/// A CONFIDE node. In a real deployment one process; in the simulation one
/// of these per simulated node, all sharing deterministic keys via
/// K-Protocol.
pub struct ConfideNode {
    /// Contract states (versioned, rollback-detecting).
    pub state: StateDb,
    /// The hash-linked chain.
    pub blocks: BlockStore,
    /// Plain execution.
    pub public_engine: Engine,
    /// In-enclave execution.
    pub confidential_engine: Engine,
    rng: HmacDrbg,
    timestamp_ns: u64,
}

impl ConfideNode {
    /// Stand up a node on a TEE platform with provisioned keys.
    pub fn new(
        platform: Arc<TeePlatform>,
        keys: NodeKeys,
        config: EngineConfig,
        seed: u64,
    ) -> ConfideNode {
        ConfideNode {
            state: StateDb::new(),
            blocks: BlockStore::new(),
            public_engine: Engine::public(config),
            confidential_engine: Engine::confidential(platform, keys, config),
            rng: HmacDrbg::from_u64(seed),
            timestamp_ns: 0,
        }
    }

    /// `pk_tx` for clients.
    ///
    /// Infallible by construction: every `Node` is built with a
    /// confidential engine (see the constructors above), so the inner
    /// `Option` is always `Some`.
    pub fn pk_tx(&self) -> [u8; 32] {
        self.confidential_engine
            .pk_tx()
            .expect("confidential engine")
    }

    /// Deploy a contract on the appropriate engine (genesis convenience;
    /// deployments can also travel as transactions). Subject to the same
    /// deploy-time bytecode verification as [`Engine::deploy`].
    pub fn deploy(
        &self,
        address: [u8; 32],
        code: &[u8],
        vm: VmKind,
        confidential: bool,
    ) -> Result<(), crate::engine::EngineError> {
        if confidential {
            self.confidential_engine.deploy(address, code, vm, true)
        } else {
            self.public_engine.deploy(address, code, vm, false)
        }
    }

    /// Run direct-invocation genesis setup against the confidential engine
    /// and commit it as an (empty-transaction) block, keeping the state DB
    /// and the block store in lockstep.
    pub fn run_genesis(
        &mut self,
        f: impl FnOnce(&Engine, &StateDb, &mut ExecContext),
    ) -> Result<(), NodeError> {
        let mut ctx = ExecContext::new();
        f(&self.confidential_engine, &self.state, &mut ctx);
        let height = self.state.height() + 1;
        let batch = self
            .confidential_engine
            .commit_block(&mut ctx, height)
            .map_err(NodeError::Commit)?;
        let state_root = self
            .state
            .apply_block(height, &batch)
            .map_err(NodeError::State)?;
        self.timestamp_ns += 1_000_000;
        let block = Block {
            header: BlockHeader {
                height,
                parent: self.blocks.tip().header.hash(),
                state_root,
                tx_root: Block::tx_root(&[]),
                timestamp_ns: self.timestamp_ns,
            },
            txs: Vec::new(),
        };
        self.blocks.append(block).map_err(NodeError::Blocks)?;
        Ok(())
    }

    /// Pre-verify a batch of transactions (the §5.2 pipeline; done in
    /// parallel with ordering in production). Returns total cycles spent.
    pub fn preverify(&self, txs: &[WireTx]) -> u64 {
        let mut total = 0;
        for tx in txs {
            if let Ok(c) = self.confidential_engine.preverify(tx) {
                total += c;
            }
        }
        total
    }

    /// Execute a block of transactions: public → Public-Engine,
    /// confidential → Confidential-Engine (both write through one state
    /// overlay view per engine, merged at commit), then append the block.
    pub fn execute_block(&mut self, txs: &[WireTx]) -> Result<BlockResult, NodeError> {
        let height = self.state.height() + 1;
        let mut pub_ctx = ExecContext::new();
        let mut conf_ctx = ExecContext::new();
        let mut receipts = Vec::with_capacity(txs.len());
        let mut sealed_receipts = Vec::with_capacity(txs.len());
        let mut tx_stats = Vec::with_capacity(txs.len());
        let mut totals = OpCounters::default();
        for (i, tx) in txs.iter().enumerate() {
            let (engine, ctx) = match tx {
                WireTx::Public(_) => (&self.public_engine, &mut pub_ctx),
                WireTx::Confidential(_) => (&self.confidential_engine, &mut conf_ctx),
            };
            let (receipt, sealed, stats) = engine
                .execute_transaction(&self.state, ctx, tx, &mut self.rng)
                .map_err(|e| NodeError::Engine(i, e))?;
            totals.add(&stats.counters);
            receipts.push(receipt);
            sealed_receipts.push(sealed);
            tx_stats.push(stats);
        }
        // Merge both engines' batches; persist sealed receipts alongside.
        let mut batch = WriteBatch::new();
        for b in [
            self.public_engine.commit_block(&mut pub_ctx, height),
            self.confidential_engine.commit_block(&mut conf_ctx, height),
        ] {
            batch.ops.extend(b.map_err(NodeError::Commit)?.ops);
        }
        for (receipt, sealed) in receipts.iter().zip(&sealed_receipts) {
            let mut key = b"receipt|".to_vec();
            key.extend_from_slice(&receipt.tx_hash);
            match sealed {
                Some(ct) => batch.put(key, ct.clone()),
                None => batch.put(key, receipt.encode()),
            };
        }
        let state_root = self
            .state
            .apply_block(height, &batch)
            .map_err(NodeError::State)?;
        self.timestamp_ns += 1_000_000;
        let tx_bytes: Vec<Vec<u8>> = txs.iter().map(|t| t.encode()).collect();
        let block = Block {
            header: BlockHeader {
                height,
                parent: self.blocks.tip().header.hash(),
                state_root,
                tx_root: Block::tx_root(&tx_bytes),
                timestamp_ns: self.timestamp_ns,
            },
            txs: tx_bytes,
        };
        self.blocks
            .append(block.clone())
            .map_err(NodeError::Blocks)?;
        Ok(BlockResult {
            block,
            receipts,
            sealed_receipts,
            tx_stats,
            totals,
        })
    }

    /// Execute a block of transactions **leniently**: a transaction that
    /// fails (replay, bad envelope, unknown contract, …) is rolled back
    /// via the [`ExecContext`] journal and *excluded* from the block
    /// instead of aborting the whole batch. This is the server-side batch
    /// submit path of `confide-net`, where one malicious client must not
    /// be able to poison a block shared with honest traffic.
    ///
    /// A block is committed even when every transaction fails (matching
    /// the production habit of sealing empty blocks on a timer); only
    /// commit-level failures return `Err`.
    pub fn execute_block_lenient(
        &mut self,
        txs: &[WireTx],
    ) -> Result<LenientBlockResult, NodeError> {
        let height = self.state.height() + 1;
        let mut pub_ctx = ExecContext::new();
        let mut conf_ctx = ExecContext::new();
        let mut outcomes = Vec::with_capacity(txs.len());
        let mut accepted_bytes = Vec::new();
        let mut totals = OpCounters::default();
        for tx in txs {
            let (engine, ctx) = match tx {
                WireTx::Public(_) => (&self.public_engine, &mut pub_ctx),
                WireTx::Confidential(_) => (&self.confidential_engine, &mut conf_ctx),
            };
            ctx.begin_tx();
            match engine.execute_transaction(&self.state, ctx, tx, &mut self.rng) {
                Ok((receipt, sealed, stats)) => {
                    ctx.commit_tx();
                    totals.add(&stats.counters);
                    accepted_bytes.push(tx.encode());
                    outcomes.push(Ok((receipt, sealed)));
                }
                Err(e) => {
                    ctx.rollback_tx();
                    outcomes.push(Err(e));
                }
            }
        }
        let mut batch = WriteBatch::new();
        for b in [
            self.public_engine.commit_block(&mut pub_ctx, height),
            self.confidential_engine.commit_block(&mut conf_ctx, height),
        ] {
            batch.ops.extend(b.map_err(NodeError::Commit)?.ops);
        }
        for (receipt, sealed) in outcomes.iter().flatten() {
            let mut key = b"receipt|".to_vec();
            key.extend_from_slice(&receipt.tx_hash);
            match sealed {
                Some(ct) => batch.put(key, ct.clone()),
                None => batch.put(key, receipt.encode()),
            };
        }
        let state_root = self
            .state
            .apply_block(height, &batch)
            .map_err(NodeError::State)?;
        self.timestamp_ns += 1_000_000;
        let block = Block {
            header: BlockHeader {
                height,
                parent: self.blocks.tip().header.hash(),
                state_root,
                tx_root: Block::tx_root(&accepted_bytes),
                timestamp_ns: self.timestamp_ns,
            },
            txs: accepted_bytes,
        };
        self.blocks
            .append(block.clone())
            .map_err(NodeError::Blocks)?;
        Ok(LenientBlockResult {
            block,
            outcomes,
            totals,
        })
    }

    /// The attestation report clients verify before trusting a
    /// wire-delivered `pk_tx` (see [`Engine::attestation_report`]).
    pub fn attestation_report(&self) -> Option<confide_tee::attestation::Report> {
        self.confidential_engine.attestation_report()
    }

    /// Serve an SPV-style state query: the (possibly sealed) value plus a
    /// Merkle inclusion proof against this node's current state root.
    pub fn prove_state(
        &self,
        key: &[u8],
    ) -> Option<(Vec<u8>, confide_storage::merkle::MerkleProof, [u8; 32])> {
        let (value, proof) = self.state.prove(key)?;
        Some((value, proof, self.state.root()))
    }

    /// Fetch a stored (possibly sealed) receipt by transaction hash.
    pub fn stored_receipt(&self, tx_hash: &[u8; 32]) -> Option<Vec<u8>> {
        let mut key = b"receipt|".to_vec();
        key.extend_from_slice(tx_hash);
        self.state.get(&key)
    }

    /// Current state root.
    pub fn state_root(&self) -> [u8; 32] {
        self.state.root()
    }
}

/// Client-side consensus read (§3.3): fetch a proof from one node and
/// accept the value only if (a) the proof verifies against that node's
/// claimed root and (b) at least `quorum` of the consulted nodes report
/// the same root. Returns the (possibly sealed) value.
pub fn consensus_read(nodes: &[&ConfideNode], key: &[u8], quorum: usize) -> Option<Vec<u8>> {
    let (value, proof, claimed_root) = nodes.first()?.prove_state(key)?;
    if !proof.verify(&claimed_root, key, &value) {
        return None;
    }
    let agreeing = nodes
        .iter()
        .filter(|n| n.state_root() == claimed_root)
        .count();
    if agreeing >= quorum {
        Some(value)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ConfideClient;
    use crate::keys::{decentralized_join, NodeKeys};

    const BALANCE_SRC: &str = r#"
        export fn main() {
            let who: bytes = json_get(input(), b"to");
            let amt: int = json_get_int(input(), b"amount");
            let key: bytes = concat(b"bal:", who);
            let bal: int = atoi(storage_get(key));
            storage_set(key, itoa(bal + amt));
            ret(itoa(bal + amt));
        }
    "#;

    fn two_nodes() -> (ConfideNode, ConfideNode) {
        let pa = TeePlatform::new(1, 1);
        let pb = TeePlatform::new(2, 2);
        let mut rng = HmacDrbg::from_u64(5);
        let ka = NodeKeys::generate(&mut rng);
        let kb = decentralized_join(&pa, &ka, &pb, 1, 9).unwrap();
        let a = ConfideNode::new(pa, ka, EngineConfig::default(), 100);
        let b = ConfideNode::new(pb, kb, EngineConfig::default(), 100);
        (a, b)
    }

    #[test]
    fn replicas_agree_on_sealed_state_roots() {
        let (mut a, mut b) = two_nodes();
        let code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        let contract = [3u8; 32];
        a.deploy(contract, &code, VmKind::ConfideVm, true).unwrap();
        b.deploy(contract, &code, VmKind::ConfideVm, true).unwrap();

        let mut client = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        let (tx1, h1, _) = client
            .confidential_tx(
                &a.pk_tx(),
                contract,
                "main",
                br#"{"to":"alice","amount":100}"#,
            )
            .unwrap();
        let (tx2, _, _) = client
            .confidential_tx(
                &a.pk_tx(),
                contract,
                "main",
                br#"{"to":"alice","amount":-30}"#,
            )
            .unwrap();
        let txs = vec![tx1, tx2];
        let ra = a.execute_block(&txs).unwrap();
        let rb = b.execute_block(&txs).unwrap();
        // Same encrypted state on both replicas (deterministic D-Protocol).
        assert_eq!(a.state_root(), b.state_root());
        assert_eq!(ra.block.header.state_root, rb.block.header.state_root);
        assert_eq!(ra.receipts[1].return_data, b"70");
        // Receipt retrievable and owner-decryptable from either node.
        let sealed = b.stored_receipt(&h1).unwrap();
        let receipt = client.open_receipt(&sealed, &h1).unwrap();
        assert_eq!(receipt.return_data, b"100");
    }

    #[test]
    fn confidential_state_unreadable_via_raw_db() {
        let (mut a, _) = two_nodes();
        let code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        let contract = [3u8; 32];
        a.deploy(contract, &code, VmKind::ConfideVm, true).unwrap();
        let mut client = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        let (tx, _, _) = client
            .confidential_tx(
                &a.pk_tx(),
                contract,
                "main",
                br#"{"to":"alice","amount":12345}"#,
            )
            .unwrap();
        a.execute_block(&[tx]).unwrap();
        // Scan the whole database: the balance value must not appear.
        for (_, v) in a.state.kv().iter() {
            assert!(
                !v.windows(5).any(|w| w == b"12345"),
                "plaintext balance leaked to raw storage"
            );
        }
    }

    #[test]
    fn mixed_public_and_confidential_block() {
        let (mut a, _) = two_nodes();
        let pub_code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        let conf_code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        a.deploy([1u8; 32], &pub_code, VmKind::ConfideVm, false)
            .unwrap();
        a.deploy([2u8; 32], &conf_code, VmKind::ConfideVm, true)
            .unwrap();
        let mut client = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        let ptx = client.public_tx([1u8; 32], "main", br#"{"to":"x","amount":1}"#);
        let (ctx_, _, _) = client
            .confidential_tx(&a.pk_tx(), [2u8; 32], "main", br#"{"to":"y","amount":2}"#)
            .unwrap();
        let result = a.execute_block(&[ptx, ctx_]).unwrap();
        assert!(result.receipts.iter().all(|r| r.success));
        assert!(result.sealed_receipts[0].is_none());
        assert!(result.sealed_receipts[1].is_some());
        // Public state readable in the raw DB; confidential not.
        let pub_key = crate::engine::full_key(&[1u8; 32], b"bal:x");
        assert_eq!(a.state.get(&pub_key).unwrap(), b"1");
        let conf_key = crate::engine::full_key(&[2u8; 32], b"bal:y");
        assert_ne!(a.state.get(&conf_key).unwrap(), b"2");
    }

    #[test]
    fn chain_grows_and_verifies() {
        let (mut a, _) = two_nodes();
        let code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        a.deploy([1u8; 32], &code, VmKind::ConfideVm, false)
            .unwrap();
        let mut client = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        for i in 0..5 {
            let tx = client.public_tx(
                [1u8; 32],
                "main",
                format!(r#"{{"to":"u{i}","amount":{i}}}"#).as_bytes(),
            );
            a.execute_block(&[tx]).unwrap();
        }
        assert_eq!(a.blocks.height(), 5);
        assert!(a.blocks.verify_chain());
        a.state.verify_version(5).unwrap();
    }

    #[test]
    fn lenient_block_skips_bad_txs_and_matches_clean_replica() {
        let (mut a, mut b) = two_nodes();
        let code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        let contract = [3u8; 32];
        a.deploy(contract, &code, VmKind::ConfideVm, true).unwrap();
        b.deploy(contract, &code, VmKind::ConfideVm, true).unwrap();
        let mut client = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        let (good1, h1, _) = client
            .confidential_tx(&a.pk_tx(), contract, "main", br#"{"to":"a","amount":5}"#)
            .unwrap();
        let (good2, _, _) = client
            .confidential_tx(&a.pk_tx(), contract, "main", br#"{"to":"a","amount":7}"#)
            .unwrap();
        // Unknown contract: fails at execution, after the nonce write.
        let (bad_contract, _, _) = client
            .confidential_tx(&a.pk_tx(), [0x99; 32], "main", b"{}")
            .unwrap();
        // Replay of good1: stale nonce.
        let replay = good1.clone();
        let res = a
            .execute_block_lenient(&[good1.clone(), bad_contract, replay, good2.clone()])
            .unwrap();
        assert_eq!(res.accepted(), 2);
        assert!(res.outcomes[0].is_ok());
        assert!(matches!(
            res.outcomes[1],
            Err(EngineError::UnknownContract(_))
        ));
        assert!(matches!(res.outcomes[2], Err(EngineError::Replay)));
        assert!(res.outcomes[3].is_ok());
        // Only accepted txs are in the block body.
        assert_eq!(res.block.txs.len(), 2);
        // A replica executing just the accepted txs strictly agrees.
        b.execute_block(&[good1, good2]).unwrap();
        assert_eq!(a.state_root(), b.state_root());
        // Receipt for the first tx stored and owner-decryptable.
        let sealed = a.stored_receipt(&h1).unwrap();
        assert_eq!(client.open_receipt(&sealed, &h1).unwrap().return_data, b"5");
    }

    #[test]
    fn lenient_block_with_all_failures_still_commits_empty_block() {
        let (mut a, _) = two_nodes();
        let mut client = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        let (bad, _, _) = client
            .confidential_tx(&a.pk_tx(), [0x99; 32], "main", b"{}")
            .unwrap();
        let before = a.state_root();
        let res = a.execute_block_lenient(&[bad]).unwrap();
        assert_eq!(res.accepted(), 0);
        assert!(res.block.txs.is_empty());
        assert_eq!(a.blocks.height(), 1);
        // No state change beyond the (empty) version bump bookkeeping.
        let _ = before; // roots may differ only via version metadata
    }

    #[test]
    fn attestation_report_carries_pk_tx_fingerprint() {
        let (a, _) = two_nodes();
        let report = a.attestation_report().unwrap();
        assert_eq!(report.report_data[..32], confide_crypto::sha256(&a.pk_tx()));
    }

    #[test]
    fn table1_shape_counters() {
        // A block whose counters expose the Table 1 categories.
        let (mut a, _) = two_nodes();
        let code = confide_lang::build_vm(BALANCE_SRC).unwrap();
        a.deploy([2u8; 32], &code, VmKind::ConfideVm, true).unwrap();
        let mut client = ConfideClient::new([1u8; 32], [2u8; 32], 3);
        let (tx, _, _) = client
            .confidential_tx(&a.pk_tx(), [2u8; 32], "main", br#"{"to":"a","amount":1}"#)
            .unwrap();
        let result = a.execute_block(&[tx]).unwrap();
        let c = &result.totals;
        assert_eq!(c.verifies, 1);
        assert_eq!(c.decrypts, 1);
        assert!(c.contract_calls >= 1);
        assert!(c.get_storage >= 1);
        assert!(c.set_storage >= 1);
        let rows = c.table1_rows(a.confidential_engine.model());
        assert_eq!(rows.len(), 5);
    }
}
