//! # confide-core
//!
//! CONFIDE itself (paper §3): the Confidential Smart Contract Execution
//! Engine and the three protocols, packaged — as in the paper — as a
//! *plugin* over a modular host platform:
//!
//! * [`tx`] — raw/signed/wire transactions; confidential transactions are
//!   T-Protocol digital envelopes (`TYPE=1`, Fig. 3).
//! * [`keys`] — K-Protocol: node key material (`sk_tx`, `k_states`) agreed
//!   either through a centralized KMS or the decentralized Mutual
//!   Authenticated Protocol built on remote attestation (§3.2.2), with the
//!   KM-enclave / CS-enclave split of §5.1.
//! * [`engine`] — the Confidential-Engine: transaction Pre-processor
//!   (envelope open + signature verify + the §5.2 pre-verification cache),
//!   the VM (CONFIDE-VM or the EVM), and the Secure Data Module (state
//!   encryption per D-Protocol, read cache, ocall accounting). The same
//!   executor in public mode is the Public-Engine.
//! * [`context`] / [`counters`] — per-block execution context (state
//!   overlay, pending writes) and the per-operation counters behind
//!   Table 1.
//! * [`receipt`] — execution receipts, sealed under the one-time `k_tx`
//!   (formula (2)).
//! * [`node`] — a full CONFIDE node: StateDb + BlockStore + both engines;
//!   executes blocks, computes state roots, detects rollbacks.
//! * [`client`] — the client side: derives `k_tx` from a user root key and
//!   the transaction hash, seals envelopes to `pk_tx`, opens receipts.
//! * [`authz`] — the pre-defined authorization chain-code of §3.2.3:
//!   contract-defined access rules re-wrap `k_tx` to authorized parties.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authz;
pub mod client;
pub mod context;
pub mod counters;
pub mod engine;
pub mod keys;
pub mod node;
pub mod probe;
pub mod receipt;
pub mod tx;

pub use client::{seal_signed_tx, ConfideClient};
pub use context::ExecContext;
pub use counters::{OpCounters, TxStats};
pub use engine::{Engine, EngineConfig, EngineError, TxPlan, VmKind};
pub use keys::{KeyProtocolError, NodeKeys};
pub use node::{ConfideNode, NodeError, SchedMode, WalDelta};
pub use probe::recognize_stdlib;
pub use receipt::Receipt;
pub use tx::{RawTx, SignedTx, WireTx};
