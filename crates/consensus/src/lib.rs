//! Wire-level PBFT replication for the CONFIDE consortium (§2.2, Fig. 11).
//!
//! The discrete-event simulator in `crates/chain` models the fault-free
//! three-phase protocol; this crate promotes the same ordering rules onto a
//! real transport. It is deliberately transport-agnostic: [`Replica`] is a
//! pure state machine that consumes [`PeerMsg`]s and emits [`Action`]s, and
//! the networking layer (`crates/net`) owns sockets, attestation, and
//! execution. That split keeps every consensus rule unit-testable with an
//! in-memory bus, and keeps the enclave boundary where the paper puts it:
//! consensus orders ciphertext envelopes *outside* the TEE, attested
//! enclaves execute and seal.
//!
//! ## Fault model
//!
//! Peers exchange consensus traffic only after mutually attesting via the
//! K-Protocol join path, so every participant is known to run the sanctioned
//! enclave build. Attestation narrows but does not eliminate Byzantine
//! behaviour — a member with a compromised host can still replay, reorder,
//! suppress, or (via a rollback attack on sealed state) equivocate — so the
//! protocol authenticates every message: each [`PeerMsg`] travels inside a
//! [`SignedPeerMsg`] envelope signed with a key derived from the member's
//! enclave identity, `Commit` decisions assemble transferable 2f+1
//! [`QuorumCert`]s, and conflicting signed statements for one slot become
//! durable [`Evidence`] that blacklists the offender and, if it leads,
//! forces a view change. The quorum arithmetic keeps PBFT's 2f+1-of-3f+1
//! shape, which tolerates f actively malicious members alongside the crash,
//! restart, partition, and loss/reordering faults handled before. See
//! DESIGN.md §17 for the full fault matrix.
//!
//! Under that model the replica executes and persists a block once it is
//! *prepared* (2f+1 matching `Prepare`s), then broadcasts `Commit`; the
//! `Commit` quorum is what releases client acknowledgements. A view change
//! carries each replica's full uncommitted suffix — including merely
//! pre-prepared entries — so any block a crashed leader got executed
//! anywhere is always re-proposed verbatim in the new view (see
//! DESIGN.md §14 for the intersection argument).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod evidence;
pub mod msg;
pub mod replica;

pub use cert::{sign_vote, vote_bytes, CertError, Keyring, QuorumCert};
pub use evidence::{Evidence, EvidenceError};
pub use msg::{block_digest, AuthError, MsgError, PeerMsg, SignedPeerMsg, SuffixEntry};
pub use replica::{Action, HandleError, ProposeError, Replica, ReplicaConfig};

/// PBFT quorum size for `n` replicas: `2f + 1` with `f = (n - 1) / 3`.
///
/// Shared with the discrete-event simulator in `crates/chain` so the wire
/// protocol and the model can never disagree on what "prepared" means.
pub fn quorum(n: usize) -> usize {
    let f = n.saturating_sub(1) / 3;
    2 * f + 1
}

/// Primary (leader) of a view under round-robin rotation.
pub fn primary_of(view: u64, n: usize) -> u32 {
    debug_assert!(n > 0);
    (view % n as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_matches_pbft_arithmetic() {
        assert_eq!(quorum(1), 1);
        assert_eq!(quorum(4), 3); // f = 1
        assert_eq!(quorum(7), 5); // f = 2
        assert_eq!(quorum(10), 7); // f = 3
        assert_eq!(quorum(16), 11); // f = 5
    }

    #[test]
    fn primary_rotates_round_robin() {
        assert_eq!(primary_of(0, 4), 0);
        assert_eq!(primary_of(1, 4), 1);
        assert_eq!(primary_of(5, 4), 1);
        assert_eq!(primary_of(u64::from(u32::MAX) + 1, 4), 0);
    }
}
