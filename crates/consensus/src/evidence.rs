//! Equivocation evidence: durable, self-certifying proof of Byzantine
//! behaviour.
//!
//! A replica equivocates when it signs two *different* statements for the
//! same consensus slot — e.g. two Prepares for `(view, seq)` with distinct
//! digests, or two Commits for the same height with distinct roots. Because
//! every [`SignedPeerMsg`](crate::msg::SignedPeerMsg) carries a
//! transferable signature, the conflicting pair itself is the proof: an
//! [`Evidence`] record holds both signed messages and verifies offline
//! against the consortium key table, with no trust in whoever recorded it.
//!
//! Lifecycle: a replica that observes the conflict emits
//! `Action::Evidence`, the node layer appends the record to a durable
//! sidecar file (`<wal>.evidence`), the offender is blacklisted locally,
//! and if the offender currently leads, a view change is forced.

use crate::msg::{MsgError, PeerMsg, SignedPeerMsg};
use confide_crypto::ed25519::VerifyingKey;
use confide_crypto::sha256;

/// The consensus slot an equivocation is judged in: `(tag, view, seq)` plus
/// the content identity two conflicting messages must disagree on.
///
/// Returns `None` for message kinds that cannot equivocate in a provable
/// per-slot sense (heartbeats, view-change family — those are handled by
/// the view-change protocol itself).
pub fn equivocation_slot(msg: &PeerMsg) -> Option<(u8, u64, u64, [u8; 32])> {
    match msg {
        PeerMsg::PrePrepare { view, seq, txs } => {
            Some((0x01, *view, *seq, crate::msg::block_digest(*seq, txs)))
        }
        PeerMsg::Prepare {
            view, seq, digest, ..
        } => Some((0x02, *view, *seq, *digest)),
        PeerMsg::Commit {
            view,
            seq,
            digest,
            root,
            ..
        } => {
            // Commit content identity covers both the proposal digest and
            // the claimed execution root: voting two roots for one height
            // is equivocation even within one view.
            let mut buf = Vec::with_capacity(64);
            buf.extend_from_slice(digest);
            buf.extend_from_slice(root);
            Some((0x03, *view, *seq, sha256(&buf)))
        }
        PeerMsg::ViewChange { .. } | PeerMsg::NewView { .. } | PeerMsg::Heartbeat { .. } => None,
    }
}

/// Why an [`Evidence`] record failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvidenceError {
    /// Encoding truncated or had trailing bytes.
    Malformed,
    /// A contained signature does not verify, or signer ids disagree with
    /// the accused.
    BadSignature,
    /// The two messages do not actually conflict (same slot and content,
    /// or different slots, or a non-equivocable kind).
    NotConflicting,
}

impl std::fmt::Display for EvidenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvidenceError::Malformed => write!(f, "malformed evidence encoding"),
            EvidenceError::BadSignature => write!(f, "evidence signature invalid"),
            EvidenceError::NotConflicting => write!(f, "messages do not conflict"),
        }
    }
}

impl std::error::Error for EvidenceError {}

/// Proof that `accused` signed two conflicting messages for one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evidence {
    /// The equivocating replica's node id.
    pub accused: u32,
    /// View of the slot both messages occupy.
    pub view: u64,
    /// Sequence of the slot both messages occupy.
    pub seq: u64,
    /// Slot tag (0x01 PrePrepare, 0x02 Prepare, 0x03 Commit).
    pub tag: u8,
    /// First signed message observed.
    pub first: SignedPeerMsg,
    /// Conflicting signed message observed later.
    pub second: SignedPeerMsg,
}

impl Evidence {
    /// Encode: accused, view, seq, tag, then both length-prefixed
    /// signed-message encodings.
    pub fn encode(&self) -> Vec<u8> {
        let a = self.first.encode();
        let b = self.second.encode();
        let mut out = Vec::with_capacity(4 + 8 + 8 + 1 + 8 + a.len() + b.len());
        out.extend_from_slice(&self.accused.to_le_bytes());
        out.extend_from_slice(&self.view.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.push(self.tag);
        out.extend_from_slice(&(a.len() as u32).to_le_bytes());
        out.extend_from_slice(&a);
        out.extend_from_slice(&(b.len() as u32).to_le_bytes());
        out.extend_from_slice(&b);
        out
    }

    /// Decode with exact consumption. Structural only; call
    /// [`Evidence::verify`] before trusting the accusation.
    pub fn decode(bytes: &[u8]) -> Result<Evidence, EvidenceError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], EvidenceError> {
            let end = pos.checked_add(n).ok_or(EvidenceError::Malformed)?;
            let s = bytes.get(*pos..end).ok_or(EvidenceError::Malformed)?;
            *pos = end;
            Ok(s)
        };
        let accused = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let view = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let seq = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let tag = take(&mut pos, 1)?[0];
        let signed = |pos: &mut usize| -> Result<SignedPeerMsg, EvidenceError> {
            let len = u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()) as usize;
            let body = take(pos, len)?;
            SignedPeerMsg::decode(body).map_err(|_: MsgError| EvidenceError::Malformed)
        };
        let first = signed(&mut pos)?;
        let second = signed(&mut pos)?;
        if pos != bytes.len() {
            return Err(EvidenceError::Malformed);
        }
        Ok(Evidence {
            accused,
            view,
            seq,
            tag,
            first,
            second,
        })
    }

    /// Verify the accusation: both messages carry valid signatures from
    /// `accused`, occupy the same slot `(tag, view, seq)` matching the
    /// record header, and disagree on content.
    pub fn verify(&self, keys: &[VerifyingKey]) -> Result<(), EvidenceError> {
        for m in [&self.first, &self.second] {
            if m.from != self.accused {
                return Err(EvidenceError::BadSignature);
            }
            m.verify(keys).map_err(|_| EvidenceError::BadSignature)?;
        }
        let a = equivocation_slot(&self.first.msg).ok_or(EvidenceError::NotConflicting)?;
        let b = equivocation_slot(&self.second.msg).ok_or(EvidenceError::NotConflicting)?;
        if (a.0, a.1, a.2) != (self.tag, self.view, self.seq)
            || (b.0, b.1, b.2) != (self.tag, self.view, self.seq)
        {
            return Err(EvidenceError::NotConflicting);
        }
        if a.3 == b.3 {
            return Err(EvidenceError::NotConflicting);
        }
        Ok(())
    }
}

/// Append one evidence record to `buf` with a u32 length frame, the format
/// of the `<wal>.evidence` sidecar file.
pub fn append_framed(buf: &mut Vec<u8>, ev: &Evidence) {
    let body = ev.encode();
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&body);
}

/// Parse a `<wal>.evidence` sidecar: u32-framed records back to back.
/// Stops cleanly at a torn tail (a crash mid-append loses at most the last
/// record); a structurally bad record is an error.
pub fn read_framed(bytes: &[u8]) -> Result<Vec<Evidence>, EvidenceError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if bytes.len() - pos < 4 {
            break; // torn length prefix
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let Some(body) = bytes.get(pos + 4..pos + 4 + len) else {
            break; // torn body
        };
        out.push(Evidence::decode(body)?);
        pos += 4 + len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::Keyring;

    fn conflicting_pair() -> (Evidence, Vec<VerifyingKey>) {
        let n = 4;
        let rings: Vec<Keyring> = (0..n as u32)
            .map(|i| Keyring::deterministic(3, i, n))
            .collect();
        let m1 = PeerMsg::Prepare {
            view: 2,
            seq: 7,
            digest: [1; 32],
            from: 1,
        };
        let m2 = PeerMsg::Prepare {
            view: 2,
            seq: 7,
            digest: [2; 32],
            from: 1,
        };
        let ev = Evidence {
            accused: 1,
            view: 2,
            seq: 7,
            tag: 0x02,
            first: SignedPeerMsg::sign(1, &rings[1].signer, m1),
            second: SignedPeerMsg::sign(1, &rings[1].signer, m2),
        };
        (ev, rings[0].keys.clone())
    }

    #[test]
    fn valid_evidence_round_trips_and_verifies() {
        let (ev, keys) = conflicting_pair();
        ev.verify(&keys).unwrap();
        let back = Evidence::decode(&ev.encode()).unwrap();
        assert_eq!(back, ev);
        back.verify(&keys).unwrap();
    }

    #[test]
    fn non_conflicting_or_forged_evidence_rejected() {
        let (ev, keys) = conflicting_pair();

        // Same message twice: no conflict.
        let mut same = ev.clone();
        same.second = same.first.clone();
        assert_eq!(same.verify(&keys), Err(EvidenceError::NotConflicting));

        // Header slot disagrees with the messages.
        let mut wrong_slot = ev.clone();
        wrong_slot.seq = 99;
        assert_eq!(wrong_slot.verify(&keys), Err(EvidenceError::NotConflicting));

        // Tampered signature.
        let mut forged = ev.clone();
        forged.second.sig[0] ^= 1;
        assert_eq!(forged.verify(&keys), Err(EvidenceError::BadSignature));

        // Accusing someone who didn't sign.
        let mut framed_up = ev.clone();
        framed_up.accused = 2;
        assert_eq!(framed_up.verify(&keys), Err(EvidenceError::BadSignature));
    }

    #[test]
    fn framed_file_round_trips_and_tolerates_torn_tail() {
        let (ev, _) = conflicting_pair();
        let mut buf = Vec::new();
        append_framed(&mut buf, &ev);
        append_framed(&mut buf, &ev);
        let full = read_framed(&buf).unwrap();
        assert_eq!(full.len(), 2);
        assert_eq!(full[0], ev);

        // Torn tail: drop the last byte — second record is lost, first kept.
        let torn = read_framed(&buf[..buf.len() - 1]).unwrap();
        assert_eq!(torn.len(), 1);
    }

    #[test]
    fn decode_rejects_truncation() {
        let (ev, _) = conflicting_pair();
        let bytes = ev.encode();
        for cut in 0..bytes.len() {
            assert!(Evidence::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Evidence::decode(&trailing).is_err());
    }
}
