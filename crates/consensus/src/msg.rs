//! Peer-to-peer PBFT message codec and the signed message envelope.
//!
//! Hand-rolled little-endian encoding, mirroring the T-Protocol frame
//! conventions in `crates/net`: a one-byte tag followed by fixed-width
//! integers and length-prefixed byte strings. The transport layer wraps one
//! encoded [`SignedPeerMsg`] per frame, so the frame-size cap already bounds
//! every length field here; the decoder still validates each length against
//! the remaining input before allocating.
//!
//! Every consensus message travels inside a [`SignedPeerMsg`]: the sender's
//! node id plus an Ed25519 signature over a domain-separated digest of the
//! encoded body. The signature makes votes *transferable* — a receiver can
//! prove to a third party what a peer said, which is what turns conflicting
//! messages into [`crate::evidence::Evidence`] and commit votes into
//! [`crate::cert::QuorumCert`]s.

use confide_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use confide_crypto::sha256;

/// A consensus message exchanged between attested peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerMsg {
    /// Leader's ordering proposal: the full transaction bodies for `seq`.
    PrePrepare {
        /// View the proposal belongs to.
        view: u64,
        /// Sequence number (equals chain height of the resulting block).
        seq: u64,
        /// Encoded `WireTx` bodies, in execution order.
        txs: Vec<Vec<u8>>,
    },
    /// Acknowledgement that a replica holds `seq`'s payload in `view`.
    Prepare {
        /// View of the proposal being acknowledged.
        view: u64,
        /// Sequence number being acknowledged.
        seq: u64,
        /// Block wire-digest ([`block_digest`]) the sender holds.
        digest: [u8; 32],
        /// Sender's node id.
        from: u32,
    },
    /// Announcement that the sender executed and durably logged `seq`.
    Commit {
        /// View the block prepared in.
        view: u64,
        /// Sequence number that was executed.
        seq: u64,
        /// Digest of the executed block.
        digest: [u8; 32],
        /// Sender's node id.
        from: u32,
        /// State root the sender's execution produced for `seq`.
        root: [u8; 32],
        /// Detached certificate vote: Ed25519 signature over
        /// [`crate::cert::vote_bytes`]`(seq, root)`. View-independent, so
        /// votes cast in different views aggregate into one
        /// [`crate::cert::QuorumCert`].
        vote_sig: [u8; 64],
    },
    /// Vote to replace the current leader with the primary of `target`.
    ViewChange {
        /// Proposed new view.
        target: u64,
        /// Sender's node id.
        from: u32,
        /// Sender's last executed sequence number.
        last_exec: u64,
        /// The sender's full uncommitted suffix (pre-prepared *and*
        /// prepared entries above `last_exec`) — the new leader re-proposes
        /// from the union of these.
        suffix: Vec<SuffixEntry>,
    },
    /// New leader's installation message for `view`.
    NewView {
        /// The view being installed.
        view: u64,
        /// The new leader's node id.
        from: u32,
        /// The new leader's execution height; laggards state-sync to here.
        last_exec: u64,
        /// Re-proposals for every in-flight sequence above `last_exec`.
        repropose: Vec<(u64, Vec<Vec<u8>>)>,
    },
    /// Leader liveness beacon, also advertising execution progress.
    Heartbeat {
        /// Current view.
        view: u64,
        /// Sender's node id (the leader).
        from: u32,
        /// Sender's last executed sequence number.
        last_exec: u64,
    },
}

/// One in-flight entry reported in a [`PeerMsg::ViewChange`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuffixEntry {
    /// Sequence number of the entry.
    pub seq: u64,
    /// View the entry was pre-prepared in.
    pub view: u64,
    /// Whether the sender saw a full prepare quorum for it.
    pub prepared: bool,
    /// The transaction bodies (empty if the sender never got the payload).
    pub txs: Vec<Vec<u8>>,
}

/// Codec failure while decoding a [`PeerMsg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgError {
    /// Input ended before the advertised structure was complete.
    Truncated,
    /// Unknown message tag byte.
    BadTag(u8),
    /// Bytes remained after a complete message.
    Trailing,
}

impl std::fmt::Display for MsgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsgError::Truncated => write!(f, "truncated peer message"),
            MsgError::BadTag(t) => write!(f, "unknown peer message tag {t:#04x}"),
            MsgError::Trailing => write!(f, "trailing bytes after peer message"),
        }
    }
}

impl std::error::Error for MsgError {}

const T_PRE_PREPARE: u8 = 0;
const T_PREPARE: u8 = 1;
const T_COMMIT: u8 = 2;
const T_VIEW_CHANGE: u8 = 3;
const T_NEW_VIEW: u8 = 4;
const T_HEARTBEAT: u8 = 5;

/// Digest identifying a block's content and position: the wire-hash of the
/// ordered transaction list bound to its sequence number. Deliberately
/// view-independent, so a re-proposal after a view change carries the same
/// digest and replicas that already executed the block can vote for it
/// without re-executing.
pub fn block_digest(seq: u64, txs: &[Vec<u8>]) -> [u8; 32] {
    let mut buf = Vec::with_capacity(8 + 32 * txs.len());
    buf.extend_from_slice(&seq.to_le_bytes());
    for tx in txs {
        buf.extend_from_slice(&sha256(tx));
    }
    sha256(&buf)
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_tx_list(out: &mut Vec<u8>, txs: &[Vec<u8>]) {
    out.extend_from_slice(&(txs.len() as u32).to_le_bytes());
    for tx in txs {
        put_bytes(out, tx);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], MsgError> {
        if self.buf.len() - self.pos < n {
            return Err(MsgError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, MsgError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, MsgError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, MsgError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn digest(&mut self) -> Result<[u8; 32], MsgError> {
        Ok(self.take(32)?.try_into().unwrap())
    }

    fn sig64(&mut self) -> Result<[u8; 64], MsgError> {
        Ok(self.take(64)?.try_into().unwrap())
    }

    fn bytes(&mut self) -> Result<Vec<u8>, MsgError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn tx_list(&mut self) -> Result<Vec<Vec<u8>>, MsgError> {
        let count = self.u32()? as usize;
        // Each entry costs at least a 4-byte length prefix; reject counts
        // the remaining input cannot possibly satisfy before allocating.
        if count > (self.buf.len() - self.pos) / 4 {
            return Err(MsgError::Truncated);
        }
        let mut txs = Vec::with_capacity(count);
        for _ in 0..count {
            txs.push(self.bytes()?);
        }
        Ok(txs)
    }
}

impl PeerMsg {
    /// Encode to the wire representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            PeerMsg::PrePrepare { view, seq, txs } => {
                out.push(T_PRE_PREPARE);
                out.extend_from_slice(&view.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                put_tx_list(&mut out, txs);
            }
            PeerMsg::Prepare {
                view,
                seq,
                digest,
                from,
            } => {
                out.push(T_PREPARE);
                out.extend_from_slice(&view.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(digest);
                out.extend_from_slice(&from.to_le_bytes());
            }
            PeerMsg::Commit {
                view,
                seq,
                digest,
                from,
                root,
                vote_sig,
            } => {
                out.push(T_COMMIT);
                out.extend_from_slice(&view.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(digest);
                out.extend_from_slice(&from.to_le_bytes());
                out.extend_from_slice(root);
                out.extend_from_slice(vote_sig);
            }
            PeerMsg::ViewChange {
                target,
                from,
                last_exec,
                suffix,
            } => {
                out.push(T_VIEW_CHANGE);
                out.extend_from_slice(&target.to_le_bytes());
                out.extend_from_slice(&from.to_le_bytes());
                out.extend_from_slice(&last_exec.to_le_bytes());
                out.extend_from_slice(&(suffix.len() as u32).to_le_bytes());
                for e in suffix {
                    out.extend_from_slice(&e.seq.to_le_bytes());
                    out.extend_from_slice(&e.view.to_le_bytes());
                    out.push(u8::from(e.prepared));
                    put_tx_list(&mut out, &e.txs);
                }
            }
            PeerMsg::NewView {
                view,
                from,
                last_exec,
                repropose,
            } => {
                out.push(T_NEW_VIEW);
                out.extend_from_slice(&view.to_le_bytes());
                out.extend_from_slice(&from.to_le_bytes());
                out.extend_from_slice(&last_exec.to_le_bytes());
                out.extend_from_slice(&(repropose.len() as u32).to_le_bytes());
                for (seq, txs) in repropose {
                    out.extend_from_slice(&seq.to_le_bytes());
                    put_tx_list(&mut out, txs);
                }
            }
            PeerMsg::Heartbeat {
                view,
                from,
                last_exec,
            } => {
                out.push(T_HEARTBEAT);
                out.extend_from_slice(&view.to_le_bytes());
                out.extend_from_slice(&from.to_le_bytes());
                out.extend_from_slice(&last_exec.to_le_bytes());
            }
        }
        out
    }

    /// Decode one message, requiring the input to be exactly consumed.
    pub fn decode(bytes: &[u8]) -> Result<PeerMsg, MsgError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let tag = r.u8()?;
        let msg = match tag {
            T_PRE_PREPARE => PeerMsg::PrePrepare {
                view: r.u64()?,
                seq: r.u64()?,
                txs: r.tx_list()?,
            },
            T_PREPARE => PeerMsg::Prepare {
                view: r.u64()?,
                seq: r.u64()?,
                digest: r.digest()?,
                from: r.u32()?,
            },
            T_COMMIT => PeerMsg::Commit {
                view: r.u64()?,
                seq: r.u64()?,
                digest: r.digest()?,
                from: r.u32()?,
                root: r.digest()?,
                vote_sig: r.sig64()?,
            },
            T_VIEW_CHANGE => {
                let target = r.u64()?;
                let from = r.u32()?;
                let last_exec = r.u64()?;
                let count = r.u32()? as usize;
                if count > (bytes.len() - r.pos) / 17 {
                    return Err(MsgError::Truncated);
                }
                let mut suffix = Vec::with_capacity(count);
                for _ in 0..count {
                    suffix.push(SuffixEntry {
                        seq: r.u64()?,
                        view: r.u64()?,
                        prepared: r.u8()? != 0,
                        txs: r.tx_list()?,
                    });
                }
                PeerMsg::ViewChange {
                    target,
                    from,
                    last_exec,
                    suffix,
                }
            }
            T_NEW_VIEW => {
                let view = r.u64()?;
                let from = r.u32()?;
                let last_exec = r.u64()?;
                let count = r.u32()? as usize;
                if count > (bytes.len() - r.pos) / 12 {
                    return Err(MsgError::Truncated);
                }
                let mut repropose = Vec::with_capacity(count);
                for _ in 0..count {
                    let seq = r.u64()?;
                    repropose.push((seq, r.tx_list()?));
                }
                PeerMsg::NewView {
                    view,
                    from,
                    last_exec,
                    repropose,
                }
            }
            T_HEARTBEAT => PeerMsg::Heartbeat {
                view: r.u64()?,
                from: r.u32()?,
                last_exec: r.u64()?,
            },
            other => return Err(MsgError::BadTag(other)),
        };
        if r.pos != bytes.len() {
            return Err(MsgError::Trailing);
        }
        Ok(msg)
    }

    /// The node id embedded in the message body, when the kind carries one.
    /// `PrePrepare` has no sender field: its rightful origin is implied by
    /// `primary_of(view)`, which the replica checks separately.
    pub fn sender(&self) -> Option<u32> {
        match self {
            PeerMsg::PrePrepare { .. } => None,
            PeerMsg::Prepare { from, .. }
            | PeerMsg::Commit { from, .. }
            | PeerMsg::ViewChange { from, .. }
            | PeerMsg::NewView { from, .. }
            | PeerMsg::Heartbeat { from, .. } => Some(*from),
        }
    }
}

/// Domain separator for peer-message signatures. Distinct from
/// [`crate::cert::VOTE_DOMAIN`] so an envelope signature can never be
/// replayed as a certificate vote or vice versa.
pub const MSG_DOMAIN: &[u8] = b"confide-peer-msg-v1";

/// Authentication failure on a [`SignedPeerMsg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthError {
    /// The claimed signer id is outside the consortium member list.
    UnknownSigner(u32),
    /// The envelope signature does not verify under the signer's key.
    BadSignature(u32),
    /// The body's embedded `from` field disagrees with the envelope signer
    /// (a replay of one member's words under another member's identity).
    SenderMismatch {
        /// Who signed the envelope.
        signer: u32,
        /// Who the body claims sent it.
        embedded: u32,
    },
}

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthError::UnknownSigner(id) => write!(f, "unknown signer id {id}"),
            AuthError::BadSignature(id) => write!(f, "bad signature from {id}"),
            AuthError::SenderMismatch { signer, embedded } => {
                write!(f, "envelope signed by {signer} but body claims {embedded}")
            }
        }
    }
}

impl std::error::Error for AuthError {}

/// A [`PeerMsg`] wrapped in the sender's transferable signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedPeerMsg {
    /// The signer's consortium node id.
    pub from: u32,
    /// Ed25519 signature over [`SignedPeerMsg::signing_bytes`].
    pub sig: [u8; 64],
    /// The message itself.
    pub msg: PeerMsg,
}

impl SignedPeerMsg {
    /// The bytes the envelope signature covers: domain tag, signer id, and
    /// the encoded message body.
    pub fn signing_bytes(from: u32, encoded_msg: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(MSG_DOMAIN.len() + 4 + encoded_msg.len());
        buf.extend_from_slice(MSG_DOMAIN);
        buf.extend_from_slice(&from.to_le_bytes());
        buf.extend_from_slice(encoded_msg);
        buf
    }

    /// Sign `msg` as node `from`.
    pub fn sign(from: u32, key: &SigningKey, msg: PeerMsg) -> SignedPeerMsg {
        let body = msg.encode();
        let sig = key.sign(&Self::signing_bytes(from, &body));
        SignedPeerMsg {
            from,
            sig: sig.0,
            msg,
        }
    }

    /// Encode: signer id, signature, message body.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.msg.encode();
        let mut out = Vec::with_capacity(4 + 64 + body.len());
        out.extend_from_slice(&self.from.to_le_bytes());
        out.extend_from_slice(&self.sig);
        out.extend_from_slice(&body);
        out
    }

    /// Decode one signed message, requiring exact consumption. Decoding
    /// performs no signature check — call [`SignedPeerMsg::verify`].
    pub fn decode(bytes: &[u8]) -> Result<SignedPeerMsg, MsgError> {
        if bytes.len() < 4 + 64 {
            return Err(MsgError::Truncated);
        }
        let from = u32::from_le_bytes(bytes[..4].try_into().unwrap());
        let sig: [u8; 64] = bytes[4..68].try_into().unwrap();
        let msg = PeerMsg::decode(&bytes[68..])?;
        Ok(SignedPeerMsg { from, sig, msg })
    }

    /// Verify the envelope against the consortium key table (indexed by
    /// node id): known signer, valid signature, and an embedded `from`
    /// field (when present) matching the signer.
    pub fn verify(&self, keys: &[VerifyingKey]) -> Result<(), AuthError> {
        let Some(key) = keys.get(self.from as usize) else {
            return Err(AuthError::UnknownSigner(self.from));
        };
        let body = self.msg.encode();
        key.verify(&Self::signing_bytes(self.from, &body), &Signature(self.sig))
            .map_err(|_| AuthError::BadSignature(self.from))?;
        if let Some(embedded) = self.msg.sender() {
            if embedded != self.from {
                return Err(AuthError::SenderMismatch {
                    signer: self.from,
                    embedded,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<PeerMsg> {
        vec![
            PeerMsg::PrePrepare {
                view: 0,
                seq: 1,
                txs: vec![vec![1, 2, 3], vec![], vec![0xff; 100]],
            },
            PeerMsg::Prepare {
                view: 3,
                seq: 9,
                digest: [7; 32],
                from: 2,
            },
            PeerMsg::Commit {
                view: 3,
                seq: 9,
                digest: [8; 32],
                from: 1,
                root: [0xAB; 32],
                vote_sig: [0xCD; 64],
            },
            PeerMsg::ViewChange {
                target: 4,
                from: 3,
                last_exec: 11,
                suffix: vec![
                    SuffixEntry {
                        seq: 12,
                        view: 3,
                        prepared: true,
                        txs: vec![vec![9; 40]],
                    },
                    SuffixEntry {
                        seq: 13,
                        view: 3,
                        prepared: false,
                        txs: vec![],
                    },
                ],
            },
            PeerMsg::NewView {
                view: 4,
                from: 0,
                last_exec: 11,
                repropose: vec![(12, vec![vec![9; 40]]), (13, vec![])],
            },
            PeerMsg::Heartbeat {
                view: 4,
                from: 0,
                last_exec: 14,
            },
        ]
    }

    #[test]
    fn round_trips() {
        for msg in samples() {
            let bytes = msg.encode();
            assert_eq!(PeerMsg::decode(&bytes).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        for msg in samples() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                assert!(
                    PeerMsg::decode(&bytes[..cut]).is_err(),
                    "{msg:?} decoded from {cut}/{} bytes",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn rejects_trailing_bytes_and_bad_tags() {
        let mut bytes = samples()[1].encode();
        bytes.push(0);
        assert_eq!(PeerMsg::decode(&bytes), Err(MsgError::Trailing));
        assert_eq!(PeerMsg::decode(&[0x77]), Err(MsgError::BadTag(0x77)));
        assert_eq!(PeerMsg::decode(&[]), Err(MsgError::Truncated));
    }

    #[test]
    fn absurd_counts_rejected_before_allocation() {
        // PrePrepare claiming u32::MAX transactions in a 40-byte body.
        let mut bytes = vec![T_PRE_PREPARE];
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 16]);
        assert_eq!(PeerMsg::decode(&bytes), Err(MsgError::Truncated));
    }

    #[test]
    fn signed_envelope_round_trips_and_verifies() {
        let key = SigningKey::from_seed(&[42; 32]);
        let keys = vec![
            SigningKey::from_seed(&[1; 32]).verifying_key(),
            SigningKey::from_seed(&[2; 32]).verifying_key(),
            key.verifying_key(),
        ];
        for mut msg in samples() {
            // Align the embedded sender (when present) with signer id 2.
            match &mut msg {
                PeerMsg::Prepare { from, .. }
                | PeerMsg::Commit { from, .. }
                | PeerMsg::ViewChange { from, .. }
                | PeerMsg::NewView { from, .. }
                | PeerMsg::Heartbeat { from, .. } => *from = 2,
                PeerMsg::PrePrepare { .. } => {}
            }
            let signed = SignedPeerMsg::sign(2, &key, msg);
            let bytes = signed.encode();
            let back = SignedPeerMsg::decode(&bytes).unwrap();
            assert_eq!(back, signed);
            back.verify(&keys).unwrap();
        }
    }

    #[test]
    fn signed_envelope_rejects_tampering() {
        let key = SigningKey::from_seed(&[42; 32]);
        let keys: Vec<VerifyingKey> = (0..4u8)
            .map(|i| {
                if i == 2 {
                    key.verifying_key()
                } else {
                    SigningKey::from_seed(&[i; 32]).verifying_key()
                }
            })
            .collect();
        let msg = PeerMsg::Prepare {
            view: 1,
            seq: 5,
            digest: [9; 32],
            from: 2,
        };
        let signed = SignedPeerMsg::sign(2, &key, msg.clone());
        signed.verify(&keys).unwrap();

        // Flip one bit anywhere in the encoding: decode either fails or the
        // signature no longer verifies.
        let bytes = signed.encode();
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x01;
            if let Ok(m) = SignedPeerMsg::decode(&mutated) {
                assert!(m.verify(&keys).is_err(), "bit flip at {i} accepted");
            }
        }

        // Unknown signer id.
        let stranger = SignedPeerMsg::sign(9, &key, msg.clone());
        assert_eq!(stranger.verify(&keys), Err(AuthError::UnknownSigner(9)));

        // Envelope signer 3 wrapping a body claiming from=2: signature by 3
        // over a body embedding 2 is a sender mismatch.
        let key3 = SigningKey::from_seed(&[3; 32]);
        let relabeled = SignedPeerMsg::sign(3, &key3, msg);
        assert_eq!(
            relabeled.verify(&keys),
            Err(AuthError::SenderMismatch {
                signer: 3,
                embedded: 2
            })
        );
    }

    #[test]
    fn digest_binds_sequence_and_content_not_view() {
        let txs = vec![vec![1, 2], vec![3]];
        let d = block_digest(5, &txs);
        assert_eq!(d, block_digest(5, &txs));
        assert_ne!(d, block_digest(6, &txs));
        assert_ne!(d, block_digest(5, &[vec![1, 2]]));
        // Tx boundaries matter: [1,2],[3] != [1],[2,3].
        assert_ne!(d, block_digest(5, &[vec![1], vec![2, 3]]));
    }
}
