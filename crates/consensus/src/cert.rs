//! Quorum certificates: transferable proofs of commitment.
//!
//! A [`QuorumCert`] for height `h` bundles 2f+1 detached Ed25519 signatures
//! over [`vote_bytes`]`(h, state_root)`. Votes are view-independent — a
//! block re-committed after a view change certifies the same `(height,
//! root)` pair — and deliberately do *not* cover the proposal digest, so a
//! certificate pins what execution produced rather than what the leader
//! claimed. Any party holding the consortium key table can check a
//! certificate offline; no trust in the peer that shipped it is needed.
//!
//! Certificates are persisted in a sidecar log next to the block WAL
//! (see `confide_storage::wal::CertLog`) rather than inside the WAL byte
//! stream: different replicas legitimately collect different 2f+1 vote
//! subsets, and splicing replica-local bytes into the WAL would break the
//! byte-identical-stream invariant state sync relies on.

use confide_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use confide_crypto::sha256;

use crate::quorum;

/// Domain separator for certificate votes. Distinct from
/// [`crate::msg::MSG_DOMAIN`] so a vote can never double as a peer-message
/// envelope signature.
pub const VOTE_DOMAIN: &[u8] = b"confide-commit-vote-v1";

/// The bytes a certificate vote signs: domain tag, height, and the state
/// root execution produced at that height.
pub fn vote_bytes(height: u64, root: &[u8; 32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(VOTE_DOMAIN.len() + 8 + 32);
    buf.extend_from_slice(VOTE_DOMAIN);
    buf.extend_from_slice(&height.to_le_bytes());
    buf.extend_from_slice(root);
    buf
}

/// Sign a certificate vote for `(height, root)` as `node_id`.
pub fn sign_vote(key: &SigningKey, height: u64, root: &[u8; 32]) -> [u8; 64] {
    key.sign(&vote_bytes(height, root)).0
}

/// Why a certificate failed verification or decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertError {
    /// Encoding truncated or had trailing bytes.
    Malformed,
    /// Fewer than 2f+1 votes for the consortium size.
    VoteDeficient {
        /// Votes present.
        got: usize,
        /// Votes required (2f+1).
        need: usize,
    },
    /// A voter id is outside the consortium member list.
    UnknownVoter(u32),
    /// Voter ids not strictly ascending (duplicate or unsorted).
    DisorderedVoters,
    /// A vote signature does not verify.
    BadVote(u32),
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::Malformed => write!(f, "malformed certificate encoding"),
            CertError::VoteDeficient { got, need } => {
                write!(f, "vote-deficient certificate: {got} votes, need {need}")
            }
            CertError::UnknownVoter(id) => write!(f, "unknown voter id {id}"),
            CertError::DisorderedVoters => write!(f, "voter ids not strictly ascending"),
            CertError::BadVote(id) => write!(f, "bad vote signature from {id}"),
        }
    }
}

impl std::error::Error for CertError {}

/// A 2f+1 proof that the consortium committed `root` at `height`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumCert {
    /// Block height (consensus sequence number) this certifies.
    pub height: u64,
    /// State root after executing the block at `height`.
    pub root: [u8; 32],
    /// `(voter id, signature over vote_bytes(height, root))`, ids strictly
    /// ascending.
    pub votes: Vec<(u32, [u8; 64])>,
}

impl QuorumCert {
    /// Encode: height, root, vote count, then each `(id, sig)` pair.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 32 + 4 + self.votes.len() * 68);
        out.extend_from_slice(&self.height.to_le_bytes());
        out.extend_from_slice(&self.root);
        out.extend_from_slice(&(self.votes.len() as u32).to_le_bytes());
        for (id, sig) in &self.votes {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(sig);
        }
        out
    }

    /// Decode with exact consumption. Structural only; call
    /// [`QuorumCert::verify`] before trusting the result.
    pub fn decode(bytes: &[u8]) -> Result<QuorumCert, CertError> {
        if bytes.len() < 8 + 32 + 4 {
            return Err(CertError::Malformed);
        }
        let height = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        let root: [u8; 32] = bytes[8..40].try_into().unwrap();
        let count = u32::from_le_bytes(bytes[40..44].try_into().unwrap()) as usize;
        let body = &bytes[44..];
        if body.len() != count.checked_mul(68).ok_or(CertError::Malformed)? {
            return Err(CertError::Malformed);
        }
        let mut votes = Vec::with_capacity(count);
        for chunk in body.chunks_exact(68) {
            let id = u32::from_le_bytes(chunk[..4].try_into().unwrap());
            let sig: [u8; 64] = chunk[4..].try_into().unwrap();
            votes.push((id, sig));
        }
        Ok(QuorumCert {
            height,
            root,
            votes,
        })
    }

    /// Verify against a consortium of `n` members keyed by `keys` (indexed
    /// by node id): strictly ascending known voter ids, at least 2f+1 of
    /// them, every signature valid.
    pub fn verify(&self, n: usize, keys: &[VerifyingKey]) -> Result<(), CertError> {
        let need = quorum(n);
        if self.votes.len() < need {
            return Err(CertError::VoteDeficient {
                got: self.votes.len(),
                need,
            });
        }
        let payload = vote_bytes(self.height, &self.root);
        let mut prev: Option<u32> = None;
        for (id, sig) in &self.votes {
            if prev.is_some_and(|p| p >= *id) {
                return Err(CertError::DisorderedVoters);
            }
            prev = Some(*id);
            if *id as usize >= n {
                return Err(CertError::UnknownVoter(*id));
            }
            let key = keys.get(*id as usize).ok_or(CertError::UnknownVoter(*id))?;
            key.verify(&payload, &Signature(*sig))
                .map_err(|_| CertError::BadVote(*id))?;
        }
        Ok(())
    }
}

/// A replica's signing identity plus the full consortium key table.
///
/// Constructed from the K-Protocol enclave platforms in production (each
/// member derives its consensus key from its fused TEE secret, and the
/// demo cluster derivation lets every member compute every other member's
/// verifying key) or from [`Keyring::deterministic`] in tests.
#[derive(Clone)]
pub struct Keyring {
    /// This replica's signing key.
    pub signer: SigningKey,
    /// Verifying keys for all `n` members, indexed by node id.
    pub keys: Vec<VerifyingKey>,
}

impl Keyring {
    /// Build from an explicit signer and key table.
    pub fn new(signer: SigningKey, keys: Vec<VerifyingKey>) -> Keyring {
        Keyring { signer, keys }
    }

    /// Derive a deterministic `n`-member keyring for `node_id` from a
    /// shared seed. Test/bench convenience; production keys come from TEE
    /// platform secrets.
    pub fn deterministic(seed: u64, node_id: u32, n: usize) -> Keyring {
        let key_for = |id: u32| {
            let mut buf = Vec::with_capacity(32);
            buf.extend_from_slice(b"confide-test-consensus-key");
            buf.extend_from_slice(&seed.to_le_bytes());
            buf.extend_from_slice(&id.to_le_bytes());
            SigningKey::from_seed(&sha256(&buf))
        };
        let keys = (0..n as u32)
            .map(|id| key_for(id).verifying_key())
            .collect();
        Keyring {
            signer: key_for(node_id),
            keys,
        }
    }

    /// Number of consortium members.
    pub fn n(&self) -> usize {
        self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rings(n: usize) -> Vec<Keyring> {
        (0..n as u32)
            .map(|id| Keyring::deterministic(7, id, n))
            .collect()
    }

    fn cert_for(n: usize, height: u64, root: [u8; 32], voters: &[u32]) -> QuorumCert {
        let rings = rings(n);
        let votes = voters
            .iter()
            .map(|&id| (id, sign_vote(&rings[id as usize].signer, height, &root)))
            .collect();
        QuorumCert {
            height,
            root,
            votes,
        }
    }

    #[test]
    fn valid_certificate_round_trips_and_verifies() {
        let keys = rings(4)[0].keys.clone();
        let cert = cert_for(4, 12, [5; 32], &[0, 2, 3]);
        cert.verify(4, &keys).unwrap();
        let back = QuorumCert::decode(&cert.encode()).unwrap();
        assert_eq!(back, cert);
        back.verify(4, &keys).unwrap();
    }

    #[test]
    fn vote_deficient_certificate_rejected() {
        let keys = rings(4)[0].keys.clone();
        let cert = cert_for(4, 12, [5; 32], &[0, 2]);
        assert_eq!(
            cert.verify(4, &keys),
            Err(CertError::VoteDeficient { got: 2, need: 3 })
        );
    }

    #[test]
    fn forged_vote_rejected() {
        let keys = rings(4)[0].keys.clone();
        let mut cert = cert_for(4, 12, [5; 32], &[0, 1, 2]);
        // Node 1's vote replaced by garbage.
        cert.votes[1].1 = [0x41; 64];
        assert_eq!(cert.verify(4, &keys), Err(CertError::BadVote(1)));
        // A vote for a different root presented for this one.
        let mut wrong = cert_for(4, 12, [5; 32], &[0, 1, 2]);
        wrong.votes[2].1 = sign_vote(&rings(4)[2].signer, 12, &[6; 32]);
        assert_eq!(wrong.verify(4, &keys), Err(CertError::BadVote(2)));
    }

    #[test]
    fn duplicate_or_unknown_voters_rejected() {
        let keys = rings(4)[0].keys.clone();
        let r = rings(4);
        let sig0 = sign_vote(&r[0].signer, 3, &[1; 32]);
        let dup = QuorumCert {
            height: 3,
            root: [1; 32],
            votes: vec![
                (0, sig0),
                (0, sig0),
                (1, sign_vote(&r[1].signer, 3, &[1; 32])),
            ],
        };
        assert_eq!(dup.verify(4, &keys), Err(CertError::DisorderedVoters));

        let stranger = QuorumCert {
            height: 3,
            root: [1; 32],
            votes: vec![
                (0, sig0),
                (1, sign_vote(&r[1].signer, 3, &[1; 32])),
                (9, [0; 64]),
            ],
        };
        assert_eq!(stranger.verify(4, &keys), Err(CertError::UnknownVoter(9)));
    }

    #[test]
    fn decode_rejects_malformed() {
        let cert = cert_for(4, 12, [5; 32], &[0, 1, 2]);
        let bytes = cert.encode();
        for cut in 0..bytes.len() {
            assert!(QuorumCert::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(QuorumCert::decode(&trailing).is_err());
        // Absurd count must not allocate or panic.
        let mut absurd = vec![0u8; 44];
        absurd[40..44].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(QuorumCert::decode(&absurd), Err(CertError::Malformed));
    }

    #[test]
    fn vote_binds_height_and_root() {
        let a = vote_bytes(1, &[2; 32]);
        assert_ne!(a, vote_bytes(2, &[2; 32]));
        assert_ne!(a, vote_bytes(1, &[3; 32]));
    }
}
