//! The PBFT replica state machine.
//!
//! [`Replica`] is pure protocol logic: it owns no sockets, no threads, and
//! no clock. The embedding driver feeds it peer messages ([`Replica::on_msg`]),
//! proposals ([`Replica::propose`]), execution completions
//! ([`Replica::on_executed`]) and periodic ticks ([`Replica::on_tick`]) with
//! an externally supplied monotonic timestamp, and carries out the returned
//! [`Action`]s. This mirrors the event-driven structure of the simulator in
//! `crates/chain/src/pbft.rs` — same quorum arithmetic (via
//! [`crate::quorum`]), same strictly in-order execution, same watermark
//! back-pressure — with the two pieces the simulator deliberately omits
//! layered on top: view changes and state-sync detection.
//!
//! ## Execute-at-prepared
//!
//! A replica executes a block (and durably logs it) as soon as the entry is
//! *prepared* — 2f+1 matching `Prepare`s including its own — and only then
//! broadcasts `Commit`. Client acknowledgements are released at
//! [`Action::CommittedLocal`], i.e. after a 2f+1 `Commit` quorum, which
//! certifies that a quorum has the block on disk. This is safe under the
//! attested-crash fault model because a prepared entry has 2f+1 payload
//! holders, so every view-change quorum of 2f+1 intersects those holders in
//! at least f+1 replicas: the new leader always re-proposes (verbatim, same
//! digest) any block that any replica may have executed. A sequence absent
//! from every suffix in the view-change quorum was prepared nowhere, hence
//! executed nowhere, and may be dropped.

use crate::msg::{block_digest, PeerMsg, SuffixEntry};
use crate::{primary_of, quorum};
use std::collections::{BTreeMap, BTreeSet};

/// Static configuration of one replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// This replica's id (index into the consortium member list).
    pub node_id: u32,
    /// Consortium size.
    pub n: usize,
    /// Leader-silence window before a follower votes to change views (ms).
    pub view_timeout_ms: u64,
    /// Leader heartbeat interval (ms); must be well below the timeout.
    pub heartbeat_ms: u64,
    /// Max proposals in flight beyond `last_exec` (PBFT watermark), the
    /// same back-pressure knob as the simulator's `ChainConfig`.
    pub max_inflight: u64,
}

impl ReplicaConfig {
    /// Sensible localhost defaults for an `n`-node cluster.
    pub fn localhost(node_id: u32, n: usize) -> ReplicaConfig {
        ReplicaConfig {
            node_id,
            n,
            view_timeout_ms: 1_000,
            heartbeat_ms: 200,
            max_inflight: 4,
        }
    }
}

/// What the driver must do after feeding the state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send to every peer (not to self).
    Broadcast(PeerMsg),
    /// Send to one peer.
    Send(u32, PeerMsg),
    /// Execute this block now (strictly the next in order) and durably log
    /// it, then call [`Replica::on_executed`].
    Execute {
        /// Sequence number == resulting chain height.
        seq: u64,
        /// Encoded `WireTx` bodies in execution order.
        txs: Vec<Vec<u8>>,
        /// The block's consensus digest.
        digest: [u8; 32],
    },
    /// A 2f+1 commit quorum exists for `seq`: release client acks.
    CommittedLocal {
        /// Committed sequence number.
        seq: u64,
        /// Digest of the committed block.
        digest: [u8; 32],
    },
    /// This replica is behind: fetch WAL state from `peer` (who reported
    /// progress past ours), then call [`Replica::on_caught_up`].
    NeedSync {
        /// A peer known to be ahead.
        peer: u32,
        /// Our current execution height.
        have: u64,
    },
    /// The view changed; `leader` is the new primary.
    LeaderChanged {
        /// The newly installed view.
        view: u64,
        /// Primary of that view.
        leader: u32,
    },
}

/// Why a proposal was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProposeError {
    /// This replica is not the current primary.
    NotLeader,
    /// The watermark window is full; retry after the next commit.
    Backpressure,
}

impl std::fmt::Display for ProposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProposeError::NotLeader => write!(f, "not the current primary"),
            ProposeError::Backpressure => write!(f, "watermark window full"),
        }
    }
}

impl std::error::Error for ProposeError {}

#[derive(Debug)]
struct Entry {
    view: u64,
    digest: [u8; 32],
    txs: Vec<Vec<u8>>,
    has_payload: bool,
    prepares: BTreeSet<u32>,
    commits: BTreeSet<u32>,
    exec_emitted: bool,
    executed: bool,
}

/// How many executed-block digests to remember for answering re-proposals
/// of sequences we already executed. Far above any sane watermark.
const DIGEST_WINDOW: u64 = 256;

/// One PBFT replica (see module docs for the protocol shape).
pub struct Replica {
    cfg: ReplicaConfig,
    view: u64,
    /// Highest view-change target we have voted for (>= view).
    vc_target: u64,
    last_exec: u64,
    entries: BTreeMap<u64, Entry>,
    executed_digests: BTreeMap<u64, [u8; 32]>,
    /// target view -> (voter -> (voter's last_exec, voter's suffix)).
    #[allow(clippy::type_complexity)]
    vc_votes: BTreeMap<u64, BTreeMap<u32, (u64, Vec<SuffixEntry>)>>,
    /// Set when we won an election but must state-sync before installing.
    pending_new_view: Option<u64>,
    last_progress_ms: u64,
    last_hb_ms: u64,
    view_changes: u64,
}

impl Replica {
    /// Build a replica at view 0 with nothing executed.
    pub fn new(cfg: ReplicaConfig, now_ms: u64) -> Replica {
        assert!(cfg.n > 0, "empty consortium");
        assert!((cfg.node_id as usize) < cfg.n, "node_id out of range");
        Replica {
            cfg,
            view: 0,
            vc_target: 0,
            last_exec: 0,
            entries: BTreeMap::new(),
            executed_digests: BTreeMap::new(),
            vc_votes: BTreeMap::new(),
            pending_new_view: None,
            last_progress_ms: now_ms,
            last_hb_ms: now_ms,
            view_changes: 0,
        }
    }

    /// Resume a replica whose chain already reaches `height` (WAL recovery).
    pub fn with_height(cfg: ReplicaConfig, height: u64, now_ms: u64) -> Replica {
        let mut r = Replica::new(cfg, now_ms);
        r.last_exec = height;
        r
    }

    /// Current view number.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Primary of the current view.
    pub fn leader(&self) -> u32 {
        primary_of(self.view, self.cfg.n)
    }

    /// Whether this replica is the current primary.
    pub fn is_leader(&self) -> bool {
        self.leader() == self.cfg.node_id
    }

    /// Last executed sequence number (== local chain height).
    pub fn last_exec(&self) -> u64 {
        self.last_exec
    }

    /// Number of view installations survived so far.
    pub fn view_changes(&self) -> u64 {
        self.view_changes
    }

    fn quorum(&self) -> usize {
        quorum(self.cfg.n)
    }

    fn me(&self) -> u32 {
        self.cfg.node_id
    }

    /// Propose the next block (primary only). `txs` are encoded `WireTx`s.
    pub fn propose(&mut self, txs: Vec<Vec<u8>>, now_ms: u64) -> Result<Vec<Action>, ProposeError> {
        if !self.is_leader() || self.pending_new_view.is_some() {
            return Err(ProposeError::NotLeader);
        }
        let next_seq = self
            .entries
            .keys()
            .next_back()
            .copied()
            .unwrap_or(self.last_exec)
            .max(self.last_exec)
            + 1;
        if next_seq > self.last_exec + self.cfg.max_inflight {
            return Err(ProposeError::Backpressure);
        }
        let digest = block_digest(next_seq, &txs);
        let mut prepares = BTreeSet::new();
        prepares.insert(self.me());
        self.entries.insert(
            next_seq,
            Entry {
                view: self.view,
                digest,
                txs: txs.clone(),
                has_payload: true,
                prepares,
                commits: BTreeSet::new(),
                exec_emitted: false,
                executed: false,
            },
        );
        // A proposal doubles as a liveness beacon; skip the next heartbeat.
        self.last_hb_ms = now_ms;
        let mut actions = vec![Action::Broadcast(PeerMsg::PrePrepare {
            view: self.view,
            seq: next_seq,
            txs,
        })];
        self.check_prepared(next_seq, &mut actions);
        Ok(actions)
    }

    /// Feed one peer message.
    pub fn on_msg(&mut self, from: u32, msg: PeerMsg, now_ms: u64) -> Vec<Action> {
        let mut actions = Vec::new();
        match msg {
            PeerMsg::PrePrepare { view, seq, txs } => {
                self.handle_preprepare(from, view, seq, txs, now_ms, &mut actions);
            }
            PeerMsg::Prepare {
                seq, digest, from, ..
            } => {
                if seq > self.last_exec {
                    self.record_vote(seq, digest, from, true);
                    self.check_prepared(seq, &mut actions);
                }
            }
            PeerMsg::Commit {
                seq, digest, from, ..
            } => {
                self.record_vote(seq, digest, from, false);
                self.check_committed(seq, &mut actions);
            }
            PeerMsg::ViewChange {
                target,
                from,
                last_exec,
                suffix,
            } => {
                self.handle_view_change(target, from, last_exec, suffix, now_ms, &mut actions);
            }
            PeerMsg::NewView {
                view,
                from,
                last_exec,
                repropose,
            } => {
                self.handle_new_view(view, from, last_exec, repropose, now_ms, &mut actions);
            }
            PeerMsg::Heartbeat {
                view,
                from,
                last_exec,
            } => {
                if view > self.view && from == primary_of(view, self.cfg.n) {
                    self.enter_view(view, now_ms, &mut actions);
                }
                if view == self.view && from == self.leader() {
                    self.last_progress_ms = now_ms;
                }
                self.maybe_need_sync(from, last_exec, &mut actions);
            }
        }
        actions
    }

    fn handle_preprepare(
        &mut self,
        from: u32,
        view: u64,
        seq: u64,
        txs: Vec<Vec<u8>>,
        now_ms: u64,
        actions: &mut Vec<Action>,
    ) {
        if view < self.view || from != primary_of(view, self.cfg.n) {
            return;
        }
        if view > self.view {
            // A rightful primary announcing a higher view implies it won an
            // election we missed; adopt (attested-crash trust).
            self.enter_view(view, now_ms, actions);
        }
        self.last_progress_ms = now_ms;
        if seq <= self.last_exec {
            // Re-proposal of a block we already executed (post view change):
            // refill the new quorums without re-executing.
            if self.executed_digests.get(&seq) == Some(&block_digest(seq, &txs)) {
                let digest = block_digest(seq, &txs);
                actions.push(Action::Broadcast(PeerMsg::Prepare {
                    view,
                    seq,
                    digest,
                    from: self.me(),
                }));
                actions.push(Action::Broadcast(PeerMsg::Commit {
                    view,
                    seq,
                    digest,
                    from: self.me(),
                }));
            }
            return;
        }
        // A primary never proposes beyond its own execution horizon plus the
        // watermark, so a sequence far past ours means we are lagging.
        if seq > self.last_exec + self.cfg.max_inflight {
            actions.push(Action::NeedSync {
                peer: from,
                have: self.last_exec,
            });
        }
        let digest = block_digest(seq, &txs);
        let replace = match self.entries.get(&seq) {
            Some(e) => !e.has_payload || (e.digest != digest && view >= e.view) || e.view < view,
            None => true,
        };
        if replace {
            let stale_votes = self
                .entries
                .get(&seq)
                .filter(|e| e.digest == digest)
                .map(|e| (e.prepares.clone(), e.commits.clone()));
            let (mut prepares, commits) = stale_votes.unwrap_or_default();
            prepares.insert(from);
            prepares.insert(self.me());
            self.entries.insert(
                seq,
                Entry {
                    view,
                    digest,
                    txs,
                    has_payload: true,
                    prepares,
                    commits,
                    exec_emitted: false,
                    executed: false,
                },
            );
            actions.push(Action::Broadcast(PeerMsg::Prepare {
                view,
                seq,
                digest,
                from: self.me(),
            }));
        } else {
            let me = self.me();
            if let Some(e) = self.entries.get_mut(&seq) {
                if e.digest == digest {
                    e.prepares.insert(from);
                    e.prepares.insert(me);
                }
            }
        }
        self.check_prepared(seq, actions);
    }

    fn record_vote(&mut self, seq: u64, digest: [u8; 32], from: u32, prepare: bool) {
        let entry = self.entries.entry(seq).or_insert_with(|| Entry {
            view: self.view,
            digest,
            txs: Vec::new(),
            has_payload: false,
            prepares: BTreeSet::new(),
            commits: BTreeSet::new(),
            exec_emitted: false,
            executed: false,
        });
        // Votes only count toward the digest we hold; a placeholder adopts
        // the first digest it hears about.
        if entry.digest == digest {
            if prepare {
                entry.prepares.insert(from);
            } else {
                entry.commits.insert(from);
            }
        }
    }

    fn check_prepared(&mut self, seq: u64, actions: &mut Vec<Action>) {
        let q = self.quorum();
        if seq != self.last_exec + 1 {
            return; // execution is strictly in order
        }
        let Some(e) = self.entries.get_mut(&seq) else {
            return;
        };
        if e.has_payload && !e.exec_emitted && !e.executed && e.prepares.len() >= q {
            e.exec_emitted = true;
            actions.push(Action::Execute {
                seq,
                txs: e.txs.clone(),
                digest: e.digest,
            });
        }
    }

    /// The driver executed and durably logged `seq`. Emits the `Commit`
    /// broadcast and chains execution of the next prepared entry.
    pub fn on_executed(&mut self, seq: u64, now_ms: u64) -> Vec<Action> {
        assert_eq!(seq, self.last_exec + 1, "out-of-order execution");
        let mut actions = Vec::new();
        self.last_exec = seq;
        self.last_progress_ms = now_ms;
        let me = self.me();
        let Some(e) = self.entries.get_mut(&seq) else {
            panic!("executed unknown sequence {seq}");
        };
        e.executed = true;
        e.commits.insert(me);
        let (view, digest) = (e.view, e.digest);
        self.executed_digests.insert(seq, digest);
        while let Some(first) = self.executed_digests.keys().next().copied() {
            if first + DIGEST_WINDOW <= seq {
                self.executed_digests.remove(&first);
            } else {
                break;
            }
        }
        actions.push(Action::Broadcast(PeerMsg::Commit {
            view,
            seq,
            digest,
            from: me,
        }));
        self.check_committed(seq, &mut actions);
        self.check_prepared(seq + 1, &mut actions);
        actions
    }

    fn check_committed(&mut self, seq: u64, actions: &mut Vec<Action>) {
        let q = self.quorum();
        let Some(e) = self.entries.get(&seq) else {
            return;
        };
        if e.executed && e.commits.len() >= q {
            let digest = e.digest;
            self.entries.remove(&seq);
            actions.push(Action::CommittedLocal { seq, digest });
        }
    }

    fn maybe_need_sync(&mut self, peer: u32, peer_last_exec: u64, actions: &mut Vec<Action>) {
        if peer_last_exec <= self.last_exec {
            return;
        }
        // If the next block is already prepared locally we will catch up on
        // our own; sync only when the pipeline is actually missing data.
        let next_inflight = self
            .entries
            .get(&(self.last_exec + 1))
            .map(|e| e.has_payload && e.prepares.len() >= self.quorum())
            .unwrap_or(false);
        if !next_inflight {
            actions.push(Action::NeedSync {
                peer,
                have: self.last_exec,
            });
        }
    }

    /// Own uncommitted suffix, reported in `ViewChange` votes.
    fn suffix(&self) -> Vec<SuffixEntry> {
        self.entries
            .iter()
            .filter(|(seq, _)| **seq > self.last_exec)
            .map(|(seq, e)| SuffixEntry {
                seq: *seq,
                view: e.view,
                prepared: e.prepares.len() >= self.quorum(),
                txs: if e.has_payload {
                    e.txs.clone()
                } else {
                    Vec::new()
                },
            })
            .collect()
    }

    fn broadcast_own_vote(&mut self, target: u64, actions: &mut Vec<Action>) {
        self.vc_target = target;
        let me = self.me();
        let vote = (self.last_exec, self.suffix());
        self.vc_votes.entry(target).or_default().insert(me, vote);
        actions.push(Action::Broadcast(PeerMsg::ViewChange {
            target,
            from: self.me(),
            last_exec: self.last_exec,
            suffix: self.suffix(),
        }));
    }

    fn handle_view_change(
        &mut self,
        target: u64,
        from: u32,
        last_exec: u64,
        suffix: Vec<SuffixEntry>,
        now_ms: u64,
        actions: &mut Vec<Action>,
    ) {
        if target <= self.view {
            return;
        }
        self.vc_votes
            .entry(target)
            .or_default()
            .insert(from, (last_exec, suffix));
        let votes = self.vc_votes[&target].len();
        let f_plus_1 = (self.cfg.n.saturating_sub(1) / 3) + 1;
        // Join rule: f+1 distinct voters cannot all be wrong about the
        // leader being dead — vote along even if our own timer is quiet.
        if votes >= f_plus_1 && self.vc_target < target {
            self.broadcast_own_vote(target, actions);
        }
        let votes = self.vc_votes[&target].len();
        if votes >= self.quorum()
            && primary_of(target, self.cfg.n) == self.me()
            && target > self.view
        {
            let max_le = self.vc_votes[&target]
                .values()
                .map(|(le, _)| *le)
                .max()
                .unwrap_or(0)
                .max(self.last_exec);
            if self.last_exec < max_le {
                // Won the election while behind: sync first, install after.
                self.pending_new_view = Some(target);
                let ahead = self.vc_votes[&target]
                    .iter()
                    .max_by_key(|(_, (le, _))| *le)
                    .map(|(id, _)| *id)
                    .unwrap_or(from);
                actions.push(Action::NeedSync {
                    peer: ahead,
                    have: self.last_exec,
                });
            } else {
                self.install_new_view(target, now_ms, actions);
            }
        }
    }

    fn install_new_view(&mut self, target: u64, now_ms: u64, actions: &mut Vec<Action>) {
        self.pending_new_view = None;
        // Merge the quorum's suffixes with our own entries and re-propose
        // every consecutive in-flight sequence above our execution horizon,
        // preferring prepared reports, then the highest view.
        let mut candidates: BTreeMap<u64, (bool, u64, Vec<Vec<u8>>)> = BTreeMap::new();
        let mut consider = |seq: u64, prepared: bool, view: u64, txs: &Vec<Vec<u8>>| {
            if txs.is_empty() || seq <= self.last_exec {
                return;
            }
            let better = match candidates.get(&seq) {
                Some((p, v, _)) => (prepared, view) > (*p, *v),
                None => true,
            };
            if better {
                candidates.insert(seq, (prepared, view, txs.clone()));
            }
        };
        for (_, (_, suffix)) in self.vc_votes.get(&target).into_iter().flatten() {
            for e in suffix {
                consider(e.seq, e.prepared, e.view, &e.txs);
            }
        }
        let q = self.quorum();
        for (seq, e) in &self.entries {
            if e.has_payload {
                consider(*seq, e.prepares.len() >= q, e.view, &e.txs);
            }
        }
        let mut repropose = Vec::new();
        let mut seq = self.last_exec + 1;
        while let Some((_, _, txs)) = candidates.get(&seq) {
            repropose.push((seq, txs.clone()));
            seq += 1;
            // A gap means no quorum member holds a payload for that
            // sequence, so it was prepared (hence executed) nowhere;
            // everything beyond it is dropped and clients retry.
        }
        self.enter_view(target, now_ms, actions);
        self.entries.retain(|s, _| *s <= self.last_exec);
        for (seq, txs) in &repropose {
            let digest = block_digest(*seq, txs);
            let mut prepares = BTreeSet::new();
            prepares.insert(self.me());
            self.entries.insert(
                *seq,
                Entry {
                    view: target,
                    digest,
                    txs: txs.clone(),
                    has_payload: true,
                    prepares,
                    commits: BTreeSet::new(),
                    exec_emitted: false,
                    executed: false,
                },
            );
        }
        actions.push(Action::Broadcast(PeerMsg::NewView {
            view: target,
            from: self.me(),
            last_exec: self.last_exec,
            repropose,
        }));
        self.last_hb_ms = now_ms;
        self.check_prepared(self.last_exec + 1, actions);
    }

    fn handle_new_view(
        &mut self,
        view: u64,
        from: u32,
        leader_last_exec: u64,
        repropose: Vec<(u64, Vec<Vec<u8>>)>,
        now_ms: u64,
        actions: &mut Vec<Action>,
    ) {
        if view <= self.view || from != primary_of(view, self.cfg.n) {
            return;
        }
        self.enter_view(view, now_ms, actions);
        if leader_last_exec > self.last_exec {
            actions.push(Action::NeedSync {
                peer: from,
                have: self.last_exec,
            });
        }
        // Entries the new leader did not re-propose are dead.
        let kept: BTreeSet<u64> = repropose.iter().map(|(s, _)| *s).collect();
        self.entries
            .retain(|s, _| *s <= self.last_exec || kept.contains(s));
        for (seq, txs) in repropose {
            self.handle_preprepare(from, view, seq, txs, now_ms, actions);
        }
    }

    fn enter_view(&mut self, view: u64, now_ms: u64, actions: &mut Vec<Action>) {
        debug_assert!(view > self.view);
        self.view = view;
        self.view_changes += 1;
        self.vc_target = self.vc_target.max(view);
        self.vc_votes.retain(|t, _| *t > view);
        if self.pending_new_view.is_some_and(|t| t <= view) {
            self.pending_new_view = None;
        }
        self.last_progress_ms = now_ms;
        actions.push(Action::LeaderChanged {
            view,
            leader: primary_of(view, self.cfg.n),
        });
    }

    /// The driver finished a state sync; the local chain now reaches
    /// `height`. Fires a deferred `NewView` if we won an election while
    /// behind.
    pub fn on_caught_up(&mut self, height: u64, now_ms: u64) -> Vec<Action> {
        let mut actions = Vec::new();
        if height > self.last_exec {
            self.last_exec = height;
            self.entries.retain(|s, e| *s > height && !e.executed);
            self.last_progress_ms = now_ms;
        }
        if let Some(target) = self.pending_new_view {
            let max_le = self
                .vc_votes
                .get(&target)
                .map(|v| v.values().map(|(le, _)| *le).max().unwrap_or(0))
                .unwrap_or(0);
            if self.last_exec >= max_le {
                self.install_new_view(target, now_ms, &mut actions);
            }
        }
        self.check_prepared(self.last_exec + 1, &mut actions);
        actions
    }

    /// Periodic driver tick: leader heartbeats, follower timeout votes.
    pub fn on_tick(&mut self, now_ms: u64) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.pending_new_view.is_some() {
            return actions; // syncing toward our own NewView
        }
        if self.is_leader() {
            if now_ms.saturating_sub(self.last_hb_ms) >= self.cfg.heartbeat_ms {
                self.last_hb_ms = now_ms;
                actions.push(Action::Broadcast(PeerMsg::Heartbeat {
                    view: self.view,
                    from: self.me(),
                    last_exec: self.last_exec,
                }));
            }
        } else if now_ms.saturating_sub(self.last_progress_ms) >= self.cfg.view_timeout_ms {
            // Escalate one target per silent timeout window, skipping over
            // candidate leaders that are themselves dead.
            let target = if self.vc_target <= self.view {
                self.view + 1
            } else {
                self.vc_target + 1
            };
            self.last_progress_ms = now_ms;
            self.broadcast_own_vote(target, &mut actions);
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// In-memory bus driving N replicas with perfect (but reorderable)
    /// links, synchronous execution, and a fake clock.
    struct Bus {
        replicas: Vec<Replica>,
        /// Delivery queue of (from, to, msg).
        queue: VecDeque<(u32, u32, PeerMsg)>,
        /// Node ids that are crashed (drop everything to/from them).
        dead: BTreeSet<u32>,
        /// Per-replica executed blocks (seq, digest).
        executed: Vec<Vec<(u64, [u8; 32])>>,
        /// Per-replica committed seqs.
        committed: Vec<Vec<u64>>,
        /// Per-replica NeedSync requests observed.
        syncs: Vec<Vec<(u32, u64)>>,
        now: u64,
    }

    impl Bus {
        fn new(n: usize) -> Bus {
            let now = 0;
            Bus {
                replicas: (0..n)
                    .map(|i| {
                        let mut cfg = ReplicaConfig::localhost(i as u32, n);
                        cfg.view_timeout_ms = 100;
                        cfg.heartbeat_ms = 20;
                        Replica::new(cfg, now)
                    })
                    .collect(),
                queue: VecDeque::new(),
                dead: BTreeSet::new(),
                executed: vec![Vec::new(); n],
                committed: vec![Vec::new(); n],
                syncs: vec![Vec::new(); n],
                now,
            }
        }

        fn absorb(&mut self, node: u32, actions: Vec<Action>) {
            let n = self.replicas.len() as u32;
            for a in actions {
                match a {
                    Action::Broadcast(msg) => {
                        for to in 0..n {
                            if to != node {
                                self.queue.push_back((node, to, msg.clone()));
                            }
                        }
                    }
                    Action::Send(to, msg) => self.queue.push_back((node, to, msg)),
                    Action::Execute { seq, txs, digest } => {
                        assert_eq!(digest, block_digest(seq, &txs));
                        self.executed[node as usize].push((seq, digest));
                        let more = self.replicas[node as usize].on_executed(seq, self.now);
                        self.absorb(node, more);
                    }
                    Action::CommittedLocal { seq, .. } => {
                        self.committed[node as usize].push(seq);
                    }
                    Action::NeedSync { peer, have } => {
                        self.syncs[node as usize].push((peer, have));
                    }
                    Action::LeaderChanged { .. } => {}
                }
            }
        }

        /// Deliver queued messages until quiescence. `reversed` pops from
        /// the back to stress out-of-order tolerance.
        fn pump(&mut self, reversed: bool) {
            while let Some((from, to, msg)) = if reversed {
                self.queue.pop_back()
            } else {
                self.queue.pop_front()
            } {
                if self.dead.contains(&from) || self.dead.contains(&to) {
                    continue;
                }
                let actions = self.replicas[to as usize].on_msg(from, msg, self.now);
                self.absorb(to, actions);
            }
        }

        fn propose(&mut self, node: u32, txs: Vec<Vec<u8>>) -> Result<(), ProposeError> {
            let actions = self.replicas[node as usize].propose(txs, self.now)?;
            self.absorb(node, actions);
            Ok(())
        }

        fn tick_all(&mut self, advance_ms: u64) {
            self.now += advance_ms;
            for i in 0..self.replicas.len() {
                if self.dead.contains(&(i as u32)) {
                    continue;
                }
                let actions = self.replicas[i].on_tick(self.now);
                self.absorb(i as u32, actions);
            }
        }

        fn live(&self) -> Vec<usize> {
            (0..self.replicas.len())
                .filter(|i| !self.dead.contains(&(*i as u32)))
                .collect()
        }

        fn assert_converged(&self, blocks: usize) {
            let reference = self.executed[self.live()[0]].clone();
            assert_eq!(reference.len(), blocks, "wrong block count");
            for i in self.live() {
                assert_eq!(
                    self.executed[i], reference,
                    "replica {i} diverged from the reference log"
                );
                assert_eq!(
                    self.committed[i].len(),
                    blocks,
                    "replica {i} missing local commits"
                );
            }
        }
    }

    fn block(tag: u8, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![tag, i as u8, 0xCF]).collect()
    }

    #[test]
    fn four_replicas_commit_in_order() {
        let mut bus = Bus::new(4);
        for b in 0..3 {
            bus.propose(0, block(b, 4)).unwrap();
        }
        bus.pump(false);
        bus.assert_converged(3);
        for r in &bus.replicas {
            assert_eq!(r.last_exec(), 3);
            assert_eq!(r.view(), 0);
        }
    }

    #[test]
    fn out_of_order_delivery_still_converges() {
        let mut bus = Bus::new(4);
        for b in 0..4 {
            bus.propose(0, block(b, 3)).unwrap();
        }
        bus.pump(true); // LIFO delivery: commits arrive before prepares
        bus.assert_converged(4);
    }

    #[test]
    fn single_replica_cluster_self_commits() {
        let mut bus = Bus::new(1);
        bus.propose(0, block(1, 2)).unwrap();
        bus.pump(false);
        bus.assert_converged(1);
    }

    #[test]
    fn watermark_backpressure_and_not_leader() {
        let mut bus = Bus::new(4);
        for b in 0..4 {
            // Queue fills without any delivery: nothing executes.
            bus.propose(0, block(b, 1)).unwrap();
        }
        assert_eq!(
            bus.replicas[0].propose(block(9, 1), 0),
            Err(ProposeError::Backpressure)
        );
        assert_eq!(
            bus.replicas[1].propose(block(9, 1), 0),
            Err(ProposeError::NotLeader)
        );
        bus.pump(false);
        bus.assert_converged(4);
        // Window cleared after commits.
        bus.propose(0, block(9, 1)).unwrap();
        bus.pump(false);
        bus.assert_converged(5);
    }

    #[test]
    fn leader_crash_triggers_view_change_and_reproposal() {
        let mut bus = Bus::new(4);
        bus.propose(0, block(1, 4)).unwrap();
        bus.pump(false);
        bus.assert_converged(1);

        // Leader proposes block 2, the PrePrepare reaches everyone, then the
        // leader dies before any Prepare exchange completes.
        bus.propose(0, block(2, 4)).unwrap();
        // Deliver only the PrePrepares (first 3 queued messages).
        for _ in 0..3 {
            let (from, to, msg) = bus.queue.pop_front().unwrap();
            let actions = bus.replicas[to as usize].on_msg(from, msg, bus.now);
            bus.absorb(to, actions);
        }
        bus.queue.clear();
        bus.dead.insert(0);

        // Followers time out, vote, and elect replica 1, which must
        // re-propose block 2 verbatim.
        bus.tick_all(150);
        bus.pump(false);
        for i in bus.live() {
            assert_eq!(bus.replicas[i].view(), 1, "replica {i} stuck in view 0");
            assert_eq!(bus.replicas[i].leader(), 1);
            assert_eq!(bus.replicas[i].last_exec(), 2);
            assert!(bus.replicas[i].view_changes() >= 1);
        }
        bus.assert_converged(2);

        // The new leader keeps making progress.
        bus.propose(1, block(3, 2)).unwrap();
        bus.pump(false);
        bus.assert_converged(3);
    }

    #[test]
    fn dead_candidate_escalates_to_next_view() {
        // n=7 tolerates f=2: kill the leader AND the first candidate.
        let mut bus = Bus::new(7);
        bus.propose(0, block(1, 2)).unwrap();
        bus.pump(false);
        bus.assert_converged(1);
        bus.dead.insert(0);
        bus.dead.insert(1);
        // First timeout votes for view 1 (dead candidate), second escalates
        // to view 2 whose primary is alive.
        bus.tick_all(150);
        bus.pump(false);
        bus.tick_all(150);
        bus.pump(false);
        for i in bus.live() {
            assert_eq!(bus.replicas[i].view(), 2, "replica {i} not in view 2");
            assert_eq!(bus.replicas[i].leader(), 2);
        }
        bus.propose(2, block(2, 2)).unwrap();
        bus.pump(false);
        bus.assert_converged(2);
    }

    #[test]
    fn heartbeats_prevent_view_change() {
        let mut bus = Bus::new(4);
        bus.propose(0, block(1, 2)).unwrap();
        bus.pump(false);
        // Many quiet intervals shorter than the timeout, bridged by
        // heartbeats: the view must hold.
        for _ in 0..20 {
            bus.tick_all(50);
            bus.pump(false);
        }
        for r in &bus.replicas {
            assert_eq!(r.view(), 0);
        }
        bus.assert_converged(1);
    }

    #[test]
    fn lagging_replica_detects_gap_and_catches_up() {
        let mut bus = Bus::new(4);
        // Replica 3 misses two committed blocks.
        bus.dead.insert(3);
        bus.propose(0, block(1, 2)).unwrap();
        bus.propose(0, block(2, 2)).unwrap();
        bus.pump(false);
        bus.dead.remove(&3);

        // A heartbeat advertising progress triggers NeedSync on 3.
        bus.tick_all(25);
        bus.pump(false);
        let (peer, have) = *bus.syncs[3].last().expect("no NeedSync emitted");
        assert_eq!(peer, 0);
        assert_eq!(have, 0);

        // Driver syncs the WAL out of band and reports back.
        let actions = bus.replicas[3].on_caught_up(2, bus.now);
        bus.absorb(3, actions);
        assert_eq!(bus.replicas[3].last_exec(), 2);

        // And replica 3 participates in the next block normally.
        bus.propose(0, block(3, 2)).unwrap();
        bus.pump(false);
        assert_eq!(bus.executed[3], vec![(3, block_digest(3, &block(3, 2)))]);
        assert_eq!(bus.committed[3], vec![3]);
    }

    #[test]
    fn elected_leader_syncs_before_new_view() {
        let mut bus = Bus::new(4);
        // Replica 1 (next leader) misses a block, then the leader dies.
        bus.dead.insert(1);
        bus.propose(0, block(1, 2)).unwrap();
        bus.pump(false);
        bus.dead.remove(&1);
        bus.dead.insert(0);

        bus.tick_all(150);
        bus.pump(false);
        // Replica 1 won but is behind: it must have requested a sync and
        // deferred the NewView.
        let (_, have) = *bus.syncs[1].last().expect("elected leader never synced");
        assert_eq!(have, 0);
        assert_eq!(bus.replicas[1].view(), 0, "installed view before syncing");

        let actions = bus.replicas[1].on_caught_up(1, bus.now);
        bus.absorb(1, actions);
        bus.pump(false);
        for i in bus.live() {
            assert_eq!(bus.replicas[i].view(), 1);
        }
        bus.propose(1, block(2, 2)).unwrap();
        bus.pump(false);
        for i in bus.live() {
            assert_eq!(bus.replicas[i].last_exec(), 2);
        }
    }

    #[test]
    fn resumed_replica_starts_at_recovered_height() {
        let r = Replica::with_height(ReplicaConfig::localhost(2, 4), 7, 0);
        assert_eq!(r.last_exec(), 7);
        assert_eq!(r.view(), 0);
    }
}
