//! The PBFT replica state machine.
//!
//! [`Replica`] is pure protocol logic: it owns no sockets, no threads, and
//! no clock. The embedding driver feeds it authenticated peer messages
//! ([`Replica::handle`]), proposals ([`Replica::propose`]), execution
//! completions ([`Replica::on_executed`]) and periodic ticks
//! ([`Replica::on_tick`]) with an externally supplied monotonic timestamp,
//! and carries out the returned [`Action`]s. This mirrors the event-driven
//! structure of the simulator in `crates/chain/src/pbft.rs` — same quorum
//! arithmetic (via [`crate::quorum`]), same strictly in-order execution,
//! same watermark back-pressure — with the pieces the simulator omits
//! layered on top: view changes, state-sync detection, and Byzantine
//! defences (signature verification, equivocation evidence, blacklisting).
//!
//! ## Execute-at-prepared
//!
//! A replica executes a block (and durably logs it) as soon as the entry is
//! *prepared* — 2f+1 matching `Prepare`s including its own — and only then
//! broadcasts `Commit`. Client acknowledgements are released at
//! [`Action::CommittedLocal`], i.e. after a 2f+1 `Commit` quorum, which
//! certifies that a quorum has the block on disk. A prepared entry has 2f+1
//! payload holders, so every view-change quorum of 2f+1 intersects those
//! holders in at least f+1 replicas: the new leader always re-proposes
//! (verbatim, same digest) any block that any replica may have executed. A
//! sequence absent from every suffix in the view-change quorum was prepared
//! nowhere, hence executed nowhere, and may be dropped.
//!
//! ## Byzantine defences
//!
//! [`Replica::handle`] is the production entry point: it verifies the
//! [`SignedPeerMsg`] envelope, refuses blacklisted peers, checks `Commit`
//! certificate votes, and watches for equivocation — two conflicting signed
//! statements for one slot become an [`Evidence`] action, blacklist the
//! offender, and force a view change if the offender leads. Each `Commit`
//! quorum additionally assembles a transferable [`QuorumCert`] delivered
//! with [`Action::CommittedLocal`]. [`Replica::on_msg`] remains the
//! unauthenticated core for in-memory tests and differential harnesses.

use crate::cert::{sign_vote, vote_bytes, Keyring, QuorumCert};
use crate::evidence::{equivocation_slot, Evidence};
use crate::msg::{block_digest, AuthError, PeerMsg, SignedPeerMsg, SuffixEntry};
use crate::{primary_of, quorum};
use confide_crypto::ed25519::Signature;
use std::collections::{BTreeMap, BTreeSet};

/// Static configuration of one replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// This replica's id (index into the consortium member list).
    pub node_id: u32,
    /// Consortium size.
    pub n: usize,
    /// Leader-silence window before a follower votes to change views (ms).
    pub view_timeout_ms: u64,
    /// Leader heartbeat interval (ms); must be well below the timeout.
    pub heartbeat_ms: u64,
    /// Max proposals in flight beyond `last_exec` (PBFT watermark), the
    /// same back-pressure knob as the simulator's `ChainConfig`.
    pub max_inflight: u64,
    /// Width of the deterministic per-replica spread added to the view
    /// timeout (ms). Staggered timeouts keep simultaneous leader-death
    /// detections from synchronizing into dueling view changes; 0 disables.
    pub timeout_jitter_ms: u64,
}

impl ReplicaConfig {
    /// Sensible localhost defaults for an `n`-node cluster.
    pub fn localhost(node_id: u32, n: usize) -> ReplicaConfig {
        ReplicaConfig {
            node_id,
            n,
            view_timeout_ms: 1_000,
            heartbeat_ms: 200,
            max_inflight: 4,
            timeout_jitter_ms: 250,
        }
    }
}

/// Deterministic per-replica view-timeout jitter in `[0, spread_ms)`.
///
/// A splitmix64 mix of the node id, so the spread needs no shared
/// configuration beyond the spread width itself and is reproducible in
/// tests and across restarts.
pub fn timeout_jitter(node_id: u32, spread_ms: u64) -> u64 {
    if spread_ms == 0 {
        return 0;
    }
    let mut z = (node_id as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z % spread_ms
}

/// What the driver must do after feeding the state machine.
// Evidence (two full signed envelopes) dominates the size; actions are
// transient — drained per event, never stored — so boxing buys nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send to every peer (not to self). The driver signs the envelope.
    Broadcast(PeerMsg),
    /// Send to one peer.
    Send(u32, PeerMsg),
    /// Execute this block now (strictly the next in order) and durably log
    /// it, then call [`Replica::on_executed`] with the resulting state root.
    Execute {
        /// Sequence number == resulting chain height.
        seq: u64,
        /// Encoded `WireTx` bodies in execution order.
        txs: Vec<Vec<u8>>,
        /// The block's consensus digest.
        digest: [u8; 32],
    },
    /// A 2f+1 commit quorum exists for `seq`: persist the certificate,
    /// then release client acks.
    CommittedLocal {
        /// Committed sequence number.
        seq: u64,
        /// Digest of the committed block.
        digest: [u8; 32],
        /// Transferable 2f+1 proof of the committed state root.
        cert: QuorumCert,
    },
    /// This replica is behind: fetch WAL state from `peer` (who reported
    /// progress past ours), then call [`Replica::on_caught_up`].
    NeedSync {
        /// A peer known to be ahead.
        peer: u32,
        /// Our current execution height.
        have: u64,
    },
    /// The view changed; `leader` is the new primary.
    LeaderChanged {
        /// The newly installed view.
        view: u64,
        /// Primary of that view.
        leader: u32,
    },
    /// A peer provably equivocated: persist the record durably. The
    /// offender is already blacklisted locally.
    Evidence(Evidence),
}

/// Why a proposal was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProposeError {
    /// This replica is not the current primary.
    NotLeader,
    /// The watermark window is full; retry after the next commit.
    Backpressure,
}

impl std::fmt::Display for ProposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProposeError::NotLeader => write!(f, "not the current primary"),
            ProposeError::Backpressure => write!(f, "watermark window full"),
        }
    }
}

impl std::error::Error for ProposeError {}

/// Why an authenticated message was refused by [`Replica::handle`].
///
/// Every variant is a typed rejection with **no** replica state mutated and
/// no [`Action`] emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandleError {
    /// The signed envelope failed verification.
    Auth(AuthError),
    /// The sender was previously caught equivocating.
    Blacklisted(u32),
    /// A `Commit` carried a certificate vote that does not verify for the
    /// claimed `(height, root)`.
    BadVoteSig(u32),
}

impl std::fmt::Display for HandleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandleError::Auth(e) => write!(f, "authentication failed: {e}"),
            HandleError::Blacklisted(id) => write!(f, "peer {id} is blacklisted"),
            HandleError::BadVoteSig(id) => write!(f, "bad certificate vote from {id}"),
        }
    }
}

impl std::error::Error for HandleError {}

#[derive(Debug)]
struct Entry {
    view: u64,
    digest: [u8; 32],
    txs: Vec<Vec<u8>>,
    has_payload: bool,
    prepares: BTreeSet<u32>,
    /// voter -> (claimed digest, claimed root, detached vote signature).
    #[allow(clippy::type_complexity)]
    commit_votes: BTreeMap<u32, ([u8; 32], [u8; 32], [u8; 64])>,
    /// State root our own execution produced (set by `on_executed`).
    exec_root: Option<[u8; 32]>,
    exec_emitted: bool,
    executed: bool,
}

impl Entry {
    fn fresh(view: u64, digest: [u8; 32], txs: Vec<Vec<u8>>, has_payload: bool) -> Entry {
        Entry {
            view,
            digest,
            txs,
            has_payload,
            prepares: BTreeSet::new(),
            commit_votes: BTreeMap::new(),
            exec_root: None,
            exec_emitted: false,
            executed: false,
        }
    }
}

/// How many executed-block digests/roots to remember for answering
/// re-proposals of sequences we already executed, and for bounding the
/// equivocation watch window. Far above any sane watermark.
const DIGEST_WINDOW: u64 = 256;

/// One PBFT replica (see module docs for the protocol shape).
pub struct Replica {
    cfg: ReplicaConfig,
    keyring: Keyring,
    jitter_ms: u64,
    view: u64,
    /// Highest view-change target we have voted for (>= view).
    vc_target: u64,
    last_exec: u64,
    entries: BTreeMap<u64, Entry>,
    executed_digests: BTreeMap<u64, [u8; 32]>,
    /// Execution roots for recent heights, for re-signing refill votes.
    executed_roots: BTreeMap<u64, [u8; 32]>,
    /// target view -> (voter -> (voter's last_exec, voter's suffix)).
    #[allow(clippy::type_complexity)]
    vc_votes: BTreeMap<u64, BTreeMap<u32, (u64, Vec<SuffixEntry>)>>,
    /// Set when we won an election but must state-sync before installing.
    pending_new_view: Option<u64>,
    /// (sender, tag, view, seq) -> (content id, first signed message).
    #[allow(clippy::type_complexity)]
    equiv_seen: BTreeMap<(u32, u8, u64, u64), ([u8; 32], SignedPeerMsg)>,
    /// Peers caught equivocating; all their traffic is refused.
    blacklist: BTreeSet<u32>,
    evidence_emitted: u64,
    last_progress_ms: u64,
    /// When the oldest still-unexecuted in-flight entry started waiting,
    /// or `None` while the pipeline is drained. Heartbeats do NOT reset
    /// this: a leader that beacons liveness while its proposals can never
    /// quorum (equivocation, corrupted payloads) must still lose the
    /// floor when the stall outlives the view timeout.
    stalled_since_ms: Option<u64>,
    last_hb_ms: u64,
    view_changes: u64,
}

impl Replica {
    /// Build a replica at view 0 with nothing executed.
    pub fn new(cfg: ReplicaConfig, keyring: Keyring, now_ms: u64) -> Replica {
        assert!(cfg.n > 0, "empty consortium");
        assert!((cfg.node_id as usize) < cfg.n, "node_id out of range");
        assert_eq!(keyring.n(), cfg.n, "keyring size != consortium size");
        let jitter_ms = timeout_jitter(cfg.node_id, cfg.timeout_jitter_ms);
        Replica {
            cfg,
            keyring,
            jitter_ms,
            view: 0,
            vc_target: 0,
            last_exec: 0,
            entries: BTreeMap::new(),
            executed_digests: BTreeMap::new(),
            executed_roots: BTreeMap::new(),
            vc_votes: BTreeMap::new(),
            pending_new_view: None,
            equiv_seen: BTreeMap::new(),
            blacklist: BTreeSet::new(),
            evidence_emitted: 0,
            last_progress_ms: now_ms,
            stalled_since_ms: None,
            last_hb_ms: now_ms,
            view_changes: 0,
        }
    }

    /// Resume a replica whose chain already reaches `height` (WAL recovery).
    pub fn with_height(cfg: ReplicaConfig, keyring: Keyring, height: u64, now_ms: u64) -> Replica {
        let mut r = Replica::new(cfg, keyring, now_ms);
        r.last_exec = height;
        r
    }

    /// Current view number.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Primary of the current view.
    pub fn leader(&self) -> u32 {
        primary_of(self.view, self.cfg.n)
    }

    /// Whether this replica is the current primary.
    pub fn is_leader(&self) -> bool {
        self.leader() == self.cfg.node_id
    }

    /// Last executed sequence number (== local chain height).
    pub fn last_exec(&self) -> u64 {
        self.last_exec
    }

    /// Number of view installations survived so far.
    pub fn view_changes(&self) -> u64 {
        self.view_changes
    }

    /// This replica's signing identity and the consortium key table.
    pub fn keyring(&self) -> &Keyring {
        &self.keyring
    }

    /// Whether `id` has been caught equivocating.
    pub fn is_blacklisted(&self, id: u32) -> bool {
        self.blacklist.contains(&id)
    }

    /// Evidence records emitted so far.
    pub fn evidence_count(&self) -> u64 {
        self.evidence_emitted
    }

    /// Wrap an outbound message in this replica's signed envelope.
    pub fn sign(&self, msg: PeerMsg) -> SignedPeerMsg {
        SignedPeerMsg::sign(self.cfg.node_id, &self.keyring.signer, msg)
    }

    fn quorum(&self) -> usize {
        quorum(self.cfg.n)
    }

    fn me(&self) -> u32 {
        self.cfg.node_id
    }

    /// Propose the next block (primary only). `txs` are encoded `WireTx`s.
    pub fn propose(&mut self, txs: Vec<Vec<u8>>, now_ms: u64) -> Result<Vec<Action>, ProposeError> {
        if !self.is_leader() || self.pending_new_view.is_some() {
            return Err(ProposeError::NotLeader);
        }
        let next_seq = self
            .entries
            .keys()
            .next_back()
            .copied()
            .unwrap_or(self.last_exec)
            .max(self.last_exec)
            + 1;
        if next_seq > self.last_exec + self.cfg.max_inflight {
            return Err(ProposeError::Backpressure);
        }
        let digest = block_digest(next_seq, &txs);
        let mut entry = Entry::fresh(self.view, digest, txs.clone(), true);
        entry.prepares.insert(self.me());
        self.entries.insert(next_seq, entry);
        // A proposal doubles as a liveness beacon; skip the next heartbeat.
        self.last_hb_ms = now_ms;
        let mut actions = vec![Action::Broadcast(PeerMsg::PrePrepare {
            view: self.view,
            seq: next_seq,
            txs,
        })];
        self.check_prepared(next_seq, &mut actions);
        Ok(actions)
    }

    /// Authenticated entry point: verify the envelope, refuse blacklisted
    /// peers, validate `Commit` certificate votes, detect equivocation,
    /// then process. Every `Err` leaves the replica untouched.
    pub fn handle(
        &mut self,
        signed: SignedPeerMsg,
        now_ms: u64,
    ) -> Result<Vec<Action>, HandleError> {
        signed
            .verify(&self.keyring.keys)
            .map_err(HandleError::Auth)?;
        let from = signed.from;
        if self.blacklist.contains(&from) {
            return Err(HandleError::Blacklisted(from));
        }
        if let PeerMsg::Commit {
            seq,
            root,
            vote_sig,
            ..
        } = &signed.msg
        {
            // `verify` bounds `from` to the key table.
            let key = &self.keyring.keys[from as usize];
            if key
                .verify(&vote_bytes(*seq, root), &Signature(*vote_sig))
                .is_err()
            {
                return Err(HandleError::BadVoteSig(from));
            }
        }
        let mut actions = Vec::new();
        if let Some((tag, view, seq, content)) = equivocation_slot(&signed.msg) {
            let slot = (from, tag, view, seq);
            match self.equiv_seen.get(&slot) {
                Some((prev_content, prev_signed)) if *prev_content != content => {
                    // Two valid signatures, one slot, different content:
                    // transferable proof of equivocation.
                    let ev = Evidence {
                        accused: from,
                        view,
                        seq,
                        tag,
                        first: prev_signed.clone(),
                        second: signed,
                    };
                    self.blacklist.insert(from);
                    self.evidence_emitted += 1;
                    actions.push(Action::Evidence(ev));
                    if from == self.leader() && self.pending_new_view.is_none() {
                        // An equivocating leader must not keep the floor.
                        let target = if self.vc_target <= self.view {
                            self.view + 1
                        } else {
                            self.vc_target + 1
                        };
                        self.broadcast_own_vote(target, &mut actions);
                    }
                    return Ok(actions);
                }
                Some(_) => {} // identical retransmission: process normally
                None => {
                    self.equiv_seen.insert(slot, (content, signed.clone()));
                }
            }
        }
        actions.extend(self.on_msg(from, signed.msg, now_ms));
        Ok(actions)
    }

    /// Feed one peer message, trusting `from`. The unauthenticated core of
    /// [`Replica::handle`]; public for in-memory buses and differential
    /// tests that bypass signatures.
    pub fn on_msg(&mut self, from: u32, msg: PeerMsg, now_ms: u64) -> Vec<Action> {
        let mut actions = Vec::new();
        match msg {
            PeerMsg::PrePrepare { view, seq, txs } => {
                self.handle_preprepare(from, view, seq, txs, now_ms, &mut actions);
            }
            PeerMsg::Prepare {
                seq, digest, from, ..
            } => {
                if seq > self.last_exec {
                    self.record_prepare(seq, digest, from);
                    self.check_prepared(seq, &mut actions);
                }
            }
            PeerMsg::Commit {
                seq,
                digest,
                from,
                root,
                vote_sig,
                ..
            } => {
                self.record_commit(seq, digest, from, root, vote_sig);
                self.check_committed(seq, &mut actions);
            }
            PeerMsg::ViewChange {
                target,
                from,
                last_exec,
                suffix,
            } => {
                self.handle_view_change(target, from, last_exec, suffix, now_ms, &mut actions);
            }
            PeerMsg::NewView {
                view,
                from,
                last_exec,
                repropose,
            } => {
                self.handle_new_view(view, from, last_exec, repropose, now_ms, &mut actions);
            }
            PeerMsg::Heartbeat {
                view,
                from,
                last_exec,
            } => {
                if view > self.view && from == primary_of(view, self.cfg.n) {
                    self.enter_view(view, now_ms, &mut actions);
                }
                if view == self.view && from == self.leader() {
                    self.last_progress_ms = now_ms;
                }
                self.maybe_need_sync(from, last_exec, &mut actions);
            }
        }
        actions
    }

    fn handle_preprepare(
        &mut self,
        from: u32,
        view: u64,
        seq: u64,
        txs: Vec<Vec<u8>>,
        now_ms: u64,
        actions: &mut Vec<Action>,
    ) {
        if view < self.view || from != primary_of(view, self.cfg.n) {
            return;
        }
        if view > self.view {
            // A rightful primary announcing a higher view implies it won an
            // election we missed; adopt.
            self.enter_view(view, now_ms, actions);
        }
        self.last_progress_ms = now_ms;
        if seq <= self.last_exec {
            // Re-proposal of a block we already executed (post view change):
            // refill the new quorums without re-executing.
            if self.executed_digests.get(&seq) == Some(&block_digest(seq, &txs)) {
                let digest = block_digest(seq, &txs);
                actions.push(Action::Broadcast(PeerMsg::Prepare {
                    view,
                    seq,
                    digest,
                    from: self.me(),
                }));
                if let Some(root) = self.executed_roots.get(&seq).copied() {
                    let vote_sig = sign_vote(&self.keyring.signer, seq, &root);
                    actions.push(Action::Broadcast(PeerMsg::Commit {
                        view,
                        seq,
                        digest,
                        from: self.me(),
                        root,
                        vote_sig,
                    }));
                }
            }
            return;
        }
        // A primary never proposes beyond its own execution horizon plus the
        // watermark, so a sequence far past ours means we are lagging.
        if seq > self.last_exec + self.cfg.max_inflight {
            actions.push(Action::NeedSync {
                peer: from,
                have: self.last_exec,
            });
        }
        let digest = block_digest(seq, &txs);
        let replace = match self.entries.get(&seq) {
            Some(e) => !e.has_payload || (e.digest != digest && view >= e.view) || e.view < view,
            None => true,
        };
        if replace {
            let stale_votes = self
                .entries
                .get(&seq)
                .filter(|e| e.digest == digest)
                .map(|e| (e.prepares.clone(), e.commit_votes.clone()));
            let (mut prepares, commit_votes) = stale_votes.unwrap_or_default();
            prepares.insert(from);
            prepares.insert(self.me());
            let mut entry = Entry::fresh(view, digest, txs, true);
            entry.prepares = prepares;
            entry.commit_votes = commit_votes;
            self.entries.insert(seq, entry);
            // Arm the stall clock: this entry must execute within the
            // view-timeout window or we vote the leader out.
            if self.stalled_since_ms.is_none() {
                self.stalled_since_ms = Some(now_ms);
            }
            actions.push(Action::Broadcast(PeerMsg::Prepare {
                view,
                seq,
                digest,
                from: self.me(),
            }));
        } else {
            let me = self.me();
            if let Some(e) = self.entries.get_mut(&seq) {
                if e.digest == digest {
                    e.prepares.insert(from);
                    e.prepares.insert(me);
                }
            }
        }
        self.check_prepared(seq, actions);
    }

    fn record_prepare(&mut self, seq: u64, digest: [u8; 32], from: u32) {
        let entry = self
            .entries
            .entry(seq)
            .or_insert_with(|| Entry::fresh(self.view, digest, Vec::new(), false));
        // Votes only count toward the digest we hold; a placeholder adopts
        // the first digest it hears about. A poisoned placeholder cannot
        // stick: the PrePrepare payload replaces it and discards
        // mismatching votes.
        if entry.digest == digest {
            entry.prepares.insert(from);
        }
    }

    fn record_commit(
        &mut self,
        seq: u64,
        digest: [u8; 32],
        from: u32,
        root: [u8; 32],
        sig: [u8; 64],
    ) {
        let entry = self
            .entries
            .entry(seq)
            .or_insert_with(|| Entry::fresh(self.view, digest, Vec::new(), false));
        if entry.digest == digest {
            entry
                .commit_votes
                .entry(from)
                .or_insert((digest, root, sig));
        }
    }

    fn check_prepared(&mut self, seq: u64, actions: &mut Vec<Action>) {
        let q = self.quorum();
        if seq != self.last_exec + 1 {
            return; // execution is strictly in order
        }
        let Some(e) = self.entries.get_mut(&seq) else {
            return;
        };
        if e.has_payload && !e.exec_emitted && !e.executed && e.prepares.len() >= q {
            e.exec_emitted = true;
            actions.push(Action::Execute {
                seq,
                txs: e.txs.clone(),
                digest: e.digest,
            });
        }
    }

    /// The driver executed and durably logged `seq`, producing state root
    /// `root`. Emits the `Commit` broadcast (carrying our signed
    /// certificate vote) and chains execution of the next prepared entry.
    pub fn on_executed(&mut self, seq: u64, root: [u8; 32], now_ms: u64) -> Vec<Action> {
        assert_eq!(seq, self.last_exec + 1, "out-of-order execution");
        let mut actions = Vec::new();
        self.last_exec = seq;
        self.last_progress_ms = now_ms;
        let me = self.me();
        let vote_sig = sign_vote(&self.keyring.signer, seq, &root);
        let Some(e) = self.entries.get_mut(&seq) else {
            panic!("executed unknown sequence {seq}");
        };
        e.executed = true;
        e.exec_root = Some(root);
        e.commit_votes.insert(me, (e.digest, root, vote_sig));
        let (view, digest) = (e.view, e.digest);
        self.executed_digests.insert(seq, digest);
        self.executed_roots.insert(seq, root);
        while let Some(first) = self.executed_digests.keys().next().copied() {
            if first + DIGEST_WINDOW <= seq {
                self.executed_digests.remove(&first);
                self.executed_roots.remove(&first);
            } else {
                break;
            }
        }
        // Bound the equivocation watch window alongside.
        self.equiv_seen
            .retain(|(_, _, _, s), _| s + DIGEST_WINDOW > seq);
        actions.push(Action::Broadcast(PeerMsg::Commit {
            view,
            seq,
            digest,
            from: me,
            root,
            vote_sig,
        }));
        self.check_committed(seq, &mut actions);
        self.check_prepared(seq + 1, &mut actions);
        self.rearm_stall_clock(now_ms);
        actions
    }

    /// Execution progressed (or the horizon moved): restart the stall
    /// clock if in-flight work remains, clear it if the pipeline drained.
    fn rearm_stall_clock(&mut self, now_ms: u64) {
        self.stalled_since_ms = if self.entries.keys().any(|&s| s > self.last_exec) {
            Some(now_ms)
        } else {
            None
        };
    }

    fn check_committed(&mut self, seq: u64, actions: &mut Vec<Action>) {
        let q = self.quorum();
        let Some(e) = self.entries.get(&seq) else {
            return;
        };
        let Some(root) = e.exec_root else {
            return; // not executed here yet
        };
        // Only votes naming our digest AND our execution root count toward
        // the certificate; a Byzantine vote for another root is ignored.
        let votes: Vec<(u32, [u8; 64])> = e
            .commit_votes
            .iter()
            .filter(|(_, (d, r, _))| *d == e.digest && *r == root)
            .map(|(id, (_, _, s))| (*id, *s))
            .collect();
        if e.executed && votes.len() >= q {
            let digest = e.digest;
            self.entries.remove(&seq);
            // BTreeMap iteration yields strictly ascending voter ids, the
            // canonical certificate order.
            let cert = QuorumCert {
                height: seq,
                root,
                votes,
            };
            actions.push(Action::CommittedLocal { seq, digest, cert });
        }
    }

    fn maybe_need_sync(&mut self, peer: u32, peer_last_exec: u64, actions: &mut Vec<Action>) {
        if peer_last_exec <= self.last_exec {
            return;
        }
        // If the next block is already prepared locally we will catch up on
        // our own; sync only when the pipeline is actually missing data.
        let next_inflight = self
            .entries
            .get(&(self.last_exec + 1))
            .map(|e| e.has_payload && e.prepares.len() >= self.quorum())
            .unwrap_or(false);
        if !next_inflight {
            actions.push(Action::NeedSync {
                peer,
                have: self.last_exec,
            });
        }
    }

    /// Own uncommitted suffix, reported in `ViewChange` votes.
    fn suffix(&self) -> Vec<SuffixEntry> {
        self.entries
            .iter()
            .filter(|(seq, _)| **seq > self.last_exec)
            .map(|(seq, e)| SuffixEntry {
                seq: *seq,
                view: e.view,
                prepared: e.prepares.len() >= self.quorum(),
                txs: if e.has_payload {
                    e.txs.clone()
                } else {
                    Vec::new()
                },
            })
            .collect()
    }

    fn broadcast_own_vote(&mut self, target: u64, actions: &mut Vec<Action>) {
        self.vc_target = target;
        let me = self.me();
        let vote = (self.last_exec, self.suffix());
        self.vc_votes.entry(target).or_default().insert(me, vote);
        actions.push(Action::Broadcast(PeerMsg::ViewChange {
            target,
            from: self.me(),
            last_exec: self.last_exec,
            suffix: self.suffix(),
        }));
    }

    fn handle_view_change(
        &mut self,
        target: u64,
        from: u32,
        last_exec: u64,
        suffix: Vec<SuffixEntry>,
        now_ms: u64,
        actions: &mut Vec<Action>,
    ) {
        if target <= self.view {
            return;
        }
        self.vc_votes
            .entry(target)
            .or_default()
            .insert(from, (last_exec, suffix));
        let votes = self.vc_votes[&target].len();
        let f_plus_1 = (self.cfg.n.saturating_sub(1) / 3) + 1;
        // Join rule: f+1 distinct voters cannot all be wrong about the
        // leader being dead — vote along even if our own timer is quiet.
        if votes >= f_plus_1 && self.vc_target < target {
            self.broadcast_own_vote(target, actions);
        }
        let votes = self.vc_votes[&target].len();
        if votes >= self.quorum()
            && primary_of(target, self.cfg.n) == self.me()
            && target > self.view
        {
            let max_le = self.vc_votes[&target]
                .values()
                .map(|(le, _)| *le)
                .max()
                .unwrap_or(0)
                .max(self.last_exec);
            if self.last_exec < max_le {
                // Won the election while behind: sync first, install after.
                self.pending_new_view = Some(target);
                let ahead = self.vc_votes[&target]
                    .iter()
                    .max_by_key(|(_, (le, _))| *le)
                    .map(|(id, _)| *id)
                    .unwrap_or(from);
                actions.push(Action::NeedSync {
                    peer: ahead,
                    have: self.last_exec,
                });
            } else {
                self.install_new_view(target, now_ms, actions);
            }
        }
    }

    fn install_new_view(&mut self, target: u64, now_ms: u64, actions: &mut Vec<Action>) {
        self.pending_new_view = None;
        // Re-proposals must reach back to the *slowest quorum voter's*
        // execution horizon, not ours. A block we executed at prepare
        // quorum may never have gathered a commit quorum (an equivocating
        // leader can split the followers so 2f+1 prepares form on one
        // fork while the rest hold the other): that block has no
        // certificate, so a stranded replica can neither replay it by
        // consensus (its entry was dropped) nor fetch it by cert-verified
        // state sync. Re-proposing down to the quorum floor lets laggards
        // re-run the block and lets the commit quorum — and therefore the
        // certificate — finally form.
        let floor = self
            .vc_votes
            .get(&target)
            .into_iter()
            .flatten()
            .map(|(_, (le, _))| *le)
            .min()
            .unwrap_or(self.last_exec)
            .min(self.last_exec);
        // Merge the quorum's suffixes with our own entries and re-propose
        // every in-flight sequence above the floor, preferring prepared
        // reports, then the highest view.
        let mut candidates: BTreeMap<u64, (bool, u64, Vec<Vec<u8>>)> = BTreeMap::new();
        let mut consider = |seq: u64, prepared: bool, view: u64, txs: &Vec<Vec<u8>>| {
            if txs.is_empty() || seq <= floor {
                return;
            }
            let better = match candidates.get(&seq) {
                Some((p, v, _)) => (prepared, view) > (*p, *v),
                None => true,
            };
            if better {
                candidates.insert(seq, (prepared, view, txs.clone()));
            }
        };
        for (_, (_, suffix)) in self.vc_votes.get(&target).into_iter().flatten() {
            for e in suffix {
                consider(e.seq, e.prepared, e.view, &e.txs);
            }
        }
        let q = self.quorum();
        for (seq, e) in &self.entries {
            if e.has_payload {
                consider(*seq, e.prepares.len() >= q, e.view, &e.txs);
            }
        }
        let mut repropose = Vec::new();
        let mut seq = floor + 1;
        while seq <= self.last_exec || candidates.contains_key(&seq) {
            if let Some((_, _, txs)) = candidates.get(&seq) {
                repropose.push((seq, txs.clone()));
            }
            // A sequence at or below our horizon with no candidate was
            // committed here and its entry retired — it carries a quorum
            // certificate, so laggards state-sync it instead. A gap
            // *above* our horizon (which ends the loop) means no quorum
            // member holds a payload for that sequence, so it was
            // prepared (hence executed) nowhere; everything beyond it is
            // dropped and clients retry.
            seq += 1;
        }
        self.enter_view(target, now_ms, actions);
        self.entries.retain(|s, _| *s <= self.last_exec);
        for (seq, txs) in &repropose {
            if *seq <= self.last_exec {
                // Re-proposal of a block we executed: the retained entry
                // already holds its payload, root and votes.
                continue;
            }
            let digest = block_digest(*seq, txs);
            let mut entry = Entry::fresh(target, digest, txs.clone(), true);
            entry.prepares.insert(self.me());
            self.entries.insert(*seq, entry);
        }
        actions.push(Action::Broadcast(PeerMsg::NewView {
            view: target,
            from: self.me(),
            last_exec: self.last_exec,
            repropose: repropose.clone(),
        }));
        // Refill the new view's quorums for re-proposed blocks we already
        // executed: followers re-vote when they replay the `NewView`, but
        // the leader never processes its own broadcast — without this,
        // recovering laggards end up one Commit vote short of 2f+1 and
        // the block's certificate never forms. Sent *after* the `NewView`
        // so receivers have replaced any conflicting entry first.
        for (seq, txs) in &repropose {
            if *seq > self.last_exec {
                continue;
            }
            let digest = block_digest(*seq, txs);
            if self.executed_digests.get(seq) != Some(&digest) {
                continue;
            }
            actions.push(Action::Broadcast(PeerMsg::Prepare {
                view: target,
                seq: *seq,
                digest,
                from: self.me(),
            }));
            if let Some(root) = self.executed_roots.get(seq).copied() {
                let vote_sig = sign_vote(&self.keyring.signer, *seq, &root);
                actions.push(Action::Broadcast(PeerMsg::Commit {
                    view: target,
                    seq: *seq,
                    digest,
                    from: self.me(),
                    root,
                    vote_sig,
                }));
            }
        }
        self.last_hb_ms = now_ms;
        self.check_prepared(self.last_exec + 1, actions);
    }

    fn handle_new_view(
        &mut self,
        view: u64,
        from: u32,
        leader_last_exec: u64,
        repropose: Vec<(u64, Vec<Vec<u8>>)>,
        now_ms: u64,
        actions: &mut Vec<Action>,
    ) {
        if view <= self.view || from != primary_of(view, self.cfg.n) {
            return;
        }
        self.enter_view(view, now_ms, actions);
        if leader_last_exec > self.last_exec {
            actions.push(Action::NeedSync {
                peer: from,
                have: self.last_exec,
            });
        }
        // Entries the new leader did not re-propose are dead.
        let kept: BTreeSet<u64> = repropose.iter().map(|(s, _)| *s).collect();
        self.entries
            .retain(|s, _| *s <= self.last_exec || kept.contains(s));
        for (seq, txs) in repropose {
            self.handle_preprepare(from, view, seq, txs, now_ms, actions);
        }
    }

    fn enter_view(&mut self, view: u64, now_ms: u64, actions: &mut Vec<Action>) {
        debug_assert!(view > self.view);
        self.view = view;
        self.view_changes += 1;
        self.vc_target = self.vc_target.max(view);
        self.vc_votes.retain(|t, _| *t > view);
        if self.pending_new_view.is_some_and(|t| t <= view) {
            self.pending_new_view = None;
        }
        self.last_progress_ms = now_ms;
        self.rearm_stall_clock(now_ms);
        actions.push(Action::LeaderChanged {
            view,
            leader: primary_of(view, self.cfg.n),
        });
    }

    /// The driver finished a state sync; the local chain now reaches
    /// `height`. Fires a deferred `NewView` if we won an election while
    /// behind.
    pub fn on_caught_up(&mut self, height: u64, now_ms: u64) -> Vec<Action> {
        let mut actions = Vec::new();
        if height > self.last_exec {
            self.last_exec = height;
            self.entries.retain(|s, e| *s > height && !e.executed);
            self.last_progress_ms = now_ms;
            self.rearm_stall_clock(now_ms);
        }
        if let Some(target) = self.pending_new_view {
            let max_le = self
                .vc_votes
                .get(&target)
                .map(|v| v.values().map(|(le, _)| *le).max().unwrap_or(0))
                .unwrap_or(0);
            if self.last_exec >= max_le {
                self.install_new_view(target, now_ms, &mut actions);
            }
        }
        self.check_prepared(self.last_exec + 1, &mut actions);
        actions
    }

    /// Periodic driver tick: leader heartbeats, follower timeout votes.
    pub fn on_tick(&mut self, now_ms: u64) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.pending_new_view.is_some() {
            return actions; // syncing toward our own NewView
        }
        if self.is_leader() {
            if now_ms.saturating_sub(self.last_hb_ms) >= self.cfg.heartbeat_ms {
                self.last_hb_ms = now_ms;
                actions.push(Action::Broadcast(PeerMsg::Heartbeat {
                    view: self.view,
                    from: self.me(),
                    last_exec: self.last_exec,
                }));
            }
        } else {
            let window = self.cfg.view_timeout_ms + self.jitter_ms;
            let silent = now_ms.saturating_sub(self.last_progress_ms) >= window;
            // A heartbeating leader whose proposals never execute is as
            // dead as a silent one: equivocated or corrupted proposals can
            // never quorum, and the beacon must not keep it on the floor.
            let stalled = self
                .stalled_since_ms
                .is_some_and(|t| now_ms.saturating_sub(t) >= window);
            if silent || stalled {
                // Escalate one target per timeout window, skipping over
                // candidate leaders that are themselves dead. The jittered
                // deadline staggers detection so one replica votes first
                // and the f+1 join rule pulls the rest in behind a single
                // target.
                let target = if self.vc_target <= self.view {
                    self.view + 1
                } else {
                    self.vc_target + 1
                };
                self.last_progress_ms = now_ms;
                if let Some(t) = self.stalled_since_ms.as_mut() {
                    *t = now_ms;
                }
                self.broadcast_own_vote(target, &mut actions);
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    const SEED: u64 = 0xC0FF1DE;

    /// In-memory bus driving N replicas with perfect (but reorderable)
    /// links, synchronous execution, a fake clock, and real signatures:
    /// every delivery goes through the authenticated [`Replica::handle`].
    struct Bus {
        replicas: Vec<Replica>,
        rings: Vec<Keyring>,
        /// Delivery queue of (from, to, msg).
        queue: VecDeque<(u32, u32, PeerMsg)>,
        /// Node ids that are crashed (drop everything to/from them).
        dead: BTreeSet<u32>,
        /// Per-replica executed blocks (seq, digest).
        executed: Vec<Vec<(u64, [u8; 32])>>,
        /// Per-replica committed seqs (each carried a verified cert).
        committed: Vec<Vec<u64>>,
        /// Per-replica NeedSync requests observed.
        syncs: Vec<Vec<(u32, u64)>>,
        now: u64,
    }

    impl Bus {
        fn new(n: usize) -> Bus {
            let now = 0;
            let rings: Vec<Keyring> = (0..n as u32)
                .map(|i| Keyring::deterministic(SEED, i, n))
                .collect();
            Bus {
                replicas: (0..n)
                    .map(|i| {
                        let mut cfg = ReplicaConfig::localhost(i as u32, n);
                        cfg.view_timeout_ms = 100;
                        cfg.heartbeat_ms = 20;
                        cfg.timeout_jitter_ms = 30;
                        Replica::new(cfg, rings[i].clone(), now)
                    })
                    .collect(),
                rings,
                queue: VecDeque::new(),
                dead: BTreeSet::new(),
                executed: vec![Vec::new(); n],
                committed: vec![Vec::new(); n],
                syncs: vec![Vec::new(); n],
                now,
            }
        }

        fn absorb(&mut self, node: u32, actions: Vec<Action>) {
            let n = self.replicas.len() as u32;
            for a in actions {
                match a {
                    Action::Broadcast(msg) => {
                        for to in 0..n {
                            if to != node {
                                self.queue.push_back((node, to, msg.clone()));
                            }
                        }
                    }
                    Action::Send(to, msg) => self.queue.push_back((node, to, msg)),
                    Action::Execute { seq, txs, digest } => {
                        assert_eq!(digest, block_digest(seq, &txs));
                        self.executed[node as usize].push((seq, digest));
                        // Tests use the block digest as the stand-in root.
                        let more = self.replicas[node as usize].on_executed(seq, digest, self.now);
                        self.absorb(node, more);
                    }
                    Action::CommittedLocal { seq, digest, cert } => {
                        assert_eq!(cert.height, seq);
                        assert_eq!(cert.root, digest);
                        cert.verify(self.replicas.len(), &self.rings[0].keys)
                            .expect("commit released without a valid certificate");
                        self.committed[node as usize].push(seq);
                    }
                    Action::NeedSync { peer, have } => {
                        self.syncs[node as usize].push((peer, have));
                    }
                    Action::LeaderChanged { .. } => {}
                    Action::Evidence(ev) => {
                        panic!("honest cluster produced evidence: {ev:?}");
                    }
                }
            }
        }

        /// Sign and deliver one message through the authenticated path.
        fn deliver(&mut self, from: u32, to: u32, msg: PeerMsg) {
            let signed = SignedPeerMsg::sign(from, &self.rings[from as usize].signer, msg);
            let actions = self.replicas[to as usize]
                .handle(signed, self.now)
                .expect("honest message rejected");
            self.absorb(to, actions);
        }

        /// Deliver queued messages until quiescence. `reversed` pops from
        /// the back to stress out-of-order tolerance.
        fn pump(&mut self, reversed: bool) {
            while let Some((from, to, msg)) = if reversed {
                self.queue.pop_back()
            } else {
                self.queue.pop_front()
            } {
                if self.dead.contains(&from) || self.dead.contains(&to) {
                    continue;
                }
                self.deliver(from, to, msg);
            }
        }

        fn propose(&mut self, node: u32, txs: Vec<Vec<u8>>) -> Result<(), ProposeError> {
            let actions = self.replicas[node as usize].propose(txs, self.now)?;
            self.absorb(node, actions);
            Ok(())
        }

        fn tick_all(&mut self, advance_ms: u64) {
            self.now += advance_ms;
            for i in 0..self.replicas.len() {
                if self.dead.contains(&(i as u32)) {
                    continue;
                }
                let actions = self.replicas[i].on_tick(self.now);
                self.absorb(i as u32, actions);
            }
        }

        fn live(&self) -> Vec<usize> {
            (0..self.replicas.len())
                .filter(|i| !self.dead.contains(&(*i as u32)))
                .collect()
        }

        fn assert_converged(&self, blocks: usize) {
            let reference = self.executed[self.live()[0]].clone();
            assert_eq!(reference.len(), blocks, "wrong block count");
            for i in self.live() {
                assert_eq!(
                    self.executed[i], reference,
                    "replica {i} diverged from the reference log"
                );
                assert_eq!(
                    self.committed[i].len(),
                    blocks,
                    "replica {i} missing local commits"
                );
            }
        }
    }

    fn block(tag: u8, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![tag, i as u8, 0xCF]).collect()
    }

    #[test]
    fn four_replicas_commit_in_order() {
        let mut bus = Bus::new(4);
        for b in 0..3 {
            bus.propose(0, block(b, 4)).unwrap();
        }
        bus.pump(false);
        bus.assert_converged(3);
        for r in &bus.replicas {
            assert_eq!(r.last_exec(), 3);
            assert_eq!(r.view(), 0);
        }
    }

    #[test]
    fn out_of_order_delivery_still_converges() {
        let mut bus = Bus::new(4);
        for b in 0..4 {
            bus.propose(0, block(b, 3)).unwrap();
        }
        bus.pump(true); // LIFO delivery: commits arrive before prepares
        bus.assert_converged(4);
    }

    #[test]
    fn single_replica_cluster_self_commits() {
        let mut bus = Bus::new(1);
        bus.propose(0, block(1, 2)).unwrap();
        bus.pump(false);
        bus.assert_converged(1);
    }

    #[test]
    fn watermark_backpressure_and_not_leader() {
        let mut bus = Bus::new(4);
        for b in 0..4 {
            // Queue fills without any delivery: nothing executes.
            bus.propose(0, block(b, 1)).unwrap();
        }
        assert_eq!(
            bus.replicas[0].propose(block(9, 1), 0),
            Err(ProposeError::Backpressure)
        );
        assert_eq!(
            bus.replicas[1].propose(block(9, 1), 0),
            Err(ProposeError::NotLeader)
        );
        bus.pump(false);
        bus.assert_converged(4);
        // Window cleared after commits.
        bus.propose(0, block(9, 1)).unwrap();
        bus.pump(false);
        bus.assert_converged(5);
    }

    #[test]
    fn leader_crash_triggers_view_change_and_reproposal() {
        let mut bus = Bus::new(4);
        bus.propose(0, block(1, 4)).unwrap();
        bus.pump(false);
        bus.assert_converged(1);

        // Leader proposes block 2, the PrePrepare reaches everyone, then the
        // leader dies before any Prepare exchange completes.
        bus.propose(0, block(2, 4)).unwrap();
        // Deliver only the PrePrepares (first 3 queued messages).
        for _ in 0..3 {
            let (from, to, msg) = bus.queue.pop_front().unwrap();
            bus.deliver(from, to, msg);
        }
        bus.queue.clear();
        bus.dead.insert(0);

        // Followers time out, vote, and elect replica 1, which must
        // re-propose block 2 verbatim.
        bus.tick_all(150);
        bus.pump(false);
        for i in bus.live() {
            assert_eq!(bus.replicas[i].view(), 1, "replica {i} stuck in view 0");
            assert_eq!(bus.replicas[i].leader(), 1);
            assert_eq!(bus.replicas[i].last_exec(), 2);
            assert!(bus.replicas[i].view_changes() >= 1);
        }
        bus.assert_converged(2);

        // The new leader keeps making progress.
        bus.propose(1, block(3, 2)).unwrap();
        bus.pump(false);
        bus.assert_converged(3);
    }

    #[test]
    fn dead_candidate_escalates_to_next_view() {
        // n=7 tolerates f=2: kill the leader AND the first candidate.
        let mut bus = Bus::new(7);
        bus.propose(0, block(1, 2)).unwrap();
        bus.pump(false);
        bus.assert_converged(1);
        bus.dead.insert(0);
        bus.dead.insert(1);
        // First timeout votes for view 1 (dead candidate), second escalates
        // to view 2 whose primary is alive.
        bus.tick_all(150);
        bus.pump(false);
        bus.tick_all(150);
        bus.pump(false);
        for i in bus.live() {
            assert_eq!(bus.replicas[i].view(), 2, "replica {i} not in view 2");
            assert_eq!(bus.replicas[i].leader(), 2);
        }
        bus.propose(2, block(2, 2)).unwrap();
        bus.pump(false);
        bus.assert_converged(2);
    }

    #[test]
    fn heartbeats_prevent_view_change() {
        let mut bus = Bus::new(4);
        bus.propose(0, block(1, 2)).unwrap();
        bus.pump(false);
        // Many quiet intervals shorter than the timeout, bridged by
        // heartbeats: the view must hold.
        for _ in 0..20 {
            bus.tick_all(50);
            bus.pump(false);
        }
        for r in &bus.replicas {
            assert_eq!(r.view(), 0);
        }
        bus.assert_converged(1);
    }

    #[test]
    fn lagging_replica_detects_gap_and_catches_up() {
        let mut bus = Bus::new(4);
        // Replica 3 misses two committed blocks.
        bus.dead.insert(3);
        bus.propose(0, block(1, 2)).unwrap();
        bus.propose(0, block(2, 2)).unwrap();
        bus.pump(false);
        bus.dead.remove(&3);

        // A heartbeat advertising progress triggers NeedSync on 3.
        bus.tick_all(25);
        bus.pump(false);
        let (peer, have) = *bus.syncs[3].last().expect("no NeedSync emitted");
        assert_eq!(peer, 0);
        assert_eq!(have, 0);

        // Driver syncs the WAL out of band and reports back.
        let actions = bus.replicas[3].on_caught_up(2, bus.now);
        bus.absorb(3, actions);
        assert_eq!(bus.replicas[3].last_exec(), 2);

        // And replica 3 participates in the next block normally.
        bus.propose(0, block(3, 2)).unwrap();
        bus.pump(false);
        assert_eq!(bus.executed[3], vec![(3, block_digest(3, &block(3, 2)))]);
        assert_eq!(bus.committed[3], vec![3]);
    }

    #[test]
    fn elected_leader_syncs_before_new_view() {
        let mut bus = Bus::new(4);
        // Replica 1 (next leader) misses a block, then the leader dies.
        bus.dead.insert(1);
        bus.propose(0, block(1, 2)).unwrap();
        bus.pump(false);
        bus.dead.remove(&1);
        bus.dead.insert(0);

        bus.tick_all(150);
        bus.pump(false);
        // Replica 1 won but is behind: it must have requested a sync and
        // deferred the NewView.
        let (_, have) = *bus.syncs[1].last().expect("elected leader never synced");
        assert_eq!(have, 0);
        assert_eq!(bus.replicas[1].view(), 0, "installed view before syncing");

        let actions = bus.replicas[1].on_caught_up(1, bus.now);
        bus.absorb(1, actions);
        bus.pump(false);
        for i in bus.live() {
            assert_eq!(bus.replicas[i].view(), 1);
        }
        bus.propose(1, block(2, 2)).unwrap();
        bus.pump(false);
        for i in bus.live() {
            assert_eq!(bus.replicas[i].last_exec(), 2);
        }
    }

    #[test]
    fn resumed_replica_starts_at_recovered_height() {
        let ring = Keyring::deterministic(SEED, 2, 4);
        let r = Replica::with_height(ReplicaConfig::localhost(2, 4), ring, 7, 0);
        assert_eq!(r.last_exec(), 7);
        assert_eq!(r.view(), 0);
    }

    #[test]
    fn equivocating_follower_yields_evidence_and_blacklist() {
        let mut bus = Bus::new(4);
        bus.propose(0, block(1, 2)).unwrap();
        bus.pump(false);
        // Node 1 signs two conflicting Prepares for the same slot.
        let prep = |d: u8| PeerMsg::Prepare {
            view: 0,
            seq: 2,
            digest: [d; 32],
            from: 1,
        };
        let sign1 = |m: PeerMsg| SignedPeerMsg::sign(1, &bus.rings[1].signer, m);
        let a1 = bus.replicas[2].handle(sign1(prep(1)), 0).unwrap();
        assert!(!a1.iter().any(|a| matches!(a, Action::Evidence(_))));
        let a2 = bus.replicas[2].handle(sign1(prep(2)), 0).unwrap();
        let ev = a2
            .iter()
            .find_map(|a| match a {
                Action::Evidence(e) => Some(e.clone()),
                _ => None,
            })
            .expect("conflicting signed prepares produced no evidence");
        assert_eq!(ev.accused, 1);
        ev.verify(&bus.rings[0].keys).unwrap();
        assert!(bus.replicas[2].is_blacklisted(1));
        assert_eq!(bus.replicas[2].evidence_count(), 1);
        // Follower equivocation does not force a view change.
        assert!(!a2
            .iter()
            .any(|a| matches!(a, Action::Broadcast(PeerMsg::ViewChange { .. }))));
        // Further traffic from the offender is refused.
        assert!(matches!(
            bus.replicas[2].handle(sign1(prep(3)), 0),
            Err(HandleError::Blacklisted(1))
        ));
    }

    #[test]
    fn equivocating_leader_forces_view_change() {
        let mut bus = Bus::new(4);
        // Leader 0 signs two conflicting PrePrepares for (view 0, seq 1).
        let pp = |tag: u8| PeerMsg::PrePrepare {
            view: 0,
            seq: 1,
            txs: block(tag, 2),
        };
        let sign0 = |m: PeerMsg| SignedPeerMsg::sign(0, &bus.rings[0].signer, m);
        bus.replicas[1].handle(sign0(pp(1)), 0).unwrap();
        let actions = bus.replicas[1].handle(sign0(pp(2)), 0).unwrap();
        assert!(actions.iter().any(|a| matches!(a, Action::Evidence(_))));
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::Broadcast(PeerMsg::ViewChange { target: 1, .. }))),
            "equivocating leader kept the floor: {actions:?}"
        );
        assert!(bus.replicas[1].is_blacklisted(0));
    }

    #[test]
    fn tampered_or_spoofed_envelopes_rejected_without_effect() {
        let mut bus = Bus::new(4);
        let msg = PeerMsg::Prepare {
            view: 0,
            seq: 1,
            digest: [7; 32],
            from: 1,
        };
        let mut tampered = SignedPeerMsg::sign(1, &bus.rings[1].signer, msg.clone());
        tampered.sig[0] ^= 1;
        assert!(matches!(
            bus.replicas[2].handle(tampered, 0),
            Err(HandleError::Auth(AuthError::BadSignature(1)))
        ));
        // Node 3 signing a body that claims from=1.
        let spoofed = SignedPeerMsg::sign(3, &bus.rings[3].signer, msg);
        assert!(matches!(
            bus.replicas[2].handle(spoofed, 0),
            Err(HandleError::Auth(AuthError::SenderMismatch { .. }))
        ));
        // A signer id outside the consortium.
        let stray = SignedPeerMsg::sign(
            9,
            &bus.rings[0].signer,
            PeerMsg::Heartbeat {
                view: 0,
                from: 9,
                last_exec: 5,
            },
        );
        assert!(matches!(
            bus.replicas[2].handle(stray, 0),
            Err(HandleError::Auth(AuthError::UnknownSigner(9)))
        ));
        // None of it moved the replica.
        assert_eq!(bus.replicas[2].view(), 0);
        assert_eq!(bus.replicas[2].last_exec(), 0);
        assert_eq!(bus.replicas[2].evidence_count(), 0);
    }

    #[test]
    fn forged_commit_vote_rejected() {
        let mut bus = Bus::new(4);
        // Correct envelope, but the detached certificate vote signs a
        // different root than the message claims.
        let bad_vote = sign_vote(&bus.rings[1].signer, 1, &[8; 32]);
        let msg = PeerMsg::Commit {
            view: 0,
            seq: 1,
            digest: [7; 32],
            from: 1,
            root: [9; 32],
            vote_sig: bad_vote,
        };
        let signed = SignedPeerMsg::sign(1, &bus.rings[1].signer, msg);
        assert!(matches!(
            bus.replicas[2].handle(signed, 0),
            Err(HandleError::BadVoteSig(1))
        ));
    }

    #[test]
    fn timeout_jitter_is_deterministic_and_bounded() {
        assert_eq!(timeout_jitter(3, 0), 0);
        let spread = 40;
        let js: Vec<u64> = (0..8).map(|i| timeout_jitter(i, spread)).collect();
        for (i, j) in js.iter().enumerate() {
            assert!(*j < spread);
            assert_eq!(*j, timeout_jitter(i as u32, spread), "not deterministic");
        }
        // The spread must actually spread: not every replica on one value.
        assert!(js.iter().collect::<BTreeSet<_>>().len() > 1);
    }

    #[test]
    fn staggered_timeouts_elect_in_one_round() {
        let mut bus = Bus::new(4);
        bus.propose(0, block(1, 2)).unwrap();
        bus.pump(false);
        bus.dead.insert(0);
        // Walk time forward in fine steps, delivering between steps:
        // replicas time out at distinct jittered instants, the first
        // voter's f+1 join rule pulls the rest in, and exactly one view
        // change installs.
        for _ in 0..40 {
            bus.tick_all(10);
            bus.pump(false);
        }
        for i in bus.live() {
            assert_eq!(bus.replicas[i].view(), 1, "replica {i} overshot view 1");
            assert_eq!(bus.replicas[i].view_changes(), 1, "replica {i} dueled");
        }
        bus.propose(1, block(2, 2)).unwrap();
        bus.pump(false);
        bus.assert_converged(2);
    }

    #[test]
    fn stalled_pipeline_votes_out_a_heartbeating_leader() {
        // A Byzantine primary can stall the pipeline while staying
        // "alive": it equivocates or corrupts proposals (so nothing ever
        // quorums) yet keeps heartbeating so the silence timer never
        // fires. The stall clock must vote it out anyway.
        let rings: Vec<Keyring> = (0..4).map(|i| Keyring::deterministic(SEED, i, 4)).collect();
        let mut cfg = ReplicaConfig::localhost(1, 4);
        cfg.view_timeout_ms = 100;
        cfg.heartbeat_ms = 20;
        cfg.timeout_jitter_ms = 0;
        let mut r = Replica::new(cfg, rings[1].clone(), 0);
        let pp = SignedPeerMsg::sign(
            0,
            &rings[0].signer,
            PeerMsg::PrePrepare {
                view: 0,
                seq: 1,
                txs: vec![b"stuck".to_vec()],
            },
        );
        r.handle(pp, 0).unwrap();

        let mut voted_at = None;
        for now in (20..=400).step_by(20) {
            // Fresh heartbeat every tick: the leader is never silent.
            let hb = SignedPeerMsg::sign(
                0,
                &rings[0].signer,
                PeerMsg::Heartbeat {
                    view: 0,
                    from: 0,
                    last_exec: 0,
                },
            );
            r.handle(hb, now).unwrap();
            let actions = r.on_tick(now);
            if actions
                .iter()
                .any(|a| matches!(a, Action::Broadcast(PeerMsg::ViewChange { target: 1, .. })))
            {
                voted_at = Some(now);
                break;
            }
        }
        let at = voted_at.expect("stalled replica never voted out the heartbeating leader");
        assert!(
            (100..=200).contains(&at),
            "stall vote fired at {at}ms, outside one timeout window"
        );

        // Once the stall drains (the entry executes), the clock disarms:
        // continued heartbeats keep the new pipeline quiet.
        let digest = block_digest(1, &[b"stuck".to_vec()]);
        for peer in [2u32, 3] {
            let prep = SignedPeerMsg::sign(
                peer,
                &rings[peer as usize].signer,
                PeerMsg::Prepare {
                    view: 0,
                    seq: 1,
                    digest,
                    from: peer,
                },
            );
            r.handle(prep, at).unwrap();
        }
        r.on_executed(1, [7; 32], at);
        for now in (at + 20..=at + 400).step_by(20) {
            let hb = SignedPeerMsg::sign(
                0,
                &rings[0].signer,
                PeerMsg::Heartbeat {
                    view: 0,
                    from: 0,
                    last_exec: 1,
                },
            );
            r.handle(hb, now).unwrap();
            assert!(
                r.on_tick(now).is_empty(),
                "drained pipeline still voted at {now}ms"
            );
        }
    }

    #[test]
    fn equivocated_prepare_split_heals_via_quorum_floor_repropose() {
        // An equivocating leader sends one payload for seq 1 to replica 2
        // and a conflicting one to replicas 1 and 3. The fork gathers
        // 2f+1 prepares (the leader's implicit vote counts on both
        // sides), so 1 and 3 execute it — but the commit quorum is stuck
        // at two votes, so no certificate ever forms, and replica 2 holds
        // a payload that can never quorum. The new leader must re-propose
        // down to the quorum's *minimum* execution horizon so replica 2
        // re-runs the block by consensus and the certificate finally
        // forms on every survivor.
        let mut bus = Bus::new(4);
        let honest = block(0xAA, 2);
        let fork = block(0xFF, 2);
        for (to, txs) in [(1u32, &fork), (2, &honest), (3, &fork)] {
            bus.deliver(
                0,
                to,
                PeerMsg::PrePrepare {
                    view: 0,
                    seq: 1,
                    txs: txs.clone(),
                },
            );
        }
        bus.pump(false);
        assert_eq!(
            bus.replicas[1].last_exec(),
            1,
            "fork side failed to execute"
        );
        assert_eq!(
            bus.replicas[3].last_exec(),
            1,
            "fork side failed to execute"
        );
        assert_eq!(
            bus.replicas[2].last_exec(),
            0,
            "split side executed a minority digest"
        );
        assert!(
            bus.committed.iter().all(|c| c.is_empty()),
            "a split block must not certify"
        );

        // The equivocator goes dark; the survivors elect replica 1.
        bus.dead.insert(0);
        for _ in 0..40 {
            bus.tick_all(10);
            bus.pump(false);
        }
        for i in bus.live() {
            assert_eq!(bus.replicas[i].view(), 1, "replica {i} not in view 1");
            assert_eq!(
                bus.replicas[i].last_exec(),
                1,
                "replica {i} did not recover seq 1 from the re-proposal"
            );
            assert_eq!(
                bus.committed[i],
                vec![1],
                "replica {i} never certified the recovered block"
            );
        }
        // All survivors converged on the fork digest (the prepared side).
        let fork_digest = block_digest(1, &fork);
        for i in bus.live() {
            assert_eq!(bus.executed[i].last(), Some(&(1, fork_digest)));
        }
        // And the healed cluster keeps committing normally.
        bus.propose(1, block(2, 2)).unwrap();
        bus.pump(false);
        bus.assert_converged(2);
    }
}
