//! AES-GCM authenticated encryption with associated data (NIST SP 800-38D).
//!
//! This is the workhorse of D-Protocol (formula (3)): contract states and
//! code are sealed as `Enc(k_states, data)` with on-chain run-time metadata
//! (contract identity, owner, security version) as the *associated data*,
//! so a malicious host can neither read nor splice ciphertexts between
//! contracts.

use crate::aes::Aes;
use crate::CryptoError;

/// Size of the authentication tag in bytes.
pub const TAG_LEN: usize = 16;
/// Size of the nonce in bytes (GCM's fast path: 96-bit IVs only).
pub const NONCE_LEN: usize = 12;

/// An AES-GCM cipher bound to one key (AES-128 or AES-256 by key length).
#[derive(Clone)]
pub struct AesGcm {
    aes: Aes,
    /// GHASH subkey H = E_K(0^128), kept as a u128 (big-endian bit order).
    h: u128,
}

impl AesGcm {
    /// Construct from a 16- or 32-byte key.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        let aes = Aes::try_new(key)?;
        let mut zero = [0u8; 16];
        aes.encrypt_block(&mut zero);
        Ok(AesGcm {
            aes,
            h: u128::from_be_bytes(zero),
        })
    }

    /// Encrypt `plaintext`, authenticating `aad` too. Returns
    /// `ciphertext || tag` (tag appended, 16 bytes).
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        self.ctr(nonce, 2, &mut out);
        let tag = self.tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypt and verify `ciphertext || tag`. Returns the plaintext, or an
    /// opaque error on any authentication failure.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::TruncatedInput);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expect = self.tag(nonce, aad, ct);
        if !crate::ct_eq(&expect, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut pt = ct.to_vec();
        self.ctr(nonce, 2, &mut pt);
        Ok(pt)
    }

    /// CTR keystream XOR starting from block counter `ctr0`.
    fn ctr(&self, nonce: &[u8; NONCE_LEN], ctr0: u32, data: &mut [u8]) {
        let mut counter_block = [0u8; 16];
        counter_block[..12].copy_from_slice(nonce);
        let mut ctr = ctr0;
        for chunk in data.chunks_mut(16) {
            counter_block[12..].copy_from_slice(&ctr.to_be_bytes());
            let mut ks = counter_block;
            self.aes.encrypt_block(&mut ks);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            ctr = ctr.wrapping_add(1);
        }
    }

    /// Compute the GCM tag over `aad` and `ct`.
    fn tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ct: &[u8]) -> [u8; 16] {
        let mut y = 0u128;
        ghash_update(&mut y, self.h, aad);
        ghash_update(&mut y, self.h, ct);
        let lens = ((aad.len() as u128 * 8) << 64) | (ct.len() as u128 * 8);
        y = gf_mul(y ^ lens, self.h);
        // Encrypt with J0 = nonce || 0x00000001.
        let mut j0 = [0u8; 16];
        j0[..12].copy_from_slice(nonce);
        j0[15] = 1;
        self.aes.encrypt_block(&mut j0);
        (y ^ u128::from_be_bytes(j0)).to_be_bytes()
    }
}

/// Absorb `data` (zero-padded to 16-byte blocks) into the GHASH state.
fn ghash_update(y: &mut u128, h: u128, data: &[u8]) {
    for chunk in data.chunks(16) {
        let mut block = [0u8; 16];
        block[..chunk.len()].copy_from_slice(chunk);
        *y = gf_mul(*y ^ u128::from_be_bytes(block), h);
    }
}

/// GF(2^128) multiplication with GCM's reflected-bit convention
/// (polynomial x^128 + x^7 + x^2 + x + 1, MSB-first within each byte).
fn gf_mul(x: u128, y: u128) -> u128 {
    let mut z = 0u128;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 != 0 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb != 0 {
            v ^= 0xe1 << 120;
        }
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex, unhex};

    fn nonce(h: &str) -> [u8; 12] {
        let v = unhex(h);
        let mut n = [0u8; 12];
        n.copy_from_slice(&v);
        n
    }

    // NIST GCM test case 1: empty everything.
    #[test]
    fn nist_case1_empty() {
        let gcm = AesGcm::new(&[0u8; 16]).unwrap();
        let sealed = gcm.seal(&[0u8; 12], &[], &[]);
        assert_eq!(hex(&sealed), "58e2fccefa7e3061367f1d57a4e7455a");
    }

    // NIST GCM test case 2: 16 zero bytes of plaintext.
    #[test]
    fn nist_case2_single_block() {
        let gcm = AesGcm::new(&[0u8; 16]).unwrap();
        let sealed = gcm.seal(&[0u8; 12], &[], &[0u8; 16]);
        assert_eq!(
            hex(&sealed),
            "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf"
        );
    }

    // NIST GCM test case 3: 4 blocks, no AAD.
    #[test]
    fn nist_case3_four_blocks() {
        let key = unhex("feffe9928665731c6d6a8f9467308308");
        let gcm = AesGcm::new(&key).unwrap();
        let pt = unhex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let sealed = gcm.seal(&nonce("cafebabefacedbaddecaf888"), &[], &pt);
        assert_eq!(
            hex(&sealed),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985\
             4d5c2af327cd64a62cf35abd2ba6fab4"
        );
    }

    // NIST GCM test case 4: 60 bytes of plaintext, 20 bytes AAD.
    #[test]
    fn nist_case4_with_aad() {
        let key = unhex("feffe9928665731c6d6a8f9467308308");
        let gcm = AesGcm::new(&key).unwrap();
        let pt = unhex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = unhex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let n = nonce("cafebabefacedbaddecaf888");
        let sealed = gcm.seal(&n, &aad, &pt);
        assert_eq!(
            hex(&sealed),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091\
             5bc94fbc3221a5db94fae95ae7121a47"
        );
        // Round-trip and AAD binding.
        assert_eq!(gcm.open(&n, &aad, &sealed).unwrap(), pt);
        assert_eq!(
            gcm.open(&n, b"wrong aad", &sealed).unwrap_err(),
            CryptoError::AuthenticationFailed
        );
    }

    #[test]
    fn aes256_gcm_round_trip() {
        let gcm = AesGcm::new(&[7u8; 32]).unwrap();
        let n = [9u8; 12];
        let pt = b"financial grade consortium blockchain".to_vec();
        let sealed = gcm.seal(&n, b"contract:0xabc|owner:bank1|sv:3", &pt);
        assert_eq!(
            gcm.open(&n, b"contract:0xabc|owner:bank1|sv:3", &sealed)
                .unwrap(),
            pt
        );
    }

    #[test]
    fn tamper_detection_every_byte() {
        let gcm = AesGcm::new(&[1u8; 16]).unwrap();
        let n = [2u8; 12];
        let sealed = gcm.seal(&n, b"aad", b"some confidential state value");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert!(
                gcm.open(&n, b"aad", &bad).is_err(),
                "byte {i} flip undetected"
            );
        }
    }

    #[test]
    fn truncated_ciphertext_rejected() {
        let gcm = AesGcm::new(&[1u8; 16]).unwrap();
        assert_eq!(
            gcm.open(&[0u8; 12], &[], &[0u8; 8]).unwrap_err(),
            CryptoError::TruncatedInput
        );
    }

    #[test]
    fn distinct_nonces_distinct_ciphertexts() {
        let gcm = AesGcm::new(&[3u8; 16]).unwrap();
        let a = gcm.seal(&[0u8; 12], &[], b"same plaintext");
        let b = gcm.seal(&[1u8; 12], &[], b"same plaintext");
        assert_ne!(a, b);
    }
}
