//! AES-128 / AES-256 block cipher (FIPS 197).
//!
//! A straightforward S-box implementation: the simulation's cost model
//! charges hardware-class (AES-NI) cycles per byte, so this code only needs
//! to be *correct*; the wall-clock figures in the paper harness come from
//! the calibrated model, while the Criterion benches report this software
//! implementation's real speed.

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box, computed once at first use.
fn inv_sbox() -> &'static [u8; 256] {
    use std::sync::OnceLock;
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let mut inv = [0u8; 256];
        for (i, &s) in SBOX.iter().enumerate() {
            inv[s as usize] = i as u8;
        }
        inv
    })
}

/// Multiply in GF(2^8) with the AES polynomial x^8 + x^4 + x^3 + x + 1.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// An expanded AES key (128- or 256-bit), usable for block encrypt/decrypt.
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
}

impl Aes {
    /// Expand a 16-byte (AES-128) or 32-byte (AES-256) key.
    ///
    /// # Panics
    /// Panics if the key is neither 16 nor 32 bytes; use
    /// [`Aes::try_new`] for fallible construction.
    pub fn new(key: &[u8]) -> Self {
        Self::try_new(key).expect("AES key must be 16 or 32 bytes")
    }

    /// Fallible constructor.
    pub fn try_new(key: &[u8]) -> Result<Self, crate::CryptoError> {
        let (nk, rounds) = match key.len() {
            16 => (4usize, 10usize),
            32 => (8, 14),
            _ => return Err(crate::CryptoError::InvalidKeyLength),
        };
        // Key expansion over 4-byte words.
        let total_words = 4 * (rounds + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        let mut rcon = 1u8;
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for byte in temp.iter_mut() {
                    *byte = SBOX[*byte as usize];
                }
                temp[0] ^= rcon;
                rcon = gmul(rcon, 2);
            } else if nk > 6 && i % nk == 4 {
                for byte in temp.iter_mut() {
                    *byte = SBOX[*byte as usize];
                }
            }
            let prev = w[i - nk];
            w.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }
        let mut round_keys = Vec::with_capacity(rounds + 1);
        for r in 0..=rounds {
            let mut rk = [0u8; 16];
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
            round_keys.push(rk);
        }
        Ok(Aes { round_keys, rounds })
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for r in 1..self.rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[r]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Decrypt one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[self.rounds]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for r in (1..self.rounds).rev() {
            add_round_key(block, &self.round_keys[r]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }
}

// The state is column-major: state[row][col] = block[4*col + row].

fn add_round_key(block: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        block[i] ^= rk[i];
    }
}

fn sub_bytes(block: &mut [u8; 16]) {
    for b in block.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(block: &mut [u8; 16]) {
    let inv = inv_sbox();
    for b in block.iter_mut() {
        *b = inv[*b as usize];
    }
}

fn shift_rows(block: &mut [u8; 16]) {
    let orig = *block;
    for row in 1..4 {
        for col in 0..4 {
            block[4 * col + row] = orig[4 * ((col + row) % 4) + row];
        }
    }
}

fn inv_shift_rows(block: &mut [u8; 16]) {
    let orig = *block;
    for row in 1..4 {
        for col in 0..4 {
            block[4 * ((col + row) % 4) + row] = orig[4 * col + row];
        }
    }
}

fn mix_columns(block: &mut [u8; 16]) {
    for col in 0..4 {
        let a0 = block[4 * col];
        let a1 = block[4 * col + 1];
        let a2 = block[4 * col + 2];
        let a3 = block[4 * col + 3];
        block[4 * col] = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3;
        block[4 * col + 1] = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3;
        block[4 * col + 2] = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3);
        block[4 * col + 3] = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2);
    }
}

fn inv_mix_columns(block: &mut [u8; 16]) {
    for col in 0..4 {
        let a0 = block[4 * col];
        let a1 = block[4 * col + 1];
        let a2 = block[4 * col + 2];
        let a3 = block[4 * col + 3];
        block[4 * col] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9);
        block[4 * col + 1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13);
        block[4 * col + 2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11);
        block[4 * col + 3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex, unhex};

    // FIPS 197 Appendix C vectors.
    #[test]
    fn fips197_aes128() {
        let key = unhex("000102030405060708090a0b0c0d0e0f");
        let aes = Aes::new(&key);
        let mut block = [0u8; 16];
        block.copy_from_slice(&unhex("00112233445566778899aabbccddeeff"));
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
        aes.decrypt_block(&mut block);
        assert_eq!(hex(&block), "00112233445566778899aabbccddeeff");
    }

    #[test]
    fn fips197_aes256() {
        let key = unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let aes = Aes::new(&key);
        let mut block = [0u8; 16];
        block.copy_from_slice(&unhex("00112233445566778899aabbccddeeff"));
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), "8ea2b7ca516745bfeafc49904b496089");
        aes.decrypt_block(&mut block);
        assert_eq!(hex(&block), "00112233445566778899aabbccddeeff");
    }

    #[test]
    fn rejects_bad_key_length() {
        assert!(Aes::try_new(&[0u8; 15]).is_err());
        assert!(Aes::try_new(&[0u8; 24]).is_err()); // AES-192 unsupported by design
        assert!(Aes::try_new(&[0u8; 33]).is_err());
    }

    #[test]
    fn encrypt_decrypt_round_trip_random_blocks() {
        let key = [0x42u8; 32];
        let aes = Aes::new(&key);
        let mut state = 0x12345678u64;
        for _ in 0..50 {
            let mut block = [0u8; 16];
            for b in block.iter_mut() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (state >> 33) as u8;
            }
            let orig = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, orig);
            aes.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }

    #[test]
    fn gmul_matches_known_products() {
        assert_eq!(gmul(0x57, 0x83), 0xc1); // FIPS 197 §4.2 example
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(1, 0xab), 0xab);
        assert_eq!(gmul(0, 0xff), 0);
    }
}
