//! Error type shared by all primitives in this crate.

use std::fmt;

/// Errors raised by cryptographic operations.
///
/// Authenticated-decryption failures are deliberately opaque: the caller
/// learns *that* verification failed, never *why*, so a malicious host
/// probing the enclave boundary (§3.3 of the paper) gains no oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// AEAD tag mismatch or corrupted ciphertext.
    AuthenticationFailed,
    /// Ciphertext (or other input) shorter than the minimum framing.
    TruncatedInput,
    /// A key had the wrong length for the requested algorithm.
    InvalidKeyLength,
    /// A point or signature failed to decode as a valid curve element.
    InvalidPoint,
    /// A signature did not verify.
    InvalidSignature,
    /// An all-zero / low-order Diffie–Hellman shared secret was produced.
    WeakSharedSecret,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            CryptoError::AuthenticationFailed => "authenticated decryption failed",
            CryptoError::TruncatedInput => "input too short",
            CryptoError::InvalidKeyLength => "invalid key length",
            CryptoError::InvalidPoint => "invalid curve point encoding",
            CryptoError::InvalidSignature => "signature verification failed",
            CryptoError::WeakSharedSecret => "weak Diffie-Hellman shared secret",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for CryptoError {}
