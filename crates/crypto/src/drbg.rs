//! HMAC-DRBG (NIST SP 800-90A shaped), a deterministic random bit generator.
//!
//! The whole CONFIDE simulation is reproducible: every node, enclave and
//! client draws randomness from a seeded DRBG, so figure harnesses and
//! failure-injection tests replay bit-for-bit.

use crate::hmac::hmac_sha256;

/// Deterministic HMAC-SHA-256 DRBG.
#[derive(Clone)]
pub struct HmacDrbg {
    k: [u8; 32],
    v: [u8; 32],
    reseed_counter: u64,
}

impl HmacDrbg {
    /// Instantiate from seed material (entropy ‖ nonce ‖ personalization).
    pub fn new(seed: &[u8]) -> HmacDrbg {
        let mut drbg = HmacDrbg {
            k: [0u8; 32],
            v: [1u8; 32],
            reseed_counter: 1,
        };
        drbg.update(Some(seed));
        drbg
    }

    /// Convenience: instantiate from a u64 label (tests, simulations).
    pub fn from_u64(seed: u64) -> HmacDrbg {
        HmacDrbg::new(&seed.to_le_bytes())
    }

    /// Mix additional input into the state.
    pub fn reseed(&mut self, data: &[u8]) {
        self.update(Some(data));
        self.reseed_counter = 1;
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut buf = Vec::with_capacity(32 + 1 + provided.map_or(0, |p| p.len()));
        buf.extend_from_slice(&self.v);
        buf.push(0x00);
        if let Some(p) = provided {
            buf.extend_from_slice(p);
        }
        self.k = hmac_sha256(&self.k, &buf);
        self.v = hmac_sha256(&self.k, &self.v);
        if let Some(p) = provided {
            let mut buf2 = Vec::with_capacity(33 + p.len());
            buf2.extend_from_slice(&self.v);
            buf2.push(0x01);
            buf2.extend_from_slice(p);
            self.k = hmac_sha256(&self.k, &buf2);
            self.v = hmac_sha256(&self.k, &self.v);
        }
    }

    /// Fill `out` with pseudorandom bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        let mut produced = 0;
        while produced < out.len() {
            self.v = hmac_sha256(&self.k, &self.v);
            let take = (out.len() - produced).min(32);
            out[produced..produced + take].copy_from_slice(&self.v[..take]);
            produced += take;
        }
        self.update(None);
        self.reseed_counter += 1;
    }

    /// Draw a 32-byte value (key material, nonce seeds…).
    pub fn gen32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.fill(&mut out);
        out
    }

    /// Draw a 12-byte AES-GCM nonce.
    pub fn gen_nonce(&mut self) -> [u8; 12] {
        let mut out = [0u8; 12];
        self.fill(&mut out);
        out
    }

    /// Draw a uniform-ish u64.
    pub fn gen_u64(&mut self) -> u64 {
        let mut out = [0u8; 8];
        self.fill(&mut out);
        u64::from_le_bytes(out)
    }

    /// Draw a u64 in `[0, bound)`. `bound` must be nonzero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.gen_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = HmacDrbg::from_u64(42);
        let mut b = HmacDrbg::from_u64(42);
        assert_eq!(a.gen32(), b.gen32());
        assert_eq!(a.gen_u64(), b.gen_u64());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::from_u64(1);
        let mut b = HmacDrbg::from_u64(2);
        assert_ne!(a.gen32(), b.gen32());
    }

    #[test]
    fn successive_draws_differ() {
        let mut d = HmacDrbg::from_u64(7);
        let x = d.gen32();
        let y = d.gen32();
        assert_ne!(x, y);
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::from_u64(9);
        let mut b = HmacDrbg::from_u64(9);
        b.reseed(b"extra entropy");
        assert_ne!(a.gen32(), b.gen32());
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut d = HmacDrbg::from_u64(3);
        for _ in 0..200 {
            let v = d.gen_range(7);
            assert!(v < 7);
        }
        // All residues eventually appear.
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[d.gen_range(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn long_fill_spans_blocks() {
        let mut d = HmacDrbg::from_u64(11);
        let mut buf = [0u8; 100];
        d.fill(&mut buf);
        // No 32-byte period: block 0 != block 1.
        assert_ne!(&buf[..32], &buf[32..64]);
    }
}
