//! HMAC (RFC 2104) over SHA-256 and SHA-512.

use crate::sha2::{Sha256, Sha512};

/// HMAC-SHA-256 of `data` under `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

/// HMAC-SHA-512 of `data` under `key`.
pub fn hmac_sha512(key: &[u8], data: &[u8]) -> [u8; 64] {
    let mut k0 = [0u8; 128];
    if key.len() > 128 {
        k0[..64].copy_from_slice(&Sha512::digest(key));
    } else {
        k0[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha512::new();
    let ipad: Vec<u8> = k0.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha512::new();
    let opad: Vec<u8> = k0.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Incremental HMAC-SHA-256, for streaming MACs over large payloads.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Key the MAC. Keys longer than the block size are pre-hashed per RFC 2104.
    pub fn new(key: &[u8]) -> Self {
        let mut k0 = [0u8; 64];
        if key.len() > 64 {
            k0[..32].copy_from_slice(&Sha256::digest(key));
        } else {
            k0[..key.len()].copy_from_slice(key);
        }
        let mut inner = Sha256::new();
        let ipad: Vec<u8> = k0.iter().map(|b| b ^ 0x36).collect();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        let opad: Vec<u8> = k0.iter().map(|b| b ^ 0x5c).collect();
        outer.update(&opad);
        HmacSha256 { inner, outer }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produce the tag.
    pub fn finalize(mut self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex, unhex};

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        let tag512 = hmac_sha512(&key, b"Hi There");
        assert_eq!(
            hex(&tag512),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
        );
    }

    #[test]
    fn rfc4231_case2_jefe() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3_many_aa() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = unhex("000102030405060708090a0b0c");
        let data: Vec<u8> = (0..500u32).map(|i| i as u8).collect();
        let mut mac = HmacSha256::new(&key);
        for chunk in data.chunks(13) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), hmac_sha256(&key, &data));
    }
}
