//! Arithmetic in GF(2^255 − 19), the base field of Curve25519.
//!
//! Representation: five 51-bit limbs in `u64`s (radix 2^51), the classic
//! ref10/dalek layout. Multiplication accumulates into `u128` and folds the
//! 2^255 overflow back with the factor 19.

/// Mask selecting the low 51 bits of a limb.
const LOW_51: u64 = (1 << 51) - 1;

/// A field element of GF(2^255 − 19). Limbs are little-endian, each
/// nominally < 2^52 between reductions.
#[derive(Clone, Copy, Debug)]
pub struct Fe(pub [u64; 5]);

// Named `add`/`sub`/`mul`/`neg` (rather than the `std::ops` traits) to
// keep call sites explicit about field arithmetic vs integer arithmetic.
#[allow(clippy::should_implement_trait)]
impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0; 5]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Construct from a small integer.
    pub fn from_u64(v: u64) -> Fe {
        let mut f = Fe::ZERO;
        f.0[0] = v & LOW_51;
        f.0[1] = v >> 51;
        f
    }

    /// Load from 32 little-endian bytes, ignoring the top bit (bit 255).
    pub fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load8 = |s: &[u8]| -> u64 {
            let mut b = [0u8; 8];
            b.copy_from_slice(s);
            u64::from_le_bytes(b)
        };
        Fe([
            load8(&bytes[0..8]) & LOW_51,
            (load8(&bytes[6..14]) >> 3) & LOW_51,
            (load8(&bytes[12..20]) >> 6) & LOW_51,
            (load8(&bytes[19..27]) >> 1) & LOW_51,
            (load8(&bytes[24..32]) >> 12) & LOW_51,
        ])
    }

    /// Serialize to 32 little-endian bytes, fully reduced mod p.
    pub fn to_bytes(self) -> [u8; 32] {
        // First bring every limb below 2^52 with two carry passes.
        let mut l = self.reduce_weak().0;
        // Compute h + 19 to detect h >= p, then subtract p if so by adding
        // 19 and letting the 2^255 bit fall off.
        let mut q = (l[0] + 19) >> 51;
        q = (l[1] + q) >> 51;
        q = (l[2] + q) >> 51;
        q = (l[3] + q) >> 51;
        q = (l[4] + q) >> 51;
        l[0] += 19 * q;
        // Carry and mask away bit 255.
        let mut carry = l[0] >> 51;
        l[0] &= LOW_51;
        for limb in l.iter_mut().skip(1) {
            *limb += carry;
            carry = *limb >> 51;
            *limb &= LOW_51;
        }
        // carry here is the 2^255 bit; discarding it subtracts 2^255 ≡ 19+p…
        // but since we added 19·q above it exactly cancels when q=1.
        let mut out = [0u8; 32];
        let write = |out: &mut [u8; 32], bit: usize, v: u64| {
            let byte = bit / 8;
            let shift = bit % 8;
            let v = (v as u128) << shift;
            for i in 0..8 {
                if byte + i < 32 {
                    out[byte + i] |= (v >> (8 * i)) as u8;
                }
            }
        };
        write(&mut out, 0, l[0]);
        write(&mut out, 51, l[1]);
        write(&mut out, 102, l[2]);
        write(&mut out, 153, l[3]);
        write(&mut out, 204, l[4]);
        out
    }

    /// One carry pass: brings limbs below 2^52.
    fn reduce_weak(self) -> Fe {
        let mut l = self.0;
        for _ in 0..2 {
            let c0 = l[0] >> 51;
            l[0] &= LOW_51;
            l[1] += c0;
            let c1 = l[1] >> 51;
            l[1] &= LOW_51;
            l[2] += c1;
            let c2 = l[2] >> 51;
            l[2] &= LOW_51;
            l[3] += c2;
            let c3 = l[3] >> 51;
            l[3] &= LOW_51;
            l[4] += c3;
            let c4 = l[4] >> 51;
            l[4] &= LOW_51;
            l[0] += c4 * 19;
        }
        Fe(l)
    }

    /// Addition.
    pub fn add(self, rhs: Fe) -> Fe {
        Fe([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
            self.0[4] + rhs.0[4],
        ])
        .reduce_weak()
    }

    /// Subtraction (adds 2p first to avoid underflow).
    pub fn sub(self, rhs: Fe) -> Fe {
        // 2p in radix 2^51.
        const TWO_P: [u64; 5] = [
            0xfffffffffffda,
            0xffffffffffffe,
            0xffffffffffffe,
            0xffffffffffffe,
            0xffffffffffffe,
        ];
        Fe([
            self.0[0] + TWO_P[0] - rhs.0[0],
            self.0[1] + TWO_P[1] - rhs.0[1],
            self.0[2] + TWO_P[2] - rhs.0[2],
            self.0[3] + TWO_P[3] - rhs.0[3],
            self.0[4] + TWO_P[4] - rhs.0[4],
        ])
        .reduce_weak()
    }

    /// Negation.
    pub fn neg(self) -> Fe {
        Fe::ZERO.sub(self)
    }

    /// Multiplication.
    pub fn mul(self, rhs: Fe) -> Fe {
        let a = &self.0;
        let b = &rhs.0;
        let m = |x: u64, y: u64| x as u128 * y as u128;
        // Fold limbs above 2^255 down with factor 19.
        let b1_19 = b[1] * 19;
        let b2_19 = b[2] * 19;
        let b3_19 = b[3] * 19;
        let b4_19 = b[4] * 19;
        let c0 = m(a[0], b[0]) + m(a[4], b1_19) + m(a[3], b2_19) + m(a[2], b3_19) + m(a[1], b4_19);
        let c1 = m(a[1], b[0]) + m(a[0], b[1]) + m(a[4], b2_19) + m(a[3], b3_19) + m(a[2], b4_19);
        let c2 = m(a[2], b[0]) + m(a[1], b[1]) + m(a[0], b[2]) + m(a[4], b3_19) + m(a[3], b4_19);
        let c3 = m(a[3], b[0]) + m(a[2], b[1]) + m(a[1], b[2]) + m(a[0], b[3]) + m(a[4], b4_19);
        let c4 = m(a[4], b[0]) + m(a[3], b[1]) + m(a[2], b[2]) + m(a[1], b[3]) + m(a[0], b[4]);
        Fe::carry_wide([c0, c1, c2, c3, c4])
    }

    /// Squaring (same as mul; kept separate for call-site clarity).
    pub fn square(self) -> Fe {
        self.mul(self)
    }

    fn carry_wide(mut c: [u128; 5]) -> Fe {
        let mut l = [0u64; 5];
        // Two rounds of carrying handles the 128-bit accumulators.
        for _ in 0..2 {
            let carry0 = c[0] >> 51;
            c[0] &= LOW_51 as u128;
            c[1] += carry0;
            let carry1 = c[1] >> 51;
            c[1] &= LOW_51 as u128;
            c[2] += carry1;
            let carry2 = c[2] >> 51;
            c[2] &= LOW_51 as u128;
            c[3] += carry2;
            let carry3 = c[3] >> 51;
            c[3] &= LOW_51 as u128;
            c[4] += carry3;
            let carry4 = c[4] >> 51;
            c[4] &= LOW_51 as u128;
            c[0] += carry4 * 19;
        }
        for i in 0..5 {
            l[i] = c[i] as u64;
        }
        Fe(l).reduce_weak()
    }

    /// Generic exponentiation by a little-endian 32-byte exponent.
    pub fn pow(self, exp_le: &[u8; 32]) -> Fe {
        let mut result = Fe::ONE;
        // MSB-first square-and-multiply.
        for byte_i in (0..32).rev() {
            for bit in (0..8).rev() {
                result = result.square();
                if (exp_le[byte_i] >> bit) & 1 == 1 {
                    result = result.mul(self);
                }
            }
        }
        result
    }

    /// Multiplicative inverse via Fermat: x^(p−2).
    pub fn invert(self) -> Fe {
        // p − 2 = 2^255 − 21, little-endian bytes.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xeb;
        exp[31] = 0x7f;
        self.pow(&exp)
    }

    /// x^((p−5)/8) = x^(2^252 − 3), the core of the Ed25519 square-root.
    pub fn pow_p58(self) -> Fe {
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfd;
        exp[31] = 0x0f;
        self.pow(&exp)
    }

    /// True if the element is zero (after full reduction).
    pub fn is_zero(self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// Low bit of the fully-reduced value — Ed25519's "sign" of x.
    pub fn is_negative(self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    /// Equality after full reduction.
    pub fn ct_eq(self, other: Fe) -> bool {
        self.to_bytes() == other.to_bytes()
    }

    /// Conditional swap on `flag` (1 = swap). Branch-light.
    pub fn cswap(a: &mut Fe, b: &mut Fe, flag: u64) {
        let mask = 0u64.wrapping_sub(flag);
        for i in 0..5 {
            let t = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= t;
            b.0[i] ^= t;
        }
    }
}

/// √−1 mod p, computed once as 2^((p−1)/4).
pub fn sqrt_m1() -> Fe {
    use std::sync::OnceLock;
    static SQRT_M1: OnceLock<Fe> = OnceLock::new();
    *SQRT_M1.get_or_init(|| {
        // (p − 1) / 4 = (2^255 − 20) / 4 = 2^253 − 5.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfb;
        exp[31] = 0x1f;
        Fe::from_u64(2).pow(&exp)
    })
}

/// The Edwards curve constant d = −121665/121666 mod p, computed at startup.
pub fn edwards_d() -> Fe {
    use std::sync::OnceLock;
    static D: OnceLock<Fe> = OnceLock::new();
    *D.get_or_init(|| {
        Fe::from_u64(121665)
            .neg()
            .mul(Fe::from_u64(121666).invert())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_round_trips() {
        let mut b = [0u8; 32];
        b[0] = 1;
        assert_eq!(Fe::from_bytes(&b).to_bytes(), b);
    }

    #[test]
    fn p_reduces_to_zero() {
        // p = 2^255 − 19 as little-endian bytes.
        let mut p = [0xffu8; 32];
        p[0] = 0xed;
        p[31] = 0x7f;
        assert!(Fe::from_bytes(&p).is_zero());
    }

    #[test]
    fn p_minus_one_is_minus_one() {
        let mut pm1 = [0xffu8; 32];
        pm1[0] = 0xec;
        pm1[31] = 0x7f;
        let fe = Fe::from_bytes(&pm1);
        assert!(fe.add(Fe::ONE).is_zero());
        assert!(Fe::ONE.neg().ct_eq(fe));
    }

    #[test]
    fn mul_matches_small_integers() {
        let a = Fe::from_u64(123456789);
        let b = Fe::from_u64(987654321);
        let prod = a.mul(b);
        assert!(prod.ct_eq(Fe::from_u64(123456789 * 987654321)));
    }

    #[test]
    fn invert_is_inverse() {
        let a = Fe::from_u64(0xdeadbeefcafe);
        assert!(a.mul(a.invert()).ct_eq(Fe::ONE));
        // A larger, byte-loaded element.
        let mut bytes = [0u8; 32];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i * 7 + 3) as u8;
        }
        bytes[31] &= 0x7f;
        let x = Fe::from_bytes(&bytes);
        assert!(x.mul(x.invert()).ct_eq(Fe::ONE));
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = sqrt_m1();
        assert!(i.square().ct_eq(Fe::ONE.neg()));
    }

    #[test]
    fn edwards_d_satisfies_definition() {
        // d · 121666 + 121665 ≡ 0
        let d = edwards_d();
        assert!(d
            .mul(Fe::from_u64(121666))
            .add(Fe::from_u64(121665))
            .is_zero());
    }

    #[test]
    fn sub_and_neg_agree() {
        let a = Fe::from_u64(555);
        let b = Fe::from_u64(777);
        let d1 = a.sub(b);
        let d2 = a.add(b.neg());
        assert!(d1.ct_eq(d2));
        assert!(d1.add(b).ct_eq(a));
    }

    #[test]
    fn cswap_swaps() {
        let mut a = Fe::from_u64(1);
        let mut b = Fe::from_u64(2);
        Fe::cswap(&mut a, &mut b, 0);
        assert!(a.ct_eq(Fe::from_u64(1)));
        Fe::cswap(&mut a, &mut b, 1);
        assert!(a.ct_eq(Fe::from_u64(2)));
        assert!(b.ct_eq(Fe::from_u64(1)));
    }

    #[test]
    fn pow_small_exponent() {
        let a = Fe::from_u64(3);
        let mut exp = [0u8; 32];
        exp[0] = 5; // 3^5 = 243
        assert!(a.pow(&exp).ct_eq(Fe::from_u64(243)));
    }
}
