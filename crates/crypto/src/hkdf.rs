//! HKDF (RFC 5869) over HMAC-SHA-256.
//!
//! CONFIDE uses HKDF in two places: deriving the one-time transaction key
//! `k_tx` from a user root key and the transaction hash (T-Protocol,
//! §3.2.3), and deriving the session keys of the digital envelope.

use crate::hmac::hmac_sha256;

/// HKDF-Extract: `PRK = HMAC(salt, ikm)`.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: derive `out.len()` bytes (≤ 255·32) from `prk` and `info`.
///
/// # Panics
/// Panics if more than `255 * 32` bytes are requested, per RFC 5869.
pub fn expand(prk: &[u8; 32], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * 32, "HKDF-Expand output too long");
    let mut t: Vec<u8> = Vec::with_capacity(32 + info.len() + 1);
    let mut counter = 1u8;
    let mut produced = 0usize;
    let mut prev: Option<[u8; 32]> = None;
    while produced < out.len() {
        t.clear();
        if let Some(p) = prev {
            t.extend_from_slice(&p);
        }
        t.extend_from_slice(info);
        t.push(counter);
        let block = hmac_sha256(prk, &t);
        let take = (out.len() - produced).min(32);
        out[produced..produced + take].copy_from_slice(&block[..take]);
        produced += take;
        prev = Some(block);
        counter = counter.wrapping_add(1);
    }
}

/// One-call extract-then-expand.
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], out: &mut [u8]) {
    let prk = extract(salt, ikm);
    expand(&prk, info, out);
}

/// Derive a fixed 32-byte key — the common case for AES-256 keys.
pub fn derive_key32(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; 32] {
    let mut out = [0u8; 32];
    derive(salt, ikm, info, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex, unhex};

    // RFC 5869 Test Case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 Test Case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let prk = extract(&[], &ikm);
        assert_eq!(
            hex(&prk),
            "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &[], &mut okm);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_multi_block_is_chained() {
        let prk = extract(b"salt", b"ikm");
        let mut long = [0u8; 100];
        expand(&prk, b"info", &mut long);
        let mut short = [0u8; 32];
        expand(&prk, b"info", &mut short);
        assert_eq!(&long[..32], &short[..]);
        // Second block must differ from the first (counter is mixed in).
        assert_ne!(&long[..32], &long[32..64]);
    }
}
