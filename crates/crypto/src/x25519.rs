//! X25519 Diffie–Hellman (RFC 7748), Montgomery-ladder scalar multiplication.
//!
//! Used by K-Protocol's Mutual Authenticated Protocol (enclave↔enclave key
//! agreement over attestation, §3.2.2) and by the T-Protocol digital
//! envelope's ephemeral key exchange.

use crate::field25519::Fe;
use crate::CryptoError;

/// Clamp a 32-byte scalar per RFC 7748 §5.
pub fn clamp(scalar: &mut [u8; 32]) {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
}

/// X25519: scalar multiplication on the Montgomery curve. `scalar` is
/// clamped internally; `u` is the peer's public coordinate.
pub fn x25519(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let mut k = *scalar;
    clamp(&mut k);
    let x1 = Fe::from_bytes(u);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;
    const A24: u64 = 121665;
    for t in (0..255).rev() {
        let k_t = ((k[t / 8] >> (t % 8)) & 1) as u64;
        swap ^= k_t;
        Fe::cswap(&mut x2, &mut x3, swap);
        Fe::cswap(&mut z2, &mut z3, swap);
        swap = k_t;
        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(Fe::from_u64(A24).mul(e)));
    }
    Fe::cswap(&mut x2, &mut x3, swap);
    Fe::cswap(&mut z2, &mut z3, swap);
    x2.mul(z2.invert()).to_bytes()
}

/// Compute the public key for a secret scalar (scalar · base point 9).
pub fn x25519_base(scalar: &[u8; 32]) -> [u8; 32] {
    let mut nine = [0u8; 32];
    nine[0] = 9;
    x25519(scalar, &nine)
}

/// Diffie–Hellman: shared secret between `our_secret` and `their_public`.
/// Rejects the all-zero output produced by low-order points.
pub fn diffie_hellman(
    our_secret: &[u8; 32],
    their_public: &[u8; 32],
) -> Result<[u8; 32], CryptoError> {
    let shared = x25519(our_secret, their_public);
    if shared == [0u8; 32] {
        return Err(CryptoError::WeakSharedSecret);
    }
    Ok(shared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex, unhex};

    fn arr32(v: &[u8]) -> [u8; 32] {
        let mut a = [0u8; 32];
        a.copy_from_slice(v);
        a
    }

    // RFC 7748 §5.2 vector 1.
    #[test]
    fn rfc7748_vector1() {
        let scalar = arr32(&unhex(
            "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4",
        ));
        let u = arr32(&unhex(
            "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c",
        ));
        assert_eq!(
            hex(&x25519(&scalar, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    // RFC 7748 §6.1 Diffie–Hellman vectors (Alice & Bob).
    #[test]
    fn rfc7748_dh() {
        let alice_sk = arr32(&unhex(
            "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a",
        ));
        let bob_sk = arr32(&unhex(
            "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb",
        ));
        let alice_pk = x25519_base(&alice_sk);
        let bob_pk = x25519_base(&bob_sk);
        assert_eq!(
            hex(&alice_pk),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex(&bob_pk),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let s1 = diffie_hellman(&alice_sk, &bob_pk).unwrap();
        let s2 = diffie_hellman(&bob_sk, &alice_pk).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(
            hex(&s1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn low_order_point_rejected() {
        let sk = [0x40u8; 32];
        // u = 0 is a low-order point: shared secret is all-zero.
        assert_eq!(
            diffie_hellman(&sk, &[0u8; 32]).unwrap_err(),
            crate::CryptoError::WeakSharedSecret
        );
    }

    #[test]
    fn dh_is_symmetric_for_random_keys() {
        for seed in 0u8..5 {
            let a = [seed.wrapping_add(10); 32];
            let b = [seed.wrapping_add(100); 32];
            let pa = x25519_base(&a);
            let pb = x25519_base(&b);
            assert_eq!(
                diffie_hellman(&a, &pb).unwrap(),
                diffie_hellman(&b, &pa).unwrap()
            );
        }
    }
}
