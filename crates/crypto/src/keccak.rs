//! Keccak-256 (the pre-NIST padding variant used by Ethereum tooling).
//!
//! The paper's "Crypto Hash" synthetic workload (§6.1) runs SHA-256 and
//! Keccak 100 times per transaction; the EVM baseline also exposes Keccak
//! as its `SHA3` opcode.

const ROUNDS: usize = 24;

const RC: [u64; ROUNDS] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rotation offsets, indexed `[x][y]`.
const R: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

/// Apply the Keccak-f\[1600\] permutation in place.
pub fn keccak_f1600(a: &mut [[u64; 5]; 5]) {
    for &rc in RC.iter().take(ROUNDS) {
        // θ
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = a[x][0] ^ a[x][1] ^ a[x][2] ^ a[x][3] ^ a[x][4];
        }
        let mut d = [0u64; 5];
        for x in 0..5 {
            d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
        }
        for (x, col) in a.iter_mut().enumerate() {
            for lane in col.iter_mut() {
                *lane ^= d[x];
            }
        }
        // ρ and π
        let mut b = [[0u64; 5]; 5];
        for x in 0..5 {
            for y in 0..5 {
                b[y][(2 * x + 3 * y) % 5] = a[x][y].rotate_left(R[x][y]);
            }
        }
        // χ
        for x in 0..5 {
            for y in 0..5 {
                a[x][y] = b[x][y] ^ (!b[(x + 1) % 5][y] & b[(x + 2) % 5][y]);
            }
        }
        // ι
        a[0][0] ^= rc;
    }
}

/// Incremental Keccak-256 hasher (rate = 136 bytes, capacity = 512 bits).
#[derive(Clone)]
pub struct Keccak256 {
    state: [[u64; 5]; 5],
    buf: [u8; 136],
    buf_len: usize,
}

impl Default for Keccak256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Keccak256 {
    /// Rate in bytes for the 256-bit security level.
    pub const RATE: usize = 136;

    /// Create a fresh hasher.
    pub fn new() -> Self {
        Keccak256 {
            state: [[0; 5]; 5],
            buf: [0; 136],
            buf_len: 0,
        }
    }

    /// One-shot digest.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Absorb more input.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (Self::RATE - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == Self::RATE {
                let block = self.buf;
                self.absorb(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= Self::RATE {
            let (block, rest) = data.split_at(Self::RATE);
            let mut b = [0u8; 136];
            b.copy_from_slice(block);
            self.absorb(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Pad (Keccak `0x01` domain, not NIST SHA-3 `0x06`) and squeeze 32 bytes.
    pub fn finalize(mut self) -> [u8; 32] {
        let mut block = [0u8; 136];
        block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        block[self.buf_len] = 0x01;
        block[Self::RATE - 1] |= 0x80;
        self.absorb(&block);
        let mut out = [0u8; 32];
        for i in 0..4 {
            let lane = self.state[i % 5][i / 5];
            out[8 * i..8 * i + 8].copy_from_slice(&lane.to_le_bytes());
        }
        out
    }

    fn absorb(&mut self, block: &[u8; 136]) {
        for i in 0..Self::RATE / 8 {
            let mut lane = [0u8; 8];
            lane.copy_from_slice(&block[8 * i..8 * i + 8]);
            self.state[i % 5][i / 5] ^= u64::from_le_bytes(lane);
        }
        keccak_f1600(&mut self.state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn keccak256_known_vectors() {
        assert_eq!(
            hex(&Keccak256::digest(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
        assert_eq!(
            hex(&Keccak256::digest(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
        // The Ethereum function-selector example everyone knows.
        assert_eq!(
            &hex(&Keccak256::digest(b"transfer(address,uint256)"))[..8],
            "a9059cbb"
        );
    }

    #[test]
    fn keccak256_long_input_crosses_rate_boundary() {
        // Exercise multi-block absorption paths around the 136-byte rate.
        for len in [135usize, 136, 137, 272, 1000] {
            let data = vec![0x5au8; len];
            let mut h = Keccak256::new();
            for chunk in data.chunks(7) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), Keccak256::digest(&data), "len={len}");
        }
    }
}
