//! # confide-crypto
//!
//! From-scratch cryptographic primitives backing CONFIDE's three protocols
//! (T-Protocol, D-Protocol, K-Protocol — §3.2 of the paper):
//!
//! * [`sha2`] — SHA-256 / SHA-512 (FIPS 180-4), used for transaction hashes,
//!   key derivation and Ed25519.
//! * [`keccak`] — Keccak-256 as used by Ethereum-style tooling and the
//!   paper's "Crypto Hash" synthetic workload (§6.1).
//! * [`hmac`] / [`hkdf`] — RFC 2104 / RFC 5869, used to derive the one-time
//!   transaction key `k_tx` from a user root key and the transaction hash.
//! * [`aes`] / [`gcm`] — AES-128/256 and AES-GCM authenticated encryption
//!   with associated data; D-Protocol encrypts contract state under
//!   `k_states` with on-chain AAD (formula (3)).
//! * [`field25519`] / [`ed25519`] / [`x25519`] — Curve25519 arithmetic,
//!   Ed25519 signatures (transaction signing, attestation report signing)
//!   and X25519 Diffie–Hellman (enclave key agreement, digital envelopes).
//! * [`envelope`] — the T-Protocol digital envelope
//!   `Enc(pk_tx, k_tx) | Enc(k_tx, Tx_raw)` (formula (1)), realised as
//!   ECIES: ephemeral X25519 → HKDF-SHA256 → AES-256-GCM.
//! * [`drbg`] — deterministic HMAC-DRBG (SP 800-90A shaped) so the whole
//!   system is reproducible under a fixed seed.
//!
//! Everything here is implemented from first principles (no external crypto
//! crates) and validated against published test vectors in the unit tests.
//! The implementations favour clarity and auditability over constant-time
//! hardening: this crate backs a *simulation* of an SGX deployment, not a
//! production HSM.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod drbg;
pub mod ed25519;
pub mod envelope;
pub mod error;
pub mod field25519;
pub mod gcm;
pub mod hkdf;
pub mod hmac;
pub mod keccak;
pub mod sha2;
pub mod x25519;

pub use drbg::HmacDrbg;
pub use ed25519::{Signature, SigningKey, VerifyingKey};
pub use envelope::{Envelope, EnvelopeKeyPair};
pub use error::CryptoError;
pub use gcm::AesGcm;

/// Convenience: SHA-256 of a byte slice.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    sha2::Sha256::digest(data)
}

/// Convenience: SHA-512 of a byte slice.
pub fn sha512(data: &[u8]) -> [u8; 64] {
    sha2::Sha512::digest(data)
}

/// Convenience: Keccak-256 of a byte slice.
pub fn keccak256(data: &[u8]) -> [u8; 32] {
    keccak::Keccak256::digest(data)
}

/// Hex-encode bytes (lowercase). Used pervasively in tests and tooling.
pub fn hex(data: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0xf) as usize] as char);
    }
    out
}

/// Decode a lowercase/uppercase hex string. Panics on malformed input;
/// intended for test vectors and fixtures.
pub fn unhex(s: &str) -> Vec<u8> {
    assert!(s.len().is_multiple_of(2), "odd-length hex string");
    let nib = |c: u8| -> u8 {
        match c {
            b'0'..=b'9' => c - b'0',
            b'a'..=b'f' => c - b'a' + 10,
            b'A'..=b'F' => c - b'A' + 10,
            _ => panic!("invalid hex char {c}"),
        }
    };
    let b = s.as_bytes();
    (0..s.len() / 2)
        .map(|i| (nib(b[2 * i]) << 4) | nib(b[2 * i + 1]))
        .collect()
}

/// Constant-shape byte comparison (no early exit). Not a hard constant-time
/// guarantee — see crate docs — but avoids the obvious timing shortcut.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let data = [0x00, 0x01, 0xab, 0xff];
        assert_eq!(hex(&data), "0001abff");
        assert_eq!(unhex("0001abff"), data);
        assert_eq!(unhex("0001ABFF"), data);
    }

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(ct_eq(b"", b""));
    }
}
