//! Ed25519 signatures (RFC 8032), built on [`crate::field25519`].
//!
//! CONFIDE signs every raw transaction; the Confidential-Engine verifies the
//! signature inside the enclave during pre-verification (§5.2, step P3).
//! Attestation reports in `confide-tee` are also Ed25519-signed.

use crate::field25519::{edwards_d, sqrt_m1, Fe};
use crate::sha2::Sha512;
use crate::CryptoError;

/// A point on the twisted Edwards curve in extended coordinates
/// (X : Y : Z : T) with x = X/Z, y = Y/Z, T = XY/Z.
#[derive(Clone, Copy, Debug)]
pub struct EdwardsPoint {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

impl EdwardsPoint {
    /// The identity element (0, 1).
    pub fn identity() -> EdwardsPoint {
        EdwardsPoint {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// The standard base point B (y = 4/5, x even).
    pub fn basepoint() -> EdwardsPoint {
        use std::sync::OnceLock;
        static B: OnceLock<EdwardsPoint> = OnceLock::new();
        *B.get_or_init(|| {
            let y = Fe::from_u64(4).mul(Fe::from_u64(5).invert());
            let mut enc = y.to_bytes();
            enc[31] &= 0x7f; // sign bit 0: the even root
            EdwardsPoint::decompress(&enc).expect("base point decompresses")
        })
    }

    /// Point addition (add-2008-hwcd-3, a = −1, k = 2d).
    pub fn add(&self, other: &EdwardsPoint) -> EdwardsPoint {
        let two_d = edwards_d().add(edwards_d());
        let a = self.y.sub(self.x).mul(other.y.sub(other.x));
        let b = self.y.add(self.x).mul(other.y.add(other.x));
        let c = self.t.mul(two_d).mul(other.t);
        let d = self.z.mul(other.z).add(self.z.mul(other.z));
        let e = b.sub(a);
        let f = d.sub(c);
        let g = d.add(c);
        let h = b.add(a);
        EdwardsPoint {
            x: e.mul(f),
            y: g.mul(h),
            t: e.mul(h),
            z: f.mul(g),
        }
    }

    /// Point doubling (dbl-2008-hwcd, a = −1).
    pub fn double(&self) -> EdwardsPoint {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().add(self.z.square());
        let d = a.neg();
        let e = self.x.add(self.y).square().sub(a).sub(b);
        let g = d.add(b);
        let f = g.sub(c);
        let h = d.sub(b);
        EdwardsPoint {
            x: e.mul(f),
            y: g.mul(h),
            t: e.mul(h),
            z: f.mul(g),
        }
    }

    /// Negate (x → −x).
    pub fn neg(&self) -> EdwardsPoint {
        EdwardsPoint {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Scalar multiplication, MSB-first double-and-add over a little-endian
    /// 32-byte scalar. Not constant-time (see crate docs).
    pub fn mul_scalar(&self, scalar_le: &[u8; 32]) -> EdwardsPoint {
        let mut acc = EdwardsPoint::identity();
        for byte_i in (0..32).rev() {
            for bit in (0..8).rev() {
                acc = acc.double();
                if (scalar_le[byte_i] >> bit) & 1 == 1 {
                    acc = acc.add(self);
                }
            }
        }
        acc
    }

    /// Compress to the 32-byte wire encoding (LE y, sign of x in bit 255).
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(zinv);
        let y = self.y.mul(zinv);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompress a 32-byte encoding; errors if the point is not on the curve.
    pub fn decompress(bytes: &[u8; 32]) -> Result<EdwardsPoint, CryptoError> {
        let sign = bytes[31] >> 7;
        let mut ybytes = *bytes;
        ybytes[31] &= 0x7f;
        let y = Fe::from_bytes(&ybytes);
        // Reject non-canonical y (y >= p).
        if y.to_bytes() != ybytes {
            return Err(CryptoError::InvalidPoint);
        }
        // x^2 = (y^2 - 1) / (d y^2 + 1)
        let y2 = y.square();
        let u = y2.sub(Fe::ONE);
        let v = edwards_d().mul(y2).add(Fe::ONE);
        // Candidate root: x = u v^3 (u v^7)^((p-5)/8)
        let v3 = v.square().mul(v);
        let v7 = v3.square().mul(v);
        let mut x = u.mul(v3).mul(u.mul(v7).pow_p58());
        let vx2 = v.mul(x.square());
        if vx2.ct_eq(u) {
            // x is correct
        } else if vx2.ct_eq(u.neg()) {
            x = x.mul(sqrt_m1());
        } else {
            return Err(CryptoError::InvalidPoint);
        }
        if x.is_zero() && sign == 1 {
            return Err(CryptoError::InvalidPoint);
        }
        if x.is_negative() != (sign == 1) {
            x = x.neg();
        }
        Ok(EdwardsPoint {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(y),
        })
    }

    /// Check the extended-coordinate invariants and the curve equation
    /// −x² + y² = 1 + d·x²·y² (affine). Test/diagnostic helper.
    pub fn is_on_curve(&self) -> bool {
        let zinv = self.z.invert();
        let x = self.x.mul(zinv);
        let y = self.y.mul(zinv);
        let lhs = y.square().sub(x.square());
        let rhs = Fe::ONE.add(edwards_d().mul(x.square()).mul(y.square()));
        lhs.ct_eq(rhs)
    }
}

// --- Scalar arithmetic modulo the group order L -------------------------

/// L = 2^252 + 27742317777372353535851937790883648493, little-endian.
const L_BYTES: [u8; 32] = [
    0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10,
];

/// Reduce an arbitrary little-endian byte string modulo L, by MSB-first
/// shift-and-conditional-subtract. O(bits) and plenty fast for signing.
pub fn scalar_reduce(input_le: &[u8]) -> [u8; 32] {
    // Work in 5×64-bit limbs (L is 253 bits, r stays < 2L < 2^254).
    let l = le_bytes_to_limbs(&L_BYTES);
    let mut r = [0u64; 5];
    for byte in input_le.iter().rev() {
        for bit in (0..8).rev() {
            // r = r << 1 | bit
            let mut carry = (byte >> bit) & 1;
            for limb in r.iter_mut() {
                let new_carry = (*limb >> 63) as u8;
                *limb = (*limb << 1) | carry as u64;
                carry = new_carry;
            }
            if limbs_ge(&r, &l) {
                limbs_sub(&mut r, &l);
            }
        }
    }
    limbs_to_le_bytes(&r)
}

/// (a + b) mod L for little-endian 32-byte scalars already < L.
pub fn scalar_add(a: &[u8; 32], b: &[u8; 32]) -> [u8; 32] {
    let l = le_bytes_to_limbs(&L_BYTES);
    let mut r = le_bytes_to_limbs(a);
    let bl = le_bytes_to_limbs(b);
    let mut carry = 0u64;
    for i in 0..5 {
        let (s1, c1) = r[i].overflowing_add(bl[i]);
        let (s2, c2) = s1.overflowing_add(carry);
        r[i] = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    if limbs_ge(&r, &l) {
        limbs_sub(&mut r, &l);
    }
    limbs_to_le_bytes(&r)
}

/// (a · b) mod L for little-endian 32-byte scalars.
pub fn scalar_mul(a: &[u8; 32], b: &[u8; 32]) -> [u8; 32] {
    // Schoolbook 4×4 u64 limbs → 8-limb product, then byte-level reduce.
    let al = le_bytes_to_limbs4(a);
    let bl = le_bytes_to_limbs4(b);
    let mut prod = [0u64; 8];
    for i in 0..4 {
        let mut carry = 0u128;
        for j in 0..4 {
            let cur = prod[i + j] as u128 + al[i] as u128 * bl[j] as u128 + carry;
            prod[i + j] = cur as u64;
            carry = cur >> 64;
        }
        prod[i + 4] = carry as u64;
    }
    let mut bytes = [0u8; 64];
    for (i, limb) in prod.iter().enumerate() {
        bytes[8 * i..8 * i + 8].copy_from_slice(&limb.to_le_bytes());
    }
    scalar_reduce(&bytes)
}

fn le_bytes_to_limbs(b: &[u8; 32]) -> [u64; 5] {
    let mut l = [0u64; 5];
    for i in 0..4 {
        let mut w = [0u8; 8];
        w.copy_from_slice(&b[8 * i..8 * i + 8]);
        l[i] = u64::from_le_bytes(w);
    }
    l
}

fn le_bytes_to_limbs4(b: &[u8; 32]) -> [u64; 4] {
    let mut l = [0u64; 4];
    for i in 0..4 {
        let mut w = [0u8; 8];
        w.copy_from_slice(&b[8 * i..8 * i + 8]);
        l[i] = u64::from_le_bytes(w);
    }
    l
}

fn limbs_to_le_bytes(l: &[u64; 5]) -> [u8; 32] {
    debug_assert_eq!(l[4], 0, "reduced scalar must fit 256 bits");
    let mut b = [0u8; 32];
    for i in 0..4 {
        b[8 * i..8 * i + 8].copy_from_slice(&l[i].to_le_bytes());
    }
    b
}

fn limbs_ge(a: &[u64; 5], b: &[u64; 5]) -> bool {
    for i in (0..5).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

fn limbs_sub(a: &mut [u64; 5], b: &[u64; 5]) {
    let mut borrow = 0u64;
    for i in 0..5 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0);
}

// --- Keys and signatures -------------------------------------------------

/// A 64-byte Ed25519 signature (R ‖ S).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature(pub [u8; 64]);

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Signature({}…)", crate::hex(&self.0[..8]))
    }
}

/// An Ed25519 signing key, holding the 32-byte seed and derived material.
#[derive(Clone)]
pub struct SigningKey {
    seed: [u8; 32],
    /// Clamped scalar s.
    scalar: [u8; 32],
    /// Second half of SHA-512(seed) — the nonce prefix.
    prefix: [u8; 32],
    /// Cached public key.
    public: VerifyingKey,
}

impl SigningKey {
    /// Derive from a 32-byte seed (RFC 8032 §5.1.5).
    pub fn from_seed(seed: &[u8; 32]) -> SigningKey {
        let h = Sha512::digest(seed);
        let mut scalar = [0u8; 32];
        scalar.copy_from_slice(&h[..32]);
        scalar[0] &= 248;
        scalar[31] &= 127;
        scalar[31] |= 64;
        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&h[32..]);
        let public_point = EdwardsPoint::basepoint().mul_scalar(&scalar);
        SigningKey {
            seed: *seed,
            scalar,
            prefix,
            public: VerifyingKey(public_point.compress()),
        }
    }

    /// The seed this key was derived from.
    pub fn seed(&self) -> &[u8; 32] {
        &self.seed
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public
    }

    /// Sign a message.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let mut h = Sha512::new();
        h.update(&self.prefix);
        h.update(msg);
        let r = scalar_reduce(&h.finalize());
        let r_point = EdwardsPoint::basepoint().mul_scalar(&r);
        let r_enc = r_point.compress();
        let mut h2 = Sha512::new();
        h2.update(&r_enc);
        h2.update(&self.public.0);
        h2.update(msg);
        let k = scalar_reduce(&h2.finalize());
        let s = scalar_add(&r, &scalar_mul(&k, &self.scalar));
        let mut sig = [0u8; 64];
        sig[..32].copy_from_slice(&r_enc);
        sig[32..].copy_from_slice(&s);
        Signature(sig)
    }
}

/// A 32-byte Ed25519 public key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey(pub [u8; 32]);

impl std::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VerifyingKey({}…)", crate::hex(&self.0[..8]))
    }
}

impl VerifyingKey {
    /// Verify `sig` over `msg`: checks S·B == R + k·A.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), CryptoError> {
        let mut r_enc = [0u8; 32];
        r_enc.copy_from_slice(&sig.0[..32]);
        let mut s = [0u8; 32];
        s.copy_from_slice(&sig.0[32..]);
        // Reject non-canonical S (S >= L) — malleability guard.
        if scalar_reduce(&s) != s {
            return Err(CryptoError::InvalidSignature);
        }
        let a = EdwardsPoint::decompress(&self.0).map_err(|_| CryptoError::InvalidSignature)?;
        let r = EdwardsPoint::decompress(&r_enc).map_err(|_| CryptoError::InvalidSignature)?;
        let mut h = Sha512::new();
        h.update(&r_enc);
        h.update(&self.0);
        h.update(msg);
        let k = scalar_reduce(&h.finalize());
        let lhs = EdwardsPoint::basepoint().mul_scalar(&s);
        let rhs = r.add(&a.mul_scalar(&k));
        if lhs.compress() == rhs.compress() {
            Ok(())
        } else {
            Err(CryptoError::InvalidSignature)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex, unhex};

    fn arr32(v: &[u8]) -> [u8; 32] {
        let mut a = [0u8; 32];
        a.copy_from_slice(v);
        a
    }

    // RFC 8032 §7.1 TEST 1 (empty message).
    #[test]
    fn rfc8032_test1() {
        let seed = arr32(&unhex(
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        ));
        let key = SigningKey::from_seed(&seed);
        assert_eq!(
            hex(&key.verifying_key().0),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
        );
        let sig = key.sign(b"");
        assert_eq!(
            hex(&sig.0),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
             5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
        );
        key.verifying_key().verify(b"", &sig).unwrap();
    }

    // RFC 8032 §7.1 TEST 2 (one-byte message 0x72).
    #[test]
    fn rfc8032_test2() {
        let seed = arr32(&unhex(
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        ));
        let key = SigningKey::from_seed(&seed);
        assert_eq!(
            hex(&key.verifying_key().0),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
        );
        let sig = key.sign(&[0x72]);
        assert_eq!(
            hex(&sig.0),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
             085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
        );
        key.verifying_key().verify(&[0x72], &sig).unwrap();
    }

    #[test]
    fn tampered_message_rejected() {
        let key = SigningKey::from_seed(&[7u8; 32]);
        let sig = key.sign(b"pay bank A 100");
        assert!(key.verifying_key().verify(b"pay bank A 100", &sig).is_ok());
        assert!(key.verifying_key().verify(b"pay bank A 101", &sig).is_err());
    }

    #[test]
    fn tampered_signature_rejected() {
        let key = SigningKey::from_seed(&[8u8; 32]);
        let msg = b"confidential transaction";
        let sig = key.sign(msg);
        for i in [0usize, 31, 32, 63] {
            let mut bad = sig;
            bad.0[i] ^= 1;
            assert!(key.verifying_key().verify(msg, &bad).is_err(), "byte {i}");
        }
    }

    #[test]
    fn wrong_key_rejected() {
        let k1 = SigningKey::from_seed(&[1u8; 32]);
        let k2 = SigningKey::from_seed(&[2u8; 32]);
        let sig = k1.sign(b"msg");
        assert!(k2.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn basepoint_is_on_curve_and_has_order_l() {
        let b = EdwardsPoint::basepoint();
        assert!(b.is_on_curve());
        // L·B = identity
        let lb = b.mul_scalar(&super::L_BYTES);
        assert_eq!(lb.compress(), EdwardsPoint::identity().compress());
    }

    #[test]
    fn point_addition_is_commutative_and_associative() {
        let b = EdwardsPoint::basepoint();
        let p2 = b.double();
        let p3 = p2.add(&b);
        assert_eq!(p2.add(&b).compress(), b.add(&p2).compress());
        assert_eq!(p3.add(&p2).compress(), p2.add(&p3).compress());
        // (B+2B)+3B == B+(2B+3B)
        assert_eq!(
            b.add(&p2).add(&p3).compress(),
            b.add(&p2.add(&p3)).compress()
        );
    }

    #[test]
    fn double_equals_add_self() {
        let b = EdwardsPoint::basepoint();
        assert_eq!(b.double().compress(), b.add(&b).compress());
    }

    #[test]
    fn neg_cancels() {
        let b = EdwardsPoint::basepoint();
        let sum = b.add(&b.neg());
        assert_eq!(sum.compress(), EdwardsPoint::identity().compress());
    }

    #[test]
    fn compress_decompress_round_trip() {
        let mut p = EdwardsPoint::basepoint();
        for _ in 0..8 {
            let enc = p.compress();
            let q = EdwardsPoint::decompress(&enc).unwrap();
            assert_eq!(q.compress(), enc);
            assert!(q.is_on_curve());
            p = p.add(&EdwardsPoint::basepoint());
        }
    }

    #[test]
    fn scalar_mod_l_arithmetic() {
        // (L-1) + 2 == 1 mod L
        let mut l_minus_1 = super::L_BYTES;
        l_minus_1[0] -= 1;
        let mut two = [0u8; 32];
        two[0] = 2;
        let r = scalar_add(&l_minus_1, &two);
        let mut one = [0u8; 32];
        one[0] = 1;
        assert_eq!(r, one);
        // L reduces to 0.
        assert_eq!(scalar_reduce(&super::L_BYTES), [0u8; 32]);
        // small multiply: 3 * 5 = 15
        let mut three = [0u8; 32];
        three[0] = 3;
        let mut five = [0u8; 32];
        five[0] = 5;
        let mut fifteen = [0u8; 32];
        fifteen[0] = 15;
        assert_eq!(scalar_mul(&three, &five), fifteen);
    }

    #[test]
    fn high_s_signature_rejected() {
        // Take a valid signature and add L to S — must be rejected even
        // though it would verify in a lenient implementation.
        let key = SigningKey::from_seed(&[9u8; 32]);
        let sig = key.sign(b"m");
        let mut s = [0u8; 32];
        s.copy_from_slice(&sig.0[32..]);
        // s + L (no reduction), fits in 256 bits for most s.
        let mut carry = 0u16;
        let mut s_plus_l = [0u8; 32];
        for i in 0..32 {
            let v = s[i] as u16 + super::L_BYTES[i] as u16 + carry;
            s_plus_l[i] = v as u8;
            carry = v >> 8;
        }
        if carry == 0 {
            let mut bad = sig;
            bad.0[32..].copy_from_slice(&s_plus_l);
            assert!(key.verifying_key().verify(b"m", &bad).is_err());
        }
    }
}
