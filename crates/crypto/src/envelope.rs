//! The T-Protocol crypto digital envelope (formula (1) of the paper):
//!
//! ```text
//! Tx_conf = Enc(pk_tx, k_tx) | Enc(k_tx, Tx_raw)
//! ```
//!
//! Realised as ECIES: the sender generates an ephemeral X25519 key, derives
//! a key-encryption key from the shared secret with the enclave's public
//! key `pk_tx` via HKDF-SHA-256, wraps the one-time transaction key `k_tx`
//! under it with AES-256-GCM, and encrypts the transaction body under
//! `k_tx` itself. The protocol is **non-interactive** (one of T-Protocol's
//! three design principles, §3.2.3): no round trips with the enclave.

use crate::drbg::HmacDrbg;
use crate::gcm::AesGcm;
use crate::hkdf;
use crate::x25519;
use crate::CryptoError;

/// Domain-separation label for envelope key derivation.
const ENVELOPE_INFO: &[u8] = b"confide/t-protocol/envelope-v1";

/// The enclave-side key pair whose public half is `pk_tx` (published to end
/// users, fingerprint locked into the attestation report).
#[derive(Clone)]
pub struct EnvelopeKeyPair {
    secret: [u8; 32],
    public: [u8; 32],
}

impl EnvelopeKeyPair {
    /// Generate from a DRBG (inside the KM enclave in the real system).
    pub fn generate(rng: &mut HmacDrbg) -> EnvelopeKeyPair {
        let secret = rng.gen32();
        let public = x25519::x25519_base(&secret);
        EnvelopeKeyPair { secret, public }
    }

    /// Reconstruct from a stored secret (sealed-key recovery path).
    pub fn from_secret(secret: [u8; 32]) -> EnvelopeKeyPair {
        let public = x25519::x25519_base(&secret);
        EnvelopeKeyPair { secret, public }
    }

    /// The public key `pk_tx`.
    pub fn public(&self) -> [u8; 32] {
        self.public
    }

    /// The raw secret (for sealing inside the enclave only).
    pub fn secret(&self) -> &[u8; 32] {
        &self.secret
    }
}

/// A sealed envelope: ephemeral public key ‖ wrapped `k_tx` ‖ body
/// ciphertext. The wire layout is length-prefixed so the pre-processor can
/// parse it with zero copies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sender's ephemeral X25519 public key.
    pub ephemeral_pk: [u8; 32],
    /// Nonce for the key-wrap AEAD.
    pub wrap_nonce: [u8; 12],
    /// `Enc(kek, k_tx)` — 32-byte key + 16-byte tag.
    pub wrapped_key: Vec<u8>,
    /// Nonce for the body AEAD.
    pub body_nonce: [u8; 12],
    /// `Enc(k_tx, Tx_raw)`.
    pub body: Vec<u8>,
}

impl Envelope {
    /// Client side: seal `plaintext` to the enclave key `pk_tx` using the
    /// caller-supplied one-time key `k_tx` (derived per T-Protocol from the
    /// user root key and the transaction hash).
    pub fn seal(
        pk_tx: &[u8; 32],
        k_tx: &[u8; 32],
        aad: &[u8],
        plaintext: &[u8],
        rng: &mut HmacDrbg,
    ) -> Result<Envelope, CryptoError> {
        let eph_secret = rng.gen32();
        let ephemeral_pk = x25519::x25519_base(&eph_secret);
        let shared = x25519::diffie_hellman(&eph_secret, pk_tx)?;
        let kek = derive_kek(&shared, &ephemeral_pk, pk_tx);
        let wrap = AesGcm::new(&kek)?;
        let wrap_nonce = rng.gen_nonce();
        let wrapped_key = wrap.seal(&wrap_nonce, aad, k_tx);
        let body_cipher = AesGcm::new(k_tx)?;
        let body_nonce = rng.gen_nonce();
        let body = body_cipher.seal(&body_nonce, aad, plaintext);
        Ok(Envelope {
            ephemeral_pk,
            wrap_nonce,
            wrapped_key,
            body_nonce,
            body,
        })
    }

    /// Enclave side: recover `(k_tx, Tx_raw)`. This is the expensive
    /// asymmetric path (§5.2 P2); the pre-verification cache lets the
    /// execution phase skip it.
    pub fn open(
        &self,
        keypair: &EnvelopeKeyPair,
        aad: &[u8],
    ) -> Result<([u8; 32], Vec<u8>), CryptoError> {
        let k_tx = self.open_key(keypair, aad)?;
        let body = self.open_body(&k_tx, aad)?;
        Ok((k_tx, body))
    }

    /// Recover only the one-time key `k_tx` (asymmetric part).
    pub fn open_key(&self, keypair: &EnvelopeKeyPair, aad: &[u8]) -> Result<[u8; 32], CryptoError> {
        let shared = x25519::diffie_hellman(&keypair.secret, &self.ephemeral_pk)?;
        let kek = derive_kek(&shared, &self.ephemeral_pk, &keypair.public);
        let wrap = AesGcm::new(&kek)?;
        let k = wrap.open(&self.wrap_nonce, aad, &self.wrapped_key)?;
        if k.len() != 32 {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut k_tx = [0u8; 32];
        k_tx.copy_from_slice(&k);
        Ok(k_tx)
    }

    /// Decrypt only the body given a cached `k_tx` (symmetric fast path,
    /// §5.2 C3).
    pub fn open_body(&self, k_tx: &[u8; 32], aad: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let body_cipher = AesGcm::new(k_tx)?;
        body_cipher.open(&self.body_nonce, aad, &self.body)
    }

    /// Serialize to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(32 + 12 + 12 + 8 + self.wrapped_key.len() + self.body.len());
        out.extend_from_slice(&self.ephemeral_pk);
        out.extend_from_slice(&self.wrap_nonce);
        out.extend_from_slice(&(self.wrapped_key.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.wrapped_key);
        out.extend_from_slice(&self.body_nonce);
        out.extend_from_slice(&(self.body.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parse the wire format.
    pub fn decode(bytes: &[u8]) -> Result<Envelope, CryptoError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], CryptoError> {
            if *pos + n > bytes.len() {
                return Err(CryptoError::TruncatedInput);
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let mut ephemeral_pk = [0u8; 32];
        ephemeral_pk.copy_from_slice(take(&mut pos, 32)?);
        let mut wrap_nonce = [0u8; 12];
        wrap_nonce.copy_from_slice(take(&mut pos, 12)?);
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(take(&mut pos, 4)?);
        let wk_len = u32::from_le_bytes(len4) as usize;
        let wrapped_key = take(&mut pos, wk_len)?.to_vec();
        let mut body_nonce = [0u8; 12];
        body_nonce.copy_from_slice(take(&mut pos, 12)?);
        len4.copy_from_slice(take(&mut pos, 4)?);
        let body_len = u32::from_le_bytes(len4) as usize;
        let body = take(&mut pos, body_len)?.to_vec();
        if pos != bytes.len() {
            return Err(CryptoError::TruncatedInput);
        }
        Ok(Envelope {
            ephemeral_pk,
            wrap_nonce,
            wrapped_key,
            body_nonce,
            body,
        })
    }
}

fn derive_kek(shared: &[u8; 32], eph_pk: &[u8; 32], recipient_pk: &[u8; 32]) -> [u8; 32] {
    // Bind the KEK to both public keys to rule out key-confusion splicing.
    let mut salt = Vec::with_capacity(64);
    salt.extend_from_slice(eph_pk);
    salt.extend_from_slice(recipient_pk);
    hkdf::derive_key32(&salt, shared, ENVELOPE_INFO)
}

/// Derive the one-time transaction key `k_tx` from a user root key and the
/// transaction hash, exactly as §3.2.3 describes.
pub fn derive_k_tx(user_root_key: &[u8; 32], tx_hash: &[u8; 32]) -> [u8; 32] {
    hkdf::derive_key32(tx_hash, user_root_key, b"confide/t-protocol/k_tx-v1")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (EnvelopeKeyPair, HmacDrbg) {
        let mut rng = HmacDrbg::from_u64(1234);
        let kp = EnvelopeKeyPair::generate(&mut rng);
        (kp, rng)
    }

    #[test]
    fn seal_open_round_trip() {
        let (kp, mut rng) = setup();
        let k_tx = rng.gen32();
        let env = Envelope::seal(
            &kp.public(),
            &k_tx,
            b"txhash",
            b"raw transaction body",
            &mut rng,
        )
        .unwrap();
        let (k, body) = env.open(&kp, b"txhash").unwrap();
        assert_eq!(k, k_tx);
        assert_eq!(body, b"raw transaction body");
    }

    #[test]
    fn split_open_matches_full_open() {
        let (kp, mut rng) = setup();
        let k_tx = rng.gen32();
        let env = Envelope::seal(&kp.public(), &k_tx, b"aad", b"payload", &mut rng).unwrap();
        let k = env.open_key(&kp, b"aad").unwrap();
        assert_eq!(k, k_tx);
        assert_eq!(env.open_body(&k, b"aad").unwrap(), b"payload");
    }

    #[test]
    fn wrong_recipient_fails() {
        let (kp, mut rng) = setup();
        let other = EnvelopeKeyPair::generate(&mut rng);
        let k_tx = rng.gen32();
        let env = Envelope::seal(&kp.public(), &k_tx, b"", b"secret", &mut rng).unwrap();
        assert!(env.open(&other, b"").is_err());
    }

    #[test]
    fn aad_mismatch_fails() {
        let (kp, mut rng) = setup();
        let k_tx = rng.gen32();
        let env = Envelope::seal(&kp.public(), &k_tx, b"tx1", b"secret", &mut rng).unwrap();
        assert!(env.open(&kp, b"tx2").is_err());
    }

    #[test]
    fn encode_decode_round_trip() {
        let (kp, mut rng) = setup();
        let k_tx = rng.gen32();
        let env = Envelope::seal(&kp.public(), &k_tx, b"a", b"hello world", &mut rng).unwrap();
        let bytes = env.encode();
        let parsed = Envelope::decode(&bytes).unwrap();
        assert_eq!(parsed, env);
        let (_, body) = parsed.open(&kp, b"a").unwrap();
        assert_eq!(body, b"hello world");
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_garbage() {
        let (kp, mut rng) = setup();
        let k_tx = rng.gen32();
        let env = Envelope::seal(&kp.public(), &k_tx, b"", b"x", &mut rng).unwrap();
        let bytes = env.encode();
        for cut in [0usize, 10, 31, 45, bytes.len() - 1] {
            assert!(Envelope::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(Envelope::decode(&extended).is_err());
    }

    #[test]
    fn tampered_envelope_fails_to_open() {
        let (kp, mut rng) = setup();
        let k_tx = rng.gen32();
        let env = Envelope::seal(&kp.public(), &k_tx, b"", b"confidential", &mut rng).unwrap();
        let mut bytes = env.encode();
        // Flip one byte in the body ciphertext region (last byte).
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        let parsed = Envelope::decode(&bytes).unwrap();
        assert!(parsed.open(&kp, b"").is_err());
    }

    #[test]
    fn k_tx_derivation_is_per_transaction() {
        let root = [5u8; 32];
        let k1 = derive_k_tx(&root, &[1u8; 32]);
        let k2 = derive_k_tx(&root, &[2u8; 32]);
        assert_ne!(k1, k2);
        // Deterministic per (root, hash).
        assert_eq!(k1, derive_k_tx(&root, &[1u8; 32]));
    }

    #[test]
    fn one_time_keys_give_distinct_ciphertexts_for_same_plaintext() {
        // T-Protocol security principle: one-time key per transaction
        // maximizes ciphertext entropy.
        let (kp, mut rng) = setup();
        let root = [9u8; 32];
        let e1 = Envelope::seal(
            &kp.public(),
            &derive_k_tx(&root, &[1u8; 32]),
            b"",
            b"same body",
            &mut rng,
        )
        .unwrap();
        let e2 = Envelope::seal(
            &kp.public(),
            &derive_k_tx(&root, &[2u8; 32]),
            b"",
            b"same body",
            &mut rng,
        )
        .unwrap();
        assert_ne!(e1.body, e2.body);
    }
}
