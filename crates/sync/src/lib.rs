//! Minimal `parking_lot`-style synchronization primitives over `std::sync`.
//!
//! The workspace must build hermetically (no registry access), so the real
//! `parking_lot` crate is out. This shim offers the two things CONFIDE's hot
//! paths actually relied on from it:
//!
//! * `lock()` / `read()` / `write()` return the guard **directly** (no
//!   `Result`), so call sites stay clean;
//! * a panicked holder does not permanently wedge the lock — poisoning is
//!   recovered via [`std::sync::PoisonError::into_inner`]. CONFIDE's shared
//!   state (code cache, memory pool, ring buffers, engine state) is either
//!   rebuildable or checksummed downstream, so recovering the data and letting
//!   the caller proceed is strictly better than propagating the poison.
//!
//! Performance note: `std::sync::Mutex` on Linux is a futex-based lock with an
//! uncontended fast path comparable to `parking_lot`'s; none of the guarded
//! sections here are hot enough for the difference to show up in
//! `crates/bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// A mutual-exclusion lock whose `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value (poison recovered).
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread. Poison is recovered.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking. Poison is recovered;
    /// `None` means the lock is currently held elsewhere.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value (poison recovered).
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Poison is recovered.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard. Poison is recovered.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Get mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block on the condvar, releasing `guard` while waiting.
    pub fn wait<'a, T>(&self, guard: sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T> {
        self.0
            .wait(guard)
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is usable afterwards.
        assert_eq!(m.lock().len(), 3);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(10);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 20);
        }
        *l.write() = 11;
        assert_eq!(*l.read(), 11);
    }
}
