//! Reactor-specific end-to-end drills: connection-scale (an idle fleet
//! in the ten-thousands must not starve active traffic), slow readers
//! and writers trickling one byte at a time, and half-open / mid-frame
//! abuse that the sweep loop has to reap without wedging the pipeline.

use confide_net::demo::{demo_args, demo_node, DEMO_CONTRACT};
use confide_net::{ClientConfig, Conn, Message, NodeServer, ServerConfig};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

fn spawn_server(seed: u64, config: ServerConfig) -> NodeServer {
    NodeServer::spawn(demo_node(seed), ("127.0.0.1", 0), config).expect("server spawns")
}

/// Soft fd limit from `/proc/self/limits`; generous fallback elsewhere.
fn fd_soft_limit() -> usize {
    let txt = std::fs::read_to_string("/proc/self/limits").unwrap_or_default();
    for line in txt.lines() {
        if let Some(rest) = line.strip_prefix("Max open files") {
            let tok = rest.split_whitespace().next().unwrap_or("");
            if tok == "unlimited" {
                return 1 << 20;
            }
            if let Ok(v) = tok.parse::<usize>() {
                return v;
            }
        }
    }
    1024
}

/// The tentpole scale drill: park an idle fleet of up to 10 000
/// connections (scaled to the process fd budget — loopback in-process
/// costs two descriptors per connection), then prove active traffic
/// still flows: a 1 000-strong ping fleet gets answers, and real
/// confidential submissions commit and decrypt. The adaptive idle
/// backoff is what makes this cheap — a parked connection costs the
/// sweep loop nothing until bytes arrive.
#[test]
fn idle_fleet_in_the_thousands_does_not_starve_active_traffic() {
    let server = spawn_server(41, ServerConfig::default());
    let addr = server.addr();

    // Budget: 2 fds per in-process connection, minus headroom for the
    // test harness, the active fleet below, and the other tests in this
    // binary running concurrently.
    let budget = fd_soft_limit().saturating_sub(1200) / 2;
    let idle_target = 10_000.min(budget.saturating_sub(1_000)).max(64);
    let mut idle: Vec<TcpStream> = Vec::with_capacity(idle_target);
    for _ in 0..idle_target {
        match TcpStream::connect(addr) {
            Ok(s) => idle.push(s),
            // Transient accept-backlog churn: brief pause, then carry on
            // with whatever fleet size actually landed.
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert!(
        idle.len() >= idle_target / 2,
        "parked only {} of {} idle connections",
        idle.len(),
        idle_target
    );

    // Active fleet: 1 000 fresh connections (scaled if fds are tight),
    // each of which must get a pong while the idle fleet is parked.
    let active_target = 1_000.min(budget.saturating_sub(idle.len()).max(64));
    let drivers = 8usize;
    let pinged: usize = std::thread::scope(|scope| {
        (0..drivers)
            .map(|d| {
                scope.spawn(move || {
                    let mut ok = 0usize;
                    for _ in (d..active_target).step_by(drivers) {
                        if let Ok(mut c) = Conn::connect(addr) {
                            if c.ping().is_ok() {
                                ok += 1;
                            }
                        }
                    }
                    ok
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("driver joins"))
            .sum()
    });
    assert_eq!(pinged, active_target, "every active ping must be answered");

    // And real work commits end to end under the parked fleet.
    let client = ClientConfig::new()
        .endpoint(addr)
        .identity([7u8; 32], [8u8; 32], 41)
        .connect()
        .expect("client connects");
    for n in 0..3 {
        let receipt = client
            .call_confidential(DEMO_CONTRACT, "main", &demo_args(0, n))
            .expect("tx commits under idle load");
        assert!(receipt.success, "iteration {n}");
    }
    drop(idle);
}

/// Trickle a Ping frame at one byte per write (with pauses), then read
/// the Pong back one byte at a time: the reactor must assemble partial
/// frames across sweeps and its write path must survive a reader that
/// drains slowly.
#[test]
fn one_byte_at_a_time_reader_and_writer_still_get_served() {
    let server = spawn_server(42, ServerConfig::default());
    let mut s = TcpStream::connect(server.addr()).expect("connects");
    let frame = Message::Ping.to_frame();
    for b in &frame {
        s.write_all(std::slice::from_ref(b)).expect("byte written");
        s.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(2));
    }
    // Read the reply a byte at a time until it parses as a full frame.
    let mut got: Vec<u8> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    let reply = loop {
        assert!(Instant::now() < deadline, "no full reply within 10s");
        let mut b = [0u8; 1];
        let n = s.read(&mut b).expect("read byte");
        assert!(n > 0, "server closed mid-reply after {} bytes", got.len());
        got.push(b[0]);
        std::thread::sleep(Duration::from_millis(2));
        match confide_net::frame::read_frame(&mut &got[..], got.len().max(1024)) {
            Ok(Some(msg)) => break msg,
            _ => continue,
        }
    };
    assert!(matches!(reply, Message::Pong), "got {reply:?}");
}

/// Half-open and mid-frame abuse: a connection that stalls inside a
/// frame is reaped after `read_timeout`, an oversized length prefix is
/// cut off immediately, and an abrupt mid-frame disconnect leaks
/// nothing — while a well-behaved client keeps committing throughout.
#[test]
fn half_open_and_mid_frame_drops_are_reaped_without_wedging() {
    let config = ServerConfig::builder()
        .read_timeout(Duration::from_millis(300))
        .build()
        .expect("config validates");
    let server = spawn_server(43, config);
    let addr = server.addr();
    let frame = Message::Ping.to_frame();

    // (a) Abrupt mid-frame drop: send half a frame, vanish.
    for _ in 0..8 {
        let mut s = TcpStream::connect(addr).expect("connects");
        s.write_all(&frame[..frame.len() / 2]).expect("half frame");
        drop(s);
    }

    // (b) Half-open stall: half a frame, then shut down our write side
    // and wait. The mid-frame stall bound must reap the connection —
    // observed as EOF on our read side.
    let mut half_open = TcpStream::connect(addr).expect("connects");
    half_open
        .write_all(&frame[..frame.len() / 2])
        .expect("half frame");
    half_open.shutdown(Shutdown::Write).expect("half-close");
    half_open
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout set");
    let mut buf = [0u8; 16];
    let n = half_open.read(&mut buf).expect("reap observed as EOF");
    assert_eq!(n, 0, "stalled half-open connection must be dropped");

    // (c) Oversized length prefix: rejected by the frame bound.
    let mut huge = TcpStream::connect(addr).expect("connects");
    huge.write_all(&(u32::MAX).to_le_bytes()).expect("bad len");
    huge.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout set");
    let n = huge.read(&mut buf).expect("cut off");
    assert_eq!(n, 0, "oversized frame must close the connection");

    // (d) A well-behaved client is unaffected by all of the above.
    let client = ClientConfig::new()
        .endpoint(addr)
        .identity([9u8; 32], [10u8; 32], 43)
        .connect()
        .expect("client connects");
    let receipt = client
        .call_confidential(DEMO_CONTRACT, "main", &demo_args(1, 0))
        .expect("tx commits after abuse");
    assert!(receipt.success);
}
