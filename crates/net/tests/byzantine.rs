//! Byzantine-fault end-to-end drills: a real 4-member wire cluster with
//! one member running a [`ByzantinePreset`] — actively signing
//! conflicting statements, corrupting proposals, or going silent. The
//! honest majority must keep serving clients, never lose an acked
//! receipt, converge to byte-identical state roots, and walk away with
//! durable, independently-verifiable [`Evidence`] against the offender.
//! A fourth drill blackholes a joiner's state-sync source mid-stream and
//! requires the per-chunk read timeout + peer rotation to finish the
//! catch-up from a different member.

use confide_consensus::{sign_vote, CertError, QuorumCert};
use confide_core::receipt::Receipt;
use confide_net::demo::{cluster_platform, demo_args, demo_cluster_node, DEMO_CONTRACT};
use confide_net::fault::{FaultPlan, FaultProxy};
use confide_net::frame::NodeStatus;
use confide_net::{
    ByzantinePreset, Client, ClientConfig, ClusterConfig, Conn, NetError, NodeServer, ServerConfig,
};
use std::net::TcpListener;
use std::time::{Duration, Instant};

fn reserve_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("reserved addr").port())
        .collect()
}

/// Spawn cluster member `id`, optionally armed with a Byzantine preset.
/// `peers` is the member's *own* view of the roster — tests may doctor
/// it (e.g. route one entry through a fault proxy).
fn spawn_member(
    seed: u64,
    peers: &[String],
    id: u32,
    bind: &str,
    byz: Option<ByzantinePreset>,
) -> NodeServer {
    let mut cluster = ClusterConfig::demo(id, peers.to_vec(), seed);
    cluster.byzantine = byz;
    let config = ServerConfig::builder()
        .batch_linger(Duration::from_millis(2))
        .read_timeout(Duration::from_millis(200))
        .commit_timeout(Duration::from_secs(20))
        .join_roots(cluster.peer_roots.clone())
        .cluster(cluster)
        .build()
        .expect("member config validates");
    NodeServer::spawn(demo_cluster_node(seed, id), bind, config).expect("member spawns")
}

fn status_of(addr: &str) -> Option<NodeStatus> {
    let mut c = Conn::connect_timeout(addr, Duration::from_millis(800)).ok()?;
    c.status().ok()
}

/// Poll until every listed member reports the same height (at least
/// `min_height`) and the same state root; panics past `deadline`.
fn wait_converged<A: AsRef<str>>(
    addrs: &[A],
    min_height: u64,
    deadline: Duration,
) -> Vec<NodeStatus> {
    let end = Instant::now() + deadline;
    loop {
        let polled: Vec<Option<NodeStatus>> = addrs.iter().map(|a| status_of(a.as_ref())).collect();
        if polled.iter().all(|s| s.is_some()) {
            let sts: Vec<NodeStatus> = polled.into_iter().flatten().collect();
            let h = sts[0].height;
            if h >= min_height
                && sts.iter().all(|s| s.height == h)
                && sts.iter().all(|s| s.state_root == sts[0].state_root)
            {
                return sts;
            }
        }
        assert!(
            Instant::now() < end,
            "cluster never converged; statuses: {:#?}",
            addrs
                .iter()
                .map(|a| status_of(a.as_ref()))
                .collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Seal one call and land it on whichever member currently leads,
/// chasing `NotPrimary` redirects and riding out view changes — the
/// client's survival loop while a Byzantine leader is being evicted.
fn commit_anywhere(
    client: &Client,
    peers: &[String],
    args: &[u8],
    deadline: Duration,
) -> ([u8; 32], [u8; 32]) {
    let (tx, tx_hash, k_tx) = client.seal(DEMO_CONTRACT, "main", args).expect("seal");
    let end = Instant::now() + deadline;
    let mut target = 0usize;
    loop {
        assert!(Instant::now() < end, "no leader accepted the transaction");
        let addr = &peers[target % peers.len()];
        let attempt = Conn::connect_timeout(addr, Duration::from_secs(25))
            .and_then(|mut c| c.submit_wait(&tx));
        match attempt {
            Ok((sealed, bytes)) => {
                assert!(sealed, "confidential receipt came back unsealed");
                Receipt::open(&bytes, &k_tx, &tx_hash).expect("receipt opens");
                return (tx_hash, k_tx);
            }
            Err(NetError::NotPrimary(leader)) => match peers.iter().position(|p| *p == leader) {
                Some(i) if i != target % peers.len() => target = i,
                _ => {
                    target += 1;
                    std::thread::sleep(Duration::from_millis(100));
                }
            },
            Err(_) => {
                target += 1;
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// The tentpole drill: member 0 leads view 0 and equivocates — two
/// validly-signed conflicting proposals per slot, plus the double-deal
/// that hands one peer both statements. The honest 3-of-4 must record
/// evidence, elect around the offender, keep committing client work,
/// and end byte-identical; every receipt acked during the attack stays
/// servable from the survivors.
#[test]
fn equivocating_leader_is_evidenced_and_honest_majority_serves() {
    let ports = reserve_ports(4);
    let peers: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let mut servers: Vec<NodeServer> = (0..4u32)
        .map(|id| {
            let byz = (id == 0).then_some(ByzantinePreset::Equivocate);
            spawn_member(44, &peers, id, &peers[id as usize], byz)
        })
        .collect();

    let client = ClientConfig::new()
        .endpoint(&peers[1])
        .identity([91u8; 32], [92u8; 32], 93)
        .connect()
        .expect("client");
    // Submit against the full roster: in view 0 only the Byzantine
    // member accepts work (everyone else redirects to it), so the first
    // call lands on node 0, stalls behind the equivocated proposal, and
    // is only answered once the stall clock votes the offender out and
    // the new leader re-proposes the block.
    let honest: Vec<String> = peers[1..].to_vec();
    let mut acked = Vec::new();
    for i in 0..4 {
        acked.push(commit_anywhere(
            &client,
            &peers,
            &demo_args(6, i),
            Duration::from_secs(60),
        ));
    }

    // Honest members converge to one root, evicted the offender from
    // the primary seat, and hold durable evidence against it.
    let sts = wait_converged(&honest, 4, Duration::from_secs(40));

    // Convergence means every honest member executed every committed
    // block — so every acked receipt is servable from any of them.
    let mut survivor = Conn::connect(&honest[1]).expect("connect survivor");
    for (tx_hash, k_tx) in &acked {
        let bytes = survivor
            .get_receipt(tx_hash)
            .expect("receipt query")
            .expect("acked receipt lost under Byzantine leader");
        Receipt::open(&bytes, k_tx, tx_hash).expect("replicated receipt opens");
    }
    assert!(
        sts[0].view >= 1,
        "equivocating leader was never voted out: {sts:?}"
    );
    assert_eq!(
        sts[0].leader as u64,
        sts[0].view % 4,
        "leader is not the view's rightful primary"
    );
    assert!(
        sts.iter().any(|s| s.evidence > 0),
        "no honest member recorded equivocation evidence: {sts:?}"
    );
    for s in &mut servers {
        s.shutdown();
    }
}

/// A Byzantine *follower* splitting its Prepare digests must not slow
/// the honest quorum down — the leader commits from the other three
/// votes — but the double-dealt peer still records evidence against it.
#[test]
fn conflicting_follower_votes_yield_evidence_without_stalling() {
    let ports = reserve_ports(4);
    let peers: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let mut servers: Vec<NodeServer> = (0..4u32)
        .map(|id| {
            let byz = (id == 3).then_some(ByzantinePreset::ConflictingVote);
            spawn_member(45, &peers, id, &peers[id as usize], byz)
        })
        .collect();

    let client = ClientConfig::new()
        .endpoint(&peers[0])
        .identity([94u8; 32], [95u8; 32], 96)
        .connect()
        .expect("client");
    for i in 0..5 {
        client
            .call_confidential(DEMO_CONTRACT, "main", &demo_args(7, i))
            .expect("honest quorum commits past the conflicting voter");
    }

    // All four converge: the offender's *internal* replica is honest
    // (only its outbound wire votes fork), so it executes the committed
    // chain like everyone else.
    let sts = wait_converged(&peers, 5, Duration::from_secs(30));
    assert!(
        sts.iter().any(|s| s.evidence > 0),
        "conflicting votes left no evidence: {sts:?}"
    );
    for s in &mut servers {
        s.shutdown();
    }
}

/// A silent leader (no proposals, no heartbeats) is indistinguishable
/// from a dead one: the followers' staggered jittered timeouts must
/// elect the next primary and serve clients as if nothing happened.
#[test]
fn silent_leader_is_elected_around() {
    let ports = reserve_ports(4);
    let peers: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let mut servers: Vec<NodeServer> = (0..4u32)
        .map(|id| {
            let byz = (id == 0).then_some(ByzantinePreset::SilentLeader);
            spawn_member(46, &peers, id, &peers[id as usize], byz)
        })
        .collect();

    let client = ClientConfig::new()
        .endpoint(&peers[1])
        .identity([97u8; 32], [98u8; 32], 99)
        .connect()
        .expect("client");
    let honest: Vec<String> = peers[1..].to_vec();
    for i in 0..3 {
        commit_anywhere(&client, &honest, &demo_args(8, i), Duration::from_secs(60));
    }
    let sts = wait_converged(&honest, 3, Duration::from_secs(40));
    assert!(
        sts[0].view >= 1 && sts.iter().all(|s| s.view_changes >= 1),
        "silence never triggered an election: {sts:?}"
    );
    assert_eq!(sts[0].leader as u64, sts[0].view % 4);
    // Silence is not equivocation: nothing signed, nothing to prove.
    assert!(
        sts.iter().all(|s| s.evidence == 0),
        "silent leader cannot yield evidence: {sts:?}"
    );
    for s in &mut servers {
        s.shutdown();
    }
}

/// Satellite drill: a late joiner whose first state-sync source is
/// blackholed mid-stream (connects fine, then serves nothing) must hit
/// the per-chunk read timeout, rotate to a different peer with capped
/// backoff, and still complete the catch-up.
#[test]
fn blackholed_sync_source_forces_peer_rotation() {
    let ports = reserve_ports(4);
    let real: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    // Quorum runs 3-of-4 while the fourth member is dark.
    let mut servers: Vec<NodeServer> = (0..3u32)
        .map(|id| spawn_member(47, &real, id, &real[id as usize], None))
        .collect();

    let client = ClientConfig::new()
        .endpoint(&real[0])
        .identity([101u8; 32], [102u8; 32], 103)
        .connect()
        .expect("client");
    for i in 0..8 {
        client
            .call_confidential(DEMO_CONTRACT, "main", &demo_args(9, i))
            .expect("commit with one member dark");
    }
    // Quiet period: stale consensus backlog for the committed blocks
    // drains, so the joiner can only catch up over state sync.
    std::thread::sleep(Duration::from_secs(4));

    // The joiner's roster routes member 0 — the leader, and therefore
    // its *first* sync target — through a never-healing blackhole:
    // connections open, bytes vanish.
    let upstream = real[0].parse().expect("addr parses");
    let mut proxy =
        FaultProxy::spawn(upstream, FaultPlan::partition(905, 0, u64::MAX / 2)).expect("proxy");
    let mut doctored = real.clone();
    doctored[0] = proxy.addr().to_string();
    servers.push(spawn_member(47, &doctored, 3, &real[3], None));

    let sts = wait_converged(&real, 8, Duration::from_secs(90));
    let late = sts
        .iter()
        .find(|s| s.node_id == 3)
        .expect("late member reporting");
    assert!(
        late.sync_blocks > 0,
        "joiner did not catch up over state sync: {late:?}"
    );
    // The blackholed path was actually tried: rotation, not luck.
    assert!(
        proxy.stats().injected() > 0,
        "joiner never attempted the blackholed source"
    );
    for s in &mut servers {
        s.shutdown();
    }
    proxy.shutdown();
}

/// Negative acceptance check against the real consortium roster (the
/// same keys every wire member derives from the demo platforms): a
/// vote-deficient certificate and a forged certificate must both be
/// rejected by the exact `verify` call the state-sync client and the
/// crash-recovery path gate on.
#[test]
fn forged_or_deficient_certs_rejected_under_consortium_roster() {
    let seed = 48u64;
    let peers: Vec<String> = (0..4).map(|i| format!("host{i}:1")).collect();
    let roster = ClusterConfig::demo(0, peers, seed).consensus_keys;
    let signer_of = |id: u32| cluster_platform(seed, id).consensus_signing_key();

    let height = 9u64;
    let root = [0x5a; 32];
    let vote = |id: u32| (id, sign_vote(&signer_of(id), height, &root));

    // The genuine 2f+1 certificate verifies — the baseline.
    let good = QuorumCert {
        height,
        root,
        votes: vec![vote(0), vote(2), vote(3)],
    };
    good.verify(4, &roster)
        .expect("genuine certificate verifies");

    // Vote-deficient: 2 of 4 is below quorum, however genuine.
    let thin = QuorumCert {
        height,
        root,
        votes: vec![vote(0), vote(2)],
    };
    assert_eq!(
        thin.verify(4, &roster),
        Err(CertError::VoteDeficient { got: 2, need: 3 })
    );

    // Forged: one vote signed by a key outside the consortium roster.
    let outsider = cluster_platform(seed ^ 0xdead, 1).consensus_signing_key();
    let forged = QuorumCert {
        height,
        root,
        votes: vec![vote(0), (2, sign_vote(&outsider, height, &root)), vote(3)],
    };
    assert_eq!(forged.verify(4, &roster), Err(CertError::BadVote(2)));

    // Replayed: genuine votes for one root presented for another block's
    // root — the certificate must not transfer.
    let mut replay = good.clone();
    replay.root = [0x5b; 32];
    assert!(matches!(
        replay.verify(4, &roster),
        Err(CertError::BadVote(_))
    ));

    // And the wire decode of a truncated certificate is a typed error.
    let bytes = good.encode();
    assert_eq!(
        QuorumCert::decode(&bytes[..bytes.len() - 3]),
        Err(CertError::Malformed)
    );
}

/// The self-healing drill against the *real* binary: member 3 runs
/// `confide-node` with a durable WAL, commits alongside three in-process
/// members, gets killed, has a byte flipped in the **middle** of its WAL
/// (not the tail — a torn-write cut cannot explain it), and restarts.
/// The binary must truncate to the longest replayable certified prefix,
/// announce the repair on stdout, backfill the dropped suffix through
/// cert-verified state sync, and rejoin consensus for new blocks.
#[test]
fn mid_prefix_corrupted_wal_member_self_heals_on_restart() {
    use std::io::BufRead;
    use std::process::{Command, Stdio};

    let seed = 51u64;
    let ports = reserve_ports(4);
    let peers: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let roster = peers.join(",");
    let mut servers: Vec<NodeServer> = (0..3u32)
        .map(|id| spawn_member(seed, &peers, id, &peers[id as usize], None))
        .collect();

    let dir = std::env::temp_dir().join(format!("confide-heal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let wal = dir.join("member3.wal");

    // Spawn the binary member and pump its stdout until LISTENING,
    // returning the child plus every machine-readable line seen before
    // the server came up (REPAIRED / RECOVERED on a restart).
    let spawn_node = |wal: &std::path::Path| {
        let mut child = Command::new(env!("CARGO_BIN_EXE_confide-node"))
            .args([
                "--node-id",
                "3",
                "--peers",
                &roster,
                "--cluster-keys",
                &seed.to_string(),
                "--wal",
                wal.to_str().expect("utf-8 path"),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn confide-node");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut boot_lines = Vec::new();
        for line in std::io::BufReader::new(stdout).lines() {
            let line = line.expect("binary stdout line");
            let listening = line.starts_with("LISTENING ");
            boot_lines.push(line);
            if listening {
                return (child, boot_lines);
            }
        }
        // stdout closed without LISTENING: the binary died at boot.
        let _ = child.kill();
        let _ = child.wait();
        panic!("confide-node exited before LISTENING; boot lines: {boot_lines:?}");
    };
    let (mut child, boot) = spawn_node(&wal);
    assert!(
        !boot.iter().any(|l| l.starts_with("REPAIRED")),
        "fresh boot must not repair: {boot:?}"
    );

    let client = ClientConfig::new()
        .endpoint(&peers[0])
        .identity([111u8; 32], [112u8; 32], 113)
        .connect()
        .expect("client");
    for i in 0..6 {
        client
            .call_confidential(DEMO_CONTRACT, "main", &demo_args(11, i))
            .expect("commit with binary member live");
    }
    wait_converged(&peers, 6, Duration::from_secs(60));

    // Kill -9 equivalent: no graceful shutdown, the WAL is what's left.
    child.kill().expect("kill binary member");
    child.wait().expect("reap binary member");

    // Flip one byte in the middle of the log. Every block record is
    // CRC-framed, so recovery cuts at the damaged record even though
    // megabytes of valid bytes may follow it.
    let mut bytes = std::fs::read(&wal).expect("read wal");
    assert!(
        bytes.len() > 128,
        "wal too small to corrupt mid-prefix: {} bytes",
        bytes.len()
    );
    let pos = bytes.len() / 2;
    bytes[pos] ^= 0xff;
    std::fs::write(&wal, &bytes).expect("write corrupted wal");

    let (mut child, boot) = spawn_node(&wal);
    let repaired = boot
        .iter()
        .find(|l| l.starts_with("REPAIRED "))
        .unwrap_or_else(|| panic!("restart did not announce a repair: {boot:?}"));
    let field = |line: &str, key: &str| -> u64 {
        line.split_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing {key}= in {line:?}"))
    };
    assert!(
        field(repaired, "dropped") > 0,
        "repair dropped no bytes: {repaired:?}"
    );
    assert!(
        field(repaired, "height") < 6,
        "corruption mid-prefix must cost committed height: {repaired:?}"
    );
    // On-disk file really shrank to the replayable prefix.
    let healed_len = std::fs::metadata(&wal).expect("healed wal").len();
    assert!(
        healed_len < bytes.len() as u64,
        "wal was not truncated ({healed_len} vs {})",
        bytes.len()
    );

    // The healed member must backfill the dropped blocks through
    // cert-verified state sync and land byte-identical with the quorum.
    let sts = wait_converged(&peers, 6, Duration::from_secs(60));
    let healed = sts
        .iter()
        .find(|s| s.node_id == 3)
        .expect("healed member reporting");
    assert!(
        healed.sync_blocks > 0,
        "healed member did not use state sync: {healed:?}"
    );

    // And it keeps following consensus for brand-new client work.
    for i in 6..8 {
        client
            .call_confidential(DEMO_CONTRACT, "main", &demo_args(11, i))
            .expect("commit after heal");
    }
    wait_converged(&peers, 8, Duration::from_secs(60));

    child.kill().expect("stop binary member");
    child.wait().expect("reap binary member");
    for s in &mut servers {
        s.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
