//! End-to-end tests over real loopback sockets: a live [`NodeServer`],
//! real TCP clients, and — the centerpiece — a sniffing proxy that
//! captures every byte of a session to prove the transport leaks no
//! plaintext (the T-Protocol carries confidentiality, not the socket).

use confide_core::client::ConfideClient;
use confide_core::receipt::Receipt;
use confide_core::seal_signed_tx;
use confide_core::tx::WireTx;
use confide_crypto::HmacDrbg;
use confide_net::demo::{
    demo_args, demo_node, DEMO_CONTRACT, DEMO_CROSS_CONTRACT, DEMO_EVM_CONTRACT,
    DEMO_PUBLIC_CONTRACT,
};
use confide_net::loadgen::{run, LoadgenConfig};
use confide_net::{ClientConfig, Conn, ErrorKind, Message, NetError, NodeServer, ServerConfig};
use confide_tee::platform::TeePlatform;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn spawn_server(seed: u64, config: ServerConfig) -> NodeServer {
    NodeServer::spawn(demo_node(seed), ("127.0.0.1", 0), config).expect("server spawns")
}

// ── sniffing proxy ──────────────────────────────────────────────────────

/// Forward bytes between `from` and `to`, recording everything seen.
fn pump(mut from: TcpStream, mut to: TcpStream, captured: Arc<Mutex<Vec<u8>>>) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => {
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
            Ok(n) => {
                captured
                    .lock()
                    .expect("capture lock")
                    .extend_from_slice(&buf[..n]);
                if to.write_all(&buf[..n]).is_err() {
                    return;
                }
            }
        }
    }
}

/// A transparent TCP proxy in front of `upstream` that records every
/// frame of every connection (both directions) — the stand-in for a
/// network middlebox / curious host in CONFIDE's threat model.
fn sniffing_proxy(upstream: SocketAddr) -> (SocketAddr, Arc<Mutex<Vec<u8>>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("proxy binds");
    let addr = listener.local_addr().expect("proxy addr");
    let captured = Arc::new(Mutex::new(Vec::new()));
    let cap = Arc::clone(&captured);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(client) = stream else { break };
            let Ok(server) = TcpStream::connect(upstream) else {
                break;
            };
            let client2 = client.try_clone().expect("clone");
            let server2 = server.try_clone().expect("clone");
            let cap_up = Arc::clone(&cap);
            let cap_down = Arc::clone(&cap);
            std::thread::spawn(move || pump(client, server, cap_up));
            std::thread::spawn(move || pump(server2, client2, cap_down));
        }
    });
    (addr, captured)
}

fn contains_subslice(haystack: &[u8], needle: &[u8]) -> bool {
    !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
}

// ── tests ───────────────────────────────────────────────────────────────

#[test]
fn confidential_round_trip_over_the_wire() {
    let server = spawn_server(11, ServerConfig::default());
    let client = ClientConfig::new()
        .endpoint(server.addr())
        .identity([1u8; 32], [2u8; 32], 3)
        .connect()
        .expect("connect");
    // Three sequential transfers accumulate in confidential state:
    // amounts 1, 2, 3 → running balances 1, 3, 6.
    for (n, expect) in [(0usize, b"1".as_slice()), (1, b"3"), (2, b"6")] {
        let receipt = client
            .call_confidential(DEMO_CONTRACT, "main", &demo_args(0, n))
            .expect("tx commits");
        assert!(receipt.success);
        assert_eq!(receipt.return_data, expect, "iteration {n}");
    }
}

#[test]
fn evm_and_cross_engine_calls_commit_over_the_wire() {
    // The EVM engine end to end through the pipelined server: direct
    // invocations of the confidential EVM demo ledger, then CCL→EVM
    // cross-engine calls through the forwarder contract — both sealed
    // under the T-Protocol, receipts decrypting under each tx's `k_tx`
    // (which `call_confidential` performs before returning).
    let server = spawn_server(17, ServerConfig::default());
    let client = ClientConfig::new()
        .endpoint(server.addr())
        .identity([11u8; 32], [12u8; 32], 5)
        .connect()
        .expect("connect");

    // Direct EVM invocations: amounts 1, 2 → running balances 1, 3.
    for (n, expect) in [(0usize, b"1".as_slice()), (1, b"3")] {
        let receipt = client
            .call_confidential(DEMO_EVM_CONTRACT, "main", &demo_args(3, n))
            .expect("EVM tx commits");
        assert!(receipt.success, "EVM iteration {n}");
        assert_eq!(receipt.return_data, expect, "EVM iteration {n}");
    }

    // Cross-engine calls: the CONFIDE-VM forwarder relays the same
    // arguments to the EVM contract inside one enclave transaction, so
    // the balances continue from the state the direct calls left —
    // proof the call crossed engines into the *same* callee state.
    for (n, expect) in [(2usize, b"6".as_slice()), (3, b"10")] {
        let receipt = client
            .call_confidential(DEMO_CROSS_CONTRACT, "main", &demo_args(3, n))
            .expect("cross-engine tx commits");
        assert!(receipt.success, "cross iteration {n}");
        assert_eq!(receipt.return_data, expect, "cross iteration {n}");
    }
}

#[test]
fn an_evm_contract_deploys_over_the_wire_and_serves_sealed_calls() {
    // The README quickstart path: deploy EVM bytecode through a live node
    // via a registry transaction to address zero — sealed under the
    // T-Protocol like any confidential tx. Payload is
    // `[vm_kind][confidential] ++ code` (vm_kind 1 = EVM); the receipt's
    // return data is the deterministic 32-byte contract address.
    let server = spawn_server(23, ServerConfig::default());
    let client = ClientConfig::new()
        .endpoint(server.addr())
        .identity([21u8; 32], [22u8; 32], 9)
        .connect()
        .expect("connect");

    let code = confide_lang::build_evm(confide_net::demo::DEMO_CCL).expect("demo EVM compiles");
    let mut payload = vec![1u8, 1u8]; // [vm=Evm][confidential]
    payload.extend_from_slice(&code);
    let receipt = client
        .call_confidential([0u8; 32], "deploy", &payload)
        .expect("deploy commits");
    assert!(receipt.success, "deploy failed: {receipt:?}");
    let address: [u8; 32] = receipt
        .return_data
        .as_slice()
        .try_into()
        .expect("deploy returns a 32-byte address");

    // Garbage bytecode never registers: the deploy-time verifier refuses
    // it and the submission comes back as a typed reject.
    let mut bad = vec![1u8, 1u8];
    bad.extend_from_slice(&[0xfe, 0x60]); // INVALID opcode + truncated PUSH1
    client
        .call_confidential([0u8; 32], "deploy", &bad)
        .expect_err("garbage EVM bytecode must be refused at deploy");

    // The fresh contract serves sealed calls exactly like the genesis one.
    for (n, expect) in [(0usize, b"1".as_slice()), (1, b"3")] {
        let receipt = client
            .call_confidential(address, "main", &demo_args(6, n))
            .expect("EVM tx commits");
        assert!(receipt.success, "post-deploy iteration {n}");
        assert_eq!(receipt.return_data, expect, "post-deploy iteration {n}");
    }
}

#[test]
fn sniffer_sees_no_plaintext_while_client_decrypts() {
    let server = spawn_server(12, ServerConfig::default());
    let (proxy_addr, captured) = sniffing_proxy(server.addr());

    let args = br#"{"to":"alice-utterly-unique-7c3f","amount":41}"#.to_vec();
    let client = ClientConfig::new()
        .endpoint(proxy_addr)
        .identity([5u8; 32], [6u8; 32], 9)
        .connect()
        .expect("connect");
    let receipt = client
        .call_confidential(DEMO_CONTRACT, "main", &args)
        .expect("tx commits through the proxy");
    assert!(receipt.success);
    assert_eq!(receipt.return_data, b"41"); // decrypted under k_tx

    let bytes = captured.lock().expect("capture lock").clone();
    assert!(
        bytes.len() > 200,
        "proxy captured a full session, got {} bytes",
        bytes.len()
    );
    // The middlebox saw the whole conversation but none of the secrets:
    // not the arguments, not the method name, not the account key, not
    // the plaintext receipt encoding.
    assert!(!contains_subslice(&bytes, &args), "args leaked");
    assert!(
        !contains_subslice(&bytes, b"alice-utterly-unique-7c3f"),
        "recipient leaked"
    );
    assert!(!contains_subslice(&bytes, b"main"), "method name leaked");
    assert!(
        !contains_subslice(&bytes, b"bal:alice"),
        "storage key leaked"
    );
    assert!(
        !contains_subslice(&bytes, &receipt.encode()),
        "plaintext receipt leaked"
    );
}

#[test]
fn overload_yields_busy_with_zero_silent_drops() {
    // A deliberately tiny server: 1-deep queue, 1-tx blocks — any
    // pipelined burst must overflow.
    let server = spawn_server(
        13,
        ServerConfig {
            max_batch: 1,
            queue_depth: 1,
            batch_linger: Duration::from_millis(0),
            ..ServerConfig::default()
        },
    );
    let cfg = LoadgenConfig {
        endpoints: vec![server.addr()],
        threads: 2,
        txs_per_thread: 60,
        closed: false, // open loop: Busy replies are the measurement
        confidential: true,
        window: 32,
        ..LoadgenConfig::default()
    };
    let report = run(&cfg).expect("loadgen runs");
    assert_eq!(report.submitted, 120);
    // Explicit backpressure fired...
    assert!(report.busy > 0, "no Busy under 2x overload: {report:?}");
    // ...every submission got exactly one typed answer...
    assert_eq!(
        report.accepted + report.busy + report.rejected,
        report.submitted,
        "unaccounted submissions: {report:?}"
    );
    // ...and every accepted transaction committed with a receipt that
    // decrypts: zero silent drops.
    assert_eq!(
        report.receipts_verified, report.accepted,
        "accepted tx lost: {report:?}"
    );
    let stats = server.stats();
    assert_eq!(
        stats.busy.load(std::sync::atomic::Ordering::Relaxed),
        report.busy
    );
}

#[test]
fn client_pools_connections_under_cap() {
    let server = spawn_server(14, ServerConfig::default());
    let client = Arc::new(
        ClientConfig::new()
            .endpoint(server.addr())
            .pool_size(2)
            .connect()
            .expect("client"),
    );
    // 8 logical clients × 5 txs over at most 2 sockets.
    std::thread::scope(|scope| {
        for id in 0..8usize {
            let client = Arc::clone(&client);
            scope.spawn(move || {
                let identity = [id as u8 + 1; 32];
                let root = [id as u8 + 101; 32];
                let mut inner = confide_core::client::ConfideClient::new(identity, root, id as u64);
                let mut rng = confide_crypto::HmacDrbg::from_u64(id as u64 + 400);
                let pk_tx = client
                    .with_conn(|c| c.fetch_pk_tx())
                    .expect("pk_tx via pool");
                for n in 0..5usize {
                    let signed = inner.build_raw(DEMO_CONTRACT, "main", &demo_args(id, n));
                    let (wire, tx_hash, k_tx) =
                        confide_core::seal_signed_tx(&signed, &root, &pk_tx, &mut rng)
                            .expect("seal");
                    let (sealed, receipt) = client.submit_wait(&wire).expect("commit via pool");
                    assert!(sealed);
                    let receipt = confide_core::receipt::Receipt::open(&receipt, &k_tx, &tx_hash)
                        .expect("receipt decrypts");
                    assert!(receipt.success);
                }
            });
        }
    });
    // The node never saw more sockets than the cap allows (plus the
    // server-spawn handshake none — the pooled client is the only one).
    let conns = server
        .stats()
        .connections
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        (1..=2).contains(&conns),
        "client opened {conns} sockets with a cap of 2"
    );
}

/// One pre-built transaction of the mixed determinism stream, with
/// enough context retained to verify its receipt on both replicas.
struct StreamTx {
    wire: WireTx,
    tx_hash: [u8; 32],
    k_tx: Option<[u8; 32]>,
}

/// Build a 200-tx mixed stream: 10 senders × 20 txs, two thirds
/// confidential (sealed to `pk_tx`) and one third public, paying into a
/// small shared set of users so real cross-sender conflict groups form.
/// A third of the confidential senders target the **EVM** demo contract,
/// so every block this stream seals is a mixed VM+EVM block — the shape
/// whose determinism the static scheduler's OCC fallback must preserve.
fn mixed_stream(pk_tx: &[u8; 32]) -> Vec<StreamTx> {
    let mut stream = Vec::with_capacity(200);
    for s in 0..10usize {
        let identity = [s as u8 + 30; 32];
        let root = [s as u8 + 60; 32];
        let mut client = ConfideClient::new(identity, root, s as u64 + 9_000);
        let mut rng = HmacDrbg::from_u64(s as u64 + 8_000);
        let confidential = s % 3 != 0;
        for n in 0..20usize {
            let args = format!(r#"{{"to":"mix{}","amount":{}}}"#, (s + n) % 7, n % 97 + 1);
            if confidential {
                let contract = if s % 3 == 1 {
                    DEMO_EVM_CONTRACT
                } else {
                    DEMO_CONTRACT
                };
                let signed = client.build_raw(contract, "main", args.as_bytes());
                let (wire, tx_hash, k_tx) =
                    seal_signed_tx(&signed, &root, pk_tx, &mut rng).expect("seal");
                stream.push(StreamTx {
                    wire,
                    tx_hash,
                    k_tx: Some(k_tx),
                });
            } else {
                let signed = client.build_raw(DEMO_PUBLIC_CONTRACT, "main", args.as_bytes());
                let tx_hash = signed.raw.hash();
                stream.push(StreamTx {
                    wire: WireTx::Public(signed),
                    tx_hash,
                    k_tx: None,
                });
            }
        }
    }
    stream
}

/// Pipeline the whole stream over one connection (so it lands in a single
/// block), require every submission accepted, then wait for commit.
fn submit_stream(server: &NodeServer, stream: &[StreamTx]) -> Conn {
    let mut conn = Conn::connect(server.addr()).expect("connect");
    for t in stream {
        conn.send(&Message::SubmitTx(t.wire.clone())).expect("send");
    }
    for (i, _) in stream.iter().enumerate() {
        match conn.recv().expect("reply") {
            Message::Accepted(_) => {}
            other => panic!("tx {i}: expected Accepted, got kind {:#04x}", other.kind()),
        }
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let committed = server
            .stats()
            .committed
            .load(std::sync::atomic::Ordering::Relaxed);
        if committed >= stream.len() as u64 {
            return conn;
        }
        assert!(
            Instant::now() < deadline,
            "only {committed}/{} committed before timeout",
            stream.len()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn four_thread_node_matches_one_thread_node_bit_for_bit() {
    // Same seed, different executor thread counts: §6.2's determinism
    // requirement is that the replicas stay bit-identical.
    let config = |exec_threads| ServerConfig {
        exec_threads,
        // A generous linger so the pipelined 200-tx stream seals as ONE
        // block on both replicas (block boundaries feed the receipt RNG).
        batch_linger: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let s1 = spawn_server(21, config(1));
    let s4 = spawn_server(21, config(4));
    let pk_tx = s1.node().read().expect("node lock").pk_tx();
    assert_eq!(
        pk_tx,
        s4.node().read().expect("node lock").pk_tx(),
        "same seed, same enclave key"
    );

    let stream = mixed_stream(&pk_tx);
    assert_eq!(stream.len(), 200);
    let mut c1 = submit_stream(&s1, &stream);
    let mut c4 = submit_stream(&s4, &stream);
    for (name, s) in [("1-thread", &s1), ("4-thread", &s4)] {
        assert_eq!(
            s.stats().blocks.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "{name} node split the stream across blocks"
        );
    }

    // Identical state roots...
    let root1 = s1.node().read().expect("node lock").state_root();
    let root4 = s4.node().read().expect("node lock").state_root();
    assert_eq!(root1, root4, "state roots diverged across thread counts");

    // ...and identical stored receipts, byte for byte — sealed ones
    // decrypt under the client's k_tx on both replicas.
    for (i, t) in stream.iter().enumerate() {
        let r1 = c1.get_receipt(&t.tx_hash).expect("receipt fetch");
        let r4 = c4.get_receipt(&t.tx_hash).expect("receipt fetch");
        let bytes1 = r1.unwrap_or_else(|| panic!("tx {i} has no receipt on 1-thread node"));
        let bytes4 = r4.unwrap_or_else(|| panic!("tx {i} has no receipt on 4-thread node"));
        assert_eq!(bytes1, bytes4, "tx {i}: receipt bytes diverged");
        let receipt = match &t.k_tx {
            Some(k_tx) => Receipt::open(&bytes1, k_tx, &t.tx_hash).expect("sealed receipt opens"),
            None => Receipt::decode(&bytes1).expect("plain receipt decodes"),
        };
        assert_eq!(receipt.tx_hash, t.tx_hash);
        assert!(receipt.success, "tx {i} failed in the block");
    }
}

#[test]
fn client_lease_times_out_with_typed_pool_exhausted() {
    // A listener that never serves: the single lease below stays busy, so
    // a second lease must fail with the typed error instead of blocking
    // its caller forever (the old Condvar::wait hang).
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let client = Arc::new(
        ClientConfig::new()
            .endpoint(addr)
            .pool_size(1)
            .pool_wait(Duration::from_millis(200))
            .connect()
            .expect("client"),
    );
    std::thread::scope(|scope| {
        let holder = Arc::clone(&client);
        scope.spawn(move || {
            let _ = holder.with_conn(|_conn| {
                std::thread::sleep(Duration::from_millis(800));
                Ok(())
            });
        });
        std::thread::sleep(Duration::from_millis(100)); // let the holder win the lease
        let t0 = Instant::now();
        match client.with_conn(|_conn| Ok(())) {
            Err(e) => assert_eq!(e.kind(), ErrorKind::Pool, "wrong kind: {e}"),
            other => panic!("expected a Pool error, got {other:?}"),
        }
        assert!(
            t0.elapsed() >= Duration::from_millis(150),
            "gave up before the pool_wait window"
        );
    });
}

#[test]
fn attested_pk_tx_fetch_defends_against_substitution() {
    let server = spawn_server(15, ServerConfig::default());
    // The verifier's reference values: the consortium's attestation root
    // (same deterministic platform seed) and the CS-enclave measurement.
    let platform = TeePlatform::new(15, 15);
    let reference = {
        let node = server.node().read().expect("node lock");
        node.attestation_report().expect("TEE node has a report")
    };

    let mut conn = Conn::connect(server.addr()).expect("connect");
    let pk = conn
        .fetch_pk_tx_attested(
            &platform.attestation_public_key(),
            &reference.mrenclave,
            reference.isv_svn,
        )
        .expect("attested fetch succeeds against honest node");
    assert_eq!(pk, server.node().read().expect("node lock").pk_tx());

    // Wrong expected measurement → the report must be refused.
    match conn.fetch_pk_tx_attested(&platform.attestation_public_key(), &[0u8; 32], 0) {
        Err(NetError::Attestation(_)) => {}
        other => panic!("wrong mrenclave accepted: {other:?}"),
    }
    // Wrong attestation root (a different consortium) → refused too.
    let rogue = TeePlatform::new(99, 99);
    match conn.fetch_pk_tx_attested(
        &rogue.attestation_public_key(),
        &reference.mrenclave,
        reference.isv_svn,
    ) {
        Err(NetError::Attestation(_)) => {}
        other => panic!("rogue root accepted: {other:?}"),
    }
}

#[test]
fn public_txs_flow_unsealed_and_bad_submissions_get_typed_rejects() {
    let server = spawn_server(16, ServerConfig::default());
    let mut inner = confide_core::client::ConfideClient::new([9u8; 32], [8u8; 32], 1);
    let mut conn = Conn::connect(server.addr()).expect("connect");

    // The demo contract is deployed confidentially, so a public tx against
    // it must come back as a typed Rejected — not a hang, not a drop.
    let signed = inner.build_raw(DEMO_CONTRACT, "main", &demo_args(0, 0));
    match conn.submit_wait(&confide_core::tx::WireTx::Public(signed)) {
        Err(NetError::Rejected(_)) => {}
        other => panic!("expected typed reject, got {other:?}"),
    }

    // A tampered signature is refused at validation, before the queue.
    let mut signed = inner.build_raw(DEMO_CONTRACT, "main", &demo_args(0, 1));
    signed.signature.0[0] ^= 0xff;
    match conn.submit_wait(&confide_core::tx::WireTx::Public(signed)) {
        Err(NetError::Rejected(_)) => {}
        other => panic!("expected typed reject for bad signature, got {other:?}"),
    }

    // A garbage envelope is refused by §5.2 preverification.
    let mut rng = confide_crypto::HmacDrbg::from_u64(77);
    let kp = confide_crypto::envelope::EnvelopeKeyPair::generate(&mut rng);
    let env = confide_crypto::envelope::Envelope::seal(
        &kp.public(),
        &rng.gen32(),
        b"",
        b"junk",
        &mut rng,
    )
    .expect("seal");
    match conn.submit_wait(&confide_core::tx::WireTx::Confidential(env)) {
        Err(NetError::Rejected(_)) => {}
        other => panic!("expected typed reject for garbage envelope, got {other:?}"),
    }

    // The connection survives all three rejects.
    conn.ping().expect("connection still healthy");
}
