//! Wire-cluster end-to-end tests: four `NodeServer` processes-worth of
//! state (in-process, real TCP between them) ordering client
//! transactions through the PBFT peer mesh. The suite proves the
//! consortium contract from the outside: followers redirect clients to
//! the primary, killing the leader mid-stream loses nothing acked, a
//! member booted late catches up over state sync, and a member cut off
//! by a network partition converges once the link heals — in every case
//! the survivors end at byte-identical state roots.

use confide_core::receipt::Receipt;
use confide_net::demo::{demo_args, demo_cluster_node, DEMO_CONTRACT};
use confide_net::fault::{FaultPlan, FaultProxy};
use confide_net::frame::NodeStatus;
use confide_net::loadgen::{run as loadgen_run, LoadgenConfig};
use confide_net::{
    Client, ClientConfig, ClusterConfig, Conn, ErrorKind, NetError, NodeServer, ServerConfig,
};
use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Reserve `n` distinct loopback ports (bind-then-drop; the listeners
/// stay alive until all are picked so the OS cannot hand one out twice).
fn reserve_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("reserved addr").port())
        .collect()
}

/// Spawn cluster member `id` bound at `bind`, configured with the full
/// `peers` table (which may route some members through a fault proxy).
fn spawn_member(seed: u64, peers: &[String], id: u32, bind: &str) -> NodeServer {
    let cluster = ClusterConfig::demo(id, peers.to_vec(), seed);
    let config = ServerConfig::builder()
        .batch_linger(Duration::from_millis(2))
        .read_timeout(Duration::from_millis(200))
        .commit_timeout(Duration::from_secs(20))
        .join_roots(cluster.peer_roots.clone())
        .cluster(cluster)
        .build()
        .expect("member config validates");
    NodeServer::spawn(demo_cluster_node(seed, id), bind, config).expect("member spawns")
}

fn status_of(addr: &str) -> Option<NodeStatus> {
    let mut c = Conn::connect_timeout(addr, Duration::from_millis(800)).ok()?;
    c.status().ok()
}

/// Poll until every listed member reports the same height (at least
/// `min_height`) and the same state root; panics past `deadline`.
fn wait_converged<A: AsRef<str>>(
    addrs: &[A],
    min_height: u64,
    deadline: Duration,
) -> Vec<NodeStatus> {
    let end = Instant::now() + deadline;
    loop {
        let polled: Vec<Option<NodeStatus>> = addrs.iter().map(|a| status_of(a.as_ref())).collect();
        if polled.iter().all(|s| s.is_some()) {
            let sts: Vec<NodeStatus> = polled.into_iter().flatten().collect();
            let h = sts[0].height;
            if h >= min_height
                && sts.iter().all(|s| s.height == h)
                && sts.iter().all(|s| s.state_root == sts[0].state_root)
            {
                return sts;
            }
        }
        assert!(
            Instant::now() < end,
            "cluster never converged; heights: {:?}",
            addrs
                .iter()
                .map(|a| status_of(a.as_ref()).map(|s| s.height))
                .collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Seal one call and land it on whichever member currently leads,
/// chasing `NotPrimary` redirects and riding out a view change.
fn commit_anywhere(client: &Client, peers: &[String], args: &[u8], deadline: Duration) -> Receipt {
    let (tx, tx_hash, k_tx) = client.seal(DEMO_CONTRACT, "main", args).expect("seal");
    let end = Instant::now() + deadline;
    let mut target = 0usize;
    loop {
        assert!(Instant::now() < end, "no leader accepted the transaction");
        let addr = &peers[target % peers.len()];
        let attempt = Conn::connect_timeout(addr, Duration::from_secs(25))
            .and_then(|mut c| c.submit_wait(&tx));
        match attempt {
            Ok((sealed, bytes)) => {
                assert!(sealed, "confidential receipt came back unsealed");
                return Receipt::open(&bytes, &k_tx, &tx_hash).expect("receipt opens");
            }
            Err(NetError::NotPrimary(leader)) => {
                // Follow the redirect when it points somewhere new;
                // otherwise (stale pointer at a dead node) rotate.
                match peers.iter().position(|p| *p == leader) {
                    Some(i) if i != target % peers.len() => target = i,
                    _ => {
                        target += 1;
                        std::thread::sleep(Duration::from_millis(100));
                    }
                }
            }
            Err(_) => {
                target += 1;
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Happy path: a 4-member cluster orders a client stream through the
/// primary, followers answer with a typed redirect, and all four
/// members converge to the same height and state root.
#[test]
fn four_node_cluster_commits_and_followers_redirect() {
    let ports = reserve_ports(4);
    let peers: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let mut servers: Vec<NodeServer> = (0..4u32)
        .map(|id| spawn_member(31, &peers, id, &peers[id as usize]))
        .collect();

    let client = ClientConfig::new()
        .endpoint(&peers[0])
        .identity([41u8; 32], [42u8; 32], 43)
        .connect()
        .expect("client");
    for i in 0..8 {
        let receipt = client
            .call_confidential(DEMO_CONTRACT, "main", &demo_args(1, i))
            .expect("commit through the primary");
        assert!(!receipt.return_data.is_empty());
    }

    // A follower refuses new work with a typed redirect to the primary.
    let (tx, _, _) = client
        .seal(DEMO_CONTRACT, "main", &demo_args(1, 99))
        .expect("seal");
    let mut follower = Conn::connect(&peers[2]).expect("connect follower");
    match follower.submit_wait(&tx) {
        Err(NetError::NotPrimary(leader)) => assert_eq!(leader, peers[0]),
        other => panic!("follower did not redirect: {other:?}"),
    }

    let statuses = wait_converged(&peers, 8, Duration::from_secs(20));
    assert_eq!(statuses[0].leader, 0, "view 0 leader should be node 0");
    for s in &statuses {
        assert_eq!(s.view, statuses[0].view, "members disagree on the view");
    }
    for s in &mut servers {
        s.shutdown();
    }
}

/// Kill the leader mid-stream: every receipt acked before the kill is
/// servable from any survivor, the survivors elect a new primary via
/// view change, and new work commits and converges.
#[test]
fn leader_kill_triggers_view_change_and_survivors_serve() {
    let ports = reserve_ports(4);
    let peers: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let mut servers: Vec<NodeServer> = (0..4u32)
        .map(|id| spawn_member(32, &peers, id, &peers[id as usize]))
        .collect();

    let client = ClientConfig::new()
        .endpoint(&peers[0])
        .identity([51u8; 32], [52u8; 32], 53)
        .connect()
        .expect("client");
    let mut last = None;
    for i in 0..4 {
        let (tx, tx_hash, k_tx) = client
            .seal(DEMO_CONTRACT, "main", &demo_args(2, i))
            .expect("seal");
        let (sealed, bytes) = client.submit_wait(&tx).expect("commit via leader");
        assert!(sealed);
        Receipt::open(&bytes, &k_tx, &tx_hash).expect("receipt opens");
        last = Some((tx_hash, k_tx));
    }
    let (tx_hash, k_tx) = last.expect("committed at least one");

    servers[0].shutdown(); // the leader dies with the client's stream done

    // The acked receipt was replicated by execution on every member.
    let mut survivor = Conn::connect(&peers[1]).expect("connect survivor");
    let bytes = survivor
        .get_receipt(&tx_hash)
        .expect("receipt query")
        .expect("acked receipt must survive the leader");
    Receipt::open(&bytes, &k_tx, &tx_hash).expect("replicated receipt opens");

    // New work lands once the survivors elect a new primary.
    let survivors = peers[1..].to_vec();
    for i in 0..3 {
        commit_anywhere(
            &client,
            &survivors,
            &demo_args(3, i),
            Duration::from_secs(40),
        );
    }
    let sts = wait_converged(&survivors, 7, Duration::from_secs(30));
    assert!(
        sts.iter().all(|s| s.view_changes >= 1),
        "survivors recorded no view change: {sts:?}"
    );
    assert!(
        sts[0].view >= 1,
        "view did not advance past the dead leader"
    );
    assert_eq!(
        sts[0].leader as u64,
        sts[0].view % 4,
        "leader is not the view's rightful primary"
    );
    for s in &mut servers {
        s.shutdown();
    }
}

/// A member booted late (or wiped) starts 10 blocks behind the quorum
/// and must catch up over attested state sync, ending byte-identical.
#[test]
fn late_joining_member_catches_up_via_state_sync() {
    let ports = reserve_ports(4);
    let peers: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    // Quorum is 3-of-4: the cluster runs with the fourth member dark.
    let mut servers: Vec<NodeServer> = (0..3u32)
        .map(|id| spawn_member(33, &peers, id, &peers[id as usize]))
        .collect();

    let client = ClientConfig::new()
        .endpoint(&peers[0])
        .identity([61u8; 32], [62u8; 32], 63)
        .connect()
        .expect("client");
    for i in 0..10 {
        client
            .call_confidential(DEMO_CONTRACT, "main", &demo_args(4, i))
            .expect("commit with one member dark");
    }

    // Quiet period: each peer's sender loop drains its stale outbound
    // queue on the next failed dial (refused + <= 800 ms backoff), so
    // after this sleep no consensus backlog for blocks 1-10 survives —
    // the joiner cannot catch up by pipeline replay.
    std::thread::sleep(Duration::from_secs(4));

    // Boot the fourth member fresh, 10 blocks behind the watermark
    // window — PrePrepare replay cannot help; only state sync can.
    servers.push(spawn_member(33, &peers, 3, &peers[3]));
    let sts = wait_converged(&peers, 10, Duration::from_secs(40));
    let late = sts
        .iter()
        .find(|s| s.node_id == 3)
        .expect("late member reporting");
    assert!(
        late.sync_blocks > 0,
        "late member did not use state sync: {late:?}"
    );
    for s in &mut servers {
        s.shutdown();
    }
}

/// Satellite: the load generator drives a whole cluster. Workers spread
/// their initial connections across all four members, so three of them
/// land on followers and must follow the typed `NotPrimary` redirect to
/// the primary — every transaction still commits and verifies.
#[test]
fn loadgen_follows_redirects_across_the_cluster() {
    let ports = reserve_ports(4);
    let peers: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let mut servers: Vec<NodeServer> = (0..4u32)
        .map(|id| spawn_member(36, &peers, id, &peers[id as usize]))
        .collect();

    let cfg = LoadgenConfig {
        endpoints: peers.iter().map(|p| p.parse().expect("addr")).collect(),
        threads: 4,
        txs_per_thread: 8,
        closed: true,
        confidential: true,
        ..LoadgenConfig::default()
    };
    let report = loadgen_run(&cfg).expect("cluster loadgen run");
    assert_eq!(report.receipts_verified, 32, "lost commits: {report:?}");
    assert!(
        report.redirects >= 3,
        "follower-landed workers must be redirected: {report:?}"
    );
    for s in &mut servers {
        s.shutdown();
    }
}

/// A multi-node pool must verify each member's *own* enclave report.
/// Cluster members share the consortium `pk_tx` but quote from
/// distinct per-node platforms, so validating member 1's report under
/// member 0's attestation root is exactly the cross-validation bug —
/// the client's per-endpoint cache keys every verified key by the
/// endpoint it was proven for.
#[test]
fn client_caches_attested_pk_tx_per_endpoint() {
    let ports = reserve_ports(4);
    let peers: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    // Attestation needs no quorum: two members of the four-seat table.
    let mut servers: Vec<NodeServer> = (0..2u32)
        .map(|id| spawn_member(35, &peers, id, &peers[id as usize]))
        .collect();
    let reference = {
        let node = servers[0].node().read().expect("node lock");
        node.attestation_report().expect("TEE node has a report")
    };
    let roots = ClusterConfig::demo(0, peers.clone(), 35).peer_roots;

    let cl0 = ClientConfig::new()
        .endpoint(&peers[0])
        .pool_size(2)
        .connect()
        .expect("client 0");
    let pk = cl0
        .pk_tx_attested(&roots[0], &reference.mrenclave, reference.isv_svn)
        .expect("member 0 verifies under its own root");

    // Member 1's report must not verify under member 0's root …
    let cl1 = ClientConfig::new()
        .endpoint(&peers[1])
        .pool_size(2)
        .connect()
        .expect("client 1");
    match cl1.pk_tx_attested(&roots[0], &reference.mrenclave, reference.isv_svn) {
        Err(e) => assert_eq!(e.kind(), ErrorKind::Attestation, "wrong kind: {e}"),
        other => panic!("cross-endpoint enclave report accepted: {other:?}"),
    }
    // … and the refused attempt must not have poisoned the cache.
    let pk1 = cl1
        .pk_tx_attested(&roots[1], &reference.mrenclave, reference.isv_svn)
        .expect("member 1 verifies under its own root");
    assert_eq!(pk, pk1, "the consortium pk_tx is shared");

    // Once proven for an endpoint the verdict is sticky: it is served
    // from the cache even after the member goes away.
    servers[1].shutdown();
    let cached = cl1
        .pk_tx_attested(&roots[1], &reference.mrenclave, reference.isv_svn)
        .expect("cached verdict survives the member");
    assert_eq!(cached, pk1);
    for s in &mut servers {
        s.shutdown();
    }
}

/// Cut one member off behind a symmetric partition from the first
/// chunk, let the other three commit a stream, then heal the link by
/// driving the proxy's shared chunk clock past the window. The dark
/// member must sync up and converge to the quorum's state root.
#[test]
fn partitioned_member_rejoins_after_heal_and_converges() {
    const WINDOW: u64 = 400;
    let ports = reserve_ports(4);
    let real: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let upstream = real[3].parse().expect("addr parses");
    let mut proxy =
        FaultProxy::spawn(upstream, FaultPlan::partition(903, 0, WINDOW)).expect("proxy");
    // Every member reaches node 3 through the proxy; node 3 dials out
    // directly (its votes go nowhere useful — it never sees proposals).
    let mut peers = real.clone();
    peers[3] = proxy.addr().to_string();
    let mut servers: Vec<NodeServer> = (0..4u32)
        .map(|id| spawn_member(34, &peers, id, &real[id as usize]))
        .collect();

    // Commit through whichever member currently leads — a slow CI box
    // can view-change spuriously, which must not fail the drill.
    let client = ClientConfig::new()
        .endpoint(&real[0])
        .identity([71u8; 32], [72u8; 32], 73)
        .connect()
        .expect("client");
    let majority: Vec<String> = real[..3].to_vec();
    for i in 0..6 {
        commit_anywhere(
            &client,
            &majority,
            &demo_args(5, i),
            Duration::from_secs(60),
        );
    }
    // The dark member still answers on its local socket (retry the
    // probe: an 800 ms connect can lose the race under full-suite load).
    let probe_end = Instant::now() + Duration::from_secs(10);
    let dark = loop {
        match status_of(&real[3]) {
            Some(s) => break s,
            None => {
                assert!(
                    Instant::now() < probe_end,
                    "dark member stopped answering locally"
                );
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    };
    assert_eq!(dark.height, 0, "partitioned member saw consensus traffic");

    // Quiet period: a blackholed dial fails within the 2 s handshake
    // read timeout, after which the sender drains its stale queue — so
    // post-heal the only surviving traffic is heartbeats, and node 3
    // must recover through state sync, not consensus-backlog replay.
    std::thread::sleep(Duration::from_secs(4));

    // Heal deterministically: pump junk chunks through the proxy until
    // the shared clock leaves the window (every chunk from tick 0 was
    // blackholed, so `partitioned == min(clock, WINDOW)`).
    let end = Instant::now() + Duration::from_secs(60);
    'pump: while proxy.stats().partitioned.load(Ordering::Relaxed) < WINDOW {
        assert!(Instant::now() < end, "partition never healed");
        let Ok(mut s) = std::net::TcpStream::connect(proxy.addr()) else {
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        while proxy.stats().partitioned.load(Ordering::Relaxed) < WINDOW {
            assert!(Instant::now() < end, "partition never healed");
            if std::io::Write::write_all(&mut s, &[0u8]).is_err() {
                continue 'pump;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    let sts = wait_converged(&real, 6, Duration::from_secs(90));
    let healed = sts
        .iter()
        .find(|s| s.node_id == 3)
        .expect("healed member reporting");
    assert!(
        healed.sync_blocks > 0,
        "healed member did not sync: {healed:?}"
    );
    for s in &mut servers {
        s.shutdown();
    }
    proxy.shutdown();
}
