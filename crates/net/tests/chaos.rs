//! Chaos end-to-end tests: kill and restart a live node mid-stream,
//! behind a fault-injecting proxy, and prove the crash-safety triad —
//! no committed receipt lost, no transaction executed twice, final state
//! byte-identical to a fault-free run. Plus the satellite regressions:
//! transparent gateway redial across a server restart, and key recovery
//! over the wire via the K-Protocol join.

use confide_core::client::ConfideClient;
use confide_core::receipt::Receipt;
use confide_core::seal_signed_tx;
use confide_core::tx::WireTx;
use confide_crypto::HmacDrbg;
use confide_net::demo::{demo_keys, demo_node_with, demo_platform, DEMO_CONTRACT};
use confide_net::fault::{FaultPlan, FaultProxy};
use confide_net::{
    Client, ClientConfig, Conn, ErrorKind, NetError, NodeServer, RetryPolicy, ServerConfig,
};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// A unique temp path that does not survive the test (best-effort
/// cleanup at the end of each test body).
fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("confide-chaos-{}-{name}", std::process::id()))
}

/// A server config tuned for chaos tests: tiny linger (1 tx ≈ 1 block
/// for a sequential client), short read timeout so orphaned handler
/// threads exit quickly after shutdown.
fn chaos_config(wal: Option<PathBuf>) -> ServerConfig {
    ServerConfig {
        batch_linger: Duration::from_millis(1),
        read_timeout: Duration::from_millis(200),
        commit_timeout: Duration::from_secs(10),
        wal_path: wal,
        ..ServerConfig::default()
    }
}

/// One prepared demo transaction with everything needed to verify its
/// receipt later.
struct Prepared {
    wire: WireTx,
    tx_hash: [u8; 32],
    k_tx: [u8; 32],
}

/// Seal `n` sequential transfers (amount = (i % 97) + 1 to one account)
/// from a deterministic client against `pk_tx`.
fn prepare_stream(pk_tx: &[u8; 32], n: usize) -> Vec<Prepared> {
    let mut client = ConfideClient::new([21u8; 32], [22u8; 32], 2_000);
    let mut rng = HmacDrbg::from_u64(2_100);
    (0..n)
        .map(|i| {
            let args = format!(r#"{{"to":"crash-dummy","amount":{}}}"#, (i % 97) + 1);
            let signed = client.build_raw(DEMO_CONTRACT, "main", args.as_bytes());
            let (wire, tx_hash, k_tx) =
                seal_signed_tx(&signed, &[22u8; 32], pk_tx, &mut rng).expect("seal");
            Prepared {
                wire,
                tx_hash,
                k_tx,
            }
        })
        .collect()
}

/// The running balance after transactions `0..=i` of [`prepare_stream`].
fn expected_balance(i: usize) -> u64 {
    (0..=i).map(|k| (k as u64 % 97) + 1).sum()
}

// ── the centerpiece: crash mid-stream under network faults ──────────────

#[test]
fn crash_mid_stream_under_faults_loses_nothing_and_executes_once() {
    const TOTAL: usize = 30;
    const CRASH_AT: usize = 15;
    let seed = 31;
    let wal = temp_path("midstream.wal");
    let _ = std::fs::remove_file(&wal);

    // Phase 1: a durable node behind an interrupting-fault proxy.
    let server1 = NodeServer::spawn(
        demo_node_with(demo_platform(seed), demo_keys(seed), seed),
        ("127.0.0.1", 0),
        chaos_config(Some(wal.clone())),
    )
    .expect("server 1 spawns");
    let port = server1.addr().port();
    let pk_tx = server1.node().read().expect("node lock").pk_tx();
    let stream = prepare_stream(&pk_tx, TOTAL);

    // Interrupt-only faults (close/drop/truncate/delay): bytes that get
    // through are intact, so every mangling surfaces as a clean transport
    // error the retry layer can absorb — strict invariants stay checkable.
    let plan = FaultPlan {
        drop_per_mille: 15, // each drop costs one conn-timeout stall
        ..FaultPlan::interrupting(0xC4A05)
    };
    let proxy = FaultProxy::spawn(server1.addr(), plan).expect("proxy spawns");
    let client = ClientConfig::new()
        .endpoint(proxy.addr())
        .pool_size(2)
        .conn_timeout(Duration::from_secs(2))
        .retry(RetryPolicy {
            max_attempts: 30,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            ..RetryPolicy::default()
        })
        .connect()
        .expect("client");

    let mut receipts: Vec<Vec<u8>> = Vec::with_capacity(TOTAL);
    for p in &stream[..CRASH_AT] {
        let (sealed, bytes) = client
            .submit_with_retry(&p.wire)
            .expect("pre-crash tx commits through faults");
        assert!(sealed);
        receipts.push(bytes);
    }

    // Phase 2: crash. Drop the process state; the WAL file (fsync'd
    // before every acknowledgement) is all that survives. Scribble a torn
    // record-group tail on it — a crash mid-append of a block that was
    // never acknowledged to anyone.
    drop(server1);
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&wal)
            .expect("open wal for torn append");
        f.write_all(&[0x10, 0xde, 0xad, 0xbe, 0xef])
            .expect("torn tail");
    }

    // Phase 3: recover — same deterministic bootstrap, then WAL replay.
    let mut node2 = demo_node_with(demo_platform(seed), demo_keys(seed), seed);
    let log = std::fs::read(&wal).expect("read wal");
    let report = node2.recover_from_wal(&log).expect("recovery succeeds");
    assert_eq!(
        report.blocks_replayed, CRASH_AT as u64,
        "one block per acknowledged tx"
    );
    assert!(report.torn_bytes > 0, "the scribbled tail was detected");

    // Respawn on the same port: the proxy (whose upstream address is
    // fixed) and the gateway (whose pooled sockets are now stale) both
    // carry over untouched.
    let server2 = NodeServer::spawn(node2, ("127.0.0.1", port), chaos_config(Some(wal.clone())))
        .expect("server 2 spawns on the old port");

    // Invariant 1: no committed receipt lost — every acknowledged
    // transaction's receipt survived the crash, byte for byte.
    for (i, p) in stream[..CRASH_AT].iter().enumerate() {
        let stored = client
            .with_conn(|c| c.get_receipt(&p.tx_hash))
            .expect("receipt fetch after recovery")
            .unwrap_or_else(|| panic!("receipt {i} lost in the crash"));
        assert_eq!(stored, receipts[i], "receipt {i} changed across recovery");
    }

    // Invariant 2: no double execution — resubmitting an already
    // committed transaction returns the stored receipt via the wire-hash
    // index instead of executing again.
    for (i, p) in stream[..CRASH_AT].iter().enumerate() {
        let (sealed, bytes) = client
            .submit_with_retry(&p.wire)
            .expect("resubmit after recovery");
        assert!(sealed);
        assert_eq!(bytes, receipts[i], "resubmit {i} re-executed");
    }
    assert!(
        server2.stats().deduped.load(Ordering::Relaxed) >= CRASH_AT as u64,
        "resubmissions were not deduplicated"
    );

    // Phase 4: finish the stream through the same faulty proxy.
    for p in &stream[CRASH_AT..] {
        let (sealed, bytes) = client
            .submit_with_retry(&p.wire)
            .expect("post-crash tx commits");
        assert!(sealed);
        receipts.push(bytes);
    }

    // Every receipt decrypts and carries the exactly-once running
    // balance: a double execution anywhere would shift every later sum.
    for (i, p) in stream.iter().enumerate() {
        let receipt = Receipt::open(&receipts[i], &p.k_tx, &p.tx_hash).expect("receipt opens");
        assert!(receipt.success, "tx {i} failed");
        assert_eq!(
            receipt.return_data,
            expected_balance(i).to_string().into_bytes(),
            "tx {i}: balance drifted (double execution?)"
        );
    }

    // Invariant 3: final state byte-identical to a fault-free run of the
    // same stream (same per-block boundaries: one tx per block).
    let fault_root = server2.node().read().expect("node lock").state_root();
    let fault_height = server2.node().read().expect("node lock").blocks.height();
    drop(server2);
    drop(proxy);

    let clean = NodeServer::spawn(
        demo_node_with(demo_platform(seed), demo_keys(seed), seed),
        ("127.0.0.1", 0),
        chaos_config(None),
    )
    .expect("clean server spawns");
    let mut conn = Conn::connect(clean.addr()).expect("connect");
    for p in &stream {
        let (sealed, _) = conn.submit_wait(&p.wire).expect("clean commit");
        assert!(sealed);
    }
    let clean_root = clean.node().read().expect("node lock").state_root();
    let clean_height = clean.node().read().expect("node lock").blocks.height();
    assert_eq!(fault_height, clean_height, "chain heights diverged");
    assert_eq!(
        fault_root, clean_root,
        "state roots diverged between faulty and fault-free runs"
    );

    assert!(
        proxy_touched_something(&client),
        "the fault schedule never fired — test proved nothing"
    );
    let _ = std::fs::remove_file(&wal);
}

/// The chaos run must actually have been chaotic: the client redialed
/// or retried at least once.
fn proxy_touched_something(client: &Client) -> bool {
    let s = client.retry_stats();
    s.retries.load(Ordering::Relaxed) > 0 || s.redials.load(Ordering::Relaxed) > 0
}

// ── satellite: transparent client redial across a restart ───────────────

#[test]
fn client_redials_transparently_after_server_restart() {
    let seed = 33;
    let server1 = NodeServer::spawn(
        demo_node_with(demo_platform(seed), demo_keys(seed), seed),
        ("127.0.0.1", 0),
        chaos_config(None),
    )
    .expect("server 1 spawns");
    let port = server1.addr().port();
    let addr = server1.addr();

    let client = ClientConfig::new()
        .endpoint(addr)
        .pool_size(1)
        .connect()
        .expect("client");
    // First call pools its connection.
    let pk1 = client.with_conn(|c| c.fetch_pk_tx()).expect("first call");

    // Kill the server between the two calls; its handler threads exit
    // within the read timeout and close the pooled socket's far end.
    drop(server1);
    std::thread::sleep(Duration::from_millis(400));
    let server2 = NodeServer::spawn(
        demo_node_with(demo_platform(seed), demo_keys(seed), seed),
        ("127.0.0.1", port),
        chaos_config(None),
    )
    .expect("server 2 spawns on the old port");

    // Second call leases the now-stale pooled connection, hits a
    // transport error, and must transparently redial — not surface the
    // stale-pool artifact to the caller.
    let pk2 = client
        .with_conn(|c| c.fetch_pk_tx())
        .expect("second call survives the restart");
    assert_eq!(pk1, pk2, "same deterministic node key across restarts");
    assert_eq!(
        client.retry_stats().redials.load(Ordering::Relaxed),
        1,
        "exactly one transparent redial"
    );
    drop(server2);
}

// ── satellite: typed exhaustion when the server never comes back ────────

#[test]
fn submit_with_retry_exhausts_with_typed_error_when_server_stays_down() {
    let seed = 35;
    let server = NodeServer::spawn(
        demo_node_with(demo_platform(seed), demo_keys(seed), seed),
        ("127.0.0.1", 0),
        chaos_config(None),
    )
    .expect("server spawns");
    let pk_tx = server.node().read().expect("node lock").pk_tx();
    let stream = prepare_stream(&pk_tx, 1);
    let addr = server.addr();
    drop(server); // gone for good

    let client = ClientConfig::new()
        .endpoint(addr)
        .pool_size(1)
        .conn_timeout(Duration::from_millis(200))
        .retry(RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            ..RetryPolicy::default()
        })
        .connect()
        .expect("client");
    match client.submit_with_retry(&stream[0].wire) {
        Err(e) => {
            assert_eq!(e.kind(), ErrorKind::Retries, "wrong kind: {e}");
            assert!(e.to_string().contains("3 attempts"), "got: {e}");
            // The source chain keeps the final attempt's transport error.
            let src = std::error::Error::source(&e).expect("source preserved");
            let last = src.to_string();
            assert!(
                last.contains("frame") || last.contains("disconnected"),
                "last error should be transport-level, got {last}"
            );
        }
        other => panic!("expected a Retries error, got {other:?}"),
    }
    assert_eq!(client.retry_stats().exhausted.load(Ordering::Relaxed), 1);
}

// ── satellite: enclave rejoin over the wire ─────────────────────────────

#[test]
fn wire_rejoin_recovers_node_keys_from_a_surviving_member() {
    let seed = 37;
    let platform = demo_platform(seed);
    let mut config = chaos_config(None);
    config.join_roots = vec![platform.attestation_public_key()];
    let member = NodeServer::spawn(
        demo_node_with(platform.clone(), demo_keys(seed), seed),
        ("127.0.0.1", 0),
        config,
    )
    .expect("member spawns");
    let member_root = member.node().read().expect("node lock").attestation_root();
    let member_pk_tx = member.node().read().expect("node lock").pk_tx();

    // The crashed node's sealed blob is gone (disk wiped); rebuild the
    // platform deterministically and run the K-Protocol MAP join over
    // the live socket.
    let joiner_platform = demo_platform(seed);
    let mut conn = Conn::connect(member.addr()).expect("connect");
    let keys = conn
        .rejoin(&joiner_platform, &member_root, 1, 1, 0xbeef)
        .expect("wire rejoin succeeds");
    assert_eq!(
        keys.pk_tx(),
        member_pk_tx,
        "rejoined keys must reproduce the consortium envelope key"
    );
    assert_eq!(member.stats().joins.load(Ordering::Relaxed), 1);

    // And the recovered keys stand up a fully working replica: it serves
    // the same pk_tx, so clients' sealed envelopes decrypt on it.
    let replica = demo_node_with(demo_platform(seed + 1000), keys, seed);
    assert_eq!(replica.pk_tx(), member_pk_tx);
}

#[test]
fn wire_rejoin_is_refused_without_registered_roots_or_at_stale_svn() {
    let seed = 39;
    let platform = demo_platform(seed);

    // Joins disabled (no registered roots): typed reject.
    let closed = NodeServer::spawn(
        demo_node_with(platform.clone(), demo_keys(seed), seed),
        ("127.0.0.1", 0),
        chaos_config(None),
    )
    .expect("closed member spawns");
    let root = closed.node().read().expect("node lock").attestation_root();
    let mut conn = Conn::connect(closed.addr()).expect("connect");
    match conn.rejoin(&demo_platform(seed), &root, 1, 1, 0x01) {
        Err(NetError::Rejected(r)) => assert!(r.contains("disabled"), "got: {r}"),
        Ok(_) => panic!("join succeeded with no registered roots"),
        Err(other) => panic!("expected Rejected, got {other:?}"),
    }
    drop(closed);

    // Member demands SVN ≥ 2: a joiner quoting SVN 1 is refused — the
    // rollback-protection floor reaches across the wire.
    let mut config = chaos_config(None);
    config.join_roots = vec![platform.attestation_public_key()];
    config.join_min_svn = 2;
    let strict = NodeServer::spawn(
        demo_node_with(platform.clone(), demo_keys(seed), seed),
        ("127.0.0.1", 0),
        config,
    )
    .expect("strict member spawns");
    let root = strict.node().read().expect("node lock").attestation_root();
    let mut conn = Conn::connect(strict.addr()).expect("connect");
    match conn.rejoin(&demo_platform(seed), &root, 1, 2, 0x02) {
        Err(NetError::Rejected(r)) => assert!(r.contains("join refused"), "got: {r}"),
        Ok(_) => panic!("stale-SVN join succeeded"),
        Err(other) => panic!("expected Rejected for stale SVN, got {other:?}"),
    }
}

// ── satellite: crash-after hook is exercised end to end by check.sh ─────
//
// The `confide-node --crash-after` process-level chaos path (spawn,
// kill at block N, restart, parse the RECOVERED line) runs in
// scripts/check.sh where real processes are cheap; here we pin down the
// pieces it composes: WAL-before-ack ordering above, and the in-flight
// duplicate guard below.

#[test]
fn in_flight_duplicate_is_turned_away_busy_not_executed_twice() {
    let seed = 41;
    // A server whose batcher lingers long enough that the first copy is
    // still in flight when the duplicate arrives.
    let mut config = chaos_config(None);
    config.batch_linger = Duration::from_millis(300);
    let server = NodeServer::spawn(
        demo_node_with(demo_platform(seed), demo_keys(seed), seed),
        ("127.0.0.1", 0),
        config,
    )
    .expect("server spawns");
    let pk_tx = server.node().read().expect("node lock").pk_tx();
    let stream = prepare_stream(&pk_tx, 1);

    // First copy: fire-and-forget, so it sits in the lingering batch.
    let mut c1 = Conn::connect(server.addr()).expect("connect");
    c1.submit(&stream[0].wire).expect("first copy accepted");
    // Second copy on another connection while the first is in flight.
    let mut c2 = Conn::connect(server.addr()).expect("connect");
    match c2.submit(&stream[0].wire) {
        Err(NetError::Busy) => {}
        other => panic!("in-flight duplicate not turned away: {other:?}"),
    }

    // After commit, the same bytes resolve from the committed index.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if server.stats().committed.load(Ordering::Relaxed) >= 1 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "commit never landed");
        std::thread::sleep(Duration::from_millis(10));
    }
    let (sealed, bytes) = c2.submit_wait(&stream[0].wire).expect("dedup reply");
    assert!(sealed);
    let receipt =
        Receipt::open(&bytes, &stream[0].k_tx, &stream[0].tx_hash).expect("receipt opens");
    assert_eq!(receipt.return_data, b"1", "executed more than once");
    assert!(server.stats().deduped.load(Ordering::Relaxed) >= 1);
}

/// Spawn a tiny echo upstream (every byte read is written straight
/// back) accepting any number of connections; returns its address.
fn echo_upstream() -> std::net::SocketAddr {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind echo");
    let addr = listener.local_addr().expect("echo addr");
    std::thread::spawn(move || {
        while let Ok((mut s, _)) = listener.accept() {
            std::thread::spawn(move || {
                let mut back = s.try_clone().expect("clone echo stream");
                let mut buf = [0u8; 4096];
                loop {
                    match std::io::Read::read(&mut s, &mut buf) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => {
                            if std::io::Write::write_all(&mut back, &buf[..n]).is_err() {
                                return;
                            }
                        }
                    }
                }
            });
        }
    });
    addr
}

/// Satellite: the symmetric `partition` preset. One proxy-wide chunk
/// clock governs both directions of every connection, so a window
/// `[from, until)` cuts the link completely — requests vanish on the
/// way up, responses on the way down — and heals on its own once
/// enough chunks have ticked past the end of the window.
#[test]
fn partition_preset_blackholes_both_directions_then_heals() {
    use std::io::{Read, Write};

    let upstream = echo_upstream();

    // Window [2, 6): round 0 (chunks 0 and 1) flows, then four chunks
    // are blackholed, then the link heals. In lockstep rounds every
    // delivered round costs two ticks (request + echo) while a
    // blackholed request costs one (the echo never happens).
    let mut proxy = FaultProxy::spawn(upstream, FaultPlan::partition(901, 2, 6)).expect("proxy");
    let mut link = std::net::TcpStream::connect(proxy.addr()).expect("connect via proxy");
    link.set_read_timeout(Some(Duration::from_millis(250)))
        .expect("read timeout");

    let mut buf = [0u8; 8];
    link.write_all(b"r0").expect("write r0");
    link.read_exact(&mut buf[..2])
        .expect("pre-partition round echoes");
    assert_eq!(&buf[..2], b"r0");

    for round in 1..=4u32 {
        link.write_all(format!("r{round}").as_bytes())
            .expect("write");
        assert!(
            link.read(&mut buf).is_err(),
            "round {round} should be blackholed"
        );
    }

    link.write_all(b"r5").expect("write r5");
    link.read_exact(&mut buf[..2])
        .expect("post-heal round echoes");
    assert_eq!(
        &buf[..2],
        b"r5",
        "blackholed chunks are dropped, not delayed"
    );
    assert_eq!(proxy.stats().partitioned.load(Ordering::Relaxed), 4);
    proxy.shutdown();

    // The same clock cuts the *response* direction: with window [1, 2)
    // the first request reaches the upstream but its echo is swallowed;
    // the next round flows both ways and returns only its own payload.
    let mut proxy = FaultProxy::spawn(upstream, FaultPlan::partition(902, 1, 2)).expect("proxy");
    let mut link = std::net::TcpStream::connect(proxy.addr()).expect("connect via proxy");
    link.set_read_timeout(Some(Duration::from_millis(250)))
        .expect("read timeout");
    link.write_all(b"aa").expect("write aa");
    assert!(link.read(&mut buf).is_err(), "echo of aa is cut downstream");
    link.write_all(b"bb").expect("write bb");
    link.read_exact(&mut buf[..2]).expect("healed round echoes");
    assert_eq!(&buf[..2], b"bb");
    assert_eq!(proxy.stats().partitioned.load(Ordering::Relaxed), 1);
    proxy.shutdown();
}
