//! A network fault-injection proxy for chaos testing.
//!
//! [`FaultProxy`] sits between a client and a [`crate::server::NodeServer`]
//! on a real TCP port and mangles the byte stream on a **seeded, per-chunk
//! schedule**: drop, delay, duplicate, truncate, bit-flip, or slam the
//! connection shut. Everything is deterministic given the plan's seed and
//! the connection arrival order, so a chaos failure reproduces.
//!
//! The proxy is deliberately frame-oblivious — it forwards raw chunks, so
//! its faults land mid-frame as often as between frames, exactly like a
//! flaky switch. The invariants under test live one layer up: the framed
//! protocol must turn every mangling into a *typed* client-side error
//! (never a wrong answer), and the server must keep serving.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-chunk fault probabilities in per-mille (0 = never, 1000 = always),
/// rolled in the order the fields are declared. All fates are exclusive
/// per chunk except `delay`, which composes with a normal forward.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed of the deterministic schedule.
    pub seed: u64,
    /// Close the connection instead of forwarding (both directions die).
    pub close_per_mille: u32,
    /// Silently drop the chunk.
    pub drop_per_mille: u32,
    /// Forward only a prefix of the chunk (a torn write on the wire).
    pub truncate_per_mille: u32,
    /// Flip one bit of the chunk before forwarding.
    pub bitflip_per_mille: u32,
    /// Forward the chunk twice.
    pub dup_per_mille: u32,
    /// Sleep `delay_ms` before forwarding.
    pub delay_per_mille: u32,
    /// Added latency for delayed chunks.
    pub delay_ms: u64,
    /// Start of the partition window: once the proxy's shared chunk clock
    /// (every chunk read, *either* direction, any connection) reaches this
    /// value, chunks are silently blackholed — symmetrically, so both
    /// sides just see silence, exactly like a cut link (no RST).
    /// `partition_from_chunk == partition_until_chunk` disables the window.
    pub partition_from_chunk: u64,
    /// End of the partition window (half-open): the first chunk at or
    /// beyond this clock value flows again — the healed link.
    pub partition_until_chunk: u64,
}

impl FaultPlan {
    /// A fault-free plan: the proxy is a pure TCP relay.
    pub fn clean(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            close_per_mille: 0,
            drop_per_mille: 0,
            truncate_per_mille: 0,
            bitflip_per_mille: 0,
            dup_per_mille: 0,
            delay_per_mille: 0,
            delay_ms: 0,
            partition_from_chunk: 0,
            partition_until_chunk: 0,
        }
    }

    /// A symmetric network partition: a clean relay until the shared
    /// chunk clock hits `from_chunk`, a total bidirectional blackhole
    /// until it reaches `until_chunk`, then a healed link. Because the
    /// clock keeps counting *during* the outage (reads still happen, they
    /// just go nowhere), steady background traffic — e.g. consensus
    /// heartbeats — drives the heal deterministically in chunk count.
    pub fn partition(seed: u64, from_chunk: u64, until_chunk: u64) -> FaultPlan {
        FaultPlan {
            partition_from_chunk: from_chunk,
            partition_until_chunk: until_chunk,
            ..FaultPlan::clean(seed)
        }
    }

    /// Is the window active at shared-clock value `chunk`?
    pub fn partitioned_at(&self, chunk: u64) -> bool {
        self.partition_from_chunk < self.partition_until_chunk
            && chunk >= self.partition_from_chunk
            && chunk < self.partition_until_chunk
    }

    /// A lossy-link plan with every fault class armed at a low rate —
    /// the default chaos schedule of the fuzz tests.
    pub fn lossy(seed: u64) -> FaultPlan {
        FaultPlan {
            close_per_mille: 10,
            drop_per_mille: 20,
            truncate_per_mille: 20,
            bitflip_per_mille: 20,
            dup_per_mille: 20,
            delay_per_mille: 50,
            delay_ms: 2,
            ..FaultPlan::clean(seed)
        }
    }

    /// Faults that only *interrupt* (close, drop, truncate, delay) without
    /// corrupting or reordering bytes that do get through. Under this plan
    /// a request/response client sees clean transport errors, so strict
    /// end-to-end invariants (no lost receipt, no double execution) are
    /// checkable; `bitflip`/`dup` belong in the fuzz tests, where the
    /// assertion is "typed errors only, server stays alive".
    pub fn interrupting(seed: u64) -> FaultPlan {
        FaultPlan {
            close_per_mille: 40,
            drop_per_mille: 40,
            truncate_per_mille: 40,
            delay_per_mille: 80,
            delay_ms: 1,
            ..FaultPlan::clean(seed)
        }
    }
}

/// What the proxy did to the traffic so far.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Chunks forwarded unmodified (possibly after a delay).
    pub forwarded: AtomicU64,
    /// Connections slammed shut by the schedule.
    pub closed: AtomicU64,
    /// Chunks silently dropped.
    pub dropped: AtomicU64,
    /// Chunks cut short.
    pub truncated: AtomicU64,
    /// Chunks with a flipped bit.
    pub bitflipped: AtomicU64,
    /// Chunks forwarded twice.
    pub duplicated: AtomicU64,
    /// Chunks delayed before forwarding.
    pub delayed: AtomicU64,
    /// Chunks blackholed inside the partition window.
    pub partitioned: AtomicU64,
}

impl FaultStats {
    /// Total faults injected (everything except plain forwards).
    pub fn injected(&self) -> u64 {
        self.closed.load(Ordering::Relaxed)
            + self.dropped.load(Ordering::Relaxed)
            + self.truncated.load(Ordering::Relaxed)
            + self.bitflipped.load(Ordering::Relaxed)
            + self.duplicated.load(Ordering::Relaxed)
            + self.delayed.load(Ordering::Relaxed)
            + self.partitioned.load(Ordering::Relaxed)
    }
}

/// A running fault proxy. Dropping it (or calling
/// [`FaultProxy::shutdown`]) stops the accept loop; in-flight pump
/// threads die with their sockets.
pub struct FaultProxy {
    addr: SocketAddr,
    stats: Arc<FaultStats>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Deterministic xorshift64* stream for one pump direction.
struct Dice(u64);

impl Dice {
    fn new(seed: u64, conn: u64, dir: u64) -> Dice {
        // Mix so that every (seed, conn, dir) triple yields a distinct
        // non-zero stream.
        let mut s = seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (dir << 32);
        if s == 0 {
            s = 0xDEAD_BEEF_CAFE_F00D;
        }
        Dice(s)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Roll a per-mille chance.
    fn hit(&mut self, per_mille: u32) -> bool {
        per_mille > 0 && (self.next() % 1000) < per_mille as u64
    }
}

/// What the schedule decided for one chunk.
enum Fate {
    Forward,
    Close,
    Drop,
    Truncate(usize),
    Bitflip(usize),
    Dup,
}

fn decide(dice: &mut Dice, plan: &FaultPlan, len: usize) -> (Fate, bool) {
    let delayed = dice.hit(plan.delay_per_mille);
    let fate = if dice.hit(plan.close_per_mille) {
        Fate::Close
    } else if dice.hit(plan.drop_per_mille) {
        Fate::Drop
    } else if len > 1 && dice.hit(plan.truncate_per_mille) {
        Fate::Truncate(1 + (dice.next() as usize % (len - 1)))
    } else if dice.hit(plan.bitflip_per_mille) {
        Fate::Bitflip(dice.next() as usize % (len * 8))
    } else if dice.hit(plan.dup_per_mille) {
        Fate::Dup
    } else {
        Fate::Forward
    };
    (fate, delayed)
}

/// Pump one direction, applying the schedule per chunk. Returns when
/// either side closes or the schedule kills the connection.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    plan: FaultPlan,
    mut dice: Dice,
    stats: Arc<FaultStats>,
    clock: Arc<AtomicU64>,
) {
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        // The partition window consults the proxy-wide chunk clock —
        // shared by both directions and every connection — so the cut
        // (and the heal) lands symmetrically on all traffic at once. It
        // does not consume dice rolls: the same seed yields the same
        // schedule for whatever gets through.
        let tick = clock.fetch_add(1, Ordering::SeqCst);
        if plan.partitioned_at(tick) {
            stats.partitioned.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let (fate, delayed) = decide(&mut dice, &plan, n);
        if delayed {
            stats.delayed.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(plan.delay_ms));
        }
        let ok = match fate {
            Fate::Forward => {
                stats.forwarded.fetch_add(1, Ordering::Relaxed);
                to.write_all(&buf[..n]).is_ok()
            }
            Fate::Close => {
                stats.closed.fetch_add(1, Ordering::Relaxed);
                // Kill both directions: the peer sees a reset/EOF.
                let _ = from.shutdown(std::net::Shutdown::Both);
                let _ = to.shutdown(std::net::Shutdown::Both);
                false
            }
            Fate::Drop => {
                stats.dropped.fetch_add(1, Ordering::Relaxed);
                true
            }
            Fate::Truncate(keep) => {
                stats.truncated.fetch_add(1, Ordering::Relaxed);
                // A torn write, then the connection dies — a cleanly
                // resumable truncation would just be a slow forward.
                let _ = to.write_all(&buf[..keep.min(n)]);
                let _ = from.shutdown(std::net::Shutdown::Both);
                let _ = to.shutdown(std::net::Shutdown::Both);
                false
            }
            Fate::Bitflip(bit) => {
                stats.bitflipped.fetch_add(1, Ordering::Relaxed);
                buf[(bit / 8).min(n - 1)] ^= 1 << (bit % 8);
                to.write_all(&buf[..n]).is_ok()
            }
            Fate::Dup => {
                stats.duplicated.fetch_add(1, Ordering::Relaxed);
                to.write_all(&buf[..n]).is_ok() && to.write_all(&buf[..n]).is_ok()
            }
        };
        if !ok {
            break;
        }
    }
}

impl FaultProxy {
    /// Listen on an ephemeral loopback port and relay every accepted
    /// connection to `upstream` through the fault schedule.
    pub fn spawn(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(FaultStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let clock = Arc::new(AtomicU64::new(0));
        let accept_thread = {
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let clock = Arc::clone(&clock);
            std::thread::Builder::new()
                .name("fault-proxy".into())
                .spawn(move || {
                    let mut conn_id = 0u64;
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(client) = stream else { continue };
                        conn_id += 1;
                        stats.connections.fetch_add(1, Ordering::Relaxed);
                        let Ok(server) = TcpStream::connect(upstream) else {
                            continue;
                        };
                        let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
                            continue;
                        };
                        let up_dice = Dice::new(plan.seed, conn_id, 0);
                        let down_dice = Dice::new(plan.seed, conn_id, 1);
                        let st = Arc::clone(&stats);
                        let ck = Arc::clone(&clock);
                        let _ = std::thread::Builder::new()
                            .name("fault-up".into())
                            .spawn(move || pump(client, server, plan, up_dice, st, ck));
                        let st = Arc::clone(&stats);
                        let ck = Arc::clone(&clock);
                        let _ = std::thread::Builder::new()
                            .name("fault-down".into())
                            .spawn(move || pump(s2, c2, plan, down_dice, st, ck));
                    }
                })?
        };
        Ok(FaultProxy {
            addr,
            stats,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address — point clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Injection counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Stop accepting new connections (existing pumps die with their
    /// sockets).
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// A trivial upstream echo server for proxy-level tests.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // Serve a bounded number of connections, then exit.
            for stream in listener.incoming().take(8) {
                let Ok(mut s) = stream else { continue };
                std::thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    while let Ok(n) = s.read(&mut buf) {
                        if n == 0 || s.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    #[test]
    fn clean_plan_is_a_transparent_relay() {
        let (upstream, _h) = echo_server();
        let mut proxy = FaultProxy::spawn(upstream, FaultPlan::clean(1)).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        for i in 0..10u8 {
            let msg = vec![i; 64];
            c.write_all(&msg).unwrap();
            let mut back = vec![0u8; 64];
            c.read_exact(&mut back).unwrap();
            assert_eq!(back, msg);
        }
        assert_eq!(proxy.stats().injected(), 0);
        assert!(proxy.stats().forwarded.load(Ordering::Relaxed) >= 20);
        proxy.shutdown();
    }

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        // Same seed + same chunk sizes ⇒ identical fate sequence.
        let plan = FaultPlan::lossy(42);
        let run = || -> Vec<u8> {
            let mut dice = Dice::new(plan.seed, 1, 0);
            (0..200)
                .map(|_| {
                    let (fate, delayed) = decide(&mut dice, &plan, 128);
                    let tag = match fate {
                        Fate::Forward => 0u8,
                        Fate::Close => 1,
                        Fate::Drop => 2,
                        Fate::Truncate(_) => 3,
                        Fate::Bitflip(_) => 4,
                        Fate::Dup => 5,
                    };
                    tag | ((delayed as u8) << 6)
                })
                .collect()
        };
        assert_eq!(run(), run());
        // And the lossy plan actually exercises every fate eventually.
        let fates = run();
        for tag in 0u8..=5 {
            assert!(
                fates.iter().any(|f| f & 0x3F == tag),
                "fate {tag} never rolled"
            );
        }
    }

    #[test]
    fn always_close_plan_kills_every_connection() {
        let (upstream, _h) = echo_server();
        let plan = FaultPlan {
            close_per_mille: 1000,
            ..FaultPlan::clean(3)
        };
        let mut proxy = FaultProxy::spawn(upstream, plan).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = c.write_all(b"doomed");
        let mut buf = [0u8; 16];
        // Either a clean EOF (Ok(0)) or a reset — never data.
        match c.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("got {n} bytes through an always-close proxy"),
        }
        assert!(proxy.stats().closed.load(Ordering::Relaxed) >= 1);
        proxy.shutdown();
    }
}
