//! Client SDK: framed transport and the unified pooled client.
//!
//! Three layers, outermost first:
//!
//! * [`Client`] — **the** public client: a connection pool over one or
//!   more endpoints, optional sealing identity, retry policy, and
//!   leader-redirect chasing, configured by [`ClientConfig`]. Every
//!   method returns the consolidated [`crate::error::Error`].
//! * [`Conn`] — one framed request/response TCP connection; the raw
//!   protocol surface (used directly by protocol tests and by `Client`
//!   internally). Returns the wire-level [`NetError`].
//! * [`Gateway`] and the old connect-style `Client::connect` — the
//!   pre-unification API, kept as deprecated forwards onto [`Client`].
//!
//! The envelope-sealing path is **shared** with the in-process client
//! ([`confide_core::client::seal_signed_tx`]) so the networked and
//! in-process code cannot drift: same `k_tx` derivation, same AAD, same
//! envelope layout.

use crate::error::Error;
use crate::frame::{read_frame, write_frame, FrameError, Message};
use confide_core::client::ConfideClient;
use confide_core::receipt::Receipt;
use confide_core::seal_signed_tx;
use confide_core::tx::WireTx;
use confide_crypto::ed25519::VerifyingKey;
use confide_crypto::HmacDrbg;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Wire-level client failures ([`Conn`] and the deprecated [`Gateway`]
/// surface). The unified [`Client`] wraps these into
/// [`crate::error::Error`] with a typed kind and preserved source chain.
#[derive(Debug)]
pub enum NetError {
    /// Transport or framing failure.
    Frame(FrameError),
    /// Server closed the connection instead of answering.
    Disconnected,
    /// The server answered with a kind the request cannot accept.
    UnexpectedReply(u8),
    /// The server rejected the request.
    Rejected(String),
    /// The server reported queue-full backpressure.
    Busy,
    /// Envelope/receipt cryptography failed.
    Crypto,
    /// The attestation report failed verification — `pk_tx` is not to be
    /// trusted (possible MITM key substitution).
    Attestation(String),
    /// The client's connection pool stayed at its cap for the whole
    /// `pool_wait` window — every lease is held and none came back.
    PoolExhausted,
    /// The node is a cluster follower; submissions belong at `leader`.
    NotPrimary(String),
    /// Every attempt of a retrying submit failed with a transient error;
    /// `last` is the final attempt's failure.
    RetriesExhausted {
        /// How many attempts were made.
        attempts: u32,
        /// The error the final attempt died with.
        last: Box<NetError>,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Frame(e) => write!(f, "frame: {e}"),
            NetError::Disconnected => f.write_str("server disconnected"),
            NetError::UnexpectedReply(k) => write!(f, "unexpected reply kind {k:#04x}"),
            NetError::Rejected(r) => write!(f, "rejected: {r}"),
            NetError::Busy => f.write_str("server busy (queue full)"),
            NetError::Crypto => f.write_str("cryptographic failure"),
            NetError::Attestation(e) => write!(f, "attestation: {e}"),
            NetError::NotPrimary(leader) => write!(f, "not primary; leader is {leader}"),
            NetError::PoolExhausted => f.write_str("pool exhausted (lease wait timed out)"),
            NetError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Frame(e) => Some(e),
            NetError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

/// A framed request/response transport over one TCP connection.
pub struct Conn {
    stream: TcpStream,
    max_frame: usize,
}

impl Conn {
    /// Connect with default timeouts (10 s read/write).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Conn, NetError> {
        Conn::connect_timeout(addr, Duration::from_secs(10))
    }

    /// Connect with explicit socket timeouts.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Conn, NetError> {
        let stream = TcpStream::connect(addr).map_err(FrameError::Io)?;
        stream.set_nodelay(true).map_err(FrameError::Io)?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(FrameError::Io)?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(FrameError::Io)?;
        Ok(Conn {
            stream,
            max_frame: crate::frame::DEFAULT_MAX_FRAME,
        })
    }

    /// Send one message without waiting for the reply (pipelining).
    pub fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        write_frame(&mut self.stream, msg)?;
        Ok(())
    }

    /// Read one reply frame.
    pub fn recv(&mut self) -> Result<Message, NetError> {
        match read_frame(&mut self.stream, self.max_frame)? {
            Some(msg) => Ok(msg),
            None => Err(NetError::Disconnected),
        }
    }

    /// One request/response round trip.
    pub fn request(&mut self, msg: &Message) -> Result<Message, NetError> {
        self.send(msg)?;
        self.recv()
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.request(&Message::Ping)? {
            Message::Pong => Ok(()),
            other => Err(NetError::UnexpectedReply(other.kind())),
        }
    }

    /// Fetch `pk_tx`.
    pub fn fetch_pk_tx(&mut self) -> Result<[u8; 32], NetError> {
        match self.request(&Message::GetPkTx)? {
            Message::PkTxIs(pk) => Ok(pk),
            Message::Rejected(r) => Err(NetError::Rejected(r)),
            other => Err(NetError::UnexpectedReply(other.kind())),
        }
    }

    /// Fetch `pk_tx` **and** verify the attestation report that binds it
    /// to the CS-enclave build (§3.2.2): the report must be signed by
    /// `attestation_root`, measure `expected_mrenclave` at ≥ `min_svn`,
    /// and carry `sha256(pk_tx)` in its `report_data`. This is the
    /// MITM-substitution defence — a gateway handing out its own key
    /// fails the fingerprint check.
    pub fn fetch_pk_tx_attested(
        &mut self,
        attestation_root: &VerifyingKey,
        expected_mrenclave: &[u8; 32],
        min_svn: u16,
    ) -> Result<[u8; 32], NetError> {
        let pk = self.fetch_pk_tx()?;
        let report = match self.request(&Message::GetAttestation)? {
            Message::AttestationIs(r) => r,
            Message::Rejected(r) => return Err(NetError::Rejected(r)),
            other => return Err(NetError::UnexpectedReply(other.kind())),
        };
        report
            .verify(attestation_root, expected_mrenclave, min_svn)
            .map_err(|e| NetError::Attestation(e.to_string()))?;
        if report.report_data[..32] != confide_crypto::sha256(&pk) {
            return Err(NetError::Attestation(
                "pk_tx fingerprint mismatch in report_data".into(),
            ));
        }
        Ok(pk)
    }

    /// Submit fire-and-forget; `Ok` carries the wire hash.
    pub fn submit(&mut self, tx: &WireTx) -> Result<[u8; 32], NetError> {
        match self.request(&Message::SubmitTx(tx.clone()))? {
            Message::Accepted(h) => Ok(h),
            Message::Busy => Err(NetError::Busy),
            Message::Rejected(r) => Err(NetError::Rejected(r)),
            Message::NotPrimary { leader } => Err(NetError::NotPrimary(leader)),
            other => Err(NetError::UnexpectedReply(other.kind())),
        }
    }

    /// Submit and block until the containing block commits; returns
    /// `(sealed, receipt_bytes)`.
    pub fn submit_wait(&mut self, tx: &WireTx) -> Result<(bool, Vec<u8>), NetError> {
        match self.request(&Message::SubmitTxWait(tx.clone()))? {
            Message::Committed { sealed, receipt } => Ok((sealed, receipt)),
            Message::Busy => Err(NetError::Busy),
            Message::Rejected(r) => Err(NetError::Rejected(r)),
            Message::NotPrimary { leader } => Err(NetError::NotPrimary(leader)),
            other => Err(NetError::UnexpectedReply(other.kind())),
        }
    }

    /// Fetch the node's live status line (height, state root, and — on a
    /// cluster member — view/leader/sync counters).
    pub fn status(&mut self) -> Result<crate::frame::NodeStatus, NetError> {
        match self.request(&Message::GetStatus)? {
            Message::StatusIs(s) => Ok(s),
            Message::Rejected(r) => Err(NetError::Rejected(r)),
            other => Err(NetError::UnexpectedReply(other.kind())),
        }
    }

    /// Re-obtain the consortium's `NodeKeys` over the wire: the K-Protocol
    /// MAP join (§5.3) against a surviving member. The joiner's KM enclave
    /// quotes an ephemeral X25519 key, the member counter-quotes and wraps
    /// `(sk_tx, k_states)` to it, and the joiner verifies the member's
    /// quote against `member_attestation_root` (the consortium-registered
    /// root it trusts out of band) before unwrapping. No key material ever
    /// crosses the wire outside the attested wrap blob.
    pub fn rejoin(
        &mut self,
        joiner_platform: &std::sync::Arc<confide_tee::platform::TeePlatform>,
        member_attestation_root: &VerifyingKey,
        svn: u16,
        min_svn: u16,
        seed: u64,
    ) -> Result<confide_core::keys::NodeKeys, NetError> {
        let pk_tx = self.fetch_pk_tx()?;
        let (session, offer) = confide_core::keys::begin_join(joiner_platform, svn, &pk_tx, seed)
            .map_err(|e| NetError::Attestation(e.to_string()))?;
        let reply = self.request(&Message::JoinRequest {
            eph_pk: offer.eph_pk,
            report: offer.report,
        })?;
        match reply {
            Message::JoinApprove {
                blob,
                member_report,
            } => confide_core::keys::finish_join(
                session,
                joiner_platform,
                member_attestation_root,
                &member_report,
                min_svn,
                svn,
                &blob,
            )
            .map_err(|e| NetError::Attestation(e.to_string())),
            Message::Rejected(r) => Err(NetError::Rejected(r)),
            other => Err(NetError::UnexpectedReply(other.kind())),
        }
    }

    /// Fetch the stored receipt bytes for `tx_hash`, `None` if not (yet)
    /// committed.
    pub fn get_receipt(&mut self, tx_hash: &[u8; 32]) -> Result<Option<Vec<u8>>, NetError> {
        match self.request(&Message::GetReceipt(*tx_hash))? {
            Message::ReceiptIs(bytes) => Ok(Some(bytes)),
            Message::NotFound => Ok(None),
            Message::Rejected(r) => Err(NetError::Rejected(r)),
            other => Err(NetError::UnexpectedReply(other.kind())),
        }
    }
}

/// Retry/redial counters a client accumulates over its lifetime
/// (surfaced in the loadgen JSON report).
#[derive(Debug, Default)]
pub struct RetryStats {
    /// Attempts beyond the first inside a retrying submit.
    pub retries: std::sync::atomic::AtomicU64,
    /// Retrying submits that ran out of attempts.
    pub exhausted: std::sync::atomic::AtomicU64,
    /// Stale pooled connections transparently replaced by a fresh dial.
    pub redials: std::sync::atomic::AtomicU64,
    /// `NotPrimary` redirects chased to the advertised leader.
    pub redirects: std::sync::atomic::AtomicU64,
}

/// Capped exponential backoff with deterministic jitter.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream (so two clients hammering
    /// a recovering node desynchronise without true randomness).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(320),
            jitter_seed: 0x7265747279, // "retry"
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (0-based): capped
    /// `base * 2^retry` plus up to 50% deterministic jitter.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << retry.min(16))
            .min(self.max_backoff);
        let mut x = self
            .jitter_seed
            .wrapping_add((retry as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let half = exp.as_nanos() as u64 / 2;
        let jitter = if half == 0 { 0 } else { x % half };
        exp + Duration::from_nanos(jitter)
    }
}

/// Is this failure worth retrying? `Busy` is explicit backpressure and
/// transport-level failures may be a node mid-restart; protocol verdicts
/// (`Rejected`, attestation failures) are final.
fn transient(e: &NetError) -> bool {
    matches!(
        e,
        NetError::Busy | NetError::Frame(_) | NetError::Disconnected | NetError::PoolExhausted
    )
}

/// Configuration for the unified [`Client`]. Setters chain;
/// [`ClientConfig::connect`] validates and builds.
///
/// ```no_run
/// use confide_net::client::ClientConfig;
/// let client = ClientConfig::new()
///     .endpoint("127.0.0.1:9000")
///     .endpoint("127.0.0.1:9001")
///     .pool_size(4)
///     .identity([1u8; 32], [2u8; 32], 3)
///     .connect()
///     .expect("client");
/// ```
#[derive(Debug, Clone)]
pub struct ClientConfig {
    endpoints: Vec<String>,
    pool_size: usize,
    pool_wait: Duration,
    conn_timeout: Duration,
    retry: RetryPolicy,
    chase_redirects: bool,
    max_redirect_hops: usize,
    identity: Option<([u8; 32], [u8; 32], u64)>,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            endpoints: Vec::new(),
            pool_size: 4,
            pool_wait: Duration::from_secs(5),
            conn_timeout: Duration::from_secs(10),
            retry: RetryPolicy::default(),
            chase_redirects: true,
            max_redirect_hops: 4,
            identity: None,
        }
    }
}

impl ClientConfig {
    /// Start from defaults (pool of 4, 10 s dial timeout, redirect
    /// chasing on, default retry policy, no endpoints, no identity).
    pub fn new() -> ClientConfig {
        ClientConfig::default()
    }

    /// Add one endpoint (`host:port`). At least one is required.
    pub fn endpoint(mut self, addr: impl ToString) -> Self {
        self.endpoints.push(addr.to_string());
        self
    }

    /// Replace the endpoint list.
    pub fn endpoints<T: ToString>(mut self, addrs: impl IntoIterator<Item = T>) -> Self {
        self.endpoints = addrs.into_iter().map(|a| a.to_string()).collect();
        self
    }

    /// Cap on concurrently open sockets (default 4, clamped to ≥ 1).
    pub fn pool_size(mut self, n: usize) -> Self {
        self.pool_size = n.max(1);
        self
    }

    /// How long a lease may wait for a pooled connection before failing
    /// with a typed pool error (default 5 s).
    pub fn pool_wait(mut self, d: Duration) -> Self {
        self.pool_wait = d;
        self
    }

    /// Socket dial/read/write timeout (default 10 s).
    pub fn conn_timeout(mut self, d: Duration) -> Self {
        self.conn_timeout = d;
        self
    }

    /// Retry policy for [`Client::submit_with_retry`] and
    /// [`Client::call_confidential`].
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Whether a `NotPrimary` redirect is chased to the advertised
    /// leader automatically (default `true`).
    pub fn chase_redirects(mut self, yes: bool) -> Self {
        self.chase_redirects = yes;
        self
    }

    /// Attach a sealing identity (signing seed, user root key, RNG
    /// seed) — required for [`Client::seal`] and
    /// [`Client::call_confidential`].
    pub fn identity(mut self, identity_seed: [u8; 32], root_key: [u8; 32], rng_seed: u64) -> Self {
        self.identity = Some((identity_seed, root_key, rng_seed));
        self
    }

    /// Validate and build the client. No I/O happens here beyond
    /// endpoint resolution; sockets are dialed lazily on first use.
    pub fn connect(self) -> Result<Client, Error> {
        use crate::error::ErrorKind;
        if self.endpoints.is_empty() {
            return Err(Error::new(
                ErrorKind::Config,
                "ClientConfig requires at least one endpoint",
            ));
        }
        let mut resolved = Vec::with_capacity(self.endpoints.len());
        for ep in &self.endpoints {
            let addr = ep
                .to_socket_addrs()
                .map_err(|e| {
                    Error::new(ErrorKind::Config, format!("cannot resolve endpoint {ep}"))
                        .with_source(e)
                })?
                .next()
                .ok_or_else(|| {
                    Error::new(
                        ErrorKind::Config,
                        format!("endpoint {ep} resolved to no address"),
                    )
                })?;
            resolved.push(addr);
        }
        Ok(Client::build(resolved, self))
    }
}

struct PoolState {
    /// Idle connections, each tagged with the endpoint it is dialed to.
    idle: Vec<(SocketAddr, Conn)>,
    open: usize,
}

struct SealState {
    inner: ConfideClient,
    root_key: [u8; 32],
    rng: HmacDrbg,
    pk_tx: Option<[u8; 32]>,
}

/// The unified networked client: a bounded connection pool over one or
/// more endpoints, an optional sealing identity, a retry policy, and
/// automatic leader-redirect chasing. Replaces the former `Gateway`
/// (pooling) and connect-style `Client` (sealing) in one surface; build
/// it with [`ClientConfig`].
///
/// Thread-safe: all methods take `&self`; share one client across
/// workers via `Arc`.
pub struct Client {
    endpoints: Vec<SocketAddr>,
    /// Where requests go right now — updated when a redirect is chased
    /// or an endpoint stops answering.
    current: Mutex<SocketAddr>,
    pool: Mutex<PoolState>,
    available: Condvar,
    max_conns: usize,
    pool_wait: Duration,
    conn_timeout: Duration,
    retry: RetryPolicy,
    chase_redirects: bool,
    max_redirect_hops: usize,
    stats: RetryStats,
    /// Attested `pk_tx`, cached **per endpoint address**. In a
    /// multi-node pool every member quotes from its own platform, so an
    /// attestation verified against one endpoint must never be reused
    /// as the verdict for another.
    attested_pk: Mutex<HashMap<SocketAddr, [u8; 32]>>,
    seal_state: Option<Mutex<SealState>>,
}

impl Client {
    fn build(endpoints: Vec<SocketAddr>, cfg: ClientConfig) -> Client {
        Client {
            current: Mutex::new(endpoints[0]),
            endpoints,
            pool: Mutex::new(PoolState {
                idle: Vec::new(),
                open: 0,
            }),
            available: Condvar::new(),
            max_conns: cfg.pool_size.max(1),
            pool_wait: cfg.pool_wait,
            conn_timeout: cfg.conn_timeout,
            retry: cfg.retry,
            chase_redirects: cfg.chase_redirects,
            max_redirect_hops: cfg.max_redirect_hops,
            stats: RetryStats::default(),
            attested_pk: Mutex::new(HashMap::new()),
            seal_state: cfg.identity.map(|(id, root, rng_seed)| {
                Mutex::new(SealState {
                    inner: ConfideClient::new(id, root, rng_seed),
                    root_key: root,
                    rng: HmacDrbg::from_u64(rng_seed ^ 0x6e65742d636c69), // "net-cli"
                    pk_tx: None,
                })
            }),
        }
    }

    /// The configured endpoints.
    pub fn endpoints(&self) -> &[SocketAddr] {
        &self.endpoints
    }

    /// The endpoint requests are currently routed to (moves when a
    /// `NotPrimary` redirect is chased).
    pub fn current_endpoint(&self) -> SocketAddr {
        *self.current.lock().expect("endpoint lock")
    }

    /// Lifetime retry/redial/redirect counters.
    pub fn retry_stats(&self) -> &RetryStats {
        &self.stats
    }

    // ---- pooled transport (wire-level internals, NetError) ----------

    /// Lease a connection to `addr`; the boolean is `true` when it came
    /// out of the idle pool (and may have died while parked).
    fn lease(&self, addr: SocketAddr) -> Result<(Conn, bool), NetError> {
        let deadline = Instant::now() + self.pool_wait;
        let mut state = self.pool.lock().expect("pool lock");
        loop {
            if let Some(pos) = state.idle.iter().position(|(a, _)| *a == addr) {
                let (_, conn) = state.idle.swap_remove(pos);
                return Ok((conn, true));
            }
            // An idle socket to the *wrong* endpoint is worth less than
            // a fresh dial to the right one: evict it to free a slot.
            if state.open >= self.max_conns {
                if state.idle.pop().is_some() {
                    state.open -= 1;
                } else {
                    // Every slot is leased out. Bounded wait.
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Err(NetError::PoolExhausted);
                    }
                    let (guard, timeout) =
                        self.available.wait_timeout(state, left).expect("pool lock");
                    state = guard;
                    if timeout.timed_out() && state.idle.is_empty() && state.open >= self.max_conns
                    {
                        return Err(NetError::PoolExhausted);
                    }
                    continue;
                }
            }
            state.open += 1;
            drop(state);
            return match Conn::connect_timeout(addr, self.conn_timeout) {
                Ok(conn) => Ok((conn, false)),
                Err(e) => {
                    self.pool.lock().expect("pool lock").open -= 1;
                    self.available.notify_one();
                    Err(e)
                }
            };
        }
    }

    fn give_back(&self, conn: Option<(SocketAddr, Conn)>) {
        let mut state = self.pool.lock().expect("pool lock");
        match conn {
            Some(tagged) => state.idle.push(tagged),
            None => state.open -= 1, // connection died; allow a fresh dial
        }
        self.available.notify_one();
    }

    /// Register a fresh dial outside the lease path (replacing a pooled
    /// connection that turned out to be dead).
    fn dial_fresh(&self, addr: SocketAddr) -> Result<Conn, NetError> {
        self.pool.lock().expect("pool lock").open += 1;
        match Conn::connect_timeout(addr, self.conn_timeout) {
            Ok(conn) => Ok(conn),
            Err(e) => {
                self.pool.lock().expect("pool lock").open -= 1;
                self.available.notify_one();
                Err(e)
            }
        }
    }

    /// Run `f` on a leased connection to `addr`. On transport-level
    /// failure the connection is discarded; if it was a *pooled*
    /// connection (which may have died while idle — e.g. the server
    /// restarted), a fresh socket is dialed and `f` runs once more, so
    /// callers never see a stale-pool artifact as an error.
    /// Protocol-level outcomes (`Busy`, `Rejected`) keep the connection
    /// pooled.
    fn with_conn_at<R>(
        &self,
        addr: SocketAddr,
        f: &mut impl FnMut(&mut Conn) -> Result<R, NetError>,
    ) -> Result<R, NetError> {
        let (mut conn, reused) = self.lease(addr)?;
        let result = f(&mut conn);
        match &result {
            Err(NetError::Frame(_)) | Err(NetError::Disconnected) => {
                self.give_back(None);
                if !reused {
                    return result;
                }
                // The pooled socket was stale; retry once on a fresh dial.
                self.stats
                    .redials
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let mut conn = self.dial_fresh(addr)?;
                let retry = f(&mut conn);
                match &retry {
                    Err(NetError::Frame(_)) | Err(NetError::Disconnected) => self.give_back(None),
                    _ => self.give_back(Some((addr, conn))),
                }
                retry
            }
            _ => {
                self.give_back(Some((addr, conn)));
                result
            }
        }
    }

    /// Route a request: run it against the current endpoint, chase
    /// `NotPrimary` redirects (bounded hops), and fail over to the next
    /// configured endpoint when the current one stops answering.
    fn routed<R>(
        &self,
        mut f: impl FnMut(&mut Conn) -> Result<R, NetError>,
    ) -> Result<R, NetError> {
        let mut hops = 0usize;
        let mut failovers = 0usize;
        loop {
            let addr = self.current_endpoint();
            match self.with_conn_at(addr, &mut f) {
                Err(NetError::NotPrimary(leader))
                    if self.chase_redirects && hops < self.max_redirect_hops =>
                {
                    match leader.parse::<SocketAddr>() {
                        Ok(la) => {
                            hops += 1;
                            self.stats
                                .redirects
                                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            *self.current.lock().expect("endpoint lock") = la;
                        }
                        Err(_) => return Err(NetError::NotPrimary(leader)),
                    }
                }
                Err(e @ (NetError::Frame(_) | NetError::Disconnected))
                    if failovers + 1 < self.endpoints.len() =>
                {
                    // The endpoint is gone (restart, crash): rotate to
                    // the next configured one rather than failing the
                    // call outright.
                    failovers += 1;
                    let next = self
                        .endpoints
                        .iter()
                        .position(|a| *a == addr)
                        .map(|i| self.endpoints[(i + 1) % self.endpoints.len()])
                        .unwrap_or(self.endpoints[0]);
                    let _ = e;
                    *self.current.lock().expect("endpoint lock") = next;
                }
                other => return other,
            }
        }
    }

    // ---- public API (typed Error) -----------------------------------

    /// Run `f` on a pooled connection to the current endpoint (no
    /// redirect chasing — the raw protocol surface for tests and
    /// special-purpose calls).
    pub fn with_conn<R>(
        &self,
        mut f: impl FnMut(&mut Conn) -> Result<R, NetError>,
    ) -> Result<R, Error> {
        self.with_conn_at(self.current_endpoint(), &mut f)
            .map_err(Error::from)
    }

    /// Liveness probe against the current endpoint.
    pub fn ping(&self) -> Result<(), Error> {
        self.routed(|c| c.ping()).map_err(Error::from)
    }

    /// Fetch the node's live status line.
    pub fn status(&self) -> Result<crate::frame::NodeStatus, Error> {
        self.routed(|c| c.status()).map_err(Error::from)
    }

    /// Fetch `pk_tx` (unattested — see [`Client::pk_tx_attested`]).
    /// Cached in the sealing state when an identity is attached.
    pub fn pk_tx(&self) -> Result<[u8; 32], Error> {
        if let Some(seal) = &self.seal_state {
            if let Some(pk) = seal.lock().expect("seal lock").pk_tx {
                return Ok(pk);
            }
        }
        let pk = self.routed(|c| c.fetch_pk_tx()).map_err(Error::from)?;
        if let Some(seal) = &self.seal_state {
            seal.lock().expect("seal lock").pk_tx = Some(pk);
        }
        Ok(pk)
    }

    /// Fetch this endpoint's `pk_tx` with its attestation report
    /// verified against `attestation_root` / `expected_mrenclave` /
    /// `min_svn` — once. The verified key is cached per endpoint
    /// address, so a process pooling over several cluster members never
    /// cross-validates node A's enclave report under the verdict
    /// obtained from node B; a cache miss always re-runs the full
    /// report verification over the wire.
    pub fn pk_tx_attested(
        &self,
        attestation_root: &VerifyingKey,
        expected_mrenclave: &[u8; 32],
        min_svn: u16,
    ) -> Result<[u8; 32], Error> {
        let addr = self.current_endpoint();
        if let Some(pk) = self.attested_pk.lock().expect("pk cache lock").get(&addr) {
            return Ok(*pk);
        }
        let pk = self
            .with_conn_at(addr, &mut |c: &mut Conn| {
                c.fetch_pk_tx_attested(attestation_root, expected_mrenclave, min_svn)
            })
            .map_err(Error::from)?;
        self.attested_pk
            .lock()
            .expect("pk cache lock")
            .insert(addr, pk);
        Ok(pk)
    }

    /// Fire-and-forget submit; `Ok` carries the wire hash.
    pub fn submit(&self, tx: &WireTx) -> Result<[u8; 32], Error> {
        self.routed(|c| c.submit(tx)).map_err(Error::from)
    }

    /// Submit and block until the containing block commits; returns
    /// `(sealed, receipt_bytes)`.
    pub fn submit_wait(&self, tx: &WireTx) -> Result<(bool, Vec<u8>), Error> {
        self.routed(|c| c.submit_wait(tx)).map_err(Error::from)
    }

    /// Receipt lookup.
    pub fn get_receipt(&self, tx_hash: &[u8; 32]) -> Result<Option<Vec<u8>>, Error> {
        self.routed(|c| c.get_receipt(tx_hash)).map_err(Error::from)
    }

    /// [`Client::submit_wait`] with retries on transient failures
    /// (`Busy` backpressure, transport errors while a node restarts),
    /// backing off per the configured [`RetryPolicy`]. Safe against
    /// double execution: the server's committed-wire-hash index answers
    /// a retry of an already-committed transaction with its stored
    /// receipt. Terminal verdicts are returned immediately.
    pub fn submit_with_retry(&self, tx: &WireTx) -> Result<(bool, Vec<u8>), Error> {
        self.submit_with_retry_net(tx, &self.retry.clone())
            .map_err(Error::from)
    }

    fn submit_with_retry_net(
        &self,
        tx: &WireTx,
        policy: &RetryPolicy,
    ) -> Result<(bool, Vec<u8>), NetError> {
        let attempts = policy.max_attempts.max(1);
        let mut last: Option<NetError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.stats
                    .retries
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                std::thread::sleep(policy.backoff(attempt - 1));
            }
            match self.routed(|c| c.submit_wait(tx)) {
                Ok(out) => return Ok(out),
                Err(e) if transient(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        self.stats
            .exhausted
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Err(NetError::RetriesExhausted {
            attempts,
            last: Box::new(last.unwrap_or(NetError::Busy)),
        })
    }

    // ---- sealing API (requires an identity) -------------------------

    /// The client's address (public key of the sealing identity).
    ///
    /// # Panics
    /// When the client was built without [`ClientConfig::identity`] —
    /// a configuration error, not a runtime condition.
    pub fn address(&self) -> [u8; 32] {
        self.seal_state
            .as_ref()
            .expect("client built without an identity")
            .lock()
            .expect("seal lock")
            .inner
            .address()
    }

    /// Build a sealed confidential transaction without sending it.
    /// Returns `(wire_tx, tx_hash, k_tx)`.
    pub fn seal(
        &self,
        contract: [u8; 32],
        method: &str,
        args: &[u8],
    ) -> Result<(WireTx, [u8; 32], [u8; 32]), Error> {
        use crate::error::ErrorKind;
        let pk_tx = self.pk_tx()?;
        let seal = self.seal_state.as_ref().ok_or_else(|| {
            Error::new(
                ErrorKind::Config,
                "seal requires an identity (ClientConfig::identity)",
            )
        })?;
        let mut seal = seal.lock().expect("seal lock");
        let signed = seal.inner.build_raw(contract, method, args);
        let root_key = seal.root_key;
        seal_signed_tx(&signed, &root_key, &pk_tx, &mut seal.rng)
            .map_err(|_| Error::new(ErrorKind::Crypto, "envelope sealing failed"))
    }

    /// Seal, submit (with retries), wait for commit, and decrypt the
    /// receipt under `k_tx` — the full T-Protocol round trip.
    pub fn call_confidential(
        &self,
        contract: [u8; 32],
        method: &str,
        args: &[u8],
    ) -> Result<Receipt, Error> {
        use crate::error::ErrorKind;
        let (tx, tx_hash, k_tx) = self.seal(contract, method, args)?;
        let (sealed, receipt_bytes) = self.submit_with_retry(&tx)?;
        if !sealed {
            // A confidential tx must come back sealed.
            return Err(Error::new(
                ErrorKind::Crypto,
                "confidential receipt came back unsealed",
            ));
        }
        Receipt::open(&receipt_bytes, &k_tx, &tx_hash)
            .map_err(|_| Error::new(ErrorKind::Crypto, "receipt decryption failed"))
    }

    /// Pre-unification constructor: connect to one endpoint with a
    /// sealing identity and eagerly fetch `pk_tx`.
    #[deprecated(
        since = "0.8.0",
        note = "use ClientConfig::new().endpoint(..).identity(..).connect()"
    )]
    pub fn connect(
        addr: impl ToSocketAddrs,
        identity_seed: [u8; 32],
        root_key: [u8; 32],
        rng_seed: u64,
    ) -> Result<Client, NetError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(FrameError::Io)?
            .next()
            .ok_or(NetError::Disconnected)?;
        let cfg = ClientConfig::new()
            .endpoint(addr)
            .identity(identity_seed, root_key, rng_seed);
        let client = Client::build(vec![addr], cfg);
        // Match the old eager behaviour: fail now if the node is down.
        let pk = client.routed(|c| c.fetch_pk_tx())?;
        if let Some(seal) = &client.seal_state {
            seal.lock().expect("seal lock").pk_tx = Some(pk);
        }
        Ok(client)
    }
}

/// Pre-unification connection-pooling gateway, now a thin forwarder
/// onto [`Client`] that keeps the old `NetError` signatures.
#[deprecated(since = "0.8.0", note = "use Client with ClientConfig")]
pub struct Gateway {
    inner: Client,
}

#[allow(deprecated)]
impl Gateway {
    /// Create a gateway to `addr` with a connection cap.
    pub fn new(addr: impl ToSocketAddrs, max_conns: usize) -> Result<Gateway, NetError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(FrameError::Io)?
            .next()
            .ok_or(NetError::Disconnected)?;
        let cfg = ClientConfig::new()
            .endpoint(addr)
            .pool_size(max_conns)
            // The old gateway never chased redirects; callers matched on
            // NetError::NotPrimary themselves.
            .chase_redirects(false);
        Ok(Gateway {
            inner: Client::build(vec![addr], cfg),
        })
    }

    /// Socket read/write timeout for pooled connections (default 10 s).
    pub fn set_conn_timeout(&mut self, timeout: Duration) {
        self.inner.conn_timeout = timeout;
    }

    /// Cap how long a lease may wait for a pooled connection (default
    /// 5 s).
    pub fn set_pool_wait(&mut self, wait: Duration) {
        self.inner.pool_wait = wait;
    }

    /// Lifetime retry/redial counters.
    pub fn retry_stats(&self) -> &RetryStats {
        self.inner.retry_stats()
    }

    /// The gateway's upstream address.
    pub fn addr(&self) -> SocketAddr {
        self.inner.current_endpoint()
    }

    /// Run `f` with a leased connection (stale pooled sockets are
    /// transparently replaced by one fresh dial).
    pub fn with_conn<R>(
        &self,
        mut f: impl FnMut(&mut Conn) -> Result<R, NetError>,
    ) -> Result<R, NetError> {
        self.inner
            .with_conn_at(self.inner.current_endpoint(), &mut f)
    }

    /// Attested `pk_tx` fetch with per-endpoint caching.
    pub fn pk_tx_attested(
        &self,
        attestation_root: &VerifyingKey,
        expected_mrenclave: &[u8; 32],
        min_svn: u16,
    ) -> Result<[u8; 32], NetError> {
        let addr = self.inner.current_endpoint();
        if let Some(pk) = self
            .inner
            .attested_pk
            .lock()
            .expect("pk cache lock")
            .get(&addr)
        {
            return Ok(*pk);
        }
        let pk = self.inner.with_conn_at(addr, &mut |c: &mut Conn| {
            c.fetch_pk_tx_attested(attestation_root, expected_mrenclave, min_svn)
        })?;
        self.inner
            .attested_pk
            .lock()
            .expect("pk cache lock")
            .insert(addr, pk);
        Ok(pk)
    }

    /// Submit a sealed transaction through the pool and wait for commit.
    pub fn submit_wait(&self, tx: &WireTx) -> Result<(bool, Vec<u8>), NetError> {
        self.with_conn(|c| c.submit_wait(tx))
    }

    /// Fire-and-forget submit through the pool.
    pub fn submit(&self, tx: &WireTx) -> Result<[u8; 32], NetError> {
        self.with_conn(|c| c.submit(tx))
    }

    /// Receipt lookup through the pool.
    pub fn get_receipt(&self, tx_hash: &[u8; 32]) -> Result<Option<Vec<u8>>, NetError> {
        self.with_conn(|c| c.get_receipt(tx_hash))
    }

    /// [`Gateway::submit_wait`] with retries on transient failures,
    /// backing off per `policy`.
    pub fn submit_with_retry(
        &self,
        tx: &WireTx,
        policy: &RetryPolicy,
    ) -> Result<(bool, Vec<u8>), NetError> {
        self.inner.submit_with_retry_net(tx, policy)
    }
}
