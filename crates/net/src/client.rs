//! Client SDK: framed transport, the sealing client, and a
//! connection-pooling gateway.
//!
//! The envelope-sealing path is **shared** with the in-process client
//! ([`confide_core::client::seal_signed_tx`]) so the networked and
//! in-process code cannot drift: same `k_tx` derivation, same AAD, same
//! envelope layout.

use crate::frame::{read_frame, write_frame, FrameError, Message};
use confide_core::client::ConfideClient;
use confide_core::receipt::Receipt;
use confide_core::seal_signed_tx;
use confide_core::tx::WireTx;
use confide_crypto::ed25519::VerifyingKey;
use confide_crypto::HmacDrbg;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Client-side failures.
#[derive(Debug)]
pub enum NetError {
    /// Transport or framing failure.
    Frame(FrameError),
    /// Server closed the connection instead of answering.
    Disconnected,
    /// The server answered with a kind the request cannot accept.
    UnexpectedReply(u8),
    /// The server rejected the request.
    Rejected(String),
    /// The server reported queue-full backpressure.
    Busy,
    /// Envelope/receipt cryptography failed.
    Crypto,
    /// The attestation report failed verification — `pk_tx` is not to be
    /// trusted (possible MITM key substitution).
    Attestation(String),
    /// The gateway's connection pool stayed at its cap for the whole
    /// `pool_wait` window — every lease is held and none came back.
    PoolExhausted,
    /// The node is a cluster follower; submissions belong at `leader`.
    NotPrimary(String),
    /// Every attempt of a [`Gateway::submit_with_retry`] failed with a
    /// transient error; `last` is the final attempt's failure.
    RetriesExhausted {
        /// How many attempts were made.
        attempts: u32,
        /// The error the final attempt died with.
        last: Box<NetError>,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Frame(e) => write!(f, "frame: {e}"),
            NetError::Disconnected => f.write_str("server disconnected"),
            NetError::UnexpectedReply(k) => write!(f, "unexpected reply kind {k:#04x}"),
            NetError::Rejected(r) => write!(f, "rejected: {r}"),
            NetError::Busy => f.write_str("server busy (queue full)"),
            NetError::Crypto => f.write_str("cryptographic failure"),
            NetError::Attestation(e) => write!(f, "attestation: {e}"),
            NetError::NotPrimary(leader) => write!(f, "not primary; leader is {leader}"),
            NetError::PoolExhausted => f.write_str("gateway pool exhausted (lease wait timed out)"),
            NetError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

/// A framed request/response transport over one TCP connection.
pub struct Conn {
    stream: TcpStream,
    max_frame: usize,
}

impl Conn {
    /// Connect with default timeouts (10 s read/write).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Conn, NetError> {
        Conn::connect_timeout(addr, Duration::from_secs(10))
    }

    /// Connect with explicit socket timeouts.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Conn, NetError> {
        let stream = TcpStream::connect(addr).map_err(FrameError::Io)?;
        stream.set_nodelay(true).map_err(FrameError::Io)?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(FrameError::Io)?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(FrameError::Io)?;
        Ok(Conn {
            stream,
            max_frame: crate::frame::DEFAULT_MAX_FRAME,
        })
    }

    /// Send one message without waiting for the reply (pipelining).
    pub fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        write_frame(&mut self.stream, msg)?;
        Ok(())
    }

    /// Read one reply frame.
    pub fn recv(&mut self) -> Result<Message, NetError> {
        match read_frame(&mut self.stream, self.max_frame)? {
            Some(msg) => Ok(msg),
            None => Err(NetError::Disconnected),
        }
    }

    /// One request/response round trip.
    pub fn request(&mut self, msg: &Message) -> Result<Message, NetError> {
        self.send(msg)?;
        self.recv()
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.request(&Message::Ping)? {
            Message::Pong => Ok(()),
            other => Err(NetError::UnexpectedReply(other.kind())),
        }
    }

    /// Fetch `pk_tx`.
    pub fn fetch_pk_tx(&mut self) -> Result<[u8; 32], NetError> {
        match self.request(&Message::GetPkTx)? {
            Message::PkTxIs(pk) => Ok(pk),
            Message::Rejected(r) => Err(NetError::Rejected(r)),
            other => Err(NetError::UnexpectedReply(other.kind())),
        }
    }

    /// Fetch `pk_tx` **and** verify the attestation report that binds it
    /// to the CS-enclave build (§3.2.2): the report must be signed by
    /// `attestation_root`, measure `expected_mrenclave` at ≥ `min_svn`,
    /// and carry `sha256(pk_tx)` in its `report_data`. This is the
    /// MITM-substitution defence — a gateway handing out its own key
    /// fails the fingerprint check.
    pub fn fetch_pk_tx_attested(
        &mut self,
        attestation_root: &VerifyingKey,
        expected_mrenclave: &[u8; 32],
        min_svn: u16,
    ) -> Result<[u8; 32], NetError> {
        let pk = self.fetch_pk_tx()?;
        let report = match self.request(&Message::GetAttestation)? {
            Message::AttestationIs(r) => r,
            Message::Rejected(r) => return Err(NetError::Rejected(r)),
            other => return Err(NetError::UnexpectedReply(other.kind())),
        };
        report
            .verify(attestation_root, expected_mrenclave, min_svn)
            .map_err(|e| NetError::Attestation(e.to_string()))?;
        if report.report_data[..32] != confide_crypto::sha256(&pk) {
            return Err(NetError::Attestation(
                "pk_tx fingerprint mismatch in report_data".into(),
            ));
        }
        Ok(pk)
    }

    /// Submit fire-and-forget; `Ok` carries the wire hash.
    pub fn submit(&mut self, tx: &WireTx) -> Result<[u8; 32], NetError> {
        match self.request(&Message::SubmitTx(tx.clone()))? {
            Message::Accepted(h) => Ok(h),
            Message::Busy => Err(NetError::Busy),
            Message::Rejected(r) => Err(NetError::Rejected(r)),
            Message::NotPrimary { leader } => Err(NetError::NotPrimary(leader)),
            other => Err(NetError::UnexpectedReply(other.kind())),
        }
    }

    /// Submit and block until the containing block commits; returns
    /// `(sealed, receipt_bytes)`.
    pub fn submit_wait(&mut self, tx: &WireTx) -> Result<(bool, Vec<u8>), NetError> {
        match self.request(&Message::SubmitTxWait(tx.clone()))? {
            Message::Committed { sealed, receipt } => Ok((sealed, receipt)),
            Message::Busy => Err(NetError::Busy),
            Message::Rejected(r) => Err(NetError::Rejected(r)),
            Message::NotPrimary { leader } => Err(NetError::NotPrimary(leader)),
            other => Err(NetError::UnexpectedReply(other.kind())),
        }
    }

    /// Fetch the node's live status line (height, state root, and — on a
    /// cluster member — view/leader/sync counters).
    pub fn status(&mut self) -> Result<crate::frame::NodeStatus, NetError> {
        match self.request(&Message::GetStatus)? {
            Message::StatusIs(s) => Ok(s),
            Message::Rejected(r) => Err(NetError::Rejected(r)),
            other => Err(NetError::UnexpectedReply(other.kind())),
        }
    }

    /// Re-obtain the consortium's `NodeKeys` over the wire: the K-Protocol
    /// MAP join (§5.3) against a surviving member. The joiner's KM enclave
    /// quotes an ephemeral X25519 key, the member counter-quotes and wraps
    /// `(sk_tx, k_states)` to it, and the joiner verifies the member's
    /// quote against `member_attestation_root` (the consortium-registered
    /// root it trusts out of band) before unwrapping. No key material ever
    /// crosses the wire outside the attested wrap blob.
    pub fn rejoin(
        &mut self,
        joiner_platform: &std::sync::Arc<confide_tee::platform::TeePlatform>,
        member_attestation_root: &VerifyingKey,
        svn: u16,
        min_svn: u16,
        seed: u64,
    ) -> Result<confide_core::keys::NodeKeys, NetError> {
        let pk_tx = self.fetch_pk_tx()?;
        let (session, offer) = confide_core::keys::begin_join(joiner_platform, svn, &pk_tx, seed)
            .map_err(|e| NetError::Attestation(e.to_string()))?;
        let reply = self.request(&Message::JoinRequest {
            eph_pk: offer.eph_pk,
            report: offer.report,
        })?;
        match reply {
            Message::JoinApprove {
                blob,
                member_report,
            } => confide_core::keys::finish_join(
                session,
                joiner_platform,
                member_attestation_root,
                &member_report,
                min_svn,
                svn,
                &blob,
            )
            .map_err(|e| NetError::Attestation(e.to_string())),
            Message::Rejected(r) => Err(NetError::Rejected(r)),
            other => Err(NetError::UnexpectedReply(other.kind())),
        }
    }

    /// Fetch the stored receipt bytes for `tx_hash`, `None` if not (yet)
    /// committed.
    pub fn get_receipt(&mut self, tx_hash: &[u8; 32]) -> Result<Option<Vec<u8>>, NetError> {
        match self.request(&Message::GetReceipt(*tx_hash))? {
            Message::ReceiptIs(bytes) => Ok(Some(bytes)),
            Message::NotFound => Ok(None),
            Message::Rejected(r) => Err(NetError::Rejected(r)),
            other => Err(NetError::UnexpectedReply(other.kind())),
        }
    }
}

/// A full networked client: a signing identity + user root key (the same
/// [`ConfideClient`] the in-process path uses) bound to a transport.
pub struct Client {
    inner: ConfideClient,
    root_key: [u8; 32],
    rng: HmacDrbg,
    conn: Conn,
    pk_tx: [u8; 32],
}

impl Client {
    /// Connect and fetch `pk_tx` from the node (unattested — see
    /// [`Conn::fetch_pk_tx_attested`] for the verified variant).
    pub fn connect(
        addr: impl ToSocketAddrs,
        identity_seed: [u8; 32],
        root_key: [u8; 32],
        rng_seed: u64,
    ) -> Result<Client, NetError> {
        let mut conn = Conn::connect(addr)?;
        let pk_tx = conn.fetch_pk_tx()?;
        Ok(Client {
            inner: ConfideClient::new(identity_seed, root_key, rng_seed),
            root_key,
            rng: HmacDrbg::from_u64(rng_seed ^ 0x6e65742d636c69), // "net-cli"
            conn,
            pk_tx,
        })
    }

    /// The client's address (public key).
    pub fn address(&self) -> [u8; 32] {
        self.inner.address()
    }

    /// The consortium envelope key this client seals to.
    pub fn pk_tx(&self) -> [u8; 32] {
        self.pk_tx
    }

    /// Access the underlying transport (receipt polling, pings).
    pub fn conn(&mut self) -> &mut Conn {
        &mut self.conn
    }

    /// Build a sealed confidential transaction without sending it.
    /// Returns `(wire_tx, tx_hash, k_tx)`.
    pub fn seal(
        &mut self,
        contract: [u8; 32],
        method: &str,
        args: &[u8],
    ) -> Result<(WireTx, [u8; 32], [u8; 32]), NetError> {
        let signed = self.inner.build_raw(contract, method, args);
        seal_signed_tx(&signed, &self.root_key, &self.pk_tx, &mut self.rng)
            .map_err(|_| NetError::Crypto)
    }

    /// Seal, submit, wait for commit, and decrypt the receipt under
    /// `k_tx` — the full T-Protocol round trip over the wire.
    pub fn call_confidential(
        &mut self,
        contract: [u8; 32],
        method: &str,
        args: &[u8],
    ) -> Result<Receipt, NetError> {
        let (tx, tx_hash, k_tx) = self.seal(contract, method, args)?;
        let (sealed, receipt_bytes) = self.conn.submit_wait(&tx)?;
        if !sealed {
            return Err(NetError::Crypto); // confidential tx must come back sealed
        }
        Receipt::open(&receipt_bytes, &k_tx, &tx_hash).map_err(|_| NetError::Crypto)
    }
}

/// A connection-pooling gateway: many logical clients multiplexed over at
/// most `max_conns` sockets. Lease a connection with
/// [`Gateway::with_conn`]; the lease returns to the pool on scope exit,
/// and leases beyond the cap block until one frees up (bounded fan-in —
/// the gateway itself never amplifies load onto the node). A lease that
/// waits longer than [`Gateway::set_pool_wait`] fails with
/// [`NetError::PoolExhausted`] instead of blocking forever.
pub struct Gateway {
    addr: SocketAddr,
    pool: Mutex<PoolState>,
    available: Condvar,
    max_conns: usize,
    pool_wait: Duration,
    conn_timeout: Duration,
    stats: RetryStats,
    /// Attested `pk_tx`, cached **per endpoint address**. In a
    /// multi-node pool every member quotes from its own platform, so
    /// an attestation verified against one endpoint must never be
    /// reused as the verdict for another — the key records exactly
    /// which endpoint it was proven for.
    attested_pk: Mutex<HashMap<SocketAddr, [u8; 32]>>,
}

struct PoolState {
    idle: Vec<Conn>,
    open: usize,
}

/// Retry/redial counters a gateway accumulates over its lifetime
/// (surfaced in the loadgen JSON report).
#[derive(Debug, Default)]
pub struct RetryStats {
    /// Attempts beyond the first inside [`Gateway::submit_with_retry`].
    pub retries: std::sync::atomic::AtomicU64,
    /// `submit_with_retry` calls that ran out of attempts.
    pub exhausted: std::sync::atomic::AtomicU64,
    /// Stale pooled connections transparently replaced by a fresh dial
    /// inside [`Gateway::with_conn`].
    pub redials: std::sync::atomic::AtomicU64,
}

/// Capped exponential backoff with deterministic jitter, for
/// [`Gateway::submit_with_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream (so two clients hammering
    /// a recovering node desynchronise without true randomness).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(320),
            jitter_seed: 0x7265747279, // "retry"
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (0-based): capped
    /// `base * 2^retry` plus up to 50% deterministic jitter.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << retry.min(16))
            .min(self.max_backoff);
        let mut x = self
            .jitter_seed
            .wrapping_add((retry as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let half = exp.as_nanos() as u64 / 2;
        let jitter = if half == 0 { 0 } else { x % half };
        exp + Duration::from_nanos(jitter)
    }
}

/// Is this failure worth retrying? `Busy` is explicit backpressure and
/// transport-level failures may be a node mid-restart; protocol verdicts
/// (`Rejected`, attestation failures) are final.
fn transient(e: &NetError) -> bool {
    matches!(
        e,
        NetError::Busy | NetError::Frame(_) | NetError::Disconnected | NetError::PoolExhausted
    )
}

impl Gateway {
    /// Create a gateway to `addr` with a connection cap.
    pub fn new(addr: impl ToSocketAddrs, max_conns: usize) -> Result<Gateway, NetError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(FrameError::Io)?
            .next()
            .ok_or(NetError::Disconnected)?;
        Ok(Gateway {
            addr,
            pool: Mutex::new(PoolState {
                idle: Vec::new(),
                open: 0,
            }),
            available: Condvar::new(),
            max_conns: max_conns.max(1),
            pool_wait: Duration::from_secs(5),
            conn_timeout: Duration::from_secs(10),
            stats: RetryStats::default(),
            attested_pk: Mutex::new(HashMap::new()),
        })
    }

    /// Socket read/write timeout for pooled connections (default 10 s).
    /// Chaos tests shrink this so a dropped chunk surfaces as a fast
    /// transport error instead of a long stall.
    pub fn set_conn_timeout(&mut self, timeout: Duration) {
        self.conn_timeout = timeout;
    }

    /// Lifetime retry/redial counters.
    pub fn retry_stats(&self) -> &RetryStats {
        &self.stats
    }

    /// The gateway's upstream address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Cap how long a lease may wait for a pooled connection before
    /// failing with [`NetError::PoolExhausted`] (default 5 s).
    pub fn set_pool_wait(&mut self, wait: Duration) {
        self.pool_wait = wait;
    }

    /// Lease a connection; the boolean is `true` when the connection came
    /// out of the idle pool (and may therefore have died while parked).
    fn lease(&self) -> Result<(Conn, bool), NetError> {
        let deadline = Instant::now() + self.pool_wait;
        let mut state = self.pool.lock().expect("pool lock");
        loop {
            if let Some(conn) = state.idle.pop() {
                return Ok((conn, true));
            }
            if state.open < self.max_conns {
                state.open += 1;
                drop(state);
                return match Conn::connect_timeout(self.addr, self.conn_timeout) {
                    Ok(conn) => Ok((conn, false)),
                    Err(e) => {
                        self.pool.lock().expect("pool lock").open -= 1;
                        self.available.notify_one();
                        Err(e)
                    }
                };
            }
            // Bounded wait: a stuck or slow peer holding every lease must
            // surface as a typed error, not an unkillable blocked caller.
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(NetError::PoolExhausted);
            }
            let (guard, timeout) = self.available.wait_timeout(state, left).expect("pool lock");
            state = guard;
            if timeout.timed_out() && state.idle.is_empty() && state.open >= self.max_conns {
                return Err(NetError::PoolExhausted);
            }
        }
    }

    fn give_back(&self, conn: Option<Conn>) {
        let mut state = self.pool.lock().expect("pool lock");
        match conn {
            Some(conn) => state.idle.push(conn),
            None => state.open -= 1, // connection died; allow a fresh dial
        }
        self.available.notify_one();
    }

    /// Register a fresh dial outside the lease path (used to replace a
    /// pooled connection that turned out to be dead).
    fn dial_fresh(&self) -> Result<Conn, NetError> {
        self.pool.lock().expect("pool lock").open += 1;
        match Conn::connect_timeout(self.addr, self.conn_timeout) {
            Ok(conn) => Ok(conn),
            Err(e) => {
                self.pool.lock().expect("pool lock").open -= 1;
                self.available.notify_one();
                Err(e)
            }
        }
    }

    /// Run `f` with a leased connection. On transport-level failure the
    /// connection is discarded; if it was a *pooled* connection (which may
    /// have died while idle — e.g. the server restarted), the gateway
    /// transparently dials a fresh socket and runs `f` once more, so
    /// callers never see a stale-pool artifact as an error.
    /// Protocol-level outcomes (`Busy`, `Rejected`) keep the connection
    /// pooled.
    pub fn with_conn<R>(
        &self,
        mut f: impl FnMut(&mut Conn) -> Result<R, NetError>,
    ) -> Result<R, NetError> {
        let (mut conn, reused) = self.lease()?;
        let result = f(&mut conn);
        match &result {
            Err(NetError::Frame(_)) | Err(NetError::Disconnected) => {
                self.give_back(None);
                if !reused {
                    return result;
                }
                // The pooled socket was stale; retry once on a fresh dial.
                self.stats
                    .redials
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let mut conn = self.dial_fresh()?;
                let retry = f(&mut conn);
                match &retry {
                    Err(NetError::Frame(_)) | Err(NetError::Disconnected) => self.give_back(None),
                    _ => self.give_back(Some(conn)),
                }
                retry
            }
            _ => {
                self.give_back(Some(conn));
                result
            }
        }
    }

    /// Fetch this endpoint's `pk_tx` with its attestation report
    /// verified against `attestation_root` / `expected_mrenclave` /
    /// `min_svn` — once. The verified key is cached per endpoint
    /// address, so a process holding one gateway per cluster member
    /// never cross-validates node A's enclave report under the verdict
    /// obtained from node B: each cache entry records which endpoint
    /// it was proven for, and a cache miss always re-runs the full
    /// report verification over the wire.
    pub fn pk_tx_attested(
        &self,
        attestation_root: &VerifyingKey,
        expected_mrenclave: &[u8; 32],
        min_svn: u16,
    ) -> Result<[u8; 32], NetError> {
        if let Some(pk) = self
            .attested_pk
            .lock()
            .expect("pk cache lock")
            .get(&self.addr)
        {
            return Ok(*pk);
        }
        let pk = self
            .with_conn(|c| c.fetch_pk_tx_attested(attestation_root, expected_mrenclave, min_svn))?;
        self.attested_pk
            .lock()
            .expect("pk cache lock")
            .insert(self.addr, pk);
        Ok(pk)
    }

    /// Submit a sealed transaction through the pool and wait for commit.
    pub fn submit_wait(&self, tx: &WireTx) -> Result<(bool, Vec<u8>), NetError> {
        self.with_conn(|c| c.submit_wait(tx))
    }

    /// Fire-and-forget submit through the pool.
    pub fn submit(&self, tx: &WireTx) -> Result<[u8; 32], NetError> {
        self.with_conn(|c| c.submit(tx))
    }

    /// Receipt lookup through the pool.
    pub fn get_receipt(&self, tx_hash: &[u8; 32]) -> Result<Option<Vec<u8>>, NetError> {
        self.with_conn(|c| c.get_receipt(tx_hash))
    }

    /// [`Gateway::submit_wait`] with retries on transient failures
    /// (`Busy` backpressure, transport errors while a node restarts),
    /// backing off per `policy`. Safe against double execution: the
    /// server's committed-wire-hash index answers a retry of an
    /// already-committed transaction with its stored receipt. Terminal
    /// verdicts (`Rejected`, attestation failures) are returned
    /// immediately; running out of attempts yields
    /// [`NetError::RetriesExhausted`].
    pub fn submit_with_retry(
        &self,
        tx: &WireTx,
        policy: &RetryPolicy,
    ) -> Result<(bool, Vec<u8>), NetError> {
        let attempts = policy.max_attempts.max(1);
        let mut last: Option<NetError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.stats
                    .retries
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                std::thread::sleep(policy.backoff(attempt - 1));
            }
            match self.submit_wait(tx) {
                Ok(out) => return Ok(out),
                Err(e) if transient(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        self.stats
            .exhausted
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Err(NetError::RetriesExhausted {
            attempts,
            last: Box::new(last.unwrap_or(NetError::Busy)),
        })
    }
}
